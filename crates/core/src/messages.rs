//! Wire formats for BinAA and Delphi traffic.
//!
//! Delphi's `O(n²)` communication relies on *bundling*: every checkpoint of
//! every level runs its own BinAA instance, but one network message carries
//! the echoes of arbitrarily many instances (§III-C). A [`Section`] is the
//! unit of bundling — all echoes of one `(level, round, kind)` — and uses
//! the zero-run optimization: a single optional *background* value stands
//! for "every checkpoint of this level that nobody has distinguished",
//! while `entries` carry the handful of checkpoints near honest inputs.

use delphi_primitives::wire::{Decode, Encode, Reader, VectorValue, WireError, Writer};
use delphi_primitives::{Dyadic, Round};

/// Maximum sections per bundle accepted from the wire.
pub(crate) const MAX_SECTIONS: usize = 4096;
/// Maximum explicit checkpoint ids per section accepted from the wire.
pub(crate) const MAX_IDS: usize = 16_384;

/// Which quorum message an echo is (Algorithm 1 / Definition II.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EchoKind {
    /// First-phase echo (`ECHO1`).
    Echo1,
    /// Second-phase echo (`ECHO2`).
    Echo2,
}

impl Encode for EchoKind {
    fn encode(&self, w: &mut Writer) {
        w.put_raw_u8(match self {
            EchoKind::Echo1 => 0,
            EchoKind::Echo2 => 1,
        });
    }
}

impl Decode for EchoKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_raw_u8()? {
            0 => Ok(EchoKind::Echo1),
            1 => Ok(EchoKind::Echo2),
            d => Err(WireError::InvalidDiscriminant(u64::from(d))),
        }
    }
}

/// A standalone BinAA message: one echo for one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinAaMsg {
    /// BinAA round the echo belongs to.
    pub round: Round,
    /// Echo phase.
    pub kind: EchoKind,
    /// The echoed value.
    pub value: Dyadic,
}

impl Encode for BinAaMsg {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.round);
        w.put(&self.kind);
        w.put(&self.value);
    }
}

impl Decode for BinAaMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BinAaMsg { round: r.get()?, kind: r.get()?, value: r.get()? })
    }
}

/// All echoes of one `(level, round, kind)` in one Delphi bundle.
///
/// Scope rules (the §III-C zero-run optimization):
///
/// - each `(k, value)` in `entries` is an echo for checkpoint `k`;
/// - if `background` is `Some(v)`, the sender additionally echoes `v` for
///   *every* checkpoint of the level **except** those listed in `entries`
///   or `exclude` (the sender's currently distinguished checkpoints);
/// - any checkpoint id mentioned anywhere makes the checkpoint
///   "distinguished" at the receiver (it is forked off the background
///   instance before the message is applied).
#[derive(Clone, Debug, PartialEq)]
pub struct Section {
    /// Level index (`0..=l_max`).
    pub level: u8,
    /// BinAA round within the level.
    pub round: Round,
    /// Echo phase.
    pub kind: EchoKind,
    /// Echo applying to every unlisted checkpoint of the level, if any.
    pub background: Option<Dyadic>,
    /// Checkpoints explicitly **not** covered by `background`.
    pub exclude: Vec<i64>,
    /// Per-checkpoint echoes.
    pub entries: Vec<(i64, Dyadic)>,
}

impl Section {
    /// Creates an empty section for `(level, round, kind)`.
    pub fn new(level: u8, round: Round, kind: EchoKind) -> Section {
        Section { level, round, kind, background: None, exclude: Vec::new(), entries: Vec::new() }
    }

    /// Whether the section carries no echo at all.
    pub fn is_empty(&self) -> bool {
        self.background.is_none() && self.entries.is_empty()
    }
}

/// Writes a checkpoint-id sequence as wrapping deltas from the previous
/// id.
///
/// Checkpoint ids inside one section cluster around the honest inputs
/// (consecutive ids a few units apart), so the deltas zig-zag into one
/// byte each where absolute ids cost three — the dominant varint work in
/// a bundle, on both sides of the wire. Wrapping arithmetic keeps the
/// mapping bijective for arbitrary `i64` ids.
fn put_id_deltas<'a>(w: &mut Writer, ids: impl ExactSizeIterator<Item = &'a i64>) {
    w.put_usize(ids.len());
    let mut prev = 0i64;
    for &id in ids {
        w.put_i64(id.wrapping_sub(prev));
        prev = id;
    }
}

impl Encode for Section {
    fn encode(&self, w: &mut Writer) {
        w.put_raw_u8(self.level);
        w.put(&self.round);
        w.put(&self.kind);
        match self.background {
            Some(v) => {
                w.put_bool(true);
                w.put(&v);
                put_id_deltas(w, self.exclude.iter());
            }
            None => w.put_bool(false),
        }
        put_id_deltas(w, self.entries.iter().map(|(id, _)| id));
        for (_, v) in &self.entries {
            w.put(v);
        }
    }
}

impl Decode for Section {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let level = r.get_raw_u8()?;
        let round = r.get::<Round>()?;
        let kind = r.get::<EchoKind>()?;
        let (background, exclude) = if r.get_bool()? {
            let v = r.get::<Dyadic>()?;
            let n = r.get_usize()?;
            if n > MAX_IDS {
                return Err(WireError::LengthOutOfBounds);
            }
            // The count is validated but still untrusted: cap the upfront
            // allocation (as `get_seq` does) and grow past it only as
            // items actually decode.
            let mut exclude = Vec::with_capacity(n.min(1024));
            let mut prev = 0i64;
            for _ in 0..n {
                prev = prev.wrapping_add(r.get_i64()?);
                exclude.push(prev);
            }
            (Some(v), exclude)
        } else {
            (None, Vec::new())
        };
        let n = r.get_usize()?;
        if n > MAX_IDS {
            return Err(WireError::LengthOutOfBounds);
        }
        let mut entries = Vec::with_capacity(n.min(1024));
        let mut prev = 0i64;
        for _ in 0..n {
            prev = prev.wrapping_add(r.get_i64()?);
            entries.push((prev, Dyadic::ZERO));
        }
        for (_, v) in &mut entries {
            *v = r.get::<Dyadic>()?;
        }
        Ok(Section { level, round, kind, background, exclude, entries })
    }
}

/// A Delphi network message: one or more bundled sections.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct DelphiBundle {
    /// The bundled sections.
    pub sections: Vec<Section>,
}

impl DelphiBundle {
    /// Creates an empty bundle.
    pub fn new() -> DelphiBundle {
        DelphiBundle::default()
    }

    /// Whether no section carries any echo.
    pub fn is_empty(&self) -> bool {
        self.sections.iter().all(Section::is_empty)
    }
}

impl Encode for DelphiBundle {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(&self.sections);
    }
}

impl Decode for DelphiBundle {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DelphiBundle { sections: r.get_seq(MAX_SECTIONS)? })
    }
}

/// A validated, borrowed view of an encoded [`DelphiBundle`]: the
/// zero-copy decoder of the frame→protocol hot path.
///
/// [`DelphiBundleRef::parse`] makes exactly one validating pass over the
/// input — every varint, discriminant, length bound, and [`Dyadic`] is
/// checked with the same errors as the owned decoder (property-tested) —
/// but materializes nothing: no section `Vec`, no id vectors, no entry
/// pairs. Consumers walk [`DelphiBundleRef::sections`], whose
/// [`SectionRef`]s expose the id runs and entries as iterators over
/// slices of the original input. `to_owned` exists for the protocol
/// boundary, where state must outlive the frame.
#[derive(Clone, Copy, Debug)]
pub struct DelphiBundleRef<'a> {
    /// Section bytes (everything after the count), pre-validated.
    sections: &'a [u8],
    count: usize,
}

impl<'a> DelphiBundleRef<'a> {
    /// Validates `bytes` as a complete bundle encoding and returns the
    /// borrowed view.
    ///
    /// # Errors
    ///
    /// Exactly what `DelphiBundle::from_bytes` returns on the same input,
    /// including [`WireError::TrailingBytes`] on unconsumed bytes.
    pub fn parse(bytes: &'a [u8]) -> Result<DelphiBundleRef<'a>, WireError> {
        let mut r = Reader::new(bytes);
        let count = r.get_usize()?;
        if count > MAX_SECTIONS {
            return Err(WireError::LengthOutOfBounds);
        }
        let sections = r.tail();
        for _ in 0..count {
            let _ = read_section_ref(&mut r)?;
        }
        r.finish()?;
        Ok(DelphiBundleRef { sections, count })
    }

    /// Number of sections in the bundle.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the bundle holds no sections at all (cf.
    /// [`DelphiBundle::is_empty`], which also treats echo-free sections
    /// as empty).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the sections as borrowed views.
    pub fn sections(&self) -> SectionRefIter<'a> {
        SectionRefIter { r: Reader::new(self.sections), remaining: self.count }
    }

    /// Materializes the owned bundle (the protocol-boundary escape hatch).
    pub fn to_owned_bundle(&self) -> DelphiBundle {
        DelphiBundle { sections: self.sections().map(|s| s.to_owned_section()).collect() }
    }
}

/// Iterator over a pre-validated [`DelphiBundleRef`].
#[derive(Clone, Debug)]
pub struct SectionRefIter<'a> {
    r: Reader<'a>,
    remaining: usize,
}

impl<'a> Iterator for SectionRefIter<'a> {
    type Item = SectionRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Parse validated the region; a failure here is unreachable but
        // ends iteration instead of panicking.
        match read_section_ref(&mut self.r) {
            Ok(section) => Some(section),
            Err(_) => {
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// One section of a [`DelphiBundleRef`]: decoded header fields plus
/// borrowed slices for the id runs and entry values.
#[derive(Clone, Copy, Debug)]
pub struct SectionRef<'a> {
    /// Level index (`0..=l_max`).
    pub level: u8,
    /// BinAA round within the level.
    pub round: Round,
    /// Echo phase.
    pub kind: EchoKind,
    /// Echo applying to every unlisted checkpoint of the level, if any.
    pub background: Option<Dyadic>,
    exclude_count: usize,
    exclude_bytes: &'a [u8],
    entry_count: usize,
    id_bytes: &'a [u8],
    value_bytes: &'a [u8],
}

impl<'a> SectionRef<'a> {
    /// Number of explicit `exclude` checkpoint ids.
    pub fn exclude_len(&self) -> usize {
        self.exclude_count
    }

    /// Number of per-checkpoint entries.
    pub fn entries_len(&self) -> usize {
        self.entry_count
    }

    /// Iterates the `exclude` checkpoint ids (delta-decoded on the fly).
    pub fn exclude(&self) -> IdRunIter<'a> {
        IdRunIter { r: Reader::new(self.exclude_bytes), remaining: self.exclude_count, prev: 0 }
    }

    /// Iterates the `(checkpoint, value)` entries.
    pub fn entries(&self) -> EntryRunIter<'a> {
        EntryRunIter {
            ids: IdRunIter { r: Reader::new(self.id_bytes), remaining: self.entry_count, prev: 0 },
            values: Reader::new(self.value_bytes),
        }
    }

    /// Materializes an owned [`Section`].
    pub fn to_owned_section(&self) -> Section {
        let mut section = Section::new(self.level, self.round, self.kind);
        self.fill_section(&mut section);
        section
    }

    /// Fills a reusable scratch [`Section`] in place — the steady-state
    /// consumer path allocates nothing once the scratch vectors have
    /// grown to the working-set size.
    pub fn fill_section(&self, section: &mut Section) {
        section.level = self.level;
        section.round = self.round;
        section.kind = self.kind;
        section.background = self.background;
        section.exclude.clear();
        section.exclude.extend(self.exclude());
        section.entries.clear();
        section.entries.extend(self.entries());
    }
}

/// Iterator over one delta-coded checkpoint-id run.
#[derive(Clone, Debug)]
pub struct IdRunIter<'a> {
    r: Reader<'a>,
    remaining: usize,
    prev: i64,
}

impl Iterator for IdRunIter<'_> {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Pre-validated region: failure is unreachable.
        let delta = self.r.get_i64().ok()?;
        self.prev = self.prev.wrapping_add(delta);
        Some(self.prev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Iterator over a section's `(checkpoint, value)` entries.
#[derive(Clone, Debug)]
pub struct EntryRunIter<'a> {
    ids: IdRunIter<'a>,
    values: Reader<'a>,
}

impl Iterator for EntryRunIter<'_> {
    type Item = (i64, Dyadic);

    fn next(&mut self) -> Option<(i64, Dyadic)> {
        let id = self.ids.next()?;
        let value = self.values.get::<Dyadic>().ok()?;
        Some((id, value))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

/// Reads one section as a borrowed view, validating everything the owned
/// decoder validates — this is the single code path behind both
/// [`DelphiBundleRef::parse`] and [`SectionRefIter`], so the two can never
/// disagree on what is well-formed.
fn read_section_ref<'a>(r: &mut Reader<'a>) -> Result<SectionRef<'a>, WireError> {
    let level = r.get_raw_u8()?;
    let round = r.get::<Round>()?;
    let kind = r.get::<EchoKind>()?;
    let (background, exclude_count, exclude_bytes) = if r.get_bool()? {
        let v = r.get::<Dyadic>()?;
        let n = r.get_usize()?;
        if n > MAX_IDS {
            return Err(WireError::LengthOutOfBounds);
        }
        let start = r.tail();
        for _ in 0..n {
            // Deltas are wrapping sums: any well-formed varint is a valid
            // id, so validation only needs the boundary.
            r.skip_u64()?;
        }
        (Some(v), n, &start[..start.len() - r.tail().len()])
    } else {
        (None, 0, &[][..])
    };
    let entry_count = r.get_usize()?;
    if entry_count > MAX_IDS {
        return Err(WireError::LengthOutOfBounds);
    }
    let id_start = r.tail();
    for _ in 0..entry_count {
        r.skip_u64()?;
    }
    let id_bytes = &id_start[..id_start.len() - r.tail().len()];
    let value_start = r.tail();
    for _ in 0..entry_count {
        let _ = r.get::<Dyadic>()?;
    }
    let value_bytes = &value_start[..value_start.len() - r.tail().len()];
    Ok(SectionRef {
        level,
        round,
        kind,
        background,
        exclude_count,
        exclude_bytes,
        entry_count,
        id_bytes,
        value_bytes,
    })
}

/// All echoes of one `(level, round, kind)` in one *vector-basket* bundle
/// — the multidimensional counterpart of [`Section`].
///
/// Where a scalar section carries one [`Dyadic`] per echo, a basket
/// section carries a [`VectorValue`] per echo: up to 64 basket dimensions
/// share one id-run, one header, and one frame, which is what makes a
/// whole basket cost one bundle exchange per round. Scope rules are the
/// scalar rules applied *per dimension*:
///
/// - each `(k, values)` in `entries` echoes `values.get(d)` for
///   checkpoint `k` in every dimension `d` the value set covers;
/// - `backgrounds.get(d)`, when present, additionally echoes that value
///   for every checkpoint of the level in dimension `d` **except** those
///   whose entry value set covers `d` or whose `exclude` mask has bit `d`
///   set;
/// - a checkpoint id mentioned in an entry or exclude run distinguishes
///   the checkpoint at the receiver *only in the dimensions its mask
///   covers* — mentioning `(k, {0})` says nothing about `k` in dimension
///   1, whose background echo still applies there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasketSection {
    /// Level index (`0..=l_max`).
    pub level: u8,
    /// BinAA round within the level (shared by every dimension).
    pub round: Round,
    /// Echo phase.
    pub kind: EchoKind,
    /// Per-dimension background echoes, if any.
    pub backgrounds: VectorValue,
    /// `(checkpoint, dimension mask)` pairs **not** covered by the
    /// matching background dimensions.
    pub exclude: Vec<(i64, u64)>,
    /// Per-checkpoint, per-dimension echoes.
    pub entries: Vec<(i64, VectorValue)>,
}

impl BasketSection {
    /// Creates an empty basket section for `(level, round, kind)`.
    pub fn new(level: u8, round: Round, kind: EchoKind) -> BasketSection {
        BasketSection {
            level,
            round,
            kind,
            backgrounds: VectorValue::new(),
            exclude: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Whether the section carries no echo at all.
    pub fn is_empty(&self) -> bool {
        self.backgrounds.is_empty() && self.entries.is_empty()
    }
}

impl Encode for BasketSection {
    fn encode(&self, w: &mut Writer) {
        w.put_raw_u8(self.level);
        w.put(&self.round);
        w.put(&self.kind);
        w.put(&self.backgrounds);
        if !self.backgrounds.is_empty() {
            put_id_deltas(w, self.exclude.iter().map(|(id, _)| id));
            for &(_, mask) in &self.exclude {
                w.put_u64(mask);
            }
        }
        put_id_deltas(w, self.entries.iter().map(|(id, _)| id));
        for (_, values) in &self.entries {
            w.put(values);
        }
    }
}

impl Decode for BasketSection {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let level = r.get_raw_u8()?;
        let round = r.get::<Round>()?;
        let kind = r.get::<EchoKind>()?;
        let backgrounds = r.get::<VectorValue>()?;
        let exclude = if !backgrounds.is_empty() {
            let n = r.get_usize()?;
            if n > MAX_IDS {
                return Err(WireError::LengthOutOfBounds);
            }
            let mut exclude = Vec::with_capacity(n.min(1024));
            let mut prev = 0i64;
            for _ in 0..n {
                prev = prev.wrapping_add(r.get_i64()?);
                exclude.push((prev, 0u64));
            }
            for (_, mask) in &mut exclude {
                *mask = r.get_u64()?;
            }
            exclude
        } else {
            Vec::new()
        };
        let n = r.get_usize()?;
        if n > MAX_IDS {
            return Err(WireError::LengthOutOfBounds);
        }
        let mut entries = Vec::with_capacity(n.min(1024));
        let mut prev = 0i64;
        for _ in 0..n {
            prev = prev.wrapping_add(r.get_i64()?);
            entries.push((prev, VectorValue::new()));
        }
        for (_, values) in &mut entries {
            *values = r.get::<VectorValue>()?;
        }
        Ok(BasketSection { level, round, kind, backgrounds, exclude, entries })
    }
}

/// A vector-basket network message: one or more bundled
/// [`BasketSection`]s.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BasketBundle {
    /// The bundled sections.
    pub sections: Vec<BasketSection>,
}

impl BasketBundle {
    /// Creates an empty bundle.
    pub fn new() -> BasketBundle {
        BasketBundle::default()
    }

    /// Whether no section carries any echo.
    pub fn is_empty(&self) -> bool {
        self.sections.iter().all(BasketSection::is_empty)
    }
}

impl Encode for BasketBundle {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(&self.sections);
    }
}

impl Decode for BasketBundle {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BasketBundle { sections: r.get_seq(MAX_SECTIONS)? })
    }
}

/// A validated, borrowed view of an encoded [`BasketBundle`] — the
/// vector-basket counterpart of [`DelphiBundleRef`], built on the same
/// pattern: one validating pass in [`BasketBundleRef::parse`] (identical
/// errors to the owned decoder, property-tested), then allocation-free
/// iteration over sections straight out of the input bytes.
#[derive(Clone, Copy, Debug)]
pub struct BasketBundleRef<'a> {
    /// Section bytes (everything after the count), pre-validated.
    sections: &'a [u8],
    count: usize,
}

impl<'a> BasketBundleRef<'a> {
    /// Validates `bytes` as a complete basket-bundle encoding and returns
    /// the borrowed view.
    ///
    /// # Errors
    ///
    /// Exactly what `BasketBundle::from_bytes` returns on the same input,
    /// including [`WireError::TrailingBytes`] on unconsumed bytes.
    pub fn parse(bytes: &'a [u8]) -> Result<BasketBundleRef<'a>, WireError> {
        let mut r = Reader::new(bytes);
        let count = r.get_usize()?;
        if count > MAX_SECTIONS {
            return Err(WireError::LengthOutOfBounds);
        }
        let sections = r.tail();
        for _ in 0..count {
            let _ = read_basket_section_ref(&mut r)?;
        }
        r.finish()?;
        Ok(BasketBundleRef { sections, count })
    }

    /// Number of sections in the bundle.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the bundle holds no sections at all.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the sections as borrowed views.
    pub fn sections(&self) -> BasketSectionRefIter<'a> {
        BasketSectionRefIter { r: Reader::new(self.sections), remaining: self.count }
    }

    /// Materializes the owned bundle (the protocol-boundary escape hatch).
    pub fn to_owned_bundle(&self) -> BasketBundle {
        BasketBundle { sections: self.sections().map(|s| s.to_owned_section()).collect() }
    }
}

/// Iterator over a pre-validated [`BasketBundleRef`].
#[derive(Clone, Debug)]
pub struct BasketSectionRefIter<'a> {
    r: Reader<'a>,
    remaining: usize,
}

impl<'a> Iterator for BasketSectionRefIter<'a> {
    type Item = BasketSectionRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Parse validated the region; a failure here is unreachable but
        // ends iteration instead of panicking.
        match read_basket_section_ref(&mut self.r) {
            Ok(section) => Some(section),
            Err(_) => {
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// One section of a [`BasketBundleRef`]: decoded header fields plus
/// borrowed slices for the background values, id runs, masks, and entry
/// value sets.
#[derive(Clone, Copy, Debug)]
pub struct BasketSectionRef<'a> {
    /// Level index (`0..=l_max`).
    pub level: u8,
    /// BinAA round within the level.
    pub round: Round,
    /// Echo phase.
    pub kind: EchoKind,
    backgrounds_mask: u64,
    backgrounds_bytes: &'a [u8],
    exclude_count: usize,
    exclude_id_bytes: &'a [u8],
    exclude_mask_bytes: &'a [u8],
    entry_count: usize,
    id_bytes: &'a [u8],
    value_bytes: &'a [u8],
}

impl<'a> BasketSectionRef<'a> {
    /// The background membership mask (bit `d` set iff dimension `d` has
    /// a background echo).
    pub fn backgrounds_mask(&self) -> u64 {
        self.backgrounds_mask
    }

    /// Iterates the `(dimension, value)` background echoes, ascending by
    /// dimension.
    pub fn backgrounds(&self) -> DimValueIter<'a> {
        DimValueIter { mask: self.backgrounds_mask, r: Reader::new(self.backgrounds_bytes) }
    }

    /// Number of `(checkpoint, mask)` exclude pairs.
    pub fn exclude_len(&self) -> usize {
        self.exclude_count
    }

    /// Number of per-checkpoint entries.
    pub fn entries_len(&self) -> usize {
        self.entry_count
    }

    /// Iterates the `(checkpoint, dimension mask)` exclude pairs.
    pub fn exclude(&self) -> ExcludeRunIter<'a> {
        ExcludeRunIter {
            ids: IdRunIter {
                r: Reader::new(self.exclude_id_bytes),
                remaining: self.exclude_count,
                prev: 0,
            },
            masks: Reader::new(self.exclude_mask_bytes),
        }
    }

    /// Iterates the `(checkpoint, values)` entries.
    pub fn entries(&self) -> BasketEntryIter<'a> {
        BasketEntryIter {
            ids: IdRunIter { r: Reader::new(self.id_bytes), remaining: self.entry_count, prev: 0 },
            values: Reader::new(self.value_bytes),
        }
    }

    /// Materializes an owned [`BasketSection`].
    pub fn to_owned_section(&self) -> BasketSection {
        let mut section = BasketSection::new(self.level, self.round, self.kind);
        self.fill_section(&mut section);
        section
    }

    /// Fills a reusable scratch [`BasketSection`] in place (cf.
    /// [`SectionRef::fill_section`]): the outer vectors keep their
    /// capacity across messages.
    pub fn fill_section(&self, section: &mut BasketSection) {
        section.level = self.level;
        section.round = self.round;
        section.kind = self.kind;
        section.backgrounds.clear();
        for (dim, value) in self.backgrounds() {
            section.backgrounds.set(dim, value);
        }
        section.exclude.clear();
        section.exclude.extend(self.exclude());
        section.entries.clear();
        section.entries.extend(self.entries());
    }
}

/// Iterator over one [`VectorValue`] region: `(dimension, value)` pairs,
/// ascending by dimension.
#[derive(Clone, Debug)]
pub struct DimValueIter<'a> {
    mask: u64,
    r: Reader<'a>,
}

impl Iterator for DimValueIter<'_> {
    type Item = (u16, Dyadic);

    fn next(&mut self) -> Option<(u16, Dyadic)> {
        if self.mask == 0 {
            return None;
        }
        let dim = self.mask.trailing_zeros() as u16;
        self.mask &= self.mask - 1;
        // Pre-validated region: failure is unreachable.
        let value = self.r.get::<Dyadic>().ok()?;
        Some((dim, value))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.mask.count_ones() as usize;
        (n, Some(n))
    }
}

/// Iterator over a section's `(checkpoint, dimension mask)` exclude run.
#[derive(Clone, Debug)]
pub struct ExcludeRunIter<'a> {
    ids: IdRunIter<'a>,
    masks: Reader<'a>,
}

impl Iterator for ExcludeRunIter<'_> {
    type Item = (i64, u64);

    fn next(&mut self) -> Option<(i64, u64)> {
        let id = self.ids.next()?;
        let mask = self.masks.get_u64().ok()?;
        Some((id, mask))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

/// Iterator over a section's `(checkpoint, values)` entries.
#[derive(Clone, Debug)]
pub struct BasketEntryIter<'a> {
    ids: IdRunIter<'a>,
    values: Reader<'a>,
}

impl Iterator for BasketEntryIter<'_> {
    type Item = (i64, VectorValue);

    fn next(&mut self) -> Option<(i64, VectorValue)> {
        let id = self.ids.next()?;
        let values = self.values.get::<VectorValue>().ok()?;
        Some((id, values))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

/// Reads one basket section as a borrowed view, validating everything the
/// owned decoder validates — the single code path behind both
/// [`BasketBundleRef::parse`] and [`BasketSectionRefIter`], mirroring
/// [`read_section_ref`].
fn read_basket_section_ref<'a>(r: &mut Reader<'a>) -> Result<BasketSectionRef<'a>, WireError> {
    let level = r.get_raw_u8()?;
    let round = r.get::<Round>()?;
    let kind = r.get::<EchoKind>()?;
    let backgrounds_mask = r.get_u64()?;
    let bg_start = r.tail();
    for _ in 0..backgrounds_mask.count_ones() {
        let _ = r.get::<Dyadic>()?;
    }
    let backgrounds_bytes = &bg_start[..bg_start.len() - r.tail().len()];
    let (exclude_count, exclude_id_bytes, exclude_mask_bytes) = if backgrounds_mask != 0 {
        let n = r.get_usize()?;
        if n > MAX_IDS {
            return Err(WireError::LengthOutOfBounds);
        }
        let id_start = r.tail();
        for _ in 0..n {
            // Deltas are wrapping sums: any well-formed varint is a valid
            // id, so validation only needs the boundary.
            r.skip_u64()?;
        }
        let id_bytes = &id_start[..id_start.len() - r.tail().len()];
        let mask_start = r.tail();
        for _ in 0..n {
            r.skip_u64()?;
        }
        let mask_bytes = &mask_start[..mask_start.len() - r.tail().len()];
        (n, id_bytes, mask_bytes)
    } else {
        (0, &[][..], &[][..])
    };
    let entry_count = r.get_usize()?;
    if entry_count > MAX_IDS {
        return Err(WireError::LengthOutOfBounds);
    }
    let id_start = r.tail();
    for _ in 0..entry_count {
        r.skip_u64()?;
    }
    let id_bytes = &id_start[..id_start.len() - r.tail().len()];
    let value_start = r.tail();
    for _ in 0..entry_count {
        let mask = r.get_u64()?;
        for _ in 0..mask.count_ones() {
            let _ = r.get::<Dyadic>()?;
        }
    }
    let value_bytes = &value_start[..value_start.len() - r.tail().len()];
    Ok(BasketSectionRef {
        level,
        round,
        kind,
        backgrounds_mask,
        backgrounds_bytes,
        exclude_count,
        exclude_id_bytes,
        exclude_mask_bytes,
        entry_count,
        id_bytes,
        value_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::wire::roundtrip;

    #[test]
    fn binaa_msg_roundtrip() {
        let msg = BinAaMsg { round: Round(7), kind: EchoKind::Echo2, value: Dyadic::new(5, 3) };
        assert_eq!(roundtrip(&msg).unwrap(), msg);
    }

    #[test]
    fn echo_kind_rejects_unknown_discriminant() {
        assert!(matches!(EchoKind::from_bytes(&[7]), Err(WireError::InvalidDiscriminant(7))));
    }

    #[test]
    fn section_roundtrip_with_background() {
        let s = Section {
            level: 3,
            round: Round(2),
            kind: EchoKind::Echo1,
            background: Some(Dyadic::ZERO),
            exclude: vec![-5, 40_000],
            entries: vec![(19_999, Dyadic::ONE), (20_000, Dyadic::new(1, 2))],
        };
        assert_eq!(roundtrip(&s).unwrap(), s);
    }

    #[test]
    fn section_roundtrip_without_background_drops_exclude() {
        let s = Section {
            level: 0,
            round: Round(1),
            kind: EchoKind::Echo2,
            background: None,
            exclude: Vec::new(),
            entries: vec![(7, Dyadic::ONE)],
        };
        assert_eq!(roundtrip(&s).unwrap(), s);
    }

    #[test]
    fn bundle_roundtrip_and_emptiness() {
        let mut b = DelphiBundle::new();
        assert!(b.is_empty());
        b.sections.push(Section::new(0, Round(1), EchoKind::Echo1));
        assert!(b.is_empty(), "section without echoes is empty");
        b.sections[0].background = Some(Dyadic::ZERO);
        assert!(!b.is_empty());
        assert_eq!(roundtrip(&b).unwrap(), b);
    }

    #[test]
    fn oversized_sequences_rejected() {
        use delphi_primitives::wire::Writer;
        let mut w = Writer::new();
        w.put_usize(MAX_SECTIONS + 1);
        assert!(DelphiBundle::from_bytes(&w.into_vec()).is_err());
    }

    #[test]
    fn truncated_section_rejected() {
        let s = Section {
            level: 1,
            round: Round(1),
            kind: EchoKind::Echo1,
            background: Some(Dyadic::ONE),
            exclude: vec![1, 2, 3],
            entries: vec![(9, Dyadic::ONE)],
        };
        let bytes = s.to_bytes();
        for cut in 1..bytes.len() {
            assert!(Section::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn id_delta_coding_survives_extremes_and_disorder() {
        // Checkpoint ids are delta-coded with wrapping arithmetic: the
        // roundtrip must be exact for extreme magnitudes (whose deltas
        // wrap i64) and for unsorted sequences (deltas may be negative).
        let s = Section {
            level: 1,
            round: Round(3),
            kind: EchoKind::Echo2,
            background: Some(Dyadic::ONE),
            exclude: vec![i64::MAX, i64::MIN, 0, -1],
            entries: vec![
                (i64::MIN, Dyadic::ZERO),
                (i64::MAX, Dyadic::ONE),
                (5, Dyadic::new(1, 2)),
                (4, Dyadic::new(3, 2)),
            ],
        };
        assert_eq!(roundtrip(&s).unwrap(), s);
    }

    #[test]
    fn clustered_ids_encode_one_byte_each() {
        // The point of delta coding: consecutive checkpoint ids near
        // 20 000 cost one byte apiece after the first, not three.
        let mut near = Section::new(0, Round(1), EchoKind::Echo1);
        near.entries = (0..8).map(|i| (20_000 + i, Dyadic::ZERO)).collect();
        let mut far = Section::new(0, Round(1), EchoKind::Echo1);
        far.entries = (0..8).map(|i| (20_000 + 10_000 * i, Dyadic::ZERO)).collect();
        let (near_len, far_len) = (near.to_bytes().len(), far.to_bytes().len());
        assert!(near_len + 2 * 7 <= far_len, "clustered {near_len}B vs spread {far_len}B");
    }

    fn sample_bundle() -> DelphiBundle {
        let mut b = DelphiBundle::new();
        for level in 0..4u8 {
            let mut s = Section::new(level, Round(3 + u16::from(level)), EchoKind::Echo1);
            s.background = Some(Dyadic::new(1, 2));
            s.exclude = vec![-5, 40_000, i64::MIN];
            s.entries =
                vec![(19_999, Dyadic::ONE), (20_000, Dyadic::new(1, 2)), (i64::MAX, Dyadic::ZERO)];
            b.sections.push(s);
        }
        b.sections.push(Section::new(9, Round(1), EchoKind::Echo2));
        b
    }

    #[test]
    fn borrowed_bundle_view_matches_owned_decoder() {
        let bundle = sample_bundle();
        let bytes = bundle.to_bytes();
        let view = DelphiBundleRef::parse(&bytes).unwrap();
        assert_eq!(view.len(), bundle.sections.len());
        assert!(!view.is_empty());
        assert_eq!(view.to_owned_bundle(), bundle);
        assert_eq!(view.sections().size_hint(), (5, Some(5)));
        // Per-section borrowed iteration matches the owned fields.
        for (sref, owned) in view.sections().zip(&bundle.sections) {
            assert_eq!(sref.level, owned.level);
            assert_eq!(sref.round, owned.round);
            assert_eq!(sref.kind, owned.kind);
            assert_eq!(sref.background, owned.background);
            assert_eq!(sref.exclude_len(), owned.exclude.len());
            assert_eq!(sref.entries_len(), owned.entries.len());
            assert_eq!(sref.exclude().collect::<Vec<_>>(), owned.exclude);
            assert_eq!(sref.entries().collect::<Vec<_>>(), owned.entries);
            // fill_section reuses scratch storage without reallocating
            // once capacity is grown.
            let mut scratch = Section::new(0, Round(1), EchoKind::Echo1);
            sref.fill_section(&mut scratch);
            assert_eq!(&scratch, owned);
            let cap = (scratch.exclude.capacity(), scratch.entries.capacity());
            sref.fill_section(&mut scratch);
            assert_eq!(&scratch, owned);
            assert_eq!((scratch.exclude.capacity(), scratch.entries.capacity()), cap);
        }
        // The empty bundle parses too.
        let empty = DelphiBundle::new().to_bytes();
        assert!(DelphiBundleRef::parse(&empty).unwrap().is_empty());
    }

    #[test]
    fn borrowed_bundle_rejects_what_owned_rejects() {
        let bytes = sample_bundle().to_bytes();
        // Every truncation fails identically.
        for cut in 0..bytes.len() {
            let owned = DelphiBundle::from_bytes(&bytes[..cut]).unwrap_err();
            let borrowed = DelphiBundleRef::parse(&bytes[..cut]).unwrap_err();
            assert_eq!(owned, borrowed, "cut at {cut}");
        }
        // Trailing bytes fail identically.
        let mut trailing = bytes.to_vec();
        trailing.push(0x55);
        assert_eq!(
            DelphiBundle::from_bytes(&trailing).unwrap_err(),
            DelphiBundleRef::parse(&trailing).unwrap_err(),
        );
        assert_eq!(DelphiBundleRef::parse(&trailing).unwrap_err(), WireError::TrailingBytes);
        // Oversized section counts fail identically.
        let mut w = Writer::new();
        w.put_usize(MAX_SECTIONS + 1);
        let over = w.into_vec();
        assert_eq!(
            DelphiBundle::from_bytes(&over).unwrap_err(),
            DelphiBundleRef::parse(&over).unwrap_err(),
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Round-trip equivalence on arbitrary well-formed bundles:
        /// `parse(bytes).to_owned() == decode(bytes)`.
        #[test]
        fn prop_borrowed_bundle_roundtrip_equivalence(
            sections in proptest::collection::vec(
                (
                    // (level, round, kind)
                    (proptest::prelude::any::<u8>(), 1u16..32, proptest::prelude::any::<bool>()),
                    // (background?, numerator, exponent)
                    (proptest::prelude::any::<bool>(), proptest::prelude::any::<u8>(), 0u8..60),
                    proptest::collection::vec(proptest::prelude::any::<i64>(), 0..6), // exclude
                    proptest::collection::vec(
                        (proptest::prelude::any::<i64>(),
                         proptest::prelude::any::<u8>(), 0u8..60),
                        0..6,
                    ),                                              // entries
                ),
                0..6,
            )
        ) {
            let mut bundle = DelphiBundle::new();
            for ((level, round, echo2), (has_bg, bg_num, bg_den), exclude, entries) in sections {
                let kind = if echo2 { EchoKind::Echo2 } else { EchoKind::Echo1 };
                let mut s = Section::new(level, Round(round), kind);
                if has_bg {
                    s.background = Some(Dyadic::new(u64::from(bg_num), bg_den));
                    s.exclude = exclude;
                }
                s.entries = entries
                    .into_iter()
                    .map(|(k, num, den)| (k, Dyadic::new(u64::from(num), den)))
                    .collect();
                bundle.sections.push(s);
            }
            let bytes = bundle.to_bytes();
            let owned = DelphiBundle::from_bytes(&bytes).unwrap();
            let view = DelphiBundleRef::parse(&bytes).unwrap();
            proptest::prop_assert_eq!(view.to_owned_bundle(), owned);
        }

        /// Error equivalence on garbage bytes and truncated prefixes: the
        /// borrowed parser accepts and rejects exactly what the owned
        /// decoder does, with the same error.
        #[test]
        fn prop_borrowed_bundle_error_equivalence(
            bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..96),
            cut in 0usize..96,
        ) {
            let owned = DelphiBundle::from_bytes(&bytes).map(|b| b.sections.len());
            let borrowed = DelphiBundleRef::parse(&bytes).map(|v| v.to_owned_bundle().sections.len());
            proptest::prop_assert_eq!(owned, borrowed);
            let cut = cut.min(bytes.len());
            let owned = DelphiBundle::from_bytes(&bytes[..cut]).map(|b| b.sections.len());
            let borrowed =
                DelphiBundleRef::parse(&bytes[..cut]).map(|v| v.to_owned_bundle().sections.len());
            proptest::prop_assert_eq!(owned, borrowed);
        }
    }

    fn sample_basket_bundle() -> BasketBundle {
        let mut b = BasketBundle::new();
        for level in 0..3u8 {
            let mut s = BasketSection::new(level, Round(2 + u16::from(level)), EchoKind::Echo1);
            let mut bg = VectorValue::new();
            bg.set(0, Dyadic::ZERO);
            bg.set(5, Dyadic::new(1, 2));
            bg.set(63, Dyadic::ONE);
            s.backgrounds = bg;
            s.exclude = vec![(-5, 0b1), (40_000, u64::MAX), (i64::MIN, 0)];
            let mut v1 = VectorValue::single(0, Dyadic::ONE);
            v1.set(7, Dyadic::new(3, 4));
            s.entries = vec![
                (19_999, v1),
                (20_000, VectorValue::single(5, Dyadic::new(1, 2))),
                (i64::MAX, VectorValue::new()),
            ];
            b.sections.push(s);
        }
        // Background-free section: exclude run is not encoded.
        let mut s = BasketSection::new(9, Round(1), EchoKind::Echo2);
        s.entries = vec![(7, VectorValue::single(2, Dyadic::ONE))];
        b.sections.push(s);
        b.sections.push(BasketSection::new(11, Round(1), EchoKind::Echo1));
        b
    }

    #[test]
    fn basket_section_roundtrip() {
        let bundle = sample_basket_bundle();
        for s in &bundle.sections {
            assert_eq!(&roundtrip(s).unwrap(), s);
        }
        assert_eq!(roundtrip(&bundle).unwrap(), bundle);
        assert!(!bundle.is_empty());
        assert!(BasketBundle::new().is_empty());
        assert!(BasketBundle { sections: vec![BasketSection::new(0, Round(1), EchoKind::Echo1)] }
            .is_empty());
    }

    #[test]
    fn basket_section_without_backgrounds_omits_exclude_run() {
        // The exclude run rides the background flag exactly like the
        // scalar section's: no backgrounds, no run on the wire.
        let mut with_ex = BasketSection::new(0, Round(1), EchoKind::Echo1);
        with_ex.exclude = vec![(1, 1), (2, 2)];
        let bare = BasketSection::new(0, Round(1), EchoKind::Echo1);
        assert_eq!(with_ex.to_bytes(), bare.to_bytes());
        assert_eq!(roundtrip(&with_ex).unwrap(), bare);
    }

    #[test]
    fn basket_shares_one_id_run_across_dimensions() {
        // The vector win on the wire: m dimensions echoing the same
        // checkpoints cost one id-run, not m scalar sections.
        let ids = 0..8i64;
        let mut vector = BasketSection::new(0, Round(1), EchoKind::Echo1);
        vector.entries = ids
            .clone()
            .map(|k| {
                let mut vv = VectorValue::new();
                for d in 0..8 {
                    vv.set(d, Dyadic::new(1, 1));
                }
                (20_000 + k, vv)
            })
            .collect();
        let mut scalar_total = 0;
        for _ in 0..8 {
            let mut s = Section::new(0, Round(1), EchoKind::Echo1);
            s.entries = ids.clone().map(|k| (20_000 + k, Dyadic::new(1, 1))).collect();
            scalar_total += s.to_bytes().len();
        }
        let vector_total = vector.to_bytes().len();
        assert!(
            vector_total < scalar_total,
            "vector {vector_total}B vs 8 scalar sections {scalar_total}B"
        );
        // The 64 Dyadic values are irreducible payload either way; the
        // id-run sharing shows up in the framing overhead (headers, id
        // runs, counts), which must shrink by at least 3x.
        let value_bytes = 64 * Dyadic::new(1, 1).to_bytes().len();
        let vector_overhead = vector_total - value_bytes;
        let scalar_overhead = scalar_total - value_bytes;
        assert!(
            vector_overhead * 3 < scalar_overhead,
            "vector overhead {vector_overhead}B vs scalar overhead {scalar_overhead}B"
        );
    }

    #[test]
    fn borrowed_basket_view_matches_owned_decoder() {
        let bundle = sample_basket_bundle();
        let bytes = bundle.to_bytes();
        let view = BasketBundleRef::parse(&bytes).unwrap();
        assert_eq!(view.len(), bundle.sections.len());
        assert!(!view.is_empty());
        assert_eq!(view.to_owned_bundle(), bundle);
        assert_eq!(view.sections().size_hint(), (5, Some(5)));
        for (sref, owned) in view.sections().zip(&bundle.sections) {
            assert_eq!(sref.level, owned.level);
            assert_eq!(sref.round, owned.round);
            assert_eq!(sref.kind, owned.kind);
            assert_eq!(sref.backgrounds_mask(), owned.backgrounds.mask());
            assert_eq!(
                sref.backgrounds().collect::<Vec<_>>(),
                owned.backgrounds.dims().collect::<Vec<_>>()
            );
            assert_eq!(sref.exclude_len(), owned.exclude.len());
            assert_eq!(sref.entries_len(), owned.entries.len());
            assert_eq!(sref.exclude().collect::<Vec<_>>(), owned.exclude);
            assert_eq!(sref.entries().collect::<Vec<_>>(), owned.entries);
            let mut scratch = BasketSection::new(0, Round(1), EchoKind::Echo1);
            sref.fill_section(&mut scratch);
            assert_eq!(&scratch, owned);
            let cap = (scratch.exclude.capacity(), scratch.entries.capacity());
            sref.fill_section(&mut scratch);
            assert_eq!(&scratch, owned);
            assert_eq!((scratch.exclude.capacity(), scratch.entries.capacity()), cap);
        }
        let empty = BasketBundle::new().to_bytes();
        assert!(BasketBundleRef::parse(&empty).unwrap().is_empty());
    }

    #[test]
    fn borrowed_basket_rejects_what_owned_rejects() {
        let bytes = sample_basket_bundle().to_bytes();
        for cut in 0..bytes.len() {
            let owned = BasketBundle::from_bytes(&bytes[..cut]).unwrap_err();
            let borrowed = BasketBundleRef::parse(&bytes[..cut]).unwrap_err();
            assert_eq!(owned, borrowed, "cut at {cut}");
        }
        let mut trailing = bytes.to_vec();
        trailing.push(0x55);
        assert_eq!(
            BasketBundle::from_bytes(&trailing).unwrap_err(),
            BasketBundleRef::parse(&trailing).unwrap_err(),
        );
        assert_eq!(BasketBundleRef::parse(&trailing).unwrap_err(), WireError::TrailingBytes);
        let mut w = Writer::new();
        w.put_usize(MAX_SECTIONS + 1);
        let over = w.into_vec();
        assert_eq!(
            BasketBundle::from_bytes(&over).unwrap_err(),
            BasketBundleRef::parse(&over).unwrap_err(),
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Round-trip equivalence on arbitrary well-formed basket bundles:
        /// `parse(bytes).to_owned() == decode(bytes)`.
        #[test]
        fn prop_borrowed_basket_roundtrip_equivalence(
            sections in proptest::collection::vec(
                (
                    // (level, round, kind)
                    (proptest::prelude::any::<u8>(), 1u16..32, proptest::prelude::any::<bool>()),
                    // background dims: (dim, numerator, exponent)
                    proptest::collection::vec(
                        (0u16..64, proptest::prelude::any::<u8>(), 0u8..60), 0..4),
                    // exclude: (id, mask)
                    proptest::collection::vec(
                        (proptest::prelude::any::<i64>(), proptest::prelude::any::<u64>()), 0..4),
                    // entries: (id, dims)
                    proptest::collection::vec(
                        (proptest::prelude::any::<i64>(),
                         proptest::collection::vec(
                             (0u16..64, proptest::prelude::any::<u8>(), 0u8..60), 0..4)),
                        0..4,
                    ),
                ),
                0..5,
            )
        ) {
            let mut bundle = BasketBundle::new();
            for ((level, round, echo2), bg, exclude, entries) in sections {
                let kind = if echo2 { EchoKind::Echo2 } else { EchoKind::Echo1 };
                let mut s = BasketSection::new(level, Round(round), kind);
                for (dim, num, den) in bg {
                    s.backgrounds.set(dim, Dyadic::new(u64::from(num), den));
                }
                if !s.backgrounds.is_empty() {
                    s.exclude = exclude;
                }
                s.entries = entries
                    .into_iter()
                    .map(|(k, dims)| {
                        let mut vv = VectorValue::new();
                        for (dim, num, den) in dims {
                            vv.set(dim, Dyadic::new(u64::from(num), den));
                        }
                        (k, vv)
                    })
                    .collect();
                bundle.sections.push(s);
            }
            let bytes = bundle.to_bytes();
            let owned = BasketBundle::from_bytes(&bytes).unwrap();
            let view = BasketBundleRef::parse(&bytes).unwrap();
            proptest::prop_assert_eq!(view.to_owned_bundle(), owned);
        }

        /// Error equivalence on garbage bytes and truncated prefixes: the
        /// borrowed basket parser accepts and rejects exactly what the
        /// owned decoder does, with the same error.
        #[test]
        fn prop_borrowed_basket_error_equivalence(
            bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..96),
            cut in 0usize..96,
        ) {
            let owned = BasketBundle::from_bytes(&bytes).map(|b| b.sections.len());
            let borrowed = BasketBundleRef::parse(&bytes).map(|v| v.to_owned_bundle().sections.len());
            proptest::prop_assert_eq!(owned, borrowed);
            let cut = cut.min(bytes.len());
            let owned = BasketBundle::from_bytes(&bytes[..cut]).map(|b| b.sections.len());
            let borrowed =
                BasketBundleRef::parse(&bytes[..cut]).map(|v| v.to_owned_bundle().sections.len());
            proptest::prop_assert_eq!(owned, borrowed);
        }
    }

    #[test]
    fn bundle_wire_size_is_compact() {
        // A realistic per-round bundle: 11 levels, background + 4 entries
        // each. Should be well under 1 KiB.
        let mut b = DelphiBundle::new();
        for level in 0..11u8 {
            let mut s = Section::new(level, Round(12), EchoKind::Echo1);
            s.background = Some(Dyadic::ZERO);
            s.exclude = vec![20_000, 20_001];
            s.entries = vec![
                (19_999, Dyadic::new(123, 20)),
                (20_000, Dyadic::new(124, 20)),
                (20_001, Dyadic::ONE),
                (20_002, Dyadic::ZERO),
            ];
            b.sections.push(s);
        }
        let len = b.to_bytes().len();
        assert!(len < 1024, "bundle is {len} bytes");
    }
}
