//! Signature-free asynchronous binary agreement (Mostéfaoui–Moumen–Raynal
//! style, the paper's [43]).
//!
//! Each round: binary-value broadcast (`BVAL` with `t + 1` amplification
//! and `2t + 1` acceptance), one `AUX` vote, a common-coin flip, and the
//! MMR decision rule (decide when the unique supported value matches the
//! coin). A standard decided-gossip gadget (`DONE` messages with `t + 1`
//! adoption / `n − t` halt) gives clean termination.
//!
//! [`AbaInstance`] is embeddable (the ACS runs `n` in parallel);
//! [`AbaNode`] wraps one instance as a standalone [`Protocol`].

use delphi_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use delphi_primitives::{Envelope, NodeBitSet, NodeId, Protocol, Round};

use crate::coin::CoinKeeper;

/// Safety cap on rounds; expected round count is O(1) with a common coin.
pub const MAX_ABA_ROUNDS: u16 = 64;

/// An ABA protocol message (tagged with its instance id so `n` parallel
/// instances can share a channel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbaMsg {
    /// Instance the message belongs to (ACS: the broadcaster index).
    pub instance: u16,
    /// Round within the instance (ignored for `Done`).
    pub round: Round,
    /// Message body.
    pub kind: AbaKind,
}

/// ABA message bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbaKind {
    /// Binary-value broadcast vote.
    Bval(bool),
    /// Support vote for a bin_values member.
    Aux(bool),
    /// Common-coin share for the round.
    CoinShare,
    /// Decided-value gossip.
    Done(bool),
}

impl Encode for AbaMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.instance);
        w.put(&self.round);
        match self.kind {
            AbaKind::Bval(v) => {
                w.put_raw_u8(0);
                w.put_bool(v);
            }
            AbaKind::Aux(v) => {
                w.put_raw_u8(1);
                w.put_bool(v);
            }
            AbaKind::CoinShare => w.put_raw_u8(2),
            AbaKind::Done(v) => {
                w.put_raw_u8(3);
                w.put_bool(v);
            }
        }
    }
}

impl Decode for AbaMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let instance = r.get_u16()?;
        let round = r.get::<Round>()?;
        let kind = match r.get_raw_u8()? {
            0 => AbaKind::Bval(r.get_bool()?),
            1 => AbaKind::Aux(r.get_bool()?),
            2 => AbaKind::CoinShare,
            3 => AbaKind::Done(r.get_bool()?),
            d => return Err(WireError::InvalidDiscriminant(u64::from(d))),
        };
        Ok(AbaMsg { instance, round, kind })
    }
}

#[derive(Clone, Debug)]
struct AbaRound {
    bval_sent: [bool; 2],
    bval_recv: [NodeBitSet; 2],
    bin_values: [bool; 2],
    aux_sent: bool,
    aux_senders: NodeBitSet,
    aux_recv: [NodeBitSet; 2],
    share_sent: bool,
}

impl AbaRound {
    fn new(n: usize) -> AbaRound {
        AbaRound {
            bval_sent: [false; 2],
            bval_recv: [NodeBitSet::new(n), NodeBitSet::new(n)],
            bin_values: [false; 2],
            aux_sent: false,
            aux_senders: NodeBitSet::new(n),
            aux_recv: [NodeBitSet::new(n), NodeBitSet::new(n)],
            share_sent: false,
        }
    }
}

/// One node's state for one binary agreement instance.
#[derive(Debug)]
pub struct AbaInstance {
    me: NodeId,
    n: usize,
    t: usize,
    id: u16,
    round: u16,
    est: bool,
    started: bool,
    rounds: Vec<AbaRound>,
    decided: Option<bool>,
    done_sent: bool,
    done_recv: [NodeBitSet; 2],
    halted: bool,
}

impl AbaInstance {
    /// Creates instance `id` for node `me` of an `(n, t)` system.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1` or `me` is out of range.
    pub fn new(me: NodeId, n: usize, t: usize, id: u16) -> AbaInstance {
        assert!(n > 3 * t, "ABA requires n >= 3t + 1");
        assert!(me.index() < n, "node id out of range");
        AbaInstance {
            me,
            n,
            t,
            id,
            round: 1,
            est: false,
            started: false,
            rounds: Vec::new(),
            decided: None,
            done_sent: false,
            done_recv: [NodeBitSet::new(n), NodeBitSet::new(n)],
            halted: false,
        }
    }

    /// This instance's id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Whether [`AbaInstance::set_input`] has been called.
    pub fn started(&self) -> bool {
        self.started
    }

    /// The decision, once reached.
    pub fn decision(&self) -> Option<bool> {
        self.decided
    }

    /// Whether the instance has fully halted (decision spread widely
    /// enough that no further messages are useful).
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn round_mut(&mut self, round: Round) -> &mut AbaRound {
        let idx = round.index();
        while self.rounds.len() <= idx {
            self.rounds.push(AbaRound::new(self.n));
        }
        &mut self.rounds[idx]
    }

    /// Supplies the initial estimate; returns messages to broadcast.
    pub fn set_input(&mut self, est: bool, coins: &mut CoinKeeper) -> Vec<AbaMsg> {
        if self.started {
            return Vec::new();
        }
        self.started = true;
        self.est = est;
        let mut out = Vec::new();
        self.send_bval(Round(1), est, &mut out);
        self.progress(coins, &mut out);
        out
    }

    /// Handles one message; returns messages to broadcast.
    pub fn on_message(
        &mut self,
        from: NodeId,
        round: Round,
        kind: AbaKind,
        coins: &mut CoinKeeper,
    ) -> Vec<AbaMsg> {
        let mut out = Vec::new();
        if self.halted || from.index() >= self.n {
            return out;
        }
        match kind {
            AbaKind::Done(v) => {
                self.done_recv[usize::from(v)].insert(from);
                self.check_done(&mut out);
            }
            _ if round.0 < 1 || round.0 > MAX_ABA_ROUNDS => {}
            AbaKind::Bval(v) => {
                let t = self.t;
                let st = self.round_mut(round);
                st.bval_recv[usize::from(v)].insert(from);
                let count = st.bval_recv[usize::from(v)].len();
                if count > t && !st.bval_sent[usize::from(v)] {
                    self.send_bval(round, v, &mut out);
                }
                let st = self.round_mut(round);
                if st.bval_recv[usize::from(v)].len() > 2 * t {
                    st.bin_values[usize::from(v)] = true;
                }
            }
            AbaKind::Aux(v) => {
                let st = self.round_mut(round);
                if st.aux_senders.insert(from) {
                    st.aux_recv[usize::from(v)].insert(from);
                }
            }
            AbaKind::CoinShare => {
                coins.add_share(self.id, round.0, from);
            }
        }
        self.progress(coins, &mut out);
        out
    }

    fn send_bval(&mut self, round: Round, v: bool, out: &mut Vec<AbaMsg>) {
        let me = self.me;
        let st = self.round_mut(round);
        if st.bval_sent[usize::from(v)] {
            return;
        }
        st.bval_sent[usize::from(v)] = true;
        st.bval_recv[usize::from(v)].insert(me);
        out.push(AbaMsg { instance: self.id, round, kind: AbaKind::Bval(v) });
    }

    fn check_done(&mut self, out: &mut Vec<AbaMsg>) {
        for v in [false, true] {
            let count = self.done_recv[usize::from(v)].len();
            if count > self.t && !self.done_sent {
                self.decided.get_or_insert(v);
                self.send_done(v, out);
            }
            if count >= self.n - self.t {
                self.decided.get_or_insert(v);
                self.halted = true;
            }
        }
    }

    fn send_done(&mut self, v: bool, out: &mut Vec<AbaMsg>) {
        if self.done_sent {
            return;
        }
        self.done_sent = true;
        self.done_recv[usize::from(v)].insert(self.me);
        out.push(AbaMsg { instance: self.id, round: Round(0), kind: AbaKind::Done(v) });
        // Our own DONE may complete a threshold.
        let mut extra = Vec::new();
        self.check_done(&mut extra);
        out.extend(extra);
    }

    /// Runs the round state machine to quiescence.
    fn progress(&mut self, coins: &mut CoinKeeper, out: &mut Vec<AbaMsg>) {
        if !self.started || self.halted {
            return;
        }
        loop {
            if self.round > MAX_ABA_ROUNDS {
                return; // safety cap; callers detect the stall in tests
            }
            let round = Round(self.round);
            let me = self.me;
            let (n, t, id) = (self.n, self.t, self.id);
            let est = self.est;
            let st = self.round_mut(round);

            // Make sure our estimate's BVAL went out for this round.
            if !st.bval_sent[usize::from(est)] {
                st.bval_sent[usize::from(est)] = true;
                st.bval_recv[usize::from(est)].insert(me);
                out.push(AbaMsg { instance: id, round, kind: AbaKind::Bval(est) });
                continue;
            }
            // bin_values updates can come from our own BVALs too.
            for v in [false, true] {
                if st.bval_recv[usize::from(v)].len() > 2 * t {
                    st.bin_values[usize::from(v)] = true;
                }
            }
            // AUX once bin_values is non-empty.
            if !st.aux_sent {
                let w = if st.bin_values[1] {
                    Some(true)
                } else if st.bin_values[0] {
                    Some(false)
                } else {
                    None
                };
                if let Some(w) = w {
                    st.aux_sent = true;
                    if st.aux_senders.insert(me) {
                        st.aux_recv[usize::from(w)].insert(me);
                    }
                    out.push(AbaMsg { instance: id, round, kind: AbaKind::Aux(w) });
                    continue;
                }
                return; // waiting for bin_values
            }
            // n − t AUX votes carrying bin_values members.
            let mut supported = 0usize;
            let mut vals = [false; 2];
            for v in [false, true] {
                if st.bin_values[usize::from(v)] {
                    let c = st.aux_recv[usize::from(v)].len();
                    if c > 0 {
                        vals[usize::from(v)] = true;
                    }
                    supported += c;
                }
            }
            if supported < n - t {
                return; // waiting for AUX quorum
            }
            // Coin: broadcast our share, wait for reconstruction.
            if !st.share_sent {
                st.share_sent = true;
                coins.add_share(id, round.0, me);
                out.push(AbaMsg { instance: id, round, kind: AbaKind::CoinShare });
                continue;
            }
            let Some(coin) = coins.value(id, round.0) else {
                return; // waiting for t + 1 shares
            };
            // MMR decision rule.
            match (vals[0], vals[1]) {
                (true, false) | (false, true) => {
                    let v = vals[1];
                    if v == coin {
                        if self.decided.is_none() {
                            self.decided = Some(v);
                            self.send_done(v, out);
                        }
                        return;
                    }
                    self.est = v;
                }
                (true, true) => self.est = coin,
                (false, false) => unreachable!("supported >= n - t implies a value"),
            }
            self.round += 1;
        }
    }
}

/// A standalone ABA node.
///
/// # Example
///
/// ```
/// use delphi_baselines::AbaNode;
/// use delphi_primitives::{NodeId, Protocol};
/// use delphi_sim::{Simulation, Topology};
///
/// let n = 4;
/// let inputs = [true, true, false, true];
/// let nodes = NodeId::all(n)
///     .map(|id| AbaNode::new(id, n, 1, inputs[id.index()], b"seed").boxed())
///     .collect();
/// let report = Simulation::new(Topology::lan(n)).seed(1).run(nodes);
/// let decisions: Vec<bool> = report.honest_outputs().copied().collect();
/// // Agreement: all nodes decide the same bit.
/// assert!(decisions.windows(2).all(|w| w[0] == w[1]));
/// ```
#[derive(Debug)]
pub struct AbaNode {
    instance: AbaInstance,
    coins: CoinKeeper,
    input: bool,
}

impl AbaNode {
    /// Creates a node with initial estimate `input`; `coin_seed` is the
    /// shared seed of the simulated coin.
    pub fn new(me: NodeId, n: usize, t: usize, input: bool, coin_seed: &[u8]) -> AbaNode {
        AbaNode {
            instance: AbaInstance::new(me, n, t, 0),
            coins: CoinKeeper::new(coin_seed, n, t),
            input,
        }
    }

    /// Boxes the node for use with heterogeneous drivers.
    pub fn boxed(self) -> Box<dyn Protocol<Output = bool>> {
        Box::new(self)
    }

    fn envelopes(msgs: Vec<AbaMsg>) -> Vec<Envelope> {
        msgs.into_iter().map(|m| Envelope::to_all(m.to_bytes())).collect()
    }
}

impl Protocol for AbaNode {
    type Output = bool;

    fn node_id(&self) -> NodeId {
        self.instance.me
    }

    fn n(&self) -> usize {
        self.instance.n
    }

    fn start(&mut self) -> Vec<Envelope> {
        let input = self.input;
        Self::envelopes(self.instance.set_input(input, &mut self.coins))
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        let Ok(msg) = AbaMsg::from_bytes(payload) else {
            return Vec::new();
        };
        if msg.instance != 0 {
            return Vec::new();
        }
        Self::envelopes(self.instance.on_message(from, msg.round, msg.kind, &mut self.coins))
    }

    fn output(&self) -> Option<bool> {
        self.instance.decision()
    }

    fn is_finished(&self) -> bool {
        self.instance.halted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::wire::roundtrip;
    use delphi_sim::adversary::{Crash, GarbageSpammer};
    use delphi_sim::{Simulation, Topology};
    use proptest::prelude::*;

    #[test]
    fn msg_roundtrips() {
        for kind in
            [AbaKind::Bval(true), AbaKind::Aux(false), AbaKind::CoinShare, AbaKind::Done(true)]
        {
            let m = AbaMsg { instance: 3, round: Round(2), kind };
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
        assert!(AbaMsg::from_bytes(&[0, 1, 9]).is_err());
    }

    fn run_aba(n: usize, t: usize, inputs: &[bool], faulty: &[usize], seed: u64) -> Vec<bool> {
        let nodes: Vec<Box<dyn Protocol<Output = bool>>> = NodeId::all(n)
            .map(|id| {
                if faulty.contains(&id.index()) {
                    Box::new(Crash::new(id, n)) as Box<dyn Protocol<Output = bool>>
                } else {
                    AbaNode::new(id, n, t, inputs[id.index()], b"coin").boxed()
                }
            })
            .collect();
        let faulty_ids: Vec<NodeId> = faulty.iter().map(|&i| NodeId(i as u16)).collect();
        let report = Simulation::new(Topology::lan(n)).seed(seed).faulty(&faulty_ids).run(nodes);
        assert!(report.all_honest_finished(), "ABA stalled: {:?} seed {seed}", report.stop);
        report.honest_outputs().copied().collect()
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        for v in [false, true] {
            let outs = run_aba(4, 1, &[v; 4], &[], 1);
            for o in outs {
                assert_eq!(o, v, "validity for {v}");
            }
        }
    }

    #[test]
    fn split_inputs_agree() {
        for seed in 0..8 {
            let outs = run_aba(4, 1, &[true, false, true, false], &[], seed);
            assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement at seed {seed}");
        }
    }

    #[test]
    fn tolerates_crash() {
        let outs = run_aba(4, 1, &[true, true, true, false], &[3], 5);
        assert_eq!(outs.len(), 3);
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        // Validity: all honest inputs are 1.
        assert!(outs[0]);
    }

    #[test]
    fn tolerates_garbage() {
        let n = 4;
        let nodes: Vec<Box<dyn Protocol<Output = bool>>> = NodeId::all(n)
            .map(|id| {
                if id.index() == 2 {
                    Box::new(GarbageSpammer::new(id, n, 4, 2, 32, 40))
                        as Box<dyn Protocol<Output = bool>>
                } else {
                    AbaNode::new(id, n, 1, id.index() == 0, b"coin").boxed()
                }
            })
            .collect();
        let report = Simulation::new(Topology::lan(n)).seed(6).faulty(&[NodeId(2)]).run(nodes);
        assert!(report.all_honest_finished());
        let outs: Vec<bool> = report.honest_outputs().copied().collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn larger_system() {
        let inputs: Vec<bool> = (0..7).map(|i| i % 2 == 0).collect();
        let outs = run_aba(7, 2, &inputs, &[], 9);
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn done_gossip_adoption() {
        // A node that hears t+1 DONEs adopts the decision without
        // finishing its own rounds.
        let mut coins = CoinKeeper::new(b"c", 4, 1);
        let mut inst = AbaInstance::new(NodeId(0), 4, 1, 0);
        let _ = inst.set_input(true, &mut coins);
        let _ = inst.on_message(NodeId(1), Round(0), AbaKind::Done(false), &mut coins);
        assert_eq!(inst.decision(), None);
        let out = inst.on_message(NodeId(2), Round(0), AbaKind::Done(false), &mut coins);
        assert_eq!(inst.decision(), Some(false));
        assert!(out.iter().any(|m| matches!(m.kind, AbaKind::Done(false))), "forwards DONE");
        // n − t DONEs halt the instance.
        let _ = inst.on_message(NodeId(3), Round(0), AbaKind::Done(false), &mut coins);
        assert!(inst.halted());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_agreement_validity(
            n in 4usize..8,
            bits in proptest::collection::vec(any::<bool>(), 8),
            seed in 0u64..u64::MAX,
        ) {
            let t = (n - 1) / 3;
            let outs = run_aba(n, t, &bits[..n], &[], seed);
            prop_assert!(outs.windows(2).all(|w| w[0] == w[1]));
            // Validity: decision is some node's input.
            prop_assert!(bits[..n].contains(&outs[0]));
        }
    }
}
