//! Fixed-bin histograms with CSV and ASCII rendering.
//!
//! The figure binaries (Fig. 4's BTC range histogram, Fig. 5's IoU
//! histogram) print both machine-readable CSV and a terminal bar chart.

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width bins.
///
/// # Example
///
/// ```
/// use delphi_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for x in [1.0, 1.5, 7.0, 9.9, -3.0, 42.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(0), 2);   // 1.0, 1.5
/// assert_eq!(h.underflow(), 1); // -3.0
/// assert_eq!(h.overflow(), 1);  // 42.0
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns a message if the range is empty/non-finite or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Histogram, String> {
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(format!("invalid histogram range [{lo}, {hi})"));
        }
        if bins == 0 {
            return Err("histogram needs at least one bin".to_string());
        }
        Ok(Histogram { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0 })
    }

    /// Adds a sample (non-finite values count as overflow).
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            self.overflow += 1;
            return;
        }
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds every sample of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound (plus non-finite ones).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `[start, end)` interval of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i as f64 + 1.0))
    }

    /// CSV rows: `bin_start,bin_end,count`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bin_start,bin_end,count\n");
        for i in 0..self.bins() {
            let (a, b) = self.bin_range(i);
            out.push_str(&format!("{a},{b},{}\n", self.counts[i]));
        }
        out
    }

    /// ASCII bar chart, `width` characters for the tallest bin.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for i in 0..self.bins() {
            let (a, b) = self.bin_range(i);
            let bar_len = (self.counts[i] as usize * width) / max as usize;
            out.push_str(&format!(
                "[{a:>10.2}, {b:>10.2}) |{:<width$}| {}\n",
                "#".repeat(bar_len),
                self.counts[i],
            ));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_boundaries() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.0); // first bin, inclusive lower edge
        h.add(9.999); // last bin
        h.add(10.0); // overflow (exclusive upper edge)
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bin_ranges_partition_the_interval() {
        let h = Histogram::new(-5.0, 5.0, 4).unwrap();
        assert_eq!(h.bin_range(0), (-5.0, -2.5));
        assert_eq!(h.bin_range(3), (2.5, 5.0));
        assert_eq!(h.bins(), 4);
    }

    #[test]
    fn non_finite_counts_as_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.extend(&[f64::NAN, f64::INFINITY, 0.5]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn csv_and_ascii_render() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend(&[0.5, 1.5, 1.6]);
        let csv = h.to_csv();
        assert!(csv.contains("bin_start,bin_end,count"));
        assert!(csv.contains("0,1,1"));
        assert!(csv.contains("1,2,2"));
        let ascii = h.to_ascii(10);
        assert!(ascii.contains('#'));
        assert_eq!(h.to_string(), h.to_ascii(40));
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(Histogram::new(1.0, 1.0, 3).is_err());
        assert!(Histogram::new(0.0, f64::NAN, 3).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }
}
