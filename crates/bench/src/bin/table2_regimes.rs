#![forbid(unsafe_code)]
//! Regenerates **Table II**: Delphi's communication and round complexity
//! under the three `(Δ, δ)` input regimes.
//!
//! | condition            | paper communication          | paper rounds |
//! |----------------------|------------------------------|--------------|
//! | Δ=O(ε),   δ=O(ε)     | O(n² log(δ/ε))               | O(log(δ/ε))  |
//! | Δ=O(f(n)ε), δ=O(ε)   | O(n² (log(nΔ/ε)+log log f))  | O(log(nΔ/ε)) |
//! | Δ=O(f(n)ε), δ=O(Δ)   | O(n³ log f (log(nΔ/ε)+…))    | O(log(nΔ/ε)) |
//!
//! With `f(n) = n`: the first two regimes must measure ~n² bytes, the
//! third ~n³ (δ/ρ0 ≈ Δ/ρ0 > n active checkpoints per level).
//!
//! `cargo run --release -p delphi-bench --bin table2_regimes [--quick]`

use delphi_bench::{growth_exponent, quick_mode, run_delphi, spread_inputs, TextTable};
use delphi_core::DelphiConfig;
use delphi_sim::Topology;

struct Regime {
    name: &'static str,
    paper_comm: &'static str,
    paper_rounds: &'static str,
    delta_max: fn(usize, f64) -> f64,
    delta: fn(usize, f64) -> f64,
}

fn main() {
    let ns: &[usize] = if quick_mode() { &[8, 16] } else { &[8, 16, 32, 48] };
    let epsilon = 1.0;
    let regimes = [
        Regime {
            name: "D=O(e), d=O(e)",
            paper_comm: "O(n^2 log(d/e))",
            paper_rounds: "O(log(d/e))",
            delta_max: |_, e| 4.0 * e,
            delta: |_, e| e,
        },
        Regime {
            name: "D=O(n e), d=O(e)",
            paper_comm: "O(n^2 (log(nD/e)+loglog n))",
            paper_rounds: "O(log(nD/e))",
            delta_max: |n, e| n as f64 * e,
            delta: |_, e| e,
        },
        Regime {
            name: "D=O(n e), d=O(D)",
            paper_comm: "O(n^3 log n (log(nD/e)+..))",
            paper_rounds: "O(log(nD/e))",
            delta_max: |n, e| n as f64 * e,
            delta: |n, e| n as f64 * e * 0.9,
        },
    ];

    println!("== Table II: Delphi under (Δ, δ) input regimes ==\n");
    let mut summary = TextTable::new(&[
        "condition",
        "paper communication",
        "paper rounds",
        "measured bytes ~ n^k",
        "measured r_M sweep",
    ]);
    for regime in &regimes {
        let mut pts = Vec::new();
        let mut rounds = Vec::new();
        let mut detail = TextTable::new(&["n", "MiB", "msgs", "r_M", "levels"]);
        for &n in ns {
            let delta_max = (regime.delta_max)(n, epsilon);
            let delta = (regime.delta)(n, epsilon);
            let cfg = DelphiConfig::builder(n)
                .space(0.0, 1_000_000.0)
                .rho0(epsilon)
                .delta_max(delta_max)
                .epsilon(epsilon)
                .build()
                .expect("config");
            let p = run_delphi(&cfg, Topology::lan(n), &spread_inputs(n, 500_000.0, delta), 8101);
            detail.row(&[
                n.to_string(),
                format!("{:.3}", p.wire_mib),
                p.msgs.to_string(),
                cfg.r_max().to_string(),
                cfg.num_levels().to_string(),
            ]);
            pts.push((n as f64, p.wire_mib));
            rounds.push(cfg.r_max());
            eprintln!("  {} n={n} done", regime.name);
        }
        println!("-- regime {} --", regime.name);
        println!("{}", detail.render());
        summary.row(&[
            regime.name.into(),
            regime.paper_comm.into(),
            regime.paper_rounds.into(),
            format!("k = {:.2}", growth_exponent(&pts)),
            format!("{rounds:?}"),
        ]);
    }
    println!("{}", summary.render());
    println!("shape checks: regimes 1-2 should fit k ≈ 2, regime 3 clearly above (≈ 3).");
}
