//! Parameter estimation for the crate's distributions.
//!
//! The figure-regeneration binaries fit candidate laws to synthetic data
//! the same way the paper fit them to measured data (Fig. 4: Fréchet vs
//! Gumbel on BTC ranges; Fig. 5: Gamma vs Fréchet on IoU values).

use crate::describe::Summary;
use crate::dist::{DistError, Frechet, Gamma, Gumbel, Normal, Pareto};
use crate::special::EULER_GAMMA;

/// Fitting failure: not enough data or degenerate input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FitError(&'static str);

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fit failed: {}", self.0)
    }
}

impl std::error::Error for FitError {}

impl From<DistError> for FitError {
    fn from(_: DistError) -> FitError {
        FitError("estimated parameters out of range")
    }
}

fn finite(data: &[f64]) -> Result<Vec<f64>, FitError> {
    let xs: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    if xs.len() < 2 {
        return Err(FitError("need at least two finite samples"));
    }
    Ok(xs)
}

/// Maximum-likelihood Normal fit (sample mean and standard deviation).
///
/// # Errors
///
/// Returns [`FitError`] on fewer than two finite samples or zero variance.
pub fn normal_mle(data: &[f64]) -> Result<Normal, FitError> {
    let s = Summary::of(&finite(data)?);
    if s.std_dev <= 0.0 {
        return Err(FitError("zero variance"));
    }
    Ok(Normal::new(s.mean, s.std_dev)?)
}

/// Method-of-moments Gumbel fit: `β = s·√6/π`, `µ = mean − γ·β`.
///
/// # Errors
///
/// Returns [`FitError`] on degenerate input.
pub fn gumbel_moments(data: &[f64]) -> Result<Gumbel, FitError> {
    let s = Summary::of(&finite(data)?);
    if s.std_dev <= 0.0 {
        return Err(FitError("zero variance"));
    }
    let beta = s.std_dev * 6f64.sqrt() / std::f64::consts::PI;
    let mu = s.mean - EULER_GAMMA * beta;
    Ok(Gumbel::new(mu, beta)?)
}

/// Fréchet fit via the log transform: if `X ~ Fréchet(0, s, α)` then
/// `ln X ~ Gumbel(ln s, 1/α)`, so fit a Gumbel to the logs.
///
/// # Errors
///
/// Returns [`FitError`] if any sample is non-positive or input is
/// degenerate.
pub fn frechet_log_moments(data: &[f64]) -> Result<Frechet, FitError> {
    let xs = finite(data)?;
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(FitError("Fréchet fit requires positive samples"));
    }
    let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let g = gumbel_moments(&logs)?;
    let alpha = 1.0 / g.scale();
    let scale = g.loc().exp();
    Ok(Frechet::new(0.0, scale, alpha)?)
}

/// Gamma fit via the standard MLE approximation
/// (`s = ln mean − mean(ln x)`, `k ≈ (3 − s + √((s−3)² + 24s)) / (12s)`).
///
/// # Errors
///
/// Returns [`FitError`] if samples are non-positive or degenerate.
pub fn gamma_mle(data: &[f64]) -> Result<Gamma, FitError> {
    let xs = finite(data)?;
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(FitError("Gamma fit requires positive samples"));
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let mean_ln = xs.iter().map(|x| x.ln()).sum::<f64>() / n;
    let s = mean.ln() - mean_ln;
    if s <= 0.0 {
        return Err(FitError("degenerate log-moment"));
    }
    let shape = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
    let scale = mean / shape;
    Ok(Gamma::new(shape, scale)?)
}

/// Maximum-likelihood Pareto fit: `x_m = min`, `α = n / Σ ln(x_i/x_m)`.
///
/// # Errors
///
/// Returns [`FitError`] if samples are non-positive or all equal.
pub fn pareto_mle(data: &[f64]) -> Result<Pareto, FitError> {
    let xs = finite(data)?;
    let x_m = xs.iter().copied().fold(f64::INFINITY, f64::min);
    if x_m <= 0.0 {
        return Err(FitError("Pareto fit requires positive samples"));
    }
    let log_sum: f64 = xs.iter().map(|x| (x / x_m).ln()).sum();
    if log_sum <= 0.0 {
        return Err(FitError("all samples equal"));
    }
    let alpha = xs.len() as f64 / log_sum;
    Ok(Pareto::new(x_m, alpha)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::ContinuousDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples<D: ContinuousDist>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn normal_fit_recovers_parameters() {
        let truth = Normal::new(42.0, 3.5).unwrap();
        let fit = normal_mle(&samples(&truth, 20_000, 1)).unwrap();
        assert!((fit.mean() - 42.0).abs() < 0.1, "mean {}", fit.mean());
        assert!((fit.sigma() - 3.5).abs() < 0.1, "sigma {}", fit.sigma());
    }

    #[test]
    fn gumbel_fit_recovers_parameters() {
        let truth = Gumbel::new(10.0, 4.0).unwrap();
        let fit = gumbel_moments(&samples(&truth, 20_000, 2)).unwrap();
        assert!((fit.loc() - 10.0).abs() < 0.2, "loc {}", fit.loc());
        assert!((fit.scale() - 4.0).abs() < 0.2, "scale {}", fit.scale());
    }

    #[test]
    fn frechet_fit_recovers_paper_parameters() {
        // The Fig. 4 law: Fréchet(α = 4.41, scale = 29.3).
        let truth = Frechet::new(0.0, 29.3, 4.41).unwrap();
        let fit = frechet_log_moments(&samples(&truth, 20_000, 3)).unwrap();
        assert!((fit.alpha() - 4.41).abs() < 0.25, "alpha {}", fit.alpha());
        assert!((fit.scale() - 29.3).abs() < 1.0, "scale {}", fit.scale());
    }

    #[test]
    fn gamma_fit_recovers_parameters() {
        let truth = Gamma::new(30.77, 0.18).unwrap();
        let fit = gamma_mle(&samples(&truth, 20_000, 4)).unwrap();
        assert!((fit.shape() - 30.77).abs() < 1.5, "shape {}", fit.shape());
        assert!((fit.scale() - 0.18).abs() < 0.01, "scale {}", fit.scale());
    }

    #[test]
    fn pareto_fit_recovers_parameters() {
        let truth = Pareto::new(2.0, 3.2).unwrap();
        let fit = pareto_mle(&samples(&truth, 20_000, 5)).unwrap();
        assert!((fit.alpha() - 3.2).abs() < 0.1, "alpha {}", fit.alpha());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(normal_mle(&[1.0]).is_err());
        assert!(normal_mle(&[2.0, 2.0, 2.0]).is_err());
        assert!(gamma_mle(&[1.0, -2.0]).is_err());
        assert!(frechet_log_moments(&[0.0, 1.0]).is_err());
        assert!(pareto_mle(&[3.0, 3.0]).is_err());
        assert!(normal_mle(&[f64::NAN, 1.0]).is_err());
        assert!(!FitError("x").to_string().is_empty());
    }

    #[test]
    fn fitted_model_beats_wrong_model_in_ks() {
        // Regenerates the Fig. 4 methodology in miniature: data from a
        // Fréchet law must KS-score better under the fitted Fréchet than
        // under the fitted Gumbel.
        let truth = Frechet::new(0.0, 29.3, 4.41).unwrap();
        let data = samples(&truth, 5_000, 6);
        let frechet = frechet_log_moments(&data).unwrap();
        let gumbel = gumbel_moments(&data).unwrap();
        let d_frechet = crate::ks::ks_statistic(&data, |x| frechet.cdf(x));
        let d_gumbel = crate::ks::ks_statistic(&data, |x| gumbel.cdf(x));
        assert!(d_frechet < d_gumbel, "Fréchet {d_frechet} vs Gumbel {d_gumbel}");
    }
}
