//! Integration: Byzantine senders through the full Delphi node over
//! `delphi-net`.
//!
//! One node of a loopback TCP cluster runs a tampering/equivocating
//! variant (an honest Delphi node whose outgoing payloads are randomly
//! bit-flipped *before* framing, so its frames authenticate but carry
//! corrupted — occasionally decodable-but-lying — bundles), and an
//! off-cluster attacker without channel keys injects forged frames at
//! every honest listener. Honest nodes must still reach ε-agreement, and
//! `dropped_frames` must account for exactly the forged traffic.

//! A second scenario covers the epoch stream: a node that crashes for
//! several epochs and rejoins mid-stream (while an off-cluster attacker
//! keeps injecting forged frames) must not stall honest epoch progress.

use std::net::SocketAddr;
use std::time::Duration;

use delphi::core::{DelphiConfig, DelphiNode, OracleService};
use delphi::crypto::Keychain;
use delphi::net::{encode_frame, run_epoch_service, run_node, RunOptions};
use delphi::primitives::{EpochOutcome, NodeId};
use delphi::sim::adversary::ByteMutator;
use delphi::workloads::{EpochFeed, MultiAssetConfig};
use delphi::ServiceBuilder;
use tokio::io::AsyncWriteExt;
use tokio::net::{TcpListener, TcpStream};

const SEED: &[u8] = b"byzantine-net-test";
const FORGED_PER_NODE: u64 = 7;

async fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let mut addrs = Vec::with_capacity(n);
    let mut holders = Vec::new();
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        addrs.push(l.local_addr().expect("addr"));
        holders.push(l);
    }
    addrs
}

/// Dials `victim` (retrying, bounded so the test fails rather than hangs
/// if the victim's listener is already gone) and writes `count`
/// well-framed but wrongly-keyed frames claiming to be node 2.
async fn forge_frames(victim: SocketAddr, count: u64) {
    // The attacker has no deployment keys: a keychain from a different
    // seed produces tags that never verify on the real channels.
    let fake = Keychain::derive(b"attacker-without-keys", NodeId(2), 4);
    let frame = encode_frame(&fake, NodeId(0), b"forged protocol payload");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match TcpStream::connect(victim).await {
            Ok(s) => break s,
            Err(_) => {
                assert!(std::time::Instant::now() < deadline, "victim {victim} unreachable");
                tokio::time::sleep(Duration::from_millis(10)).await;
            }
        }
    };
    for _ in 0..count {
        stream.write_all(&frame).await.expect("forged write");
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn honest_nodes_agree_despite_tamperer_and_forged_frames() {
    let n = 4;
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 1000.0)
        .rho0(1.0)
        .delta_max(32.0)
        .epsilon(1.0)
        .build()
        .expect("config");
    let inputs = [500.4, 500.9, 499.8, 500.2];
    let addrs = free_addrs(n).await;

    // Honest nodes 0..=2. The generous linger keeps their readers (and
    // drop counters) alive well past the forgers' writes, so the exact
    // dropped-frame count below is not schedule-sensitive.
    let mut honest = Vec::new();
    for id in NodeId::all(3) {
        let keychain = Keychain::derive(SEED, id, n);
        let node = DelphiNode::new(cfg.clone(), id, inputs[id.index()]);
        let addrs = addrs.clone();
        let opts = RunOptions {
            deadline: Duration::from_secs(30),
            linger: Duration::from_secs(2),
            ..RunOptions::default()
        };
        honest.push(tokio::spawn(async move { run_node(node, keychain, addrs, opts).await }));
    }

    // Node 3 tampers: every outgoing bundle has a bit flipped with
    // probability 1/2 before it is framed, so its traffic authenticates
    // but is semantically corrupt or equivocating. It never outputs; the
    // runner keeps it serving until its own (shorter) deadline.
    {
        let id = NodeId(3);
        let keychain = Keychain::derive(SEED, id, n);
        let node = ByteMutator::new(DelphiNode::new(cfg.clone(), id, inputs[id.index()]), 99, 0.5);
        let addrs = addrs.clone();
        let opts = RunOptions { deadline: Duration::from_secs(20), ..RunOptions::default() };
        tokio::spawn(async move {
            let _ = run_node(node, keychain, addrs, opts).await; // times out by design
        });
    }

    // The off-cluster attacker floods every honest listener with forged
    // frames while the protocol runs.
    let mut forgers = Vec::new();
    for &victim in &addrs[..3] {
        forgers.push(tokio::spawn(forge_frames(victim, FORGED_PER_NODE)));
    }
    for f in forgers {
        f.await.expect("forger finished");
    }

    let mut outputs = Vec::new();
    for h in honest {
        let (out, stats) = h.await.expect("join").expect("honest node finished");
        assert_eq!(
            stats.dropped_frames, FORGED_PER_NODE,
            "dropped_frames must count exactly the forged traffic"
        );
        outputs.push(out);
    }

    let lo = outputs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = outputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi - lo <= cfg.epsilon() + 1e-9, "honest ε-agreement under attack: spread {}", hi - lo);
    assert!(lo >= 498.0 && hi <= 502.0, "validity under attack: [{lo}, {hi}]");
}

fn oracle_service(cfg: &DelphiConfig, feed: &EpochFeed, id: NodeId, epochs: u32) -> OracleService {
    ServiceBuilder::new(cfg.clone(), id)
        .epochs(epochs)
        .assets(feed.assets() as u16)
        .pipeline_depth(2)
        .window(4)
        .build_service(delphi_bench::feed_price_source(feed.clone(), id, cfg.n()))
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn crashed_node_rejoining_mid_stream_does_not_stall_honest_epochs() {
    let n = 4;
    let epochs = 12u32;
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(2.0)
        .delta_max(2_000.0)
        .epsilon(2.0)
        .build()
        .expect("config");
    let feed = EpochFeed::new(MultiAssetConfig::synthetic(2), 5);
    let addrs = free_addrs(n).await;

    // Honest nodes 0..=2 run the whole stream; node 3 is "crashed" — its
    // process appears only after the honest cluster has burned through
    // several epochs.
    let mut honest = Vec::new();
    for id in NodeId::all(3) {
        let keychain = Keychain::derive(SEED, id, n);
        let mux = oracle_service(&cfg, &feed, id, epochs).into_mux();
        let addrs = addrs.clone();
        let opts = RunOptions {
            deadline: Duration::from_secs(60),
            linger: Duration::from_secs(1),
            ..RunOptions::default()
        };
        honest.push(tokio::spawn(async move {
            run_epoch_service(mux, keychain, addrs, opts).await?.finish().await
        }));
    }

    // The attacker floods honest listeners with forged frames mid-stream.
    let mut forgers = Vec::new();
    for &victim in &addrs[..3] {
        forgers.push(tokio::spawn(forge_frames(victim, FORGED_PER_NODE)));
    }

    // Node 3 rejoins after a delay that spans several loopback epochs.
    let rejoiner = {
        let keychain = Keychain::derive(SEED, NodeId(3), n);
        let mux = oracle_service(&cfg, &feed, NodeId(3), epochs).into_mux();
        let addrs = addrs.clone();
        tokio::spawn(async move {
            tokio::time::sleep(Duration::from_millis(1500)).await;
            let opts = RunOptions {
                deadline: Duration::from_secs(20),
                linger: Duration::ZERO,
                ..RunOptions::default()
            };
            run_epoch_service(mux, keychain, addrs, opts).await?.finish().await
        })
    };
    for f in forgers {
        f.await.expect("forger finished");
    }

    let mut streams = Vec::new();
    for h in honest {
        let (events, epoch_stats, stats) =
            h.await.expect("join").expect("honest node finished the stream");
        assert_eq!(events.len(), epochs as usize, "honest epoch progress must not stall");
        assert!(
            events.iter().all(|e| matches!(e.outcome, EpochOutcome::Agreed(_))),
            "honest nodes skip nothing: n = 4 tolerates one crashed node"
        );
        assert_eq!(epoch_stats.stale_epochs, 0);
        assert_eq!(
            stats.dropped_frames, FORGED_PER_NODE,
            "dropped_frames counts exactly the forged traffic"
        );
        streams.push(events);
    }
    // Per-(epoch, asset) ε-agreement across the honest nodes.
    for e in 0..epochs as usize {
        for a in 0..feed.assets() {
            let values: Vec<f64> = streams
                .iter()
                .map(|events| match &events[e].outcome {
                    EpochOutcome::Agreed(v) => v[a],
                    EpochOutcome::Skipped => unreachable!(),
                })
                .collect();
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(hi - lo <= cfg.epsilon() + 1e-9, "epoch {e} asset {a}: spread {}", hi - lo);
        }
    }
    // The rejoiner is best-effort: depending on how far the honest nodes
    // ran ahead it catches up within the live window, skips what the
    // quorum evicted (the sim test pins that path deterministically), or
    // times out once the honest nodes are gone — but it must never
    // corrupt the honest run above, and whatever it *did* agree on must
    // match the honest agreements.
    match rejoiner.await.expect("join") {
        Ok((events, _, _)) => {
            assert_eq!(events.len(), epochs as usize, "every epoch resolved, agreed or skipped");
            for (e, event) in events.iter().enumerate() {
                if let EpochOutcome::Agreed(values) = &event.outcome {
                    let EpochOutcome::Agreed(honest_values) = &streams[0][e].outcome else {
                        unreachable!()
                    };
                    for (a, v) in values.iter().enumerate() {
                        assert!(
                            (v - honest_values[a]).abs() <= cfg.epsilon() + 1e-9,
                            "rejoiner diverged at epoch {e} asset {a}: {v} vs {}",
                            honest_values[a]
                        );
                    }
                }
            }
        }
        Err(e) => {
            assert!(
                matches!(e, delphi::net::NetError::Timeout),
                "rejoiner may time out, not misbehave: {e}"
            );
        }
    }
}
