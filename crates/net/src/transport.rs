//! Socket-level transport: accept loop, dialing with backoff, and the
//! per-connection frame read/write loops.
//!
//! This is the lowest layer of the net stack. It moves authenticated
//! frames between sockets and channels and knows nothing about protocol
//! instances or batching policy:
//!
//! - [`spawn_acceptor`] owns the listener and fans every inbound
//!   connection out to its own [`read_loop`] task;
//! - [`read_loop`] length-delimits, bounds-checks, and authenticates
//!   inbound frames, surfacing the decoded `(sender, entries)` pairs;
//! - [`spawn_writer`] / [`write_loop`] own one outbound connection each,
//!   dialing lazily (only once a frame is queued) and reconnecting with
//!   exponential backoff, so a peer that never appears cannot stall
//!   shutdown while its queue is empty;
//! - [`Counters`] / [`NetStats`] are the wire-level observability shared
//!   by every layer above.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use delphi_crypto::Keychain;
use delphi_primitives::NodeId;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

use crate::frame::{decode_inbound_frame_ref, FrameError, MAX_FRAME_BODY, MIN_FRAME_BODY};

/// Cap on the dial-retry backoff, as a multiple of the initial delay.
///
/// Reconnection starts at [`crate::RunOptions::reconnect_delay`] and
/// doubles on every consecutive failure up to this factor, then resets on
/// a successful connection.
pub(crate) const MAX_BACKOFF_FACTOR: u32 = 16;

/// Maximum receive dispatch shards a runner may use
/// ([`crate::RunOptions::recv_shards`] is clamped to this), sized so
/// [`NetStats`] can carry fixed per-shard counters. Send lanes
/// ([`crate::RunOptions::send_shards`]) share the same bound: an egress
/// lane serves one or more receive-shard classes, never the reverse.
pub const MAX_RECV_SHARDS: usize = 8;

/// Byte counters observed by the runner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames sent (envelopes may share a frame when batching is on).
    pub sent_frames: u64,
    /// Total bytes written to sockets (frames incl. headers).
    pub sent_bytes: u64,
    /// Envelopes queued for sending, after broadcast expansion.
    pub sent_entries: u64,
    /// Frames received and authenticated.
    pub recv_frames: u64,
    /// Protocol payloads received inside authenticated frames.
    pub recv_entries: u64,
    /// Frames dropped by authentication or framing checks.
    pub dropped_frames: u64,
    /// Outbound frames dropped because a peer's bounded writer queue was
    /// full (see [`crate::RunOptions::egress_capacity`]). A peer slower
    /// than the queue is treated like a crashed peer — within the
    /// `t < n/3` fault budget — instead of inflating memory.
    pub dropped_egress: u64,
    /// Authenticated entries addressed to an epoch the node has already
    /// garbage-collected — expected stream traffic from slower peers,
    /// dropped and counted here rather than treated as protocol errors.
    pub late_entries: u64,
    /// HMAC tag computations (one per frame encoded, one per tag
    /// verified). Batching lowers this together with `sent_frames`.
    pub mac_ops: u64,
    /// Session-layer flush buffers reused from the free-list instead of
    /// freshly allocated (see `PendingBatchesBy::recycle`).
    pub buffer_reuses: u64,
    /// Vector (basket) agreement instances completed by this node — one
    /// per epoch in vector mode, each covering `vector_dims` assets.
    /// Zero in per-asset mode.
    pub vector_instances: u64,
    /// Basket dimension count when the run is in vector mode (0 in
    /// per-asset mode); `vector_instances × vector_dims` recovers the
    /// per-asset agreement count.
    pub vector_dims: u64,
    /// Authenticated entries dispatched to each receive shard (index =
    /// shard; unsharded runs count everything on shard 0).
    pub shard_entries: [u64; MAX_RECV_SHARDS],
    /// Entries flushed (encoded into frames) by each egress send lane
    /// (index = lane; runs with one send shard count everything on
    /// lane 0). Summed over lanes this equals `sent_entries` once the
    /// lanes have drained.
    pub egress_shard_entries: [u64; MAX_RECV_SHARDS],
    /// HMAC tag computations performed by each egress send lane — the
    /// per-lane attribution of the encode share of `mac_ops`.
    pub egress_shard_macs: [u64; MAX_RECV_SHARDS],
    /// Outbound frames dropped by each egress send lane because the
    /// destination's bounded writer queue was full — the per-lane
    /// attribution of `dropped_egress`. A saturated lane concentrates
    /// drops on one index across peers; a slow peer spreads them across
    /// lanes (the per-peer split lives in the session-layer drop log).
    pub dropped_egress_shard: [u64; MAX_RECV_SHARDS],
}

/// Shared mutable counters behind [`NetStats`].
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) sent_frames: AtomicU64,
    pub(crate) sent_bytes: AtomicU64,
    pub(crate) sent_entries: AtomicU64,
    pub(crate) recv_frames: AtomicU64,
    pub(crate) recv_entries: AtomicU64,
    pub(crate) dropped_frames: AtomicU64,
    pub(crate) dropped_egress: AtomicU64,
    pub(crate) late_entries: AtomicU64,
    pub(crate) mac_ops: AtomicU64,
    pub(crate) buffer_reuses: AtomicU64,
    pub(crate) vector_instances: AtomicU64,
    pub(crate) vector_dims: AtomicU64,
    pub(crate) shard_entries: [AtomicU64; MAX_RECV_SHARDS],
    pub(crate) egress_shard_entries: [AtomicU64; MAX_RECV_SHARDS],
    pub(crate) egress_shard_macs: [AtomicU64; MAX_RECV_SHARDS],
    pub(crate) dropped_egress_shard: [AtomicU64; MAX_RECV_SHARDS],
}

/// Loads a fixed-size atomic counter array into its snapshot form.
fn load_array(counters: &[AtomicU64; MAX_RECV_SHARDS]) -> [u64; MAX_RECV_SHARDS] {
    let mut out = [0u64; MAX_RECV_SHARDS];
    for (slot, counter) in out.iter_mut().zip(counters) {
        *slot = counter.load(Ordering::Relaxed);
    }
    out
}

impl Counters {
    pub(crate) fn snapshot(&self) -> NetStats {
        let shard_entries = load_array(&self.shard_entries);
        NetStats {
            sent_frames: self.sent_frames.load(Ordering::Relaxed),
            sent_bytes: self.sent_bytes.load(Ordering::Relaxed),
            sent_entries: self.sent_entries.load(Ordering::Relaxed),
            recv_frames: self.recv_frames.load(Ordering::Relaxed),
            recv_entries: self.recv_entries.load(Ordering::Relaxed),
            dropped_frames: self.dropped_frames.load(Ordering::Relaxed),
            dropped_egress: self.dropped_egress.load(Ordering::Relaxed),
            late_entries: self.late_entries.load(Ordering::Relaxed),
            mac_ops: self.mac_ops.load(Ordering::Relaxed),
            buffer_reuses: self.buffer_reuses.load(Ordering::Relaxed),
            vector_instances: self.vector_instances.load(Ordering::Relaxed),
            vector_dims: self.vector_dims.load(Ordering::Relaxed),
            shard_entries,
            egress_shard_entries: load_array(&self.egress_shard_entries),
            egress_shard_macs: load_array(&self.egress_shard_macs),
            dropped_egress_shard: load_array(&self.dropped_egress_shard),
        }
    }
}

/// One authenticated inbound frame, shipped as the shared body buffer:
/// the read loop verified the tag and validated the batch structure, so
/// receivers re-split it with [`crate::frame::split_verified_body`] —
/// cheap structural walk, no MAC, no per-entry copies. Cloning is a
/// refcount bump, which is how one frame fans out to several dispatch
/// shards without duplicating bytes.
#[derive(Clone, Debug)]
pub(crate) struct VerifiedFrame {
    /// The authenticated sender.
    pub(crate) from: NodeId,
    /// The complete frame body (shared allocation).
    pub(crate) body: Bytes,
}

/// Per-shard ingress: `txs[s]` feeds the dispatch worker owning shard
/// `s`'s instances. Unsharded runs use a single-element vector.
pub(crate) type ShardSenders = Arc<Vec<mpsc::Sender<VerifiedFrame>>>;

/// Spawns the accept loop on `listener`: every inbound connection gets
/// its own [`read_loop`] task verifying frames and routing them to the
/// dispatch shards in `txs` by entry ownership.
pub(crate) fn spawn_acceptor(
    listener: TcpListener,
    keychain: Arc<Keychain>,
    txs: ShardSenders,
    counters: Arc<Counters>,
) -> tokio::task::JoinHandle<()> {
    tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else { break };
            let kc = keychain.clone();
            let txs = txs.clone();
            let counters = counters.clone();
            tokio::spawn(async move {
                let _ = read_loop(stream, kc, txs, counters).await;
            });
        }
    })
}

/// Spawns a [`write_loop`] task owning the outbound connection to `addr`.
pub(crate) fn spawn_writer(
    addr: SocketAddr,
    rx: mpsc::Receiver<Bytes>,
    reconnect_delay: Duration,
    counters: Arc<Counters>,
) -> tokio::task::JoinHandle<()> {
    tokio::spawn(async move {
        let _ = write_loop(addr, rx, reconnect_delay, counters).await;
    })
}

pub(crate) async fn read_loop(
    mut stream: TcpStream,
    keychain: Arc<Keychain>,
    txs: ShardSenders,
    counters: Arc<Counters>,
) -> std::io::Result<()> {
    let shards = txs.len();
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).await.is_err() {
            return Ok(()); // peer closed
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        // Same bounds the decoder enforces: never allocate for a body that
        // could not decode.
        if !(MIN_FRAME_BODY..=MAX_FRAME_BODY).contains(&len) {
            counters.dropped_frames.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // framing is broken beyond recovery: drop link
        }
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).await.is_err() {
            return Ok(());
        }
        // The body buffer becomes the shared allocation everything
        // downstream borrows from or refcounts: verify + validate here,
        // then dispatch the whole frame — entries are never copied out.
        let body = Bytes::from(body);
        match decode_inbound_frame_ref(&keychain, &body) {
            Ok((from, entries)) => {
                counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                counters.recv_frames.fetch_add(1, Ordering::Relaxed);
                counters.recv_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
                // Route the frame to every shard owning at least one of
                // its entries (sharded senders batch per shard class, so
                // the common case is exactly one target).
                let mut shard_counts = [0u64; MAX_RECV_SHARDS];
                if shards == 1 {
                    shard_counts[0] = entries.len() as u64;
                } else {
                    for (id, _) in entries.iter() {
                        shard_counts[id.shard(shards)] += 1;
                    }
                }
                let frame = VerifiedFrame { from, body: body.clone() };
                for (shard, &count) in shard_counts.iter().enumerate().take(shards) {
                    if count == 0 {
                        continue;
                    }
                    counters.shard_entries[shard].fetch_add(count, Ordering::Relaxed);
                    if txs[shard].send(frame.clone()).await.is_err() {
                        return Ok(()); // dispatch worker gone
                    }
                }
            }
            Err(err) => {
                if matches!(err, FrameError::BadTag | FrameError::Malformed) {
                    // The tag was computed before the frame was rejected.
                    counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                }
                counters.dropped_frames.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

pub(crate) async fn write_loop(
    addr: SocketAddr,
    mut rx: mpsc::Receiver<Bytes>,
    reconnect_delay: Duration,
    counters: Arc<Counters>,
) -> std::io::Result<()> {
    let mut pending: Option<Bytes> = None;
    let mut backoff = reconnect_delay;
    'reconnect: loop {
        // Dial only when there is something to send: a peer that never
        // comes up then cannot stall shutdown while its queue is empty
        // (channel-close is observed here, parked on recv, immediately).
        if pending.is_none() {
            pending = match rx.recv().await {
                Some(f) => Some(f),
                None => return Ok(()), // runner finished, nothing queued
            };
        }
        let mut stream = loop {
            match TcpStream::connect(addr).await {
                Ok(s) => {
                    backoff = reconnect_delay;
                    break s;
                }
                Err(_) => {
                    tokio::time::sleep(backoff).await;
                    backoff = (backoff * 2).min(reconnect_delay * MAX_BACKOFF_FACTOR);
                }
            }
        };
        let _ = stream.set_nodelay(true);
        loop {
            let frame = match pending.take() {
                Some(f) => f,
                None => match rx.recv().await {
                    Some(f) => f,
                    None => return Ok(()), // runner finished, queue drained
                },
            };
            if stream.write_all(&frame).await.is_err() {
                pending = Some(frame); // retry on a fresh connection
                continue 'reconnect;
            }
            counters.sent_frames.fetch_add(1, Ordering::Relaxed);
            counters.sent_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_any_frame, encode_frame};

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn reader_enforces_decoder_length_bounds() {
        // The reader must accept exactly the body sizes the decoder can
        // decode: an undersized length word kills the link before any
        // later (even valid) frame is surfaced, and an oversized one is
        // rejected without allocating the impossible body.
        let alice = Keychain::derive(b"bounds", NodeId(0), 2);
        let bob = Arc::new(Keychain::derive(b"bounds", NodeId(1), 2));

        for bad_len in [(MIN_FRAME_BODY - 1) as u32, (MAX_FRAME_BODY + 1) as u32] {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let counters = Arc::new(Counters::default());
            let (tx, mut rx) = mpsc::channel(16);
            let mut client = TcpStream::connect(addr).await.unwrap();
            let (server, _) = listener.accept().await.unwrap();
            let reader =
                tokio::spawn(read_loop(server, bob.clone(), Arc::new(vec![tx]), counters.clone()));

            client.write_all(&bad_len.to_be_bytes()).await.unwrap();
            // A perfectly valid frame behind the corrupt length word: the
            // link is already dead, so it must never be delivered.
            let frame = encode_frame(&alice, NodeId(1), b"late");
            client.write_all(&frame).await.unwrap();

            reader.await.unwrap().unwrap();
            assert_eq!(counters.dropped_frames.load(Ordering::Relaxed), 1, "len={bad_len}");
            assert_eq!(counters.recv_frames.load(Ordering::Relaxed), 0, "len={bad_len}");
            let leftover = tokio::select! {
                m = rx.recv() => m,
                _ = tokio::time::sleep(Duration::from_millis(50)) => None,
            };
            assert!(leftover.is_none(), "no frame may survive a broken link (len={bad_len})");
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn writer_reconnects_with_backoff_and_delivers() {
        // The peer comes up only after several dial failures; the writer
        // must keep retrying (with growing backoff) and deliver the queued
        // frame on the connection that finally succeeds.
        let alice = Keychain::derive(b"backoff", NodeId(0), 2);
        let holder = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = holder.local_addr().unwrap();
        drop(holder);

        let counters = Arc::new(Counters::default());
        let (tx, rx) = mpsc::channel(16);
        let writer = spawn_writer(addr, rx, Duration::from_millis(5), counters.clone());
        tx.try_send(encode_frame(&alice, NodeId(1), b"patience")).unwrap();

        // Let several backoff rounds elapse before the listener appears.
        tokio::time::sleep(Duration::from_millis(120)).await;
        let listener = TcpListener::bind(addr).await.unwrap();
        let (mut server, _) = listener.accept().await.unwrap();
        let mut len_buf = [0u8; 4];
        server.read_exact(&mut len_buf).await.unwrap();
        let mut body = vec![0u8; u32::from_be_bytes(len_buf) as usize];
        server.read_exact(&mut body).await.unwrap();
        let bob = Keychain::derive(b"backoff", NodeId(1), 2);
        let (from, entries) = decode_any_frame(&bob, &body).expect("authentic frame");
        assert_eq!(from, NodeId(0));
        assert_eq!(&entries[0].1[..], b"patience");
        assert_eq!(counters.sent_frames.load(Ordering::Relaxed), 1);

        drop(tx);
        writer.await.unwrap();
    }
}
