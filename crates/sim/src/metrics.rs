//! Byte- and message-accurate run metrics.

use std::fmt;

/// Traffic counters for one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Messages sent (after broadcast expansion: one per destination).
    pub sent_msgs: u64,
    /// Payload bytes sent.
    pub sent_payload_bytes: u64,
    /// Payload + framing bytes sent (what the NIC carries).
    pub sent_wire_bytes: u64,
    /// Messages received and processed.
    pub recv_msgs: u64,
    /// Payload bytes received.
    pub recv_payload_bytes: u64,
}

/// Aggregated metrics for a whole run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Per-node counters, indexed by node id.
    pub per_node: Vec<NodeMetrics>,
}

impl Metrics {
    pub(crate) fn new(n: usize) -> Metrics {
        Metrics { per_node: vec![NodeMetrics::default(); n] }
    }

    /// Total messages sent across all nodes.
    pub fn total_msgs(&self) -> u64 {
        self.per_node.iter().map(|m| m.sent_msgs).sum()
    }

    /// Total payload bytes sent across all nodes.
    pub fn total_payload_bytes(&self) -> u64 {
        self.per_node.iter().map(|m| m.sent_payload_bytes).sum()
    }

    /// Total wire bytes (payload + framing) sent across all nodes.
    pub fn total_wire_bytes(&self) -> u64 {
        self.per_node.iter().map(|m| m.sent_wire_bytes).sum()
    }

    /// Total wire traffic in mebibytes, the unit of Fig. 6b.
    pub fn total_wire_mib(&self) -> f64 {
        self.total_wire_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// The largest per-node wire-byte count (load imbalance indicator).
    pub fn max_node_wire_bytes(&self) -> u64 {
        self.per_node.iter().map(|m| m.sent_wire_bytes).max().unwrap_or(0)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msgs={} payload={}B wire={}B ({:.2} MiB)",
            self.total_msgs(),
            self.total_payload_bytes(),
            self.total_wire_bytes(),
            self.total_wire_mib()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_per_node() {
        let mut m = Metrics::new(2);
        m.per_node[0].sent_msgs = 3;
        m.per_node[0].sent_wire_bytes = 100;
        m.per_node[1].sent_msgs = 4;
        m.per_node[1].sent_wire_bytes = 200;
        m.per_node[1].sent_payload_bytes = 150;
        assert_eq!(m.total_msgs(), 7);
        assert_eq!(m.total_wire_bytes(), 300);
        assert_eq!(m.total_payload_bytes(), 150);
        assert_eq!(m.max_node_wire_bytes(), 200);
        assert!((m.total_wire_mib() - 300.0 / 1048576.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let m = Metrics::new(1);
        let s = m.to_string();
        assert!(s.contains("msgs=0"));
        assert!(s.contains("MiB"));
    }
}
