//! One round of weak Binary-Value broadcast (Definition II.2).
//!
//! Every BinAA round is an instance of this quorum machine (Algorithm 1,
//! lines 4–25):
//!
//! - each node `ECHO1`s its value;
//! - a value echoed by `t + 1` nodes is *amplified* (Bracha amplification,
//!   line 10–11): the node `ECHO1`s it too, so Byzantine-only values (at
//!   most `t` echoes) can never gain support;
//! - the first value with `n − t` `ECHO1`s triggers the node's single
//!   `ECHO2` (lines 12–14);
//! - the round *terminates* when either **(1)** two values each have
//!   `n − t` `ECHO1`s (output set `{b1, b2}`), or **(2)** one value has
//!   `n − t` `ECHO2`s (output set `{b}`).
//!
//! [`BvRound`] is a pure state machine: callers feed echoes in and carry
//! the returned [`BvAction`]s to the network. Sent echoes are applied to
//! the local state immediately (the paper's line 6 self-insertion), and
//! amplification keeps running even after the round has terminated so slow
//! peers still receive help.

use delphi_primitives::{Dyadic, NodeBitSet, NodeId};

/// Per-sender cap on distinct `ECHO1` values tracked.
///
/// Honest nodes send at most two distinct `ECHO1` values per round (their
/// own plus one amplification — honest round values form an adjacent pair).
/// Tracking only the first two per sender bounds memory against Byzantine
/// value-flooding without affecting any honest quorum.
pub const MAX_ECHO1_VALUES_PER_SENDER: usize = 2;

/// An echo the caller must broadcast on behalf of this round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BvAction {
    /// Broadcast `ECHO1(value)` for this round.
    Echo1(Dyadic),
    /// Broadcast `ECHO2(value)` for this round.
    Echo2(Dyadic),
}

/// Terminated-round outcome: the weak BV-broadcast output set `B_i`
/// (one or two values) plus the BinAA state update derived from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BvOutcome {
    low: Dyadic,
    high: Dyadic,
}

impl BvOutcome {
    fn single(b: Dyadic) -> BvOutcome {
        BvOutcome { low: b, high: b }
    }

    fn pair(a: Dyadic, b: Dyadic) -> BvOutcome {
        BvOutcome { low: a.min(b), high: a.max(b) }
    }

    /// The output set `B_i`, sorted ascending (one or two values).
    pub fn set(&self) -> Vec<Dyadic> {
        if self.low == self.high {
            vec![self.low]
        } else {
            vec![self.low, self.high]
        }
    }

    /// The next-round BinAA value: the single value for a singleton set,
    /// the exact midpoint for a pair (Algorithm 1 lines 20 and 24).
    pub fn next_value(&self) -> Dyadic {
        if self.low == self.high {
            self.low
        } else {
            self.low.midpoint(self.high)
        }
    }
}

/// State of one node's participation in one weak BV-broadcast round.
#[derive(Clone, Debug)]
pub struct BvRound {
    me: NodeId,
    n: usize,
    t: usize,
    /// `ECHO1` senders per value; bounded by per-sender caps.
    e1: Vec<(Dyadic, NodeBitSet)>,
    /// `ECHO2` senders per value.
    e2: Vec<(Dyadic, NodeBitSet)>,
    /// Distinct `ECHO1` values counted per sender.
    e1_count: Vec<u8>,
    /// Cached sender count per `e1` value (parallel to `e1`), maintained
    /// on insert so threshold checks never re-popcount the bitsets.
    e1_sizes: Vec<u32>,
    /// Values we have already `ECHO1`d.
    sent_e1: Vec<Dyadic>,
    /// Whether we have sent our (single) `ECHO2`.
    sent_e2: bool,
    /// Cached threshold frontier: `e1` indices that crossed `t + 1`
    /// (amplification candidates), in crossing order. Drained by
    /// [`BvRound::progress`] via `amp_cursor`; a crossed index is never
    /// re-scanned.
    amp_pending: Vec<usize>,
    /// How much of `amp_pending` has been drained.
    amp_cursor: usize,
    /// `e1` indices that crossed the `n − t` quorum, in crossing order
    /// (at most two values can ever get there, see
    /// [`MAX_ECHO1_VALUES_PER_SENDER`]).
    q1: Vec<usize>,
    /// The `e2` index that crossed the `n − t` quorum, if any (unique:
    /// one `ECHO2` per sender and `n − t` is a majority).
    e2_quorum: Option<usize>,
    outcome: Option<BvOutcome>,
}

impl BvRound {
    /// Creates the round state for node `me` of an `n`-node, `t`-fault
    /// system.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1` (the protocol's resilience bound) or `me` is
    /// out of range.
    pub fn new(me: NodeId, n: usize, t: usize) -> BvRound {
        assert!(n > 3 * t, "weak BV broadcast requires n >= 3t + 1");
        assert!(me.index() < n, "node id out of range");
        BvRound {
            me,
            n,
            t,
            e1: Vec::new(),
            e2: Vec::new(),
            e1_count: vec![0; n],
            e1_sizes: Vec::new(),
            sent_e1: Vec::new(),
            sent_e2: false,
            amp_pending: Vec::new(),
            amp_cursor: 0,
            q1: Vec::new(),
            e2_quorum: None,
            outcome: None,
        }
    }

    /// Feeds this node's own input for the round (Algorithm 1 lines 4–7).
    /// Returns the echoes to broadcast.
    pub fn set_input(&mut self, value: Dyadic) -> Vec<BvAction> {
        let mut actions = Vec::new();
        self.send_echo1(value, &mut actions);
        self.progress(&mut actions);
        actions
    }

    /// Handles `ECHO1(value)` from `from`. Returns echoes to broadcast.
    pub fn on_echo1(&mut self, from: NodeId, value: Dyadic) -> Vec<BvAction> {
        let mut actions = Vec::new();
        self.insert_e1(from, value);
        self.progress(&mut actions);
        actions
    }

    /// Handles `ECHO2(value)` from `from`. Returns echoes to broadcast.
    pub fn on_echo2(&mut self, from: NodeId, value: Dyadic) -> Vec<BvAction> {
        let mut actions = Vec::new();
        self.insert_e2(from, value);
        self.progress(&mut actions);
        actions
    }

    /// The round's outcome, once one of the two termination conditions
    /// holds.
    pub fn outcome(&self) -> Option<&BvOutcome> {
        self.outcome.as_ref()
    }

    /// Whether the round has terminated at this node.
    pub fn is_terminated(&self) -> bool {
        self.outcome.is_some()
    }

    fn insert_e1(&mut self, from: NodeId, value: Dyadic) {
        if from.index() >= self.n {
            return;
        }
        if let Some(idx) = self.e1.iter().position(|(v, _)| *v == value) {
            if self.e1[idx].1.insert(from) {
                self.e1_sizes[idx] += 1;
                self.note_e1_crossing(idx);
            }
            return;
        }
        // New value for this sender: enforce the per-sender cap.
        if usize::from(self.e1_count[from.index()]) >= MAX_ECHO1_VALUES_PER_SENDER {
            return;
        }
        self.e1_count[from.index()] += 1;
        let mut set = NodeBitSet::new(self.n);
        set.insert(from);
        self.e1.push((value, set));
        self.e1_sizes.push(1);
        self.note_e1_crossing(self.e1.len() - 1);
    }

    /// Records threshold crossings for `e1` value-index `idx` after a new
    /// sender was inserted. Each threshold is crossed exactly once (counts
    /// grow by one per distinct sender), so the frontier vectors never see
    /// duplicates and [`BvRound::progress`] needs no rescans.
    fn note_e1_crossing(&mut self, idx: usize) {
        let count = self.e1_sizes[idx] as usize;
        if count == self.t + 1 {
            self.amp_pending.push(idx);
        }
        if count == self.n - self.t {
            self.q1.push(idx);
        }
    }

    fn insert_e2(&mut self, from: NodeId, value: Dyadic) {
        if from.index() >= self.n {
            return;
        }
        // One ECHO2 per sender: ignore if this sender already echoed any value.
        if self.e2.iter().any(|(_, set)| set.contains(from)) {
            return;
        }
        if let Some(idx) = self.e2.iter().position(|(v, _)| *v == value) {
            if self.e2[idx].1.insert(from) {
                self.note_e2_crossing(idx);
            }
            return;
        }
        let mut set = NodeBitSet::new(self.n);
        set.insert(from);
        self.e2.push((value, set));
        self.note_e2_crossing(self.e2.len() - 1);
    }

    /// Records an `n − t` `ECHO2` quorum crossing for `e2` value-index
    /// `idx`, if it just happened. The quorum is unique (one `ECHO2` per
    /// sender, and `n − t > n / 2`), so `Some` is final once set.
    fn note_e2_crossing(&mut self, idx: usize) {
        if self.e2_quorum.is_none() && self.e2[idx].1.len() == self.n - self.t {
            self.e2_quorum = Some(idx);
        }
    }

    fn send_echo1(&mut self, value: Dyadic, actions: &mut Vec<BvAction>) {
        if self.sent_e1.contains(&value) {
            return;
        }
        self.sent_e1.push(value);
        self.insert_e1(self.me, value);
        actions.push(BvAction::Echo1(value));
    }

    fn send_echo2(&mut self, value: Dyadic, actions: &mut Vec<BvAction>) {
        if self.sent_e2 {
            return;
        }
        self.sent_e2 = true;
        self.insert_e2(self.me, value);
        actions.push(BvAction::Echo2(value));
    }

    /// Runs the amplification/echo2 triggers to a fixed point, then checks
    /// the termination conditions.
    ///
    /// Unlike the original linear re-scan, this drains the cached threshold
    /// frontier (`amp_pending` / `q1` / `e2_quorum`): each quorum crossing
    /// is recorded once at insert time, so a `progress` call is O(work
    /// actually triggered) instead of O(values tracked).
    fn progress(&mut self, actions: &mut Vec<BvAction>) {
        loop {
            // Amplify: t + 1 ECHO1s for a value we have not echoed yet.
            // Crossings are drained in e1-index order (FIFO matches it:
            // a value's t + 1 crossing happens at most once, and echoes
            // sent below can only cross *later-known* values).
            if self.amp_cursor < self.amp_pending.len() {
                let idx = self.amp_pending[self.amp_cursor];
                self.amp_cursor += 1;
                let v = self.e1[idx].0;
                if !self.sent_e1.contains(&v) {
                    self.send_echo1(v, actions);
                }
                continue;
            }
            // ECHO2: n − t ECHO1s for a value, once per round. Pick the
            // lowest e1 index with a quorum — the same value the old
            // in-order scan chose.
            if !self.sent_e2 {
                if let Some(&idx) = self.q1.iter().min() {
                    let v = self.e1[idx].0;
                    self.send_echo2(v, actions);
                    continue;
                }
            }
            break;
        }
        if self.outcome.is_none() {
            // Condition (1): two values with n − t ECHO1s each. At most
            // two values can ever reach that quorum (three would need
            // 3(n − t) ≤ 2n distinct echo slots, i.e. n ≤ 3t).
            if self.q1.len() >= 2 {
                self.outcome = Some(BvOutcome::pair(self.e1[self.q1[0]].0, self.e1[self.q1[1]].0));
                return;
            }
            // Condition (2): one value with n − t ECHO2s.
            if let Some(idx) = self.e2_quorum {
                self.outcome = Some(BvOutcome::single(self.e2[idx].0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ZERO: Dyadic = Dyadic::ZERO;
    const ONE: Dyadic = Dyadic::ONE;

    /// Runs a full mesh of `n` BvRounds with the given inputs, delivering
    /// all actions until quiescence, in a fixed round-robin order.
    fn run_mesh(inputs: &[Dyadic], t: usize) -> Vec<BvRound> {
        let n = inputs.len();
        let mut rounds: Vec<BvRound> =
            (0..n).map(|i| BvRound::new(NodeId(i as u16), n, t)).collect();
        // (from, action) queue.
        let mut queue: Vec<(NodeId, BvAction)> = Vec::new();
        for (i, &input) in inputs.iter().enumerate() {
            for a in rounds[i].set_input(input) {
                queue.push((NodeId(i as u16), a));
            }
        }
        while let Some((from, action)) = queue.pop() {
            for (i, round) in rounds.iter_mut().enumerate() {
                if i == from.index() {
                    continue;
                }
                let acts = match action {
                    BvAction::Echo1(v) => round.on_echo1(from, v),
                    BvAction::Echo2(v) => round.on_echo2(from, v),
                };
                for a in acts {
                    queue.push((NodeId(i as u16), a));
                }
            }
        }
        rounds
    }

    #[test]
    fn unanimous_input_terminates_with_that_value() {
        let rounds = run_mesh(&[ONE, ONE, ONE, ONE], 1);
        for r in &rounds {
            let out = r.outcome().expect("terminated");
            assert_eq!(out.set(), vec![ONE]);
            assert_eq!(out.next_value(), ONE);
        }
    }

    #[test]
    fn split_inputs_satisfy_weak_uniformity_and_justification() {
        let rounds = run_mesh(&[ZERO, ZERO, ONE, ONE], 1);
        for r in &rounds {
            let out = r.outcome().expect("terminated");
            // Justification: only honest inputs appear.
            for v in out.set() {
                assert!(v == ZERO || v == ONE);
            }
        }
        // Weak uniformity: pairwise non-empty intersection.
        for a in &rounds {
            for b in &rounds {
                let sa = a.outcome().unwrap().set();
                let sb = b.outcome().unwrap().set();
                assert!(sa.iter().any(|v| sb.contains(v)), "{sa:?} vs {sb:?}");
            }
        }
    }

    #[test]
    fn next_value_is_midpoint_for_pairs() {
        let out = BvOutcome::pair(ONE, ZERO);
        assert_eq!(out.set(), vec![ZERO, ONE]);
        assert_eq!(out.next_value(), Dyadic::new(1, 1));
        let single = BvOutcome::single(Dyadic::new(3, 2));
        assert_eq!(single.next_value(), Dyadic::new(3, 2));
    }

    #[test]
    fn lone_minority_value_cannot_terminate_alone() {
        // n = 4, t = 1: a single ECHO1 for a value never reaches t+1 = 2
        // from Byzantine alone; with honest unanimity on 0 the round
        // terminates on 0 regardless of a Byzantine 1.
        let n = 4;
        let mut r = BvRound::new(NodeId(0), n, 1);
        let _ = r.set_input(ZERO);
        let _ = r.on_echo1(NodeId(3), ONE); // Byzantine
        let _ = r.on_echo1(NodeId(1), ZERO);
        let _ = r.on_echo1(NodeId(2), ZERO);
        // ECHO2s from the others complete condition (2) for 0.
        let _ = r.on_echo2(NodeId(1), ZERO);
        let acts = r.on_echo2(NodeId(2), ZERO);
        let _ = acts;
        let out = r.outcome().expect("terminated");
        assert_eq!(out.set(), vec![ZERO]);
    }

    #[test]
    fn amplification_requires_t_plus_one() {
        let mut r = BvRound::new(NodeId(0), 7, 2);
        let _ = r.set_input(ZERO);
        // Two Byzantine echoes for 1: t = 2, not enough to amplify.
        let a1 = r.on_echo1(NodeId(5), ONE);
        let a2 = r.on_echo1(NodeId(6), ONE);
        assert!(a1.is_empty() && a2.is_empty());
        // A third echo (t + 1 = 3) triggers amplification.
        let a3 = r.on_echo1(NodeId(4), ONE);
        assert_eq!(a3, vec![BvAction::Echo1(ONE)]);
    }

    #[test]
    fn echo2_sent_once_per_round() {
        let n = 4;
        let mut r = BvRound::new(NodeId(0), n, 1);
        let _ = r.set_input(ZERO);
        let mut all = Vec::new();
        all.extend(r.on_echo1(NodeId(1), ZERO));
        all.extend(r.on_echo1(NodeId(2), ZERO)); // n - t = 3 reached
        let echo2s: Vec<_> = all.iter().filter(|a| matches!(a, BvAction::Echo2(_))).collect();
        assert_eq!(echo2s.len(), 1);
        // Even if the other value later reaches n - t, no second ECHO2.
        let mut more = Vec::new();
        more.extend(r.on_echo1(NodeId(1), ONE));
        more.extend(r.on_echo1(NodeId(2), ONE));
        more.extend(r.on_echo1(NodeId(3), ONE));
        assert!(more.iter().all(|a| !matches!(a, BvAction::Echo2(_))));
    }

    #[test]
    fn condition_one_two_echo1_quorums() {
        let n = 4;
        let mut r = BvRound::new(NodeId(0), n, 1);
        let _ = r.set_input(ZERO);
        let _ = r.on_echo1(NodeId(1), ZERO);
        let _ = r.on_echo1(NodeId(2), ZERO); // 0 has n-t
        let _ = r.on_echo1(NodeId(1), ONE);
        let _ = r.on_echo1(NodeId(2), ONE);
        let _ = r.on_echo1(NodeId(3), ONE); // 1 has n-t
        let out = r.outcome().expect("condition (1)");
        assert_eq!(out.set(), vec![ZERO, ONE]);
        assert_eq!(out.next_value(), Dyadic::new(1, 1));
    }

    #[test]
    fn duplicate_echoes_do_not_inflate_quorums() {
        let n = 4;
        let mut r = BvRound::new(NodeId(0), n, 1);
        let _ = r.set_input(ZERO);
        for _ in 0..10 {
            let _ = r.on_echo1(NodeId(1), ZERO);
        }
        // Only 2 distinct senders (me + node 1) so far: below n - t = 3.
        assert!(!r.is_terminated());
        assert!(!r.sent_e2);
    }

    #[test]
    fn per_sender_value_flood_is_bounded() {
        let n = 4;
        let mut r = BvRound::new(NodeId(0), n, 1);
        let _ = r.set_input(ZERO);
        // Byzantine node 3 floods distinct values; only the first 2 stick.
        for i in 0..100u64 {
            let _ = r.on_echo1(NodeId(3), Dyadic::new(i, 10));
        }
        assert!(r.e1.len() <= 3, "tracked values stay bounded: {}", r.e1.len());
        // Honest traffic still works fine afterwards.
        let _ = r.on_echo1(NodeId(1), ZERO);
        let _ = r.on_echo1(NodeId(2), ZERO);
        let _ = r.on_echo2(NodeId(1), ZERO);
        let _ = r.on_echo2(NodeId(2), ZERO);
        assert!(r.is_terminated());
    }

    #[test]
    fn one_echo2_per_sender_counted() {
        let n = 4;
        let mut r = BvRound::new(NodeId(0), n, 1);
        let _ = r.set_input(ZERO);
        // Byzantine node 3 tries ECHO2 on two values.
        let _ = r.on_echo2(NodeId(3), ZERO);
        let _ = r.on_echo2(NodeId(3), ONE);
        assert_eq!(r.e2.len(), 1, "second ECHO2 from same sender ignored");
    }

    #[test]
    fn out_of_range_sender_ignored() {
        let mut r = BvRound::new(NodeId(0), 4, 1);
        let _ = r.set_input(ZERO);
        let _ = r.on_echo1(NodeId(100), ZERO);
        let _ = r.on_echo2(NodeId(100), ZERO);
        // Only our own echo counts.
        assert_eq!(r.e1[0].1.len(), 1);
    }

    #[test]
    fn amplification_continues_after_termination() {
        let n = 4;
        let mut r = BvRound::new(NodeId(0), n, 1);
        let _ = r.set_input(ZERO);
        let _ = r.on_echo1(NodeId(1), ZERO);
        let _ = r.on_echo1(NodeId(2), ZERO);
        let _ = r.on_echo2(NodeId(1), ZERO);
        let _ = r.on_echo2(NodeId(2), ZERO);
        assert!(r.is_terminated());
        // Value 1 reaches t + 1 only now: we must still help.
        let _ = r.on_echo1(NodeId(1), ONE);
        let acts = r.on_echo1(NodeId(2), ONE);
        assert_eq!(acts, vec![BvAction::Echo1(ONE)]);
        // Outcome remains frozen.
        assert_eq!(r.outcome().unwrap().set(), vec![ZERO]);
    }

    #[test]
    #[should_panic(expected = "n >= 3t + 1")]
    fn resilience_bound_enforced() {
        let _ = BvRound::new(NodeId(0), 3, 1);
    }

    #[test]
    fn larger_mesh_with_byzantine_flood_still_terminates() {
        // 7 honest of n = 7 (t = 2 tolerated, none actually faulty),
        // mixed inputs.
        let inputs = [ZERO, ONE, ZERO, ONE, ZERO, ONE, ZERO];
        let rounds = run_mesh(&inputs, 2);
        for r in &rounds {
            assert!(r.is_terminated());
        }
    }

    /// The pre-frontier-cache `BvRound` logic (linear re-scan in
    /// `progress`), kept verbatim as a reference oracle for differential
    /// testing of the event-driven threshold frontier.
    struct NaiveBv {
        me: NodeId,
        n: usize,
        t: usize,
        e1: Vec<(Dyadic, NodeBitSet)>,
        e2: Vec<(Dyadic, NodeBitSet)>,
        e1_count: Vec<u8>,
        sent_e1: Vec<Dyadic>,
        sent_e2: bool,
        outcome: Option<BvOutcome>,
    }

    impl NaiveBv {
        fn new(me: NodeId, n: usize, t: usize) -> NaiveBv {
            NaiveBv {
                me,
                n,
                t,
                e1: Vec::new(),
                e2: Vec::new(),
                e1_count: vec![0; n],
                sent_e1: Vec::new(),
                sent_e2: false,
                outcome: None,
            }
        }

        fn set_input(&mut self, value: Dyadic) -> Vec<BvAction> {
            let mut actions = Vec::new();
            self.send_echo1(value, &mut actions);
            self.progress(&mut actions);
            actions
        }

        fn on_echo1(&mut self, from: NodeId, value: Dyadic) -> Vec<BvAction> {
            let mut actions = Vec::new();
            self.insert_e1(from, value);
            self.progress(&mut actions);
            actions
        }

        fn on_echo2(&mut self, from: NodeId, value: Dyadic) -> Vec<BvAction> {
            let mut actions = Vec::new();
            self.insert_e2(from, value);
            self.progress(&mut actions);
            actions
        }

        fn insert_e1(&mut self, from: NodeId, value: Dyadic) {
            if from.index() >= self.n {
                return;
            }
            if let Some((_, set)) = self.e1.iter_mut().find(|(v, _)| *v == value) {
                set.insert(from);
                return;
            }
            if usize::from(self.e1_count[from.index()]) >= MAX_ECHO1_VALUES_PER_SENDER {
                return;
            }
            self.e1_count[from.index()] += 1;
            let mut set = NodeBitSet::new(self.n);
            set.insert(from);
            self.e1.push((value, set));
        }

        fn insert_e2(&mut self, from: NodeId, value: Dyadic) {
            if from.index() >= self.n {
                return;
            }
            if self.e2.iter().any(|(_, set)| set.contains(from)) {
                return;
            }
            if let Some((_, set)) = self.e2.iter_mut().find(|(v, _)| *v == value) {
                set.insert(from);
                return;
            }
            let mut set = NodeBitSet::new(self.n);
            set.insert(from);
            self.e2.push((value, set));
        }

        fn send_echo1(&mut self, value: Dyadic, actions: &mut Vec<BvAction>) {
            if self.sent_e1.contains(&value) {
                return;
            }
            self.sent_e1.push(value);
            self.insert_e1(self.me, value);
            actions.push(BvAction::Echo1(value));
        }

        fn send_echo2(&mut self, value: Dyadic, actions: &mut Vec<BvAction>) {
            if self.sent_e2 {
                return;
            }
            self.sent_e2 = true;
            self.insert_e2(self.me, value);
            actions.push(BvAction::Echo2(value));
        }

        fn progress(&mut self, actions: &mut Vec<BvAction>) {
            loop {
                let amplify = self
                    .e1
                    .iter()
                    .find(|(v, set)| set.len() > self.t && !self.sent_e1.contains(v))
                    .map(|(v, _)| *v);
                if let Some(v) = amplify {
                    self.send_echo1(v, actions);
                    continue;
                }
                if !self.sent_e2 {
                    let ready = self
                        .e1
                        .iter()
                        .find(|(_, set)| set.len() >= self.n - self.t)
                        .map(|(v, _)| *v);
                    if let Some(v) = ready {
                        self.send_echo2(v, actions);
                        continue;
                    }
                }
                break;
            }
            if self.outcome.is_none() {
                let quorum1: Vec<Dyadic> = self
                    .e1
                    .iter()
                    .filter(|(_, set)| set.len() >= self.n - self.t)
                    .map(|(v, _)| *v)
                    .collect();
                if quorum1.len() >= 2 {
                    self.outcome = Some(BvOutcome::pair(quorum1[0], quorum1[1]));
                    return;
                }
                if let Some((v, _)) = self.e2.iter().find(|(_, set)| set.len() >= self.n - self.t) {
                    self.outcome = Some(BvOutcome::single(*v));
                }
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// Differential test: the cached-frontier `BvRound` emits exactly
        /// the same actions and reaches exactly the same outcome as the
        /// original linear-scan implementation, on arbitrary echo streams
        /// (including duplicate senders, value floods past the per-sender
        /// cap, out-of-range senders, and `set_input` at any point).
        #[test]
        fn prop_frontier_matches_linear_scan(
            n_choice in 0usize..3,
            events in proptest::collection::vec(
                (0usize..3, 0u16..12, 0u64..4),
                1..80,
            ),
        ) {
            let (n, t) = [(4usize, 1usize), (7, 2), (10, 3)][n_choice];
            let me = NodeId(0);
            let mut fast = BvRound::new(me, n, t);
            let mut naive = NaiveBv::new(me, n, t);
            for (op, from, num) in events {
                let v = Dyadic::new(num, 2);
                let from = NodeId(from);
                let (a, b) = match op {
                    0 => (fast.on_echo1(from, v), naive.on_echo1(from, v)),
                    1 => (fast.on_echo2(from, v), naive.on_echo2(from, v)),
                    _ => (fast.set_input(v), naive.set_input(v)),
                };
                proptest::prop_assert_eq!(a, b, "actions diverged");
                proptest::prop_assert_eq!(fast.outcome.as_ref(), naive.outcome.as_ref());
                proptest::prop_assert_eq!(fast.sent_e2, naive.sent_e2);
                proptest::prop_assert_eq!(&fast.sent_e1, &naive.sent_e1);
            }
        }
    }
}
