//! Per-peer authenticated sessions: framing format choice, batching,
//! adaptive flushing, and drain-on-shutdown.
//!
//! A [`SessionSet`] sits between the protocol-driving service layer and
//! the [`transport`](crate::transport) write loops. It owns one outbound
//! queue per peer and encodes every protocol step's envelope bursts into
//! authenticated frames:
//!
//! - with batching on, all envelopes of one step bound for the same peer
//!   share one v2 frame (one HMAC tag for the whole step);
//! - a solo (single-instance) runner keeps the 4-bytes-cheaper v1 format
//!   for single-envelope steps, while multi-instance runs speak pure v2 so
//!   byte accounting matches the simulator's `Mux`;
//! - both the one-shot and the epoch path accumulate entries in per-peer
//!   pending buffers under a [`FlushPolicy`] — per-step for the classic
//!   cost model, adaptive (size triggers here, the time trigger in the
//!   service loop) to amortize frames and tags across steps;
//! - routing and pending buffers are recycled between flushes (the
//!   free-list in `PendingBatchesBy`), so a steady-state flush allocates
//!   nothing but the frame itself; `NetStats::buffer_reuses` counts the
//!   hits;
//! - [`SessionSet::shutdown`] closes every queue and waits (bounded) for
//!   the write loops to flush, so a slow peer still receives everything
//!   that was queued.

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use delphi_crypto::Keychain;
use delphi_primitives::epoch::route_epoch_bursts_into;
use delphi_primitives::mux::route_bursts_into;
use delphi_primitives::{
    AgreementId, Envelope, FlushPolicy, InstanceId, NodeId, PendingBatches, PendingBatchesBy,
};
use tokio::sync::mpsc;

use crate::frame::{encode_batch_frame, encode_epoch_frame, encode_frame};
use crate::transport::{spawn_writer, Counters};

/// Hands `frame` to a peer's bounded writer queue, dropping (and
/// counting) it when the peer is `egress_capacity` frames behind. The
/// flush paths are synchronous, so blocking for room is not an option —
/// and is not wanted: a peer slower than its queue is treated like a
/// crashed peer (the `t < n/3` budget) instead of a memory leak. A
/// closed queue means the writer already exited (shutdown/abort); the
/// frame is silently discarded exactly as the old unbounded send was.
fn send_or_drop(tx: &mpsc::Sender<Bytes>, frame: Bytes, counters: &Counters) {
    if let Err(mpsc::error::TrySendError::Full(_)) = tx.try_send(frame) {
        counters.dropped_egress.fetch_add(1, Ordering::Relaxed);
    }
}

/// The outbound half of a full-mesh node: one authenticated session per
/// peer, plus the framing/batching policy shared by all of them.
///
/// One-shot runs queue whole steps ([`SessionSet::enqueue_step`]); epoch
/// streams queue epoch-addressed entries
/// ([`SessionSet::enqueue_epoch_step`]). Both paths accumulate in pending
/// buffers under the session's [`FlushPolicy`] — one buffer per
/// *(destination, receive shard)*, so a sharded deployment's frames each
/// land wholly on one of the receiver's dispatch workers, exactly like
/// the simulator's `EpochProtocol::new_sharded` sender model.
pub(crate) struct SessionSet {
    /// `peer_tx[p]` queues frames for peer `p`; `None` at our own slot.
    /// Queues are bounded (`egress_capacity` frames): a peer that falls
    /// further behind has its frames dropped and counted in
    /// `NetStats::dropped_egress` — a slower-than-capacity peer is
    /// treated as crashed (within the `t < n/3` budget) rather than
    /// allowed to inflate memory or stall the flush path.
    peer_tx: Vec<Option<mpsc::Sender<Bytes>>>,
    writer_tasks: Vec<tokio::task::JoinHandle<()>>,
    keychain: Arc<Keychain>,
    counters: Arc<Counters>,
    batching: bool,
    /// Single-instance runs keep the v1 format for lone envelopes.
    solo: bool,
    /// Receive shards the deployment runs (1 = unsharded): pending slots
    /// are indexed `dest * recv_shards + shard`.
    recv_shards: usize,
    /// Per-slot epoch entries awaiting flush (epoch streams only) —
    /// the same accumulator `EpochProtocol` uses under the simulator, so
    /// the two transports share one flush-trigger semantics.
    pending: PendingBatches,
    /// Per-slot one-shot entries awaiting flush (`run_instances`).
    pending_solo: PendingBatchesBy<InstanceId>,
    /// Reused routing buffers, one set per address space.
    route_epoch: Vec<Vec<(AgreementId, Bytes)>>,
    route_solo: Vec<Vec<(InstanceId, Bytes)>>,
    /// Reused per-shard partition buffers (sharded mode only).
    shard_epoch: Vec<Vec<(AgreementId, Bytes)>>,
    shard_solo: Vec<Vec<(InstanceId, Bytes)>>,
}

impl SessionSet {
    /// Opens a session (a lazy-dialing write loop) to every peer in
    /// `addrs` except `keychain.node_id()` itself. `recv_shards` is the
    /// deployment's receive-shard count: outbound batches are flushed per
    /// `(destination, shard)` so every frame belongs wholly to one of the
    /// receiver's dispatch workers.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn connect(
        keychain: Arc<Keychain>,
        addrs: &[SocketAddr],
        reconnect_delay: Duration,
        counters: Arc<Counters>,
        batching: bool,
        solo: bool,
        flush: FlushPolicy,
        recv_shards: usize,
        egress_capacity: usize,
    ) -> SessionSet {
        assert!(recv_shards >= 1, "need at least one receive shard");
        assert!(egress_capacity >= 1, "need at least one frame of egress capacity");
        let me = keychain.node_id();
        let n = addrs.len();
        let mut peer_tx: Vec<Option<mpsc::Sender<Bytes>>> = Vec::with_capacity(n);
        let mut writer_tasks = Vec::new();
        for peer in NodeId::all(n) {
            if peer == me {
                peer_tx.push(None);
                continue;
            }
            let (tx, rx) = mpsc::channel::<Bytes>(egress_capacity);
            peer_tx.push(Some(tx));
            writer_tasks.push(spawn_writer(
                addrs[peer.index()],
                rx,
                reconnect_delay,
                counters.clone(),
            ));
        }
        SessionSet {
            peer_tx,
            writer_tasks,
            keychain,
            counters,
            batching,
            solo,
            recv_shards,
            pending: PendingBatches::new(n * recv_shards, flush),
            pending_solo: PendingBatchesBy::new(n * recv_shards, flush),
            route_epoch: Vec::new(),
            route_solo: Vec::new(),
            shard_epoch: std::iter::repeat_with(Vec::new).take(recv_shards).collect(),
            shard_solo: std::iter::repeat_with(Vec::new).take(recv_shards).collect(),
        }
    }

    /// Queues one protocol step's output: the envelope bursts of every
    /// instance that acted, accumulated per destination (and receive
    /// shard) and flushed per the session's [`FlushPolicy`] (per-step
    /// immediately — the classic one-frame-per-step cost model; adaptive
    /// on size triggers, with the service loop's flush timer as the time
    /// trigger).
    ///
    /// Multi-instance runs speak pure v2 so `NetStats` byte counts equal
    /// the simulator's `Mux` accounting; solo single-envelope flushes
    /// keep the (4 bytes cheaper) v1 format.
    pub(crate) fn enqueue_step(&mut self, bursts: Vec<(InstanceId, Vec<Envelope>)>) {
        let me = self.keychain.node_id();
        let (n, shards) = (self.peer_tx.len(), self.recv_shards);
        let mut routed = std::mem::take(&mut self.route_solo);
        route_bursts_into(bursts, n, me, &mut routed);
        for (dest, entries) in routed.iter_mut().enumerate() {
            if entries.is_empty() || self.peer_tx[dest].is_none() {
                continue;
            }
            self.counters.sent_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
            if shards == 1 {
                if self.pending_solo.push_drain(dest, entries) {
                    self.flush_solo_slot(dest);
                }
                continue;
            }
            // Partition into shard classes so every flushed frame lands
            // wholly on one of the receiver's dispatch workers.
            let mut groups = std::mem::take(&mut self.shard_solo);
            for (id, payload) in entries.drain(..) {
                groups[id.shard(shards)].push((id, payload));
            }
            for (shard, group) in groups.iter_mut().enumerate() {
                if self.pending_solo.push_drain(dest * shards + shard, group) {
                    self.flush_solo_slot(dest * shards + shard);
                }
            }
            self.shard_solo = groups;
        }
        self.route_solo = routed;
    }

    /// Queues one epoch-stream step: epoch-addressed bursts routed into
    /// the per-(destination, shard) pending buffers, flushed per the
    /// session's [`FlushPolicy`].
    pub(crate) fn enqueue_epoch_step(&mut self, bursts: Vec<(AgreementId, Vec<Envelope>)>) {
        let me = self.keychain.node_id();
        let (n, shards) = (self.peer_tx.len(), self.recv_shards);
        let mut routed = std::mem::take(&mut self.route_epoch);
        route_epoch_bursts_into(bursts, n, me, &mut routed);
        for (dest, entries) in routed.iter_mut().enumerate() {
            if entries.is_empty() || self.peer_tx[dest].is_none() {
                continue;
            }
            self.counters.sent_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
            if shards == 1 {
                if self.pending.push_drain(dest, entries) {
                    self.flush_epoch_slot(dest);
                }
                continue;
            }
            let mut groups = std::mem::take(&mut self.shard_epoch);
            for (id, payload) in entries.drain(..) {
                groups[id.shard(shards)].push((id, payload));
            }
            for (shard, group) in groups.iter_mut().enumerate() {
                if self.pending.push_drain(dest * shards + shard, group) {
                    self.flush_epoch_slot(dest * shards + shard);
                }
            }
            self.shard_epoch = groups;
        }
        self.route_epoch = routed;
    }

    /// Flushes every slot's pending epoch entries (the time trigger, and
    /// the pre-shutdown drain).
    pub(crate) fn flush_epochs(&mut self) {
        for slot in 0..self.pending.dests() {
            self.flush_epoch_slot(slot);
        }
    }

    /// Flushes every slot's pending one-shot entries.
    pub(crate) fn flush_steps(&mut self) {
        for slot in 0..self.pending_solo.dests() {
            self.flush_solo_slot(slot);
        }
    }

    /// Whether any peer has unflushed epoch entries.
    pub(crate) fn has_pending_epochs(&self) -> bool {
        self.pending.has_pending()
    }

    /// Whether any peer has unflushed one-shot entries.
    pub(crate) fn has_pending_steps(&self) -> bool {
        self.pending_solo.has_pending()
    }

    fn flush_solo_slot(&mut self, slot: usize) {
        let entries = self.pending_solo.take(slot);
        if entries.is_empty() {
            return;
        }
        let dest = slot / self.recv_shards;
        let Some(Some(tx)) = self.peer_tx.get(dest) else {
            self.pending_solo.recycle(entries);
            return;
        };
        let to = NodeId(dest as u16);
        if self.batching {
            let frame = match &entries[..] {
                [(_, payload)] if self.solo => encode_frame(&self.keychain, to, payload),
                _ => encode_batch_frame(&self.keychain, to, &entries),
            };
            self.counters.mac_ops.fetch_add(1, Ordering::Relaxed);
            send_or_drop(tx, frame, &self.counters);
        } else {
            // One frame per entry: the measurement baseline.
            for (instance, payload) in &entries {
                let frame = if self.solo {
                    encode_frame(&self.keychain, to, payload)
                } else {
                    encode_batch_frame(&self.keychain, to, &[(*instance, payload.clone())])
                };
                self.counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                send_or_drop(tx, frame, &self.counters);
            }
        }
        self.pending_solo.recycle(entries);
        self.sync_reuse_counter();
    }

    fn flush_epoch_slot(&mut self, slot: usize) {
        let entries = self.pending.take(slot);
        if entries.is_empty() {
            return;
        }
        let dest = slot / self.recv_shards;
        let Some(Some(tx)) = self.peer_tx.get(dest) else {
            self.pending.recycle(entries);
            return;
        };
        let to = NodeId(dest as u16);
        if self.batching {
            let frame = encode_epoch_frame(&self.keychain, to, &entries);
            self.counters.mac_ops.fetch_add(1, Ordering::Relaxed);
            send_or_drop(tx, frame, &self.counters);
        } else {
            // One frame per entry: the measurement baseline.
            for entry in &entries {
                let frame = encode_epoch_frame(&self.keychain, to, std::slice::from_ref(entry));
                self.counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                send_or_drop(tx, frame, &self.counters);
            }
        }
        self.pending.recycle(entries);
        self.sync_reuse_counter();
    }

    /// Publishes the pending-buffer reuse totals into the shared stats.
    fn sync_reuse_counter(&self) {
        self.counters
            .buffer_reuses
            .store(self.pending.reuse_hits() + self.pending_solo.reuse_hits(), Ordering::Relaxed);
    }

    /// Graceful drain: closes the per-peer queues so each write loop
    /// flushes its remaining frames and exits at channel-close, then joins
    /// every writer with a shared `drain_timeout` deadline. A fixed sleep
    /// + abort here would lose whatever a slow peer had not yet accepted.
    pub(crate) async fn shutdown(self, drain_timeout: Duration) {
        let SessionSet { peer_tx, writer_tasks, .. } = self;
        drop(peer_tx);
        let drain_deadline = tokio::time::Instant::now() + drain_timeout;
        for task in writer_tasks {
            let mut task = task;
            tokio::select! {
                _ = &mut task => {},
                _ = tokio::time::sleep_until(drain_deadline) => task.abort(),
            }
        }
    }

    /// Aborts every writer immediately, dropping queued frames (used on
    /// deadline failure, where there is no output worth draining for).
    pub(crate) fn abort(self) {
        for w in self.writer_tasks {
            w.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::Envelope;

    #[test]
    fn send_or_drop_counts_overflow_and_keeps_capacity_frames() {
        let counters = Counters::default();
        let (tx, mut rx) = mpsc::channel::<Bytes>(4);
        for i in 0u8..100 {
            send_or_drop(&tx, Bytes::from(vec![i]), &counters);
        }
        assert_eq!(counters.dropped_egress.load(Ordering::Relaxed), 96);
        // The frames that made it are the first four, in order.
        drop(tx);
        let mut delivered = Vec::new();
        while let Some(frame) = futures_recv(&mut rx) {
            delivered.push(frame[0]);
        }
        assert_eq!(delivered, vec![0, 1, 2, 3]);
    }

    /// Drains one value from a receiver without a runtime (the channel
    /// stub resolves immediately when a value or closure is available).
    fn futures_recv(rx: &mut mpsc::Receiver<Bytes>) -> Option<Bytes> {
        tokio::runtime::Runtime::new().ok()?.block_on(rx.recv())
    }

    #[tokio::test]
    async fn full_writer_queue_drops_frames_instead_of_growing() {
        // Peer 1 lives at a dead address (nothing listens on port 1), so
        // its writer can never drain. With `egress_capacity = 4`, flushing
        // 100 single-envelope steps must keep at most capacity frames
        // queued (+1 the writer may already hold while dialing) and count
        // every other frame as dropped egress — never grow memory.
        let keychain = Arc::new(Keychain::derive(b"egress", NodeId(0), 2));
        let addrs: Vec<SocketAddr> =
            vec!["127.0.0.1:9".parse().unwrap(), "127.0.0.1:1".parse().unwrap()];
        let counters = Arc::new(Counters::default());
        let mut sessions = SessionSet::connect(
            keychain,
            &addrs,
            Duration::from_secs(60), // park the writer after its first dial fails
            counters.clone(),
            true,
            true,
            FlushPolicy::PerStep,
            1,
            4,
        );
        for step in 0..100u16 {
            sessions.enqueue_step(vec![(
                InstanceId(0),
                vec![Envelope::to_one(NodeId(1), Bytes::from(step.to_be_bytes().to_vec()))],
            )]);
        }
        let dropped = counters.dropped_egress.load(Ordering::Relaxed);
        assert!(
            (95..=96).contains(&dropped),
            "expected all but capacity(+1 in-flight) frames dropped, got {dropped}"
        );
        assert_eq!(counters.sent_frames.load(Ordering::Relaxed), 0);
        sessions.abort();
    }
}
