//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! plain vs compact BinAA messages (§II-C), the checkpoint input rule
//! (Algorithm 2 vs §III-B1 prose), and FIFO vs reordering delivery.

use criterion::{criterion_group, criterion_main, Criterion};

use delphi_core::{BinAaNode, CompactBinAaNode, DelphiConfig, DelphiNode, InputRule};
use delphi_primitives::{Dyadic, NodeId, Protocol};
use delphi_sim::{Simulation, Topology};

fn run_binaa_variant(compact: bool, n: usize, r_max: u16, seed: u64) -> u64 {
    let t = (n - 1) / 3;
    let nodes: Vec<Box<dyn Protocol<Output = Dyadic>>> = NodeId::all(n)
        .map(|id| {
            let input = id.index() % 2 == 0;
            if compact {
                CompactBinAaNode::new(id, n, t, input, r_max).boxed()
            } else {
                BinAaNode::new(id, n, t, input, r_max).boxed()
            }
        })
        .collect();
    let report = Simulation::new(Topology::lan(n)).seed(seed).run(nodes);
    assert!(report.all_honest_finished());
    report.metrics.total_payload_bytes()
}

fn bench_binaa_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("binaa_encoding_n7_r12");
    group.sample_size(20);
    group.bench_function("plain_values", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_binaa_variant(false, 7, 12, seed)
        })
    });
    group.bench_function("compact_val_codes", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_binaa_variant(true, 7, 12, seed)
        })
    });
    group.finish();
}

fn run_delphi_variant(rule: InputRule, fifo: bool, seed: u64) -> f64 {
    let n = 7;
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(2.0)
        .delta_max(512.0)
        .epsilon(2.0)
        .input_rule(rule)
        .build()
        .expect("config");
    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, 40_000.0 + id.index() as f64 * 3.0).boxed())
        .collect();
    let report = Simulation::new(Topology::lan(n).with_fifo(fifo)).seed(seed).run(nodes);
    assert!(report.all_honest_finished());
    report.completion_ms().expect("finished")
}

fn bench_delphi_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("delphi_ablations_n7");
    group.sample_size(10);
    group.bench_function("input_rule_two_closest", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_delphi_variant(InputRule::TwoClosest, false, seed)
        })
    });
    group.bench_function("input_rule_within_rho", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_delphi_variant(InputRule::WithinRho, false, seed)
        })
    });
    group.bench_function("fifo_delivery", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_delphi_variant(InputRule::TwoClosest, true, seed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_binaa_encoding, bench_delphi_ablations);
criterion_main!(benches);
