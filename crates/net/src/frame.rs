//! Authenticated wire frames (v1 single-payload and v2 batched).
//!
//! Both formats share the outer layout (all integers big-endian):
//!
//! ```text
//! [u32 rest_len][body ...]
//! ```
//!
//! where `rest_len` counts everything after the length word, and the body
//! ends in a 32-byte HMAC tag over everything before it, keyed by the
//! pairwise channel key of (claimed sender, receiver). A frame is therefore
//! bound to its claimed sender *and* to the receiving channel: replaying it
//! to a different receiver fails verification.
//!
//! **v1 (single payload)** — one protocol message per frame:
//!
//! ```text
//! [u16 sender][payload ...][32-byte tag]
//! ```
//!
//! **v2 (batched)** — every envelope queued for the same peer in one
//! protocol step shares one frame and one tag. The body opens with the
//! reserved marker [`BATCH_MARKER`] (`0xFFFF`, never a valid v1 sender id
//! because node ids are `u16` and a 65 536-node deployment is
//! unrepresentable), and carries a sequence of `(instance, payload)`
//! entries in the [`delphi_primitives::mux`] batch codec:
//!
//! ```text
//! [u16 0xFFFF][u16 sender][u16 count][count × (u16 instance)(u32 len)(bytes)][32-byte tag]
//! ```
//!
//! The two formats cannot be confused: the MAC input of a v1 frame starts
//! with a valid sender id while a v2 frame's starts with the reserved
//! marker, so a tag computed for one format never verifies as the other.
//!
//! # Size bounds
//!
//! A valid body is at least [`MIN_FRAME_BODY`] bytes (sender + tag) and at
//! most [`MAX_FRAME_BODY`] bytes (sender + [`MAX_FRAME_PAYLOAD`] + tag);
//! the socket reader and the decoders enforce the *same* bounds, so every
//! body the reader allocates for is decodable in principle.
//!
//! # Byte accounting
//!
//! A v1 frame adds 4 + 2 + 32 = 38 bytes to its payload, which together
//! with the 2-byte protocol tag inside every payload matches the
//! simulator's [`WIRE_OVERHEAD_BYTES`](delphi_sim::WIRE_OVERHEAD_BYTES)
//! budget of 40 bytes per message. A v2 frame with `k` entries costs
//! [`BATCH_FRAME_OVERHEAD_BYTES`] once plus
//! [`BATCH_ENTRY_OVERHEAD_BYTES`] per entry — exactly what a simulated
//! [`Mux`](delphi_primitives::Mux) message costs (its batch payload plus
//! `WIRE_OVERHEAD_BYTES`), which is what keeps simulated batched bandwidth
//! equal to TCP batched bandwidth.

use std::error::Error;
use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};
use delphi_crypto::{Keychain, TAG_LEN};
use delphi_primitives::epoch::{
    decode_epoch_batch_ref, encode_epoch_batch, EpochEntriesRef, EpochEntryIter, EPOCH_COUNT_BYTES,
};
use delphi_primitives::mux::{
    decode_batch_ref, encode_batch, BatchEntriesRef, BatchEntryIter, BATCH_COUNT_BYTES,
};
use delphi_primitives::{AgreementId, InstanceId, NodeId};

/// Maximum payload bytes accepted in one frame (16 MiB). For batched
/// frames the bound applies to the whole entry sequence.
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024 * 1024;

/// Smallest valid frame body: a v1 frame with an empty payload.
pub const MIN_FRAME_BODY: usize = 2 + TAG_LEN;

/// Largest valid frame body: a v1 frame with a [`MAX_FRAME_PAYLOAD`]-byte
/// payload (batched bodies fit the same bound by construction).
pub const MAX_FRAME_BODY: usize = 2 + MAX_FRAME_PAYLOAD + TAG_LEN;

/// Reserved leading `u16` distinguishing v2 batched bodies from v1 sender
/// ids.
pub const BATCH_MARKER: u16 = 0xFFFF;

/// Reserved leading `u16` distinguishing v3 epoch bodies from v1 sender
/// ids and the v2 marker. Like [`BATCH_MARKER`], never a valid sender: a
/// 65 535-node deployment is unrepresentable.
pub const EPOCH_MARKER: u16 = 0xFFFE;

/// Wire bytes a batched frame costs beyond its entries: length word,
/// marker, sender, entry count, and tag.
pub const BATCH_FRAME_OVERHEAD_BYTES: usize = 4 + 2 + 2 + BATCH_COUNT_BYTES + TAG_LEN;

/// Wire bytes an epoch frame costs beyond its entries — identical to the
/// v2 overhead (the codecs share the count width), which is what keeps
/// simulated epoch-stream bandwidth equal to TCP epoch-stream bandwidth.
pub const EPOCH_FRAME_OVERHEAD_BYTES: usize = 4 + 2 + 2 + EPOCH_COUNT_BYTES + TAG_LEN;

pub use delphi_primitives::epoch::EPOCH_ENTRY_OVERHEAD_BYTES;
pub use delphi_primitives::mux::BATCH_ENTRY_OVERHEAD_BYTES;

/// Frame decoding / authentication failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is shorter than the fixed header + tag.
    Truncated,
    /// The body exceeds [`MAX_FRAME_BODY`].
    TooLarge,
    /// The sender id is outside the deployment.
    UnknownSender,
    /// The HMAC tag did not verify.
    BadTag,
    /// The frame authenticated but its batch entries are malformed
    /// (truncated entry, length overrun, or trailing bytes).
    Malformed,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::TooLarge => write!(f, "frame exceeds maximum payload"),
            FrameError::UnknownSender => write!(f, "frame sender unknown"),
            FrameError::BadTag => write!(f, "frame authentication failed"),
            FrameError::Malformed => write!(f, "frame batch entries malformed"),
        }
    }
}

impl Error for FrameError {}

/// Encodes a v1 authenticated frame from `keychain.node_id()` to `to`.
///
/// The result includes the leading length word and is ready to write to a
/// socket.
pub fn encode_frame(keychain: &Keychain, to: NodeId, payload: &[u8]) -> Bytes {
    assert!(payload.len() <= MAX_FRAME_PAYLOAD, "payload exceeds MAX_FRAME_PAYLOAD");
    let me = keychain.node_id();
    let sender_be = me.0.to_be_bytes();
    let tag = keychain.channel(to).tag_segments(&[&sender_be, payload]);
    let rest_len = 2 + payload.len() + TAG_LEN;
    let mut buf = BytesMut::with_capacity(4 + rest_len);
    buf.put_u32(rest_len as u32);
    buf.put_u16(me.0);
    buf.put_slice(payload);
    buf.put_slice(&tag);
    buf.freeze()
}

/// Encodes a v2 batched frame carrying `entries` from
/// `keychain.node_id()` to `to`.
///
/// One tag authenticates the whole sequence, so framing + MAC cost is paid
/// once per batch instead of once per envelope.
///
/// # Panics
///
/// Panics if the encoded entry sequence exceeds [`MAX_FRAME_PAYLOAD`]
/// (unreachable for protocol-sized envelopes) or `entries` is empty.
pub fn encode_batch_frame(
    keychain: &Keychain,
    to: NodeId,
    entries: &[(InstanceId, Bytes)],
) -> Bytes {
    assert!(!entries.is_empty(), "batch frames carry at least one entry");
    let batch = encode_batch(entries);
    assert!(2 + batch.len() <= MAX_FRAME_PAYLOAD, "batched entries exceed MAX_FRAME_PAYLOAD");
    let me = keychain.node_id();
    let marker_be = BATCH_MARKER.to_be_bytes();
    let sender_be = me.0.to_be_bytes();
    let tag = keychain.channel(to).tag_segments(&[&marker_be, &sender_be, &batch]);
    let rest_len = 2 + 2 + batch.len() + TAG_LEN;
    let mut buf = BytesMut::with_capacity(4 + rest_len);
    buf.put_u32(rest_len as u32);
    buf.put_u16(BATCH_MARKER);
    buf.put_u16(me.0);
    buf.put_slice(&batch);
    buf.put_slice(&tag);
    buf.freeze()
}

/// Decodes and authenticates one **v1** frame body (everything *after* the
/// length word) arriving at `keychain.node_id()`.
///
/// Kept for single-instance callers; batched bodies fail here with
/// [`FrameError::UnknownSender`] (their marker is not a valid sender).
/// Transports that speak both formats use [`decode_any_frame`].
///
/// # Errors
///
/// Returns a [`FrameError`] on malformed, oversized, or forged frames;
/// callers drop such frames.
pub fn decode_frame(keychain: &Keychain, body: &[u8]) -> Result<(NodeId, Bytes), FrameError> {
    if body.len() < MIN_FRAME_BODY {
        return Err(FrameError::Truncated);
    }
    if body.len() > MAX_FRAME_BODY {
        return Err(FrameError::TooLarge);
    }
    let sender = NodeId(u16::from_be_bytes([body[0], body[1]]));
    if sender.index() >= keychain.n() {
        return Err(FrameError::UnknownSender);
    }
    let signed = &body[..body.len() - TAG_LEN];
    let tag = &body[body.len() - TAG_LEN..];
    if keychain.channel(sender).verify(signed, tag).is_err() {
        return Err(FrameError::BadTag);
    }
    Ok((sender, Bytes::copy_from_slice(&signed[2..])))
}

/// Encodes a v3 epoch frame carrying epoch-addressed `entries` from
/// `keychain.node_id()` to `to`.
///
/// The body is `[u16 0xFFFE][u16 sender][epoch batch][32-byte tag]` where
/// the epoch batch is the [`delphi_primitives::epoch`] codec — the same
/// bytes an [`EpochProtocol`](delphi_primitives::EpochProtocol) envelope
/// carries under the simulator, so the two transports account epoch
/// traffic identically. One tag authenticates the whole batch.
///
/// # Panics
///
/// Panics if the encoded entries exceed [`MAX_FRAME_PAYLOAD`] or
/// `entries` is empty.
pub fn encode_epoch_frame(
    keychain: &Keychain,
    to: NodeId,
    entries: &[(AgreementId, Bytes)],
) -> Bytes {
    assert!(!entries.is_empty(), "epoch frames carry at least one entry");
    let batch = encode_epoch_batch(entries);
    assert!(2 + batch.len() <= MAX_FRAME_PAYLOAD, "epoch entries exceed MAX_FRAME_PAYLOAD");
    let me = keychain.node_id();
    let marker_be = EPOCH_MARKER.to_be_bytes();
    let sender_be = me.0.to_be_bytes();
    let tag = keychain.channel(to).tag_segments(&[&marker_be, &sender_be, &batch]);
    let rest_len = 2 + 2 + batch.len() + TAG_LEN;
    let mut buf = BytesMut::with_capacity(4 + rest_len);
    buf.put_u32(rest_len as u32);
    buf.put_u16(EPOCH_MARKER);
    buf.put_u16(me.0);
    buf.put_slice(&batch);
    buf.put_slice(&tag);
    buf.freeze()
}

/// Borrowed view of one decoded frame body's entries: slices into the
/// body, no per-entry allocation.
///
/// The one-shot formats surface through the same epoch-addressed
/// interface the owned decoder uses: v1/v2 entries are addressed at
/// epoch 0.
#[derive(Clone, Debug)]
pub enum FrameEntriesRef<'a> {
    /// A v1 body's single payload (decoded as `(epoch 0, SOLO)`).
    Solo(&'a [u8]),
    /// A v2 body's one-shot batch entries (decoded at epoch 0).
    Batch(BatchEntriesRef<'a>),
    /// A v3 body's epoch-addressed entries.
    Epoch(EpochEntriesRef<'a>),
}

impl<'a> FrameEntriesRef<'a> {
    /// Number of entries the frame carried.
    pub fn len(&self) -> usize {
        match self {
            FrameEntriesRef::Solo(_) => 1,
            FrameEntriesRef::Batch(b) => b.len(),
            FrameEntriesRef::Epoch(e) => e.len(),
        }
    }

    /// Whether the frame carried no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the entries as `(agreement, payload)` borrowed slices.
    pub fn iter(&self) -> FrameEntryIter<'a> {
        match self {
            FrameEntriesRef::Solo(payload) => FrameEntryIter::Solo(Some(payload)),
            FrameEntriesRef::Batch(b) => FrameEntryIter::Batch(b.iter()),
            FrameEntriesRef::Epoch(e) => FrameEntryIter::Epoch(e.iter()),
        }
    }

    /// Materializes owned entries (the compatibility boundary).
    pub fn to_owned_entries(&self) -> Vec<(AgreementId, Bytes)> {
        self.iter().map(|(id, p)| (id, Bytes::copy_from_slice(p))).collect()
    }
}

/// Iterator behind [`FrameEntriesRef::iter`].
#[derive(Clone, Debug)]
pub enum FrameEntryIter<'a> {
    /// See [`FrameEntriesRef::Solo`].
    Solo(Option<&'a [u8]>),
    /// See [`FrameEntriesRef::Batch`].
    Batch(BatchEntryIter<'a>),
    /// See [`FrameEntriesRef::Epoch`].
    Epoch(EpochEntryIter<'a>),
}

impl<'a> Iterator for FrameEntryIter<'a> {
    type Item = (AgreementId, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            FrameEntryIter::Solo(payload) => {
                payload.take().map(|p| (AgreementId::solo(InstanceId::SOLO), p))
            }
            FrameEntryIter::Batch(iter) => {
                iter.next().map(|(asset, p)| (AgreementId::solo(asset), p))
            }
            FrameEntryIter::Epoch(iter) => iter.next(),
        }
    }
}

/// Checks the marked-body header shared by v2/v3 frames and verifies the
/// tag (skipped for the pre-verified re-split path), returning the sender
/// and the batch bytes.
fn split_marked_body<'a>(
    keychain: Option<&Keychain>,
    body: &'a [u8],
) -> Result<(NodeId, &'a [u8]), FrameError> {
    // Marker + sender + count is the minimum before the tag (the batch
    // and epoch codecs share the count width).
    if body.len() < 2 + 2 + BATCH_COUNT_BYTES + TAG_LEN {
        return Err(FrameError::Truncated);
    }
    let sender = NodeId(u16::from_be_bytes([body[2], body[3]]));
    let signed = &body[..body.len() - TAG_LEN];
    if let Some(keychain) = keychain {
        if sender.index() >= keychain.n() {
            return Err(FrameError::UnknownSender);
        }
        let tag = &body[body.len() - TAG_LEN..];
        if keychain.channel(sender).verify(signed, tag).is_err() {
            return Err(FrameError::BadTag);
        }
    }
    Ok((sender, &signed[4..]))
}

/// The zero-copy inbound decoder behind [`decode_inbound_frame`] and
/// [`split_verified_body`]: `keychain = Some` authenticates, `None`
/// re-splits a body a read loop already verified.
fn decode_inbound_ref<'a>(
    keychain: Option<&Keychain>,
    body: &'a [u8],
) -> Result<(NodeId, FrameEntriesRef<'a>), FrameError> {
    if body.len() < MIN_FRAME_BODY {
        return Err(FrameError::Truncated);
    }
    if body.len() > MAX_FRAME_BODY {
        return Err(FrameError::TooLarge);
    }
    match u16::from_be_bytes([body[0], body[1]]) {
        EPOCH_MARKER => {
            let (sender, batch) = split_marked_body(keychain, body)?;
            let entries = decode_epoch_batch_ref(batch).map_err(|_| FrameError::Malformed)?;
            Ok((sender, FrameEntriesRef::Epoch(entries)))
        }
        BATCH_MARKER => {
            let (sender, batch) = split_marked_body(keychain, body)?;
            let entries = decode_batch_ref(batch).map_err(|_| FrameError::Malformed)?;
            Ok((sender, FrameEntriesRef::Batch(entries)))
        }
        _ => {
            // v1: sender + payload + tag.
            let sender = NodeId(u16::from_be_bytes([body[0], body[1]]));
            let signed = &body[..body.len() - TAG_LEN];
            if let Some(keychain) = keychain {
                if sender.index() >= keychain.n() {
                    return Err(FrameError::UnknownSender);
                }
                let tag = &body[body.len() - TAG_LEN..];
                if keychain.channel(sender).verify(signed, tag).is_err() {
                    return Err(FrameError::BadTag);
                }
            }
            Ok((sender, FrameEntriesRef::Solo(&signed[2..])))
        }
    }
}

/// Decodes and authenticates one frame body of **any** format — v1, v2,
/// or v3 — returning the sender and a borrowed view of its entries: the
/// zero-copy decoder the transport read loop uses. The frame is verified,
/// validated, and split without allocating.
///
/// # Errors
///
/// Returns a [`FrameError`] on malformed, oversized, or forged frames;
/// callers drop such frames.
pub fn decode_inbound_frame_ref<'a>(
    keychain: &Keychain,
    body: &'a [u8],
) -> Result<(NodeId, FrameEntriesRef<'a>), FrameError> {
    decode_inbound_ref(Some(keychain), body)
}

/// Re-splits a frame body that an earlier [`decode_inbound_frame_ref`]
/// already authenticated and validated — structure checks only, **no MAC
/// work** — so sharded dispatch workers can walk a verified body's
/// entries without paying the tag again.
///
/// # Errors
///
/// Structural [`FrameError`]s only; unreachable for bodies that passed
/// verification.
pub fn split_verified_body(body: &[u8]) -> Result<(NodeId, FrameEntriesRef<'_>), FrameError> {
    decode_inbound_ref(None, body)
}

/// Decodes and authenticates one frame body of **any** format — v1, v2,
/// or v3 — returning the sender and owned epoch-addressed entries.
///
/// Owned sibling of [`decode_inbound_frame_ref`], kept for callers whose
/// entries must outlive the body. v1/v2 entries decode at
/// [`EpochId::FIRST`](delphi_primitives::EpochId::FIRST): one-shot runs
/// are exactly epoch 0 of a stream.
///
/// # Errors
///
/// Returns a [`FrameError`] on malformed, oversized, or forged frames;
/// callers drop such frames.
pub fn decode_inbound_frame(
    keychain: &Keychain,
    body: &[u8],
) -> Result<(NodeId, Vec<(AgreementId, Bytes)>), FrameError> {
    let (sender, entries) = decode_inbound_frame_ref(keychain, body)?;
    Ok((sender, entries.to_owned_entries()))
}

/// Decodes and authenticates one frame body of **either** one-shot format
/// (v1 or v2), returning the sender and the `(instance, payload)` entries
/// it carried.
///
/// v1 bodies decode to a single entry addressed to
/// [`InstanceId::SOLO`]. Authentication precedes batch parsing: entries of
/// a forged frame are never inspected. Epoch (v3) bodies fail here with
/// [`FrameError::UnknownSender`] (their marker is not a valid sender);
/// transports that speak all formats use [`decode_inbound_frame`].
///
/// # Errors
///
/// Returns a [`FrameError`] on malformed, oversized, or forged frames;
/// callers drop such frames.
pub fn decode_any_frame(
    keychain: &Keychain,
    body: &[u8],
) -> Result<(NodeId, Vec<(InstanceId, Bytes)>), FrameError> {
    if body.len() < MIN_FRAME_BODY {
        return Err(FrameError::Truncated);
    }
    if body.len() > MAX_FRAME_BODY {
        return Err(FrameError::TooLarge);
    }
    if u16::from_be_bytes([body[0], body[1]]) != BATCH_MARKER {
        let (sender, payload) = decode_frame(keychain, body)?;
        return Ok((sender, vec![(InstanceId::SOLO, payload)]));
    }
    // Batched body: marker + sender + count is the minimum before the tag.
    if body.len() < 2 + 2 + BATCH_COUNT_BYTES + TAG_LEN {
        return Err(FrameError::Truncated);
    }
    let sender = NodeId(u16::from_be_bytes([body[2], body[3]]));
    if sender.index() >= keychain.n() {
        return Err(FrameError::UnknownSender);
    }
    let signed = &body[..body.len() - TAG_LEN];
    let tag = &body[body.len() - TAG_LEN..];
    if keychain.channel(sender).verify(signed, tag).is_err() {
        return Err(FrameError::BadTag);
    }
    let entries = decode_batch_ref(&signed[4..]).map_err(|_| FrameError::Malformed)?;
    Ok((sender, entries.to_owned_entries()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Keychain, Keychain) {
        (Keychain::derive(b"seed", NodeId(0), 3), Keychain::derive(b"seed", NodeId(1), 3))
    }

    fn entries(payloads: &[&'static [u8]]) -> Vec<(InstanceId, Bytes)> {
        payloads
            .iter()
            .enumerate()
            .map(|(i, p)| (InstanceId(i as u16), Bytes::from_static(p)))
            .collect()
    }

    #[test]
    fn roundtrip() {
        let (alice, bob) = pair();
        let frame = encode_frame(&alice, NodeId(1), b"hello");
        // Strip the length word, as the reader does.
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        let (sender, payload) = decode_frame(&bob, &frame[4..]).unwrap();
        assert_eq!(sender, NodeId(0));
        assert_eq!(&payload[..], b"hello");
    }

    #[test]
    fn batch_roundtrip() {
        let (alice, bob) = pair();
        let sent = entries(&[b"alpha", b"", b"gamma"]);
        let frame = encode_batch_frame(&alice, NodeId(1), &sent);
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        let (sender, got) = decode_any_frame(&bob, &frame[4..]).unwrap();
        assert_eq!(sender, NodeId(0));
        assert_eq!(got, sent);
    }

    #[test]
    fn batch_overhead_accounting() {
        let (alice, _) = pair();
        let sent = entries(&[b"12345", b"123"]);
        let frame = encode_batch_frame(&alice, NodeId(1), &sent);
        assert_eq!(
            frame.len(),
            BATCH_FRAME_OVERHEAD_BYTES + 2 * BATCH_ENTRY_OVERHEAD_BYTES + 5 + 3
        );
    }

    #[test]
    fn batched_wire_accounting_matches_simulator() {
        // A Mux envelope carries the batch payload and the simulator
        // charges it WIRE_OVERHEAD_BYTES; the TCP batch frame must cost
        // exactly the same, so simulated batched bandwidth equals real
        // batched bandwidth.
        let (alice, _) = pair();
        for payloads in [&[&b"x"[..]][..], &[&b"alpha"[..], &b""[..], &b"a-longer-payload"[..]][..]]
        {
            let sent = entries(payloads);
            let frame = encode_batch_frame(&alice, NodeId(1), &sent);
            let batch_payload = encode_batch(&sent);
            assert_eq!(frame.len(), delphi_sim::WIRE_OVERHEAD_BYTES + batch_payload.len());
        }
        assert_eq!(BATCH_FRAME_OVERHEAD_BYTES, delphi_sim::WIRE_OVERHEAD_BYTES + BATCH_COUNT_BYTES);
    }

    #[test]
    fn v1_frame_decodes_as_solo_entry_via_any() {
        let (alice, bob) = pair();
        let frame = encode_frame(&alice, NodeId(1), b"hello");
        let (sender, got) = decode_any_frame(&bob, &frame[4..]).unwrap();
        assert_eq!(sender, NodeId(0));
        assert_eq!(got, vec![(InstanceId::SOLO, Bytes::from_static(b"hello"))]);
    }

    #[test]
    fn batch_frame_rejected_by_v1_decoder() {
        // The marker is not a valid sender, so a v1-only receiver drops
        // batched frames instead of misparsing them.
        let (alice, bob) = pair();
        let frame = encode_batch_frame(&alice, NodeId(1), &entries(&[b"x"]));
        assert_eq!(decode_frame(&bob, &frame[4..]), Err(FrameError::UnknownSender));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (alice, bob) = pair();
        let frame = encode_frame(&alice, NodeId(1), b"hello");
        let mut body = frame[4..].to_vec();
        body[3] ^= 1; // flip a payload bit
        assert_eq!(decode_frame(&bob, &body), Err(FrameError::BadTag));
    }

    #[test]
    fn tampered_batch_rejected() {
        let (alice, bob) = pair();
        let frame = encode_batch_frame(&alice, NodeId(1), &entries(&[b"hello", b"world"]));
        for idx in [2usize, 5, 12] {
            let mut body = frame[4..].to_vec();
            body[idx] ^= 1;
            let err = decode_any_frame(&bob, &body).unwrap_err();
            assert!(
                matches!(err, FrameError::BadTag | FrameError::UnknownSender),
                "flip at {idx}: {err:?}"
            );
        }
    }

    #[test]
    fn forged_sender_rejected() {
        let (alice, bob) = pair();
        let frame = encode_frame(&alice, NodeId(1), b"hello");
        let mut body = frame[4..].to_vec();
        body[1] = 2; // claim sender 2
        assert_eq!(decode_frame(&bob, &body), Err(FrameError::BadTag));
    }

    #[test]
    fn misdirected_frame_rejected() {
        // A frame addressed to node 1 replayed at node 2 fails: the tag
        // is under key (0,1), not (0,2).
        let (alice, _) = pair();
        let carol = Keychain::derive(b"seed", NodeId(2), 3);
        let frame = encode_frame(&alice, NodeId(1), b"hello");
        assert_eq!(decode_frame(&carol, &frame[4..]), Err(FrameError::BadTag));
        let batch = encode_batch_frame(&alice, NodeId(1), &entries(&[b"hello"]));
        assert_eq!(decode_any_frame(&carol, &batch[4..]), Err(FrameError::BadTag));
    }

    #[test]
    fn unknown_sender_rejected() {
        let (_, bob) = pair();
        let mut body = vec![0xff, 0xfe]; // sender 65534
        body.extend_from_slice(&[0u8; TAG_LEN]);
        assert_eq!(decode_frame(&bob, &body), Err(FrameError::UnknownSender));
        // Batched body claiming an out-of-range sender.
        let mut body = vec![0xff, 0xff, 0xff, 0xfe, 0, 0];
        body.extend_from_slice(&[0u8; TAG_LEN]);
        assert_eq!(decode_any_frame(&bob, &body), Err(FrameError::UnknownSender));
    }

    #[test]
    fn authenticated_but_malformed_batch_rejected() {
        // A correctly tagged body whose entry bytes are garbage must fail
        // *after* authentication with Malformed, not panic.
        let (alice, bob) = pair();
        let mut signed = Vec::new();
        signed.extend_from_slice(&BATCH_MARKER.to_be_bytes());
        signed.extend_from_slice(&0u16.to_be_bytes()); // sender 0
        signed.extend_from_slice(&[0, 2, 0, 0]); // count=2 but one bogus entry
        let tag = alice.channel(NodeId(1)).tag(&signed);
        signed.extend_from_slice(&tag);
        assert_eq!(decode_any_frame(&bob, &signed), Err(FrameError::Malformed));
    }

    #[test]
    fn size_bounds_hit_each_edge() {
        let (alice, bob) = pair();
        // One byte below the minimum body: truncated.
        let body = vec![0u8; MIN_FRAME_BODY - 1];
        assert_eq!(decode_frame(&bob, &body), Err(FrameError::Truncated));
        assert_eq!(decode_any_frame(&bob, &body), Err(FrameError::Truncated));
        // Exactly the minimum body: a v1 frame with an empty payload.
        let frame = encode_frame(&alice, NodeId(1), b"");
        assert_eq!(frame.len() - 4, MIN_FRAME_BODY);
        assert!(decode_frame(&bob, &frame[4..]).is_ok());
        // One byte above the maximum body: too large, rejected before any
        // MAC work.
        let body = vec![0u8; MAX_FRAME_BODY + 1];
        assert_eq!(decode_frame(&bob, &body), Err(FrameError::TooLarge));
        assert_eq!(decode_any_frame(&bob, &body), Err(FrameError::TooLarge));
    }

    #[test]
    fn max_body_bound_admits_max_payload() {
        // MAX_FRAME_BODY is exactly a v1 body carrying MAX_FRAME_PAYLOAD.
        assert_eq!(MAX_FRAME_BODY, MIN_FRAME_BODY + MAX_FRAME_PAYLOAD);
    }

    #[test]
    fn empty_payload_is_fine() {
        let (alice, bob) = pair();
        let frame = encode_frame(&alice, NodeId(1), b"");
        let (sender, payload) = decode_frame(&bob, &frame[4..]).unwrap();
        assert_eq!(sender, NodeId(0));
        assert!(payload.is_empty());
    }

    fn epoch_entries(payloads: &[&'static [u8]]) -> Vec<(AgreementId, Bytes)> {
        use delphi_primitives::EpochId;
        payloads
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    AgreementId::new(EpochId(100 + i as u32), InstanceId(i as u16)),
                    Bytes::from_static(p),
                )
            })
            .collect()
    }

    #[test]
    fn epoch_frame_roundtrip() {
        let (alice, bob) = pair();
        let sent = epoch_entries(&[b"alpha", b"", b"gamma"]);
        let frame = encode_epoch_frame(&alice, NodeId(1), &sent);
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        let (sender, got) = decode_inbound_frame(&bob, &frame[4..]).unwrap();
        assert_eq!(sender, NodeId(0));
        assert_eq!(got, sent);
    }

    #[test]
    fn one_shot_frames_decode_as_epoch_zero_inbound() {
        use delphi_primitives::EpochId;
        let (alice, bob) = pair();
        let v1 = encode_frame(&alice, NodeId(1), b"hello");
        let (_, got) = decode_inbound_frame(&bob, &v1[4..]).unwrap();
        assert_eq!(got, vec![(AgreementId::solo(InstanceId::SOLO), Bytes::from_static(b"hello"))]);
        let v2 = encode_batch_frame(&alice, NodeId(1), &entries(&[b"a", b"b"]));
        let (_, got) = decode_inbound_frame(&bob, &v2[4..]).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(id, _)| id.epoch == EpochId::FIRST));
        assert_eq!(got[1].0.asset, InstanceId(1));
    }

    #[test]
    fn epoch_frame_rejected_by_one_shot_decoders() {
        // The epoch marker is not a valid sender: one-shot receivers drop
        // epoch frames instead of misparsing them.
        let (alice, bob) = pair();
        let frame = encode_epoch_frame(&alice, NodeId(1), &epoch_entries(&[b"x"]));
        assert_eq!(decode_frame(&bob, &frame[4..]), Err(FrameError::UnknownSender));
        assert_eq!(decode_any_frame(&bob, &frame[4..]), Err(FrameError::UnknownSender));
    }

    #[test]
    fn tampered_and_misdirected_epoch_frames_rejected() {
        let (alice, bob) = pair();
        let frame = encode_epoch_frame(&alice, NodeId(1), &epoch_entries(&[b"hello", b"world"]));
        for idx in [2usize, 5, 12, 20] {
            let mut body = frame[4..].to_vec();
            body[idx] ^= 1;
            let err = decode_inbound_frame(&bob, &body).unwrap_err();
            assert!(
                matches!(err, FrameError::BadTag | FrameError::UnknownSender),
                "flip at {idx}: {err:?}"
            );
        }
        let carol = Keychain::derive(b"seed", NodeId(2), 3);
        assert_eq!(decode_inbound_frame(&carol, &frame[4..]), Err(FrameError::BadTag));
    }

    #[test]
    fn authenticated_but_malformed_epoch_batch_rejected() {
        let (alice, bob) = pair();
        let mut signed = Vec::new();
        signed.extend_from_slice(&EPOCH_MARKER.to_be_bytes());
        signed.extend_from_slice(&0u16.to_be_bytes()); // sender 0
        signed.extend_from_slice(&[0, 2, 0, 0]); // count=2 but garbage entries
        let tag = alice.channel(NodeId(1)).tag(&signed);
        signed.extend_from_slice(&tag);
        assert_eq!(decode_inbound_frame(&bob, &signed), Err(FrameError::Malformed));
    }

    #[test]
    fn epoch_wire_accounting_matches_simulator() {
        // An EpochProtocol envelope carries the epoch batch payload and
        // the simulator charges it WIRE_OVERHEAD_BYTES; the TCP epoch
        // frame must cost exactly the same.
        use delphi_primitives::epoch::encode_epoch_batch;
        let (alice, _) = pair();
        for payloads in [&[&b"x"[..]][..], &[&b"alpha"[..], &b""[..], &b"a-longer-payload"[..]][..]]
        {
            let sent = epoch_entries(payloads);
            let frame = encode_epoch_frame(&alice, NodeId(1), &sent);
            let batch_payload = encode_epoch_batch(&sent);
            assert_eq!(frame.len(), delphi_sim::WIRE_OVERHEAD_BYTES + batch_payload.len());
        }
        assert_eq!(EPOCH_FRAME_OVERHEAD_BYTES, delphi_sim::WIRE_OVERHEAD_BYTES + EPOCH_COUNT_BYTES);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            FrameError::Truncated,
            FrameError::TooLarge,
            FrameError::UnknownSender,
            FrameError::BadTag,
            FrameError::Malformed,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
