//! The Delphi protocol: efficient asynchronous approximate agreement for
//! distributed oracles.
//!
//! This crate implements the paper's primary contribution, bottom-up:
//!
//! - [`bv`]: one round of *weak Binary-Value broadcast* (Definition II.2) —
//!   the Bracha-style `ECHO1`/`ECHO2` quorum machine every round of BinAA
//!   is built from.
//! - [`binaa`]: the multi-round **BinAA** protocol (Algorithm 1):
//!   approximate agreement for binary inputs, halving the honest range
//!   every round. Usable standalone via [`BinAaNode`].
//! - [`compact`]: the §II-C communication optimization — `VAL` messages
//!   carry *state-shift codes* (`2L/L/C/R/2R`) instead of values, and
//!   receivers reconstruct trajectories FIFO-style ([`CompactBinAaNode`]).
//! - [`delphi`]: the **Delphi** protocol itself (Algorithm 2): one BinAA
//!   instance per checkpoint per level, sparse zero-run message bundling
//!   (§III-C), and the multi-level weighted aggregation with the
//!   `w′_l = w_l·|w_l − w_{l−1}|` differentiation trick.
//! - [`params`]: the parameter engine deriving `l_M`, `ε′` and `r_M` from
//!   `(ρ_0, Δ, ε, n)` exactly as Algorithm 2's setup does.
//! - [`aggregate`]: the pure weighted-average math of Algorithm 2 lines
//!   14–24, separated for direct unit-testing of the paper's lemmas.
//!
//! All protocol types are sans-io state machines implementing
//! [`Protocol`](delphi_primitives::Protocol); drive them with `delphi-sim`
//! (deterministic simulation) or `delphi-net` (real TCP).
//!
//! # Quickstart
//!
//! ```
//! use delphi_core::{DelphiConfig, DelphiNode};
//! use delphi_primitives::{NodeId, Protocol};
//! use delphi_sim::{Simulation, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 4 oracle nodes agree on a temperature reading near 20 °C.
//! let cfg = DelphiConfig::builder(4)
//!     .space(-50.0, 50.0)
//!     .rho0(0.5)
//!     .delta_max(8.0)
//!     .epsilon(0.5)
//!     .build()?;
//! let inputs = [19.8, 20.1, 20.3, 19.9];
//! let nodes = NodeId::all(4)
//!     .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
//!     .collect();
//! let report = delphi_sim::Simulation::new(Topology::lan(4)).seed(1).run(nodes);
//!
//! let outputs: Vec<f64> = report.honest_outputs().copied().collect();
//! assert_eq!(outputs.len(), 4);
//! for pair in outputs.windows(2) {
//!     assert!((pair[0] - pair[1]).abs() <= 0.5); // ε-agreement
//! }
//! assert!(outputs.iter().all(|&o| (19.3..=20.8).contains(&o))); // relaxed validity
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod binaa;
pub mod bv;
pub mod compact;
pub mod delphi;
mod messages;
pub mod oracle;
pub mod params;

pub use binaa::BinAaNode;
pub use compact::CompactBinAaNode;
pub use delphi::{DelphiNode, VectorDelphiNode};
pub use messages::{
    BasketBundle, BasketBundleRef, BasketSection, BasketSectionRef, BinAaMsg, DelphiBundle,
    DelphiBundleRef, EchoKind, Section, SectionRef,
};
pub use oracle::{OracleService, PriceSource, VectorOracleService};
pub use params::{ConfigError, DelphiConfig, DelphiConfigBuilder, InputRule};
