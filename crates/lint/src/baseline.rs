//! The baseline ratchet: existing violations are frozen per
//! `(rule, file)` in `lint-baseline.toml`; the checker fails on any new
//! violation (count above baseline) and on any stale entry (count below
//! baseline, which must be re-frozen with `--write-baseline`), so debt
//! can only burn down — never regrow, not even back up to an old count.

use std::collections::BTreeMap;

use crate::rules::Violation;

/// Frozen violation counts, keyed `(rule, file)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), u64>,
}

/// One ratchet discrepancy between the current run and the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Drift {
    /// The rule involved.
    pub rule: String,
    /// The file involved.
    pub file: String,
    /// Frozen count.
    pub baseline: u64,
    /// Current count.
    pub current: u64,
}

/// The ratchet verdict for one run.
#[derive(Clone, Debug, Default)]
pub struct Ratchet {
    /// Entries whose count grew (or appeared): each is a hard failure.
    pub grown: Vec<Drift>,
    /// Entries whose count shrank or vanished: the baseline is stale and
    /// must be re-frozen so the lower count becomes the new ceiling.
    pub stale: Vec<Drift>,
}

impl Ratchet {
    /// Whether the run holds the ratchet (nothing grew, nothing stale).
    pub fn clean(&self) -> bool {
        self.grown.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Builds a baseline freezing the given violations.
    pub fn freeze(violations: &[Violation]) -> Baseline {
        let mut counts = BTreeMap::new();
        for v in violations {
            *counts.entry((v.rule.to_string(), v.file.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Frozen count for `(rule, file)`.
    pub fn count(&self, rule: &str, file: &str) -> u64 {
        self.counts.get(&(rule.to_string(), file.to_string())).copied().unwrap_or(0)
    }

    /// Total frozen violations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Compares the current violations against this baseline.
    pub fn compare(&self, violations: &[Violation]) -> Ratchet {
        let current = Baseline::freeze(violations);
        let mut ratchet = Ratchet::default();
        for ((rule, file), &cur) in &current.counts {
            let base = self.count(rule, file);
            if cur > base {
                ratchet.grown.push(Drift {
                    rule: rule.clone(),
                    file: file.clone(),
                    baseline: base,
                    current: cur,
                });
            }
        }
        for ((rule, file), &base) in &self.counts {
            let cur = current.count(rule, file);
            if cur < base {
                ratchet.stale.push(Drift {
                    rule: rule.clone(),
                    file: file.clone(),
                    baseline: base,
                    current: cur,
                });
            }
        }
        ratchet
    }

    /// Renders the TOML document (`[rule]` sections, quoted file keys).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# delphi-lint baseline — frozen per-file violation counts.\n\
             # Regenerate with `cargo run -p delphi-lint -- --write-baseline`.\n\
             # The CI ratchet fails when any count grows OR shrinks without\n\
             # re-freezing: debt only burns down.\n",
        );
        let mut last_rule = "";
        for ((rule, file), count) in &self.counts {
            if rule != last_rule {
                out.push_str(&format!("\n[{rule}]\n"));
                last_rule = rule;
            }
            out.push_str(&format!("\"{file}\" = {count}\n"));
        }
        out
    }

    /// Parses a baseline document (the same TOML subset [`render`]
    /// emits: `[rule]` sections, `"file" = count` lines, `#` comments).
    ///
    /// # Errors
    ///
    /// Returns a line-tagged description for malformed entries.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        let mut rule = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                rule = header.trim_end_matches(']').trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("baseline line {}: expected `\"file\" = count`", i + 1));
            };
            if rule.is_empty() {
                return Err(format!("baseline line {}: entry before any [rule] section", i + 1));
            }
            let file = key.trim().trim_matches('"').to_string();
            let count: u64 = value
                .trim()
                .parse()
                .map_err(|e| format!("baseline line {}: bad count: {e}", i + 1))?;
            counts.insert((rule.clone(), file), count);
        }
        Ok(Baseline { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viol(rule: &'static str, file: &str) -> Violation {
        Violation { rule, file: file.to_string(), line: 1, message: String::new() }
    }

    #[test]
    fn render_parse_round_trip() {
        let base = Baseline::freeze(&[
            viol("no-panic", "a.rs"),
            viol("no-panic", "a.rs"),
            viol("bounded-channel", "b.rs"),
        ]);
        let parsed = Baseline::parse(&base.render()).expect("round-trips");
        assert_eq!(parsed, base);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn ratchet_fails_growth_and_stale_but_not_steady() {
        let base = Baseline::freeze(&[viol("no-panic", "a.rs"), viol("no-panic", "a.rs")]);
        assert!(base.compare(&[viol("no-panic", "a.rs"), viol("no-panic", "a.rs")]).clean());

        let grown = base.compare(&[
            viol("no-panic", "a.rs"),
            viol("no-panic", "a.rs"),
            viol("no-panic", "a.rs"),
        ]);
        assert_eq!(grown.grown.len(), 1);
        assert!(grown.stale.is_empty());

        let stale = base.compare(&[viol("no-panic", "a.rs")]);
        assert!(stale.grown.is_empty());
        assert_eq!(stale.stale.len(), 1);

        // A brand-new (rule, file) pair is growth from zero.
        let fresh = base.compare(&[
            viol("no-panic", "a.rs"),
            viol("no-panic", "a.rs"),
            viol("layering", "c.rs"),
        ]);
        assert_eq!(fresh.grown.len(), 1);
        assert_eq!(fresh.grown.first().map(|d| d.baseline), Some(0));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Baseline::parse("\"orphan.rs\" = 3").is_err());
        assert!(Baseline::parse("[no-panic]\n\"a.rs\" = many").is_err());
    }
}
