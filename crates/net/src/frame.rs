//! Authenticated wire frames.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! [u32 rest_len][u16 sender][payload ...][32-byte HMAC tag]
//! ```
//!
//! The tag is `HMAC-SHA256(key(sender, receiver), sender_be ‖ payload)`,
//! so a frame is bound to its claimed sender *and* to the receiving
//! channel: replaying it to a different receiver fails verification.
//! `rest_len` counts everything after the length word. The 4 + 2 + 32 + 2
//! bytes of overhead match the simulator's
//! [`WIRE_OVERHEAD_BYTES`](delphi_sim::WIRE_OVERHEAD_BYTES) budget, which
//! is what keeps simulated bandwidth equal to TCP bandwidth.

use std::error::Error;
use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};
use delphi_crypto::{Keychain, TAG_LEN};
use delphi_primitives::NodeId;

/// Maximum payload bytes accepted in one frame (16 MiB).
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024 * 1024;

/// Frame decoding / authentication failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is shorter than the fixed header + tag.
    Truncated,
    /// The declared payload exceeds [`MAX_FRAME_PAYLOAD`].
    TooLarge,
    /// The sender id is outside the deployment.
    UnknownSender,
    /// The HMAC tag did not verify.
    BadTag,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::TooLarge => write!(f, "frame exceeds maximum payload"),
            FrameError::UnknownSender => write!(f, "frame sender unknown"),
            FrameError::BadTag => write!(f, "frame authentication failed"),
        }
    }
}

impl Error for FrameError {}

/// Encodes an authenticated frame from `keychain.node_id()` to `to`.
///
/// The result includes the leading length word and is ready to write to a
/// socket.
pub fn encode_frame(keychain: &Keychain, to: NodeId, payload: &[u8]) -> Bytes {
    let me = keychain.node_id();
    let sender_be = me.0.to_be_bytes();
    let tag = keychain.channel(to).tag_segments(&[&sender_be, payload]);
    let rest_len = 2 + payload.len() + TAG_LEN;
    let mut buf = BytesMut::with_capacity(4 + rest_len);
    buf.put_u32(rest_len as u32);
    buf.put_u16(me.0);
    buf.put_slice(payload);
    buf.put_slice(&tag);
    buf.freeze()
}

/// Decodes and authenticates one frame body (everything *after* the
/// length word) arriving at `keychain.node_id()`.
///
/// # Errors
///
/// Returns a [`FrameError`] on malformed, oversized, or forged frames;
/// callers drop such frames.
pub fn decode_frame(keychain: &Keychain, body: &[u8]) -> Result<(NodeId, Bytes), FrameError> {
    if body.len() < 2 + TAG_LEN {
        return Err(FrameError::Truncated);
    }
    let sender = NodeId(u16::from_be_bytes([body[0], body[1]]));
    if sender.index() >= keychain.n() {
        return Err(FrameError::UnknownSender);
    }
    let payload = &body[2..body.len() - TAG_LEN];
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(FrameError::TooLarge);
    }
    let tag = &body[body.len() - TAG_LEN..];
    let sender_be = sender.0.to_be_bytes();
    let expect = keychain.channel(sender).tag_segments(&[&sender_be, payload]);
    if expect != tag {
        return Err(FrameError::BadTag);
    }
    Ok((sender, Bytes::copy_from_slice(payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Keychain, Keychain) {
        (Keychain::derive(b"seed", NodeId(0), 3), Keychain::derive(b"seed", NodeId(1), 3))
    }

    #[test]
    fn roundtrip() {
        let (alice, bob) = pair();
        let frame = encode_frame(&alice, NodeId(1), b"hello");
        // Strip the length word, as the reader does.
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        let (sender, payload) = decode_frame(&bob, &frame[4..]).unwrap();
        assert_eq!(sender, NodeId(0));
        assert_eq!(&payload[..], b"hello");
    }

    #[test]
    fn tampered_payload_rejected() {
        let (alice, bob) = pair();
        let frame = encode_frame(&alice, NodeId(1), b"hello");
        let mut body = frame[4..].to_vec();
        body[3] ^= 1; // flip a payload bit
        assert_eq!(decode_frame(&bob, &body), Err(FrameError::BadTag));
    }

    #[test]
    fn forged_sender_rejected() {
        let (alice, bob) = pair();
        let frame = encode_frame(&alice, NodeId(1), b"hello");
        let mut body = frame[4..].to_vec();
        body[1] = 2; // claim sender 2
        assert_eq!(decode_frame(&bob, &body), Err(FrameError::BadTag));
    }

    #[test]
    fn misdirected_frame_rejected() {
        // A frame addressed to node 1 replayed at node 2 fails: the tag
        // is under key (0,1), not (0,2).
        let (alice, _) = pair();
        let carol = Keychain::derive(b"seed", NodeId(2), 3);
        let frame = encode_frame(&alice, NodeId(1), b"hello");
        assert_eq!(decode_frame(&carol, &frame[4..]), Err(FrameError::BadTag));
    }

    #[test]
    fn unknown_sender_rejected() {
        let (_, bob) = pair();
        let mut body = vec![0xff, 0xff]; // sender 65535
        body.extend_from_slice(&[0u8; TAG_LEN]);
        assert_eq!(decode_frame(&bob, &body), Err(FrameError::UnknownSender));
    }

    #[test]
    fn truncated_frame_rejected() {
        let (_, bob) = pair();
        assert_eq!(decode_frame(&bob, &[0, 1, 2]), Err(FrameError::Truncated));
    }

    #[test]
    fn empty_payload_is_fine() {
        let (alice, bob) = pair();
        let frame = encode_frame(&alice, NodeId(1), b"");
        let (sender, payload) = decode_frame(&bob, &frame[4..]).unwrap();
        assert_eq!(sender, NodeId(0));
        assert!(payload.is_empty());
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            FrameError::Truncated,
            FrameError::TooLarge,
            FrameError::UnknownSender,
            FrameError::BadTag,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
