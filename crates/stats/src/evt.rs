//! Extreme-value theory helpers (§IV-D "Analysis under probability
//! distributions").
//!
//! Delphi's `Δ` parameter must bound the honest input range `δ` except
//! with probability negligible in the statistical parameter `λ`. The
//! paper derives `Δ` from the extreme-value law of the range:
//!
//! - thin-tailed inputs (Normal, Gamma, Lognormal): the range of `n`
//!   samples follows a **Gumbel** law whose mean grows as `O(log n)`,
//!   giving `Δ = O(λ · log n)`;
//! - fat-tailed inputs (Pareto, Loggamma with shape `α`): the range
//!   follows a **Fréchet** law, giving `Δ = O(2^{λ/α} · n^{1/α})`.
//!
//! This module provides both the analytic tail bounds and an empirical
//! range sampler to validate them.

use rand::Rng;

use crate::dist::{ContinuousDist, Frechet, Gumbel};
use crate::fit;

/// Samples the range `max − min` of `n` i.i.d. draws from `dist`.
pub fn sample_range<D: ContinuousDist, R: Rng + ?Sized>(dist: &D, n: usize, rng: &mut R) -> f64 {
    assert!(n >= 1, "range of at least one sample");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for _ in 0..n {
        let x = dist.sample(rng);
        lo = lo.min(x);
        hi = hi.max(x);
    }
    hi - lo
}

/// Draws `trials` independent ranges of `n` samples each.
pub fn range_distribution<D: ContinuousDist, R: Rng + ?Sized>(
    dist: &D,
    n: usize,
    trials: usize,
    rng: &mut R,
) -> Vec<f64> {
    (0..trials).map(|_| sample_range(dist, n, rng)).collect()
}

/// `Δ` such that `P(X > Δ) ≤ 2^{−λ}` for a Gumbel-distributed range.
///
/// Uses the exact Gumbel quantile at `p = 1 − 2^{−λ}`; for large `λ` this
/// is `µ + β·(λ ln 2 + o(1))` — the paper's `Δ = O(λ·δ_mean)` for
/// thin-tailed inputs.
pub fn gumbel_tail_bound(gumbel: &Gumbel, lambda_bits: u32) -> f64 {
    let p = 1.0 - 0.5f64.powi(lambda_bits as i32);
    // For λ ≥ 50 the quantile formula underflows; use the asymptotic
    // expansion −ln(−ln p) ≈ λ ln 2 instead.
    if p < 1.0 - 1e-14 {
        gumbel.quantile(p)
    } else {
        gumbel.loc() + gumbel.scale() * (f64::from(lambda_bits) * std::f64::consts::LN_2)
    }
}

/// `Δ` such that `P(X > Δ) ≤ 2^{−λ}` for a Fréchet-distributed range.
///
/// For large `λ` this behaves as `m + s·2^{λ/α}` — exponential in `λ/α`,
/// the paper's fat-tail penalty.
pub fn frechet_tail_bound(frechet: &Frechet, lambda_bits: u32) -> f64 {
    let p = 1.0 - 0.5f64.powi(lambda_bits as i32);
    if p < 1.0 - 1e-14 {
        frechet.quantile(p)
    } else {
        // −ln p ≈ 2^{−λ}: quantile = m + s·(2^{−λ})^{−1/α} = m + s·2^{λ/α}.
        let s = frechet.scale();
        frechet.quantile(0.5) - s * (2f64.ln()).powf(-1.0 / frechet.alpha())
            + s * 2f64.powf(f64::from(lambda_bits) / frechet.alpha())
    }
}

/// Empirically derives the Delphi `Δ` for a thin-tailed input model:
/// simulates ranges of `n` draws, fits a Gumbel, and returns its
/// `λ`-bit tail bound. This is exactly the paper's §VI-A methodology with
/// synthetic data standing in for the exchange feed.
pub fn delta_for_thin_tail<D: ContinuousDist, R: Rng + ?Sized>(
    dist: &D,
    n: usize,
    lambda_bits: u32,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let ranges = range_distribution(dist, n, trials, rng);
    match fit::gumbel_moments(&ranges) {
        Ok(g) => gumbel_tail_bound(&g, lambda_bits),
        // Degenerate (e.g. constant) data: fall back to the max observed.
        Err(_) => ranges.iter().copied().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::Summary;
    use crate::dist::{Normal, Pareto};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn range_is_nonnegative_and_grows_with_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(0.0, 1.0).unwrap();
        let small = Summary::of(&range_distribution(&d, 4, 400, &mut rng));
        let large = Summary::of(&range_distribution(&d, 160, 400, &mut rng));
        assert!(small.min >= 0.0);
        assert!(large.mean > small.mean, "range grows with n");
    }

    #[test]
    fn normal_range_grows_logarithmically() {
        // EVT: E[range of n normals] ≈ 2σ·sqrt(2 ln n); the ratio between
        // n = 256 and n = 16 should be near sqrt(ln 256 / ln 16) ≈ 1.41,
        // far below the ratio 4 that linear growth would give.
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(0.0, 1.0).unwrap();
        let r16 = Summary::of(&range_distribution(&d, 16, 2000, &mut rng)).mean;
        let r256 = Summary::of(&range_distribution(&d, 256, 2000, &mut rng)).mean;
        let ratio = r256 / r16;
        assert!(ratio > 1.1 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn pareto_range_grows_polynomially() {
        // Fat tails: range of n Pareto(α = 1.5) grows ≈ n^{2/3} — much
        // faster than the thin-tailed log growth.
        let mut rng = StdRng::seed_from_u64(3);
        let d = Pareto::new(1.0, 1.5).unwrap();
        let r16 = Summary::of(&range_distribution(&d, 16, 4000, &mut rng)).median;
        let r256 = Summary::of(&range_distribution(&d, 256, 4000, &mut rng)).median;
        let ratio = r256 / r16;
        assert!(ratio > 3.0, "fat-tail range ratio {ratio} should far exceed log growth");
    }

    #[test]
    fn gumbel_bound_is_a_tail_bound() {
        let g = Gumbel::new(25.0, 8.0).unwrap();
        for lambda in [8, 16, 30] {
            let delta = gumbel_tail_bound(&g, lambda);
            let p_exceed = 1.0 - g.cdf(delta);
            assert!(
                p_exceed <= 0.5f64.powi(lambda as i32) * 1.01 + 1e-15,
                "λ = {lambda}: P(exceed) = {p_exceed}"
            );
        }
        // Monotone in λ.
        assert!(gumbel_tail_bound(&g, 20) < gumbel_tail_bound(&g, 30));
        // Large λ uses the asymptotic branch and stays finite.
        let big = gumbel_tail_bound(&g, 60);
        assert!(big.is_finite() && big > gumbel_tail_bound(&g, 30));
    }

    #[test]
    fn frechet_bound_is_exponential_in_lambda_over_alpha() {
        let f = Frechet::new(0.0, 29.3, 4.41).unwrap();
        let d10 = frechet_tail_bound(&f, 10);
        let d20 = frechet_tail_bound(&f, 20);
        let d30 = frechet_tail_bound(&f, 30);
        // Each +10 bits multiplies the bound by ≈ 2^{10/4.41} ≈ 4.8.
        let g1 = d20 / d10;
        let g2 = d30 / d20;
        assert!(g1 > 3.0 && g1 < 7.0, "growth {g1}");
        assert!(g2 > 3.0 && g2 < 7.0, "growth {g2}");
        // Tail property against the true CDF.
        let p_exceed = 1.0 - f.cdf(d20);
        assert!(p_exceed <= 0.5f64.powi(20) * 1.01 + 1e-15);
    }

    #[test]
    fn paper_oracle_delta_magnitude() {
        // §VI-A: Fréchet(α = 4.41, s = 29.3) range model, λ = 30 bits
        // gives Δ ≈ 2000$. Our bound should land in that ballpark.
        let f = Frechet::new(0.0, 29.3, 4.41).unwrap();
        let delta = frechet_tail_bound(&f, 30);
        assert!((1000.0..4000.0).contains(&delta), "Δ = {delta} should be near the paper's 2000$");
    }

    #[test]
    fn delta_for_thin_tail_bounds_observed_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Normal::new(100.0, 2.0).unwrap();
        let delta = delta_for_thin_tail(&d, 64, 20, 500, &mut rng);
        // All observed ranges must sit below the 20-bit bound.
        let ranges = range_distribution(&d, 64, 500, &mut rng);
        let max_seen = ranges.iter().copied().fold(0.0, f64::max);
        assert!(delta > max_seen, "Δ = {delta} ≤ max observed {max_seen}");
        // And the bound is not absurdly loose (within ~4x of the max).
        assert!(delta < 4.0 * max_seen, "Δ = {delta} vs max {max_seen}");
    }
}
