//! Special functions used by the distribution implementations.
//!
//! Classic, well-understood approximations (Abramowitz & Stegun for
//! `erf`, Lanczos for `ln Γ`, series/continued-fraction for the
//! regularized incomplete gamma), each validated against reference values
//! in the tests.

/// Error function, via Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5·10⁻⁷).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9; |ε| < 10⁻¹⁰ over the positive reals).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π/sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Gamma function `Γ(x)`.
pub fn gamma(x: f64) -> f64 {
    if x <= 0.0 && x.fract() == 0.0 {
        return f64::NAN; // poles at non-positive integers
    }
    if x < 0.5 {
        // Reflection on the value itself (not `ln Γ`, whose reflection
        // formula loses the sign for negative arguments where Γ(x) < 0):
        // Γ(x) = π / (sin(πx) · Γ(1−x)).
        let pi = std::f64::consts::PI;
        pi / ((pi * x).sin() * gamma(1.0 - x))
    } else {
        ln_gamma(x).exp()
    }
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`,
/// computed by series expansion for `x < a + 1` and by the continued
/// fraction of the complement otherwise (Numerical Recipes `gammp`).
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    if a.is_nan() || a <= 0.0 || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Inverse of the standard normal CDF (Acklam's algorithm, |ε| relative
/// < 1.15·10⁻⁹).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn inv_std_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_8,
        -275.928_510_446_968_96,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_97,
        -155.698_979_859_886_66,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 2e-7); // A&S 7.1.26 absolute accuracy
        close(erf(0.5), 0.5204998778, 2e-7);
        close(erf(1.0), 0.8427007929, 2e-7);
        close(erf(2.0), 0.9953222650, 2e-7);
        close(erf(-1.0), -0.8427007929, 2e-7);
        close(erf(5.0), 1.0, 1e-9);
    }

    #[test]
    fn ln_gamma_reference_values() {
        close(ln_gamma(1.0), 0.0, 1e-10);
        close(ln_gamma(2.0), 0.0, 1e-10);
        close(ln_gamma(0.5), 0.5723649429247001, 1e-9); // ln sqrt(pi)
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-9);
        close(ln_gamma(10.0), 362880.0f64.ln(), 1e-8);
        // Non-integer: Γ(4.41) via Γ(x) = (x-1)Γ(x-1) chain from tables.
        close(gamma(4.41), 3.41 * 2.41 * 1.41 * gamma(1.41), 1e-6);
    }

    #[test]
    fn gamma_negative_arguments() {
        let sqrt_pi = std::f64::consts::PI.sqrt();
        // Γ(-1/2) = -2√π and Γ(-3/2) = 4√π/3: the sign must alternate.
        close(gamma(-0.5), -2.0 * sqrt_pi, 1e-9);
        close(gamma(-1.5), 4.0 * sqrt_pi / 3.0, 1e-9);
        close(gamma(-2.5), -8.0 * sqrt_pi / 15.0, 1e-9);
        // Poles at non-positive integers.
        assert!(gamma(0.0).is_nan());
        assert!(gamma(-3.0).is_nan());
    }

    #[test]
    fn reg_lower_gamma_reference_values() {
        // P(1, x) = 1 - e^{-x}.
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-10);
        }
        // P(a, 0) = 0; P(a, inf) -> 1.
        close(reg_lower_gamma(3.3, 0.0), 0.0, 1e-12);
        close(reg_lower_gamma(3.3, 100.0), 1.0, 1e-10);
        // P(0.5, x) = erf(sqrt(x)).
        for x in [0.2, 1.0, 2.5] {
            close(reg_lower_gamma(0.5, x), erf(x.sqrt()), 1e-6);
        }
        // Monotone in x.
        assert!(reg_lower_gamma(2.0, 1.0) < reg_lower_gamma(2.0, 2.0));
    }

    #[test]
    fn inv_std_normal_reference_values() {
        close(inv_std_normal_cdf(0.5), 0.0, 1e-9);
        close(inv_std_normal_cdf(0.975), 1.959963985, 1e-7);
        close(inv_std_normal_cdf(0.025), -1.959963985, 1e-7);
        close(inv_std_normal_cdf(0.999), 3.090232306, 1e-6);
        close(inv_std_normal_cdf(1e-9), -5.997807015, 1e-5);
    }

    #[test]
    fn inv_normal_inverts_erf_cdf() {
        // cdf(x) = (1 + erf(x/sqrt2))/2; check round-trips.
        for p in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let x = inv_std_normal_cdf(p);
            let back = 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2));
            close(back, p, 3e-7);
        }
    }

    #[test]
    #[should_panic(expected = "quantile probability")]
    fn inv_normal_rejects_out_of_range() {
        let _ = inv_std_normal_cdf(1.0);
    }
}
