#![forbid(unsafe_code)]
//! Regenerates **Table III**: oracle-reporting protocol comparison.
//!
//! The Delphi-DORA row is *measured*: we drive a DORA cluster with a
//! deterministic in-process mesh (so the per-node signature counters stay
//! accessible), count signing/verification operations and attestation
//! bytes, and check the ≤-2-candidates property. The Chainlink and
//! DORA [20] rows reproduce the paper's published complexities — they
//! need partially-synchronous BFT / an external SMR round-trip and are
//! out of scope to execute (DESIGN.md §5).
//!
//! `cargo run --release -p delphi-bench --bin table3_dora`

use delphi_bench::{spread_inputs, TextTable};
use delphi_core::DelphiConfig;
use delphi_dora::{DoraMsg, DoraNode, SmrChannel};
use delphi_primitives::wire::Decode;
use delphi_primitives::{Envelope, NodeId, Protocol, Recipient};

fn main() {
    let n = 16;
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(2.0)
        .delta_max(2000.0)
        .epsilon(2.0)
        .build()
        .expect("config");
    let t = cfg.t();
    let inputs = spread_inputs(n, 40_000.0, 20.0);
    let seed = b"table3";

    let mut nodes: Vec<DoraNode> =
        NodeId::all(n).map(|id| DoraNode::new(cfg.clone(), id, inputs[id.index()], seed)).collect();

    // Deterministic in-process mesh: FIFO queue of (from, recipient, bytes).
    let mut queue: std::collections::VecDeque<(NodeId, Recipient, bytes::Bytes)> =
        std::collections::VecDeque::new();
    let mut attest_msgs = 0u64;
    let mut attest_bytes = 0u64;
    let push = |queue: &mut std::collections::VecDeque<_>,
                from: NodeId,
                envs: Vec<Envelope>,
                attest_msgs: &mut u64,
                attest_bytes: &mut u64| {
        for env in envs {
            if let Ok(DoraMsg::Attest { .. }) = DoraMsg::from_bytes(&env.payload) {
                *attest_msgs += u64::from(env.to == Recipient::All) * (n as u64 - 1);
                *attest_bytes += env.payload.len() as u64 * (n as u64 - 1);
            }
            queue.push_back((from, env.to, env.payload));
        }
    };
    for (i, node) in nodes.iter_mut().enumerate() {
        let envs = node.start();
        push(&mut queue, NodeId(i as u16), envs, &mut attest_msgs, &mut attest_bytes);
    }
    let mut deliveries = 0u64;
    while let Some((from, to, payload)) = queue.pop_front() {
        deliveries += 1;
        assert!(deliveries < 50_000_000, "mesh did not quiesce");
        match to {
            Recipient::All => {
                for (j, node) in nodes.iter_mut().enumerate() {
                    if j != from.index() {
                        let envs = node.on_message(from, &payload);
                        push(
                            &mut queue,
                            NodeId(j as u16),
                            envs,
                            &mut attest_msgs,
                            &mut attest_bytes,
                        );
                    }
                }
            }
            Recipient::One(dest) => {
                let envs = nodes[dest.index()].on_message(from, &payload);
                push(&mut queue, dest, envs, &mut attest_msgs, &mut attest_bytes);
            }
        }
    }

    // Collect certificates and operation counts.
    let mut smr = SmrChannel::new(seed, n, t);
    let mut total_signs = 0u64;
    let mut total_verifs = 0u64;
    let mut max_verifs = 0u64;
    for node in &nodes {
        let ops = node.op_counts();
        total_signs += ops.signs;
        total_verifs += ops.verifications;
        max_verifs = max_verifs.max(ops.verifications);
        let cert = node.output().expect("every node certified");
        assert!(smr.submit(cert), "honest certificate accepted");
    }
    let candidates = smr.distinct_values();

    println!("== Table III: oracle reporting protocols ==\n");
    let mut table = TextTable::new(&[
        "protocol",
        "network",
        "communication",
        "sign ops/node",
        "verify ops/node",
        "rounds",
        "validity",
        "outputs",
    ]);
    table.row(&[
        "Chainlink [16]".into(),
        "p-sync".into(),
        "O(l n^3 + k n^3) (paper)".into(),
        "O(1) (paper)".into(),
        "O(n) (paper)".into(),
        "4 (paper)".into(),
        "[m, M]".into(),
        "1".into(),
    ]);
    table.row(&[
        "DORA [20]".into(),
        "async".into(),
        "O(l n^2 + k n^2) (paper)".into(),
        "O(1) (paper)".into(),
        "O(n) (paper)".into(),
        "3 (paper)".into(),
        "[m, M]".into(),
        "O(n)".into(),
    ]);
    table.row(&[
        "Delphi (measured)".into(),
        "async".into(),
        format!("{attest_msgs} attest msgs / {attest_bytes} B + Delphi traffic"),
        format!("{:.2}", total_signs as f64 / n as f64),
        format!("{:.2} (max {max_verifs})", total_verifs as f64 / n as f64),
        format!("{} + 1 attest", cfg.r_max()),
        "[m-d-e, M+d+e]".into(),
        format!("{} (≤ 2)", candidates.len()),
    ]);
    println!("{}", table.render());

    println!("shape checks:");
    println!("  1 signature per node: {}", total_signs == n as u64);
    println!("  verifications O(n) per node (≤ 2n = {}): {}", 2 * n, max_verifs <= 2 * n as u64);
    println!("  at most two candidate outputs: {} ({candidates:?})", candidates.len() <= 2);
    println!(
        "  consumed value within relaxed hull: {}",
        (39_960.0..=40_040.0).contains(&smr.consumed().expect("cert").value())
    );
    assert!(total_signs == n as u64);
    assert!(candidates.len() <= 2);
}
