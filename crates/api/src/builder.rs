//! [`ServiceBuilder`]: the one public way to assemble a Delphi oracle
//! node — pipeline shape, transport knobs, and the serving layer — in a
//! single chained expression.
//!
//! The pieces it replaces were positional: `OracleService::new` /
//! `new_sharded`, `EpochProtocol::new_sharded`, and a bare `RunOptions`
//! struct that every binary filled field by field. The builder owns all
//! of it:
//!
//! ```ignore
//! let handle = ServiceBuilder::new(cfg, me)
//!     .epochs(120).assets(4).pipeline_depth(2).window(6)
//!     .flush(FlushPolicy::adaptive()).recv_shards(2)
//!     .api_bind("127.0.0.1:0".parse().unwrap())
//!     .serve(seed, addrs, source)
//!     .await?;
//! println!("serving on {:?}", handle.api_addr());
//! let (events, epoch_stats, net_stats) = handle.finish().await?;
//! ```
//!
//! [`serve`](ServiceBuilder::serve) runs the full deployment: protocol
//! over TCP, a publisher task tailing the event stream into the
//! [`FeedState`] cache and [`SubscriberHub`], slot attestations minted
//! per agreement, and (with [`api_bind`](ServiceBuilder::api_bind)) the
//! HTTP server. [`build_service`](ServiceBuilder::build_service) stops at
//! the sans-io [`OracleService`] for simulator runs.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use delphi_core::oracle::PriceSource;
use delphi_core::{DelphiConfig, OracleService, VectorOracleService};
use delphi_crypto::Keychain;
use delphi_net::{
    run_epoch_service, EpochServiceHandle, NetError, NetStats, RunOptions, ServiceStats,
};
use delphi_primitives::{
    flatten_vector_events, EpochConfig, EpochEvent, EpochOutcome, EpochStats, FlushPolicy,
    InstanceId, NodeId,
};

use crate::attest::QuorumSigner;
use crate::feed::{FeedState, FeedUpdate};
use crate::hub::SubscriberHub;
use crate::server::{ApiContext, ApiServer};

/// Assembles an oracle node: protocol config, epoch pipeline shape,
/// transport options, and the read-side serving layer.
#[derive(Debug)]
pub struct ServiceBuilder {
    cfg: DelphiConfig,
    me: NodeId,
    epochs: u32,
    assets: u16,
    depth: usize,
    window: usize,
    opts: RunOptions,
    api_bind: Option<SocketAddr>,
    history: usize,
    subscriber_capacity: usize,
    vector: bool,
}

impl ServiceBuilder {
    /// A builder for node `me` under `cfg`, with a 1-asset, 1-epoch
    /// stream and default transport options until configured otherwise.
    pub fn new(cfg: DelphiConfig, me: NodeId) -> ServiceBuilder {
        ServiceBuilder {
            cfg,
            me,
            epochs: 1,
            assets: 1,
            depth: 2,
            window: 4,
            opts: RunOptions::default(),
            api_bind: None,
            history: 64,
            subscriber_capacity: 32,
            vector: false,
        }
    }

    /// Stream length `K`: total epochs to agree on.
    pub fn epochs(mut self, epochs: u32) -> ServiceBuilder {
        self.epochs = epochs;
        self
    }

    /// Basket size: independent agreements per epoch.
    pub fn assets(mut self, assets: u16) -> ServiceBuilder {
        self.assets = assets;
        self
    }

    /// Epochs in flight at once (the epoch-rate knob).
    pub fn pipeline_depth(mut self, depth: usize) -> ServiceBuilder {
        self.depth = depth;
        self
    }

    /// Epochs resident in memory (≥ depth; the excess answers laggards).
    pub fn window(mut self, window: usize) -> ServiceBuilder {
        self.window = window;
        self
    }

    /// Batch flush policy for outgoing protocol traffic.
    pub fn flush(mut self, flush: FlushPolicy) -> ServiceBuilder {
        self.opts = self.opts.flush(flush);
        self
    }

    /// Receive-path dispatch shards (see `RunOptions::recv_shards`).
    pub fn recv_shards(mut self, shards: usize) -> ServiceBuilder {
        self.opts = self.opts.recv_shards(shards);
        self
    }

    /// Egress send lanes (see `RunOptions::send_shards`): per-lane
    /// workers that batch, encode, and HMAC outbound frames in parallel.
    /// Wire output is identical for any value; parallelism tops out at
    /// `recv_shards`.
    pub fn send_shards(mut self, shards: usize) -> ServiceBuilder {
        self.opts = self.opts.send_shards(shards);
        self
    }

    /// Per-peer outbound writer queue capacity, in frames (see
    /// `RunOptions::egress_capacity`): frames beyond it are dropped and
    /// counted rather than buffered without bound.
    pub fn egress_capacity(mut self, capacity: usize) -> ServiceBuilder {
        self.opts = self.opts.egress_capacity(capacity);
        self
    }

    /// Whether to batch protocol steps into shared frames.
    pub fn batching(mut self, batching: bool) -> ServiceBuilder {
        self.opts = self.opts.batching(batching);
        self
    }

    /// Overall run deadline.
    pub fn deadline(mut self, deadline: Duration) -> ServiceBuilder {
        self.opts = self.opts.deadline(deadline);
        self
    }

    /// Post-completion linger (help slower peers finish).
    pub fn linger(mut self, linger: Duration) -> ServiceBuilder {
        self.opts = self.opts.linger(linger);
        self
    }

    /// Redial delay after a lost peer connection.
    pub fn reconnect_delay(mut self, delay: Duration) -> ServiceBuilder {
        self.opts = self.opts.reconnect_delay(delay);
        self
    }

    /// Serve readers over HTTP on `addr` (port 0 picks a free port).
    pub fn api_bind(mut self, addr: SocketAddr) -> ServiceBuilder {
        self.api_bind = Some(addr);
        self
    }

    /// Past updates retained per asset for `/v0/history`.
    pub fn history_depth(mut self, depth: usize) -> ServiceBuilder {
        self.history = depth;
        self
    }

    /// Undelivered updates a subscriber may buffer before the lag-kick.
    pub fn subscriber_capacity(mut self, capacity: usize) -> ServiceBuilder {
        self.subscriber_capacity = capacity;
        self
    }

    /// Run each epoch's basket as ONE vector-valued agreement instance
    /// instead of [`assets`](ServiceBuilder::assets) independent scalar
    /// instances. The basket exchanges a single bundle per round and
    /// walks the quorum machinery once per round rather than once per
    /// asset; readers see the same per-asset feed either way. Off by
    /// default — the per-asset path is byte-identical when unset.
    pub fn vector_baskets(mut self, vector: bool) -> ServiceBuilder {
        self.vector = vector;
        self
    }

    fn epoch_config(&self) -> EpochConfig {
        EpochConfig::new(self.epochs, self.assets, self.depth, self.window, self.cfg.t())
    }

    /// The sans-io [`OracleService`] this builder describes — the
    /// simulator path, and the escape hatch for custom transports.
    ///
    /// # Panics
    ///
    /// Panics on an invalid pipeline shape (zero epochs/assets/depth or
    /// `window < depth`), `me` out of range, or if
    /// [`vector_baskets`](ServiceBuilder::vector_baskets) was set (use
    /// [`build_vector_service`](ServiceBuilder::build_vector_service)).
    pub fn build_service(self, source: PriceSource) -> OracleService {
        assert!(
            !self.vector,
            "vector_baskets(true) describes a VectorOracleService; call build_vector_service"
        );
        let epochs = self.epoch_config();
        OracleService::from_parts(
            self.cfg,
            self.me,
            epochs,
            self.opts.flush,
            self.opts.recv_shards,
            source,
        )
    }

    /// The sans-io [`VectorOracleService`] this builder describes when
    /// [`vector_baskets`](ServiceBuilder::vector_baskets) is on: one
    /// multidimensional agreement instance per epoch, with
    /// [`assets`](ServiceBuilder::assets) as the basket dimension count.
    ///
    /// # Panics
    ///
    /// As [`build_service`](ServiceBuilder::build_service), plus a basket
    /// larger than `MAX_VECTOR_DIMS`.
    pub fn build_vector_service(self, source: PriceSource) -> VectorOracleService {
        let epochs = self.epoch_config();
        VectorOracleService::from_parts(self.cfg, self.me, epochs, self.opts.flush, source)
    }

    /// Runs the full node: the epoch stream over TCP against `addrs`,
    /// the publisher tailing agreements into the snapshot cache and
    /// subscriber hub (attesting each slot under `seed`), and — when
    /// [`api_bind`](ServiceBuilder::api_bind) was set — the HTTP server.
    ///
    /// `seed` is the deployment's shared key material: it derives the
    /// transport keychain and the attestation keys, exactly as the
    /// cluster config file does.
    ///
    /// # Errors
    ///
    /// [`NetError::Config`] / [`NetError::Io`] as `run_epoch_service`,
    /// plus [`NetError::Io`] if the API listener cannot bind.
    ///
    /// # Panics
    ///
    /// As [`build_service`](ServiceBuilder::build_service).
    pub async fn serve(
        self,
        seed: &[u8],
        addrs: Vec<SocketAddr>,
        source: PriceSource,
    ) -> Result<OracleHandle, NetError> {
        let n = self.cfg.n();
        let t = self.cfg.t();
        let epsilon = self.cfg.epsilon();
        let assets = self.assets;
        let history = self.history;
        let subscriber_capacity = self.subscriber_capacity;
        let api_bind = self.api_bind;
        let keychain = Keychain::derive(seed, self.me, n);
        let signer = QuorumSigner::new(seed, t, epsilon);
        let opts = self.opts.clone();

        let feed = Arc::new(FeedState::new(assets, history));
        let hub = Arc::new(SubscriberHub::new(assets, subscriber_capacity));

        // Both lanes publish the same per-asset feed shape: a vector
        // epoch's basket values land as assets 0..dims in slot order, so
        // readers cannot tell which agreement mode produced an update.
        let publish = {
            let feed = feed.clone();
            let hub = hub.clone();
            move |epoch, a: usize, value: f64| {
                let asset = InstanceId(a as u16);
                let attestation = Some(signer.attest(epoch, asset, value));
                let update = feed.publish(FeedUpdate { epoch, asset, value, attestation });
                hub.broadcast(&update);
            }
        };

        let (service, publisher) = if self.vector {
            let service = self.build_vector_service(source);
            let mut handle = run_epoch_service(service.into_mux(), keychain, addrs, opts).await?;
            let mut rx = handle.take_events().expect("fresh handle has the event tail");
            let hub = hub.clone();
            let publisher = tokio::spawn(async move {
                while let Some(event) = rx.recv().await {
                    if let EpochOutcome::Agreed(slots) = event.outcome {
                        for (a, value) in slots.into_iter().flatten().enumerate() {
                            publish(event.epoch, a, value);
                        }
                    }
                }
                hub.close_all();
            });
            (ServiceLane::Vector(handle), publisher)
        } else {
            let service = self.build_service(source);
            let mut handle = run_epoch_service(service.into_mux(), keychain, addrs, opts).await?;
            let mut rx = handle.take_events().expect("fresh handle has the event tail");
            let hub = hub.clone();
            let publisher = tokio::spawn(async move {
                while let Some(event) = rx.recv().await {
                    if let EpochOutcome::Agreed(values) = event.outcome {
                        for (a, value) in values.into_iter().enumerate() {
                            publish(event.epoch, a, value);
                        }
                    }
                }
                // The stream is over (or the service errored): end every
                // subscription so serving tasks wind down.
                hub.close_all();
            });
            (ServiceLane::Scalar(handle), publisher)
        };

        let api = match api_bind {
            Some(addr) => {
                let ctx = Arc::new(ApiContext {
                    feed: feed.clone(),
                    hub: hub.clone(),
                    stats: Some(service.stats()),
                    quorum: Some((n, t)),
                });
                Some(ApiServer::bind(addr, ctx).await.map_err(NetError::from)?)
            }
            None => None,
        };

        Ok(OracleHandle { service, publisher, api, feed, hub })
    }
}

/// The running transport handle, in whichever agreement mode the builder
/// selected. Everything downstream (feed, attestations, finish shape) is
/// mode-agnostic; only the in-flight event payload differs.
enum ServiceLane {
    /// Per-asset scalar instances (the default path).
    Scalar(EpochServiceHandle<f64>),
    /// One vector instance per epoch ([`ServiceBuilder::vector_baskets`]).
    Vector(EpochServiceHandle<Vec<f64>>),
}

impl ServiceLane {
    fn stats(&self) -> ServiceStats {
        match self {
            ServiceLane::Scalar(h) => h.stats(),
            ServiceLane::Vector(h) => h.stats(),
        }
    }

    fn stats_snapshot(&self) -> EpochStats {
        match self {
            ServiceLane::Scalar(h) => h.stats_snapshot(),
            ServiceLane::Vector(h) => h.stats_snapshot(),
        }
    }

    async fn finish(self) -> Result<(Vec<EpochEvent<f64>>, EpochStats, NetStats), NetError> {
        match self {
            ServiceLane::Scalar(h) => h.finish().await,
            ServiceLane::Vector(h) => {
                let (events, epoch_stats, net_stats) = h.finish().await?;
                Ok((flatten_vector_events(events), epoch_stats, net_stats))
            }
        }
    }
}

/// A running oracle node with its serving layer, returned by
/// [`ServiceBuilder::serve`].
pub struct OracleHandle {
    service: ServiceLane,
    publisher: tokio::task::JoinHandle<()>,
    api: Option<ApiServer>,
    feed: Arc<FeedState>,
    hub: Arc<SubscriberHub>,
}

impl OracleHandle {
    /// The HTTP server's bound address, when serving was enabled.
    pub fn api_addr(&self) -> Option<SocketAddr> {
        self.api.as_ref().map(ApiServer::local_addr)
    }

    /// The snapshot cache (in-process readers skip HTTP entirely).
    pub fn feed(&self) -> Arc<FeedState> {
        self.feed.clone()
    }

    /// The subscription hub (in-process subscribers).
    pub fn hub(&self) -> Arc<SubscriberHub> {
        self.hub.clone()
    }

    /// A cloneable live-stats probe.
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// One coherent copy of the epoch-layer counters, right now.
    pub fn stats_snapshot(&self) -> EpochStats {
        self.service.stats_snapshot()
    }

    /// Awaits the run: the complete ordered event stream plus final
    /// counters. Shuts the API server down afterwards.
    ///
    /// # Errors
    ///
    /// As `EpochServiceHandle::finish`.
    ///
    /// # Panics
    ///
    /// Panics if the service task itself panicked.
    pub async fn finish(self) -> Result<(Vec<EpochEvent<f64>>, EpochStats, NetStats), NetError> {
        let result = self.service.finish().await;
        // The publisher ends once the event stream closed (which the
        // service does on completion and on error alike).
        let _ = self.publisher.await;
        if let Some(api) = self.api {
            api.shutdown();
        }
        result
    }
}
