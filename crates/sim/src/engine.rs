//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use delphi_primitives::{NodeId, Protocol, Recipient};

use crate::metrics::Metrics;
use crate::topology::{Topology, WIRE_OVERHEAD_BYTES};

/// Why a simulation run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every honest node produced an output.
    AllHonestFinished,
    /// No events remained (some honest node never finished — usually a bug
    /// or an adversary exceeding the fault threshold).
    Drained,
    /// The event-count safety cap was hit.
    MaxEvents,
    /// The simulated-time safety cap was hit.
    MaxTime,
}

/// Result of a simulation run.
#[derive(Debug)]
pub struct RunReport<O> {
    /// Final outputs, indexed by node id.
    pub outputs: Vec<Option<O>>,
    /// Simulated time (ns) at which each node produced its output.
    pub finish_ns: Vec<Option<u64>>,
    /// Simulated time at which the run stopped.
    pub end_ns: u64,
    /// Number of message-delivery events processed.
    pub events: u64,
    /// Traffic counters.
    pub metrics: Metrics,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Seed the run used (echoed for failure reproduction).
    pub seed: u64,
    honest: Vec<bool>,
}

impl<O> RunReport<O> {
    /// Whether every honest node produced an output.
    pub fn all_honest_finished(&self) -> bool {
        self.stop == StopReason::AllHonestFinished
            || self.honest.iter().zip(&self.outputs).all(|(&h, o)| !h || o.is_some())
    }

    /// Outputs of honest nodes only.
    pub fn honest_outputs(&self) -> impl Iterator<Item = &O> {
        self.honest
            .iter()
            .zip(&self.outputs)
            .filter_map(|(&h, o)| if h { o.as_ref() } else { None })
    }

    /// Latest honest finish time in nanoseconds (the run's latency, the
    /// quantity Fig. 6a/6c report), if all honest nodes finished.
    pub fn completion_ns(&self) -> Option<u64> {
        let mut worst = 0u64;
        for (i, &h) in self.honest.iter().enumerate() {
            if h {
                worst = worst.max(self.finish_ns[i]?);
            }
        }
        Some(worst)
    }

    /// Completion time in milliseconds.
    pub fn completion_ms(&self) -> Option<f64> {
        self.completion_ns().map(|ns| ns as f64 / 1e6)
    }
}

#[derive(Debug)]
enum EventKind {
    /// A message delivery. `shard` is the sender's receive-shard tag
    /// (see [`delphi_primitives::Envelope::shard`]).
    Msg { from: NodeId, to: NodeId, payload: Bytes, shard: u16 },
    /// A global time trigger: every node's `on_tick` runs (adaptive batch
    /// flushing lives there). Scheduled only when
    /// [`Simulation::tick_interval_ns`] is set.
    Tick,
}

#[derive(Debug)]
struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A configured simulation, ready to run protocol nodes.
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug)]
pub struct Simulation {
    topology: Topology,
    seed: u64,
    faulty: Vec<bool>,
    max_events: u64,
    max_time_ns: u64,
    tick_interval_ns: Option<u64>,
    recv_shards: usize,
    send_shards: Option<usize>,
}

impl Simulation {
    /// Creates a simulation over `topology` with default settings
    /// (seed 0, no declared faults, 100M-event / 1-simulated-hour caps,
    /// one receive shard).
    pub fn new(topology: Topology) -> Simulation {
        let n = topology.n();
        Simulation {
            topology,
            seed: 0,
            faulty: vec![false; n],
            max_events: 100_000_000,
            max_time_ns: 3_600_000_000_000,
            tick_interval_ns: None,
            recv_shards: 1,
            send_shards: None,
        }
    }

    /// Sets the RNG seed (latency jitter, adversary randomness).
    pub fn seed(mut self, seed: u64) -> Simulation {
        self.seed = seed;
        self
    }

    /// Declares `ids` as faulty: they are excluded from the stop condition
    /// and from honest-output aggregation. The node objects at those
    /// indices implement whatever Byzantine behaviour the experiment wants.
    pub fn faulty(mut self, ids: &[NodeId]) -> Simulation {
        for id in ids {
            self.faulty[id.index()] = true;
        }
        self
    }

    /// Overrides the event-count safety cap.
    pub fn max_events(mut self, cap: u64) -> Simulation {
        self.max_events = cap;
        self
    }

    /// Overrides the simulated-time safety cap (nanoseconds).
    pub fn max_time_ns(mut self, cap: u64) -> Simulation {
        self.max_time_ns = cap;
        self
    }

    /// Models a `shards`-way sharded receive path: each node's message
    /// processing CPU becomes `shards` independent lanes, and a delivery
    /// occupies the lane named by its envelope's
    /// [`shard`](delphi_primitives::Envelope::shard) tag (mod `shards`).
    ///
    /// This is the simulator half of `delphi-net`'s sharded dispatch:
    /// with a sender that flushes per receive shard (e.g.
    /// `EpochProtocol::new_sharded` with the same count), batches bound
    /// for different dispatch workers overlap in simulated time exactly
    /// as they overlap on real worker tasks, while batches on one shard
    /// still serialize. With the default of one shard (or untagged
    /// senders) the model is unchanged: one CPU per node.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn recv_shards(mut self, shards: usize) -> Simulation {
        assert!(shards > 0, "need at least one receive shard");
        self.recv_shards = shards;
        self
    }

    /// Models a `shards`-way sharded send path: each node's outbound
    /// frame preparation (encode + MAC) becomes `shards` independent CPU
    /// lanes, and every per-destination copy of an envelope occupies the
    /// lane named by its [`shard`](delphi_primitives::Envelope::shard)
    /// tag (mod `shards`) — per the [`Topology::cost`](crate::Topology)
    /// model on payload bytes — before the link serializes it.
    ///
    /// This is the simulator half of `delphi-net`'s egress lanes
    /// (`RunOptions::send_shards`): the lane an envelope is costed on
    /// here is by construction the lane that encodes and MACs it on the
    /// TCP path, because both sides key on the same shard tag. Unset
    /// (the default), outbound CPU is not modeled at all — the legacy
    /// model, where the link is the only egress resource — so existing
    /// calibrated sweeps are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn send_shards(mut self, shards: usize) -> Simulation {
        assert!(shards > 0, "need at least one send shard");
        self.send_shards = Some(shards);
        self
    }

    /// Enables periodic time triggers: every `interval` simulated
    /// nanoseconds, each node's [`Protocol::on_tick`] runs (the hook
    /// adaptive batch flushing hangs off). Ticks stop rescheduling once
    /// the mesh goes quiet — an idle stalled run still drains.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn tick_interval_ns(mut self, interval: u64) -> Simulation {
        assert!(interval > 0, "tick interval must be positive");
        self.tick_interval_ns = Some(interval);
        self
    }

    /// Runs `nodes` to completion.
    ///
    /// `nodes[i]` must have `node_id() == NodeId(i)`; the run is fully
    /// deterministic given the topology, the node set, and the seed.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size or a node
    /// reports a mismatched id.
    pub fn run<O: Clone + std::fmt::Debug>(
        self,
        mut nodes: Vec<Box<dyn Protocol<Output = O>>>,
    ) -> RunReport<O> {
        let n = self.topology.n();
        assert_eq!(nodes.len(), n, "node count != topology size");
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.node_id().index(), i, "node at index {i} has wrong id");
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        // One CPU lane per (node, receive shard): deliveries on different
        // shards of one node overlap, deliveries on one shard serialize.
        let shards = self.recv_shards;
        let mut cpu_free = vec![0u64; n * shards];
        // One egress CPU lane per (node, send shard) when the sharded
        // send path is modeled; zero lanes = legacy (no outbound CPU).
        let send_lanes = self.send_shards.unwrap_or(0);
        let mut send_free = vec![0u64; n * send_lanes];
        let mut link_free = vec![0u64; n];
        let mut last_arrival = if self.topology.fifo() { vec![0u64; n * n] } else { Vec::new() };
        let mut metrics = Metrics::new(n);
        let mut finish_ns: Vec<Option<u64>> = vec![None; n];
        let mut pending_honest = self.faulty.iter().filter(|&&f| !f).count();
        let mut events = 0u64;
        let mut now = 0u64;

        macro_rules! dispatch {
            ($from:expr, $envs:expr, $t:expr) => {{
                let from: usize = $from;
                for env in $envs {
                    let wire_len = env.payload.len() + WIRE_OVERHEAD_BYTES;
                    let dests: Vec<usize> = match env.to {
                        Recipient::All => (0..n).filter(|&d| d != from).collect(),
                        Recipient::One(d) => {
                            if d.index() < n {
                                vec![d.index()]
                            } else {
                                Vec::new() // out-of-range: drop silently
                            }
                        }
                    };
                    for dest in dests {
                        // Egress lane CPU: encoding + MACing this frame
                        // occupies the sender's lane for the envelope's
                        // shard class before the link takes it — the
                        // same (frame, lane) granularity the TCP egress
                        // workers parallelize on.
                        let mut ready = $t;
                        if send_lanes > 0 {
                            let lane = from * send_lanes + usize::from(env.shard) % send_lanes;
                            send_free[lane] = send_free[lane].max($t)
                                + self.topology.cost().cost_ns(env.payload.len());
                            ready = send_free[lane];
                        }
                        let ser = self.topology.serialize_ns(from, wire_len);
                        link_free[from] = link_free[from].max(ready) + ser;
                        let depart = link_free[from];
                        let base = self.topology.latency().base_ns(from, dest);
                        let factor = self.topology.jitter().sample(&mut rng);
                        let mut arrive = depart + (base as f64 * factor) as u64;
                        if self.topology.fifo() {
                            let slot = &mut last_arrival[from * n + dest];
                            arrive = arrive.max(*slot + 1);
                            *slot = arrive;
                        }
                        let m = &mut metrics.per_node[from];
                        m.sent_msgs += 1;
                        m.sent_payload_bytes += env.payload.len() as u64;
                        m.sent_wire_bytes += wire_len as u64;
                        seq += 1;
                        queue.push(Reverse(Event {
                            at: arrive,
                            seq,
                            kind: EventKind::Msg {
                                from: NodeId(from as u16),
                                to: NodeId(dest as u16),
                                payload: env.payload.clone(),
                                shard: env.shard,
                            },
                        }));
                    }
                }
            }};
        }

        macro_rules! check_finished {
            ($i:expr, $node:expr, $t:expr) => {
                if finish_ns[$i].is_none() && $node.output().is_some() {
                    finish_ns[$i] = Some($t);
                    if !self.faulty[$i] {
                        pending_honest -= 1;
                    }
                }
            };
        }

        // Start every node at t = 0.
        for i in 0..n {
            let outs = nodes[i].start();
            dispatch!(i, outs, 0u64);
            check_finished!(i, nodes[i], 0u64);
        }
        if let Some(interval) = self.tick_interval_ns {
            seq += 1;
            queue.push(Reverse(Event { at: interval, seq, kind: EventKind::Tick }));
        }

        let mut stop = StopReason::Drained;
        if pending_honest == 0 {
            stop = StopReason::AllHonestFinished;
        } else {
            while let Some(Reverse(ev)) = queue.pop() {
                events += 1;
                now = ev.at;
                if events > self.max_events {
                    stop = StopReason::MaxEvents;
                    break;
                }
                if now > self.max_time_ns {
                    stop = StopReason::MaxTime;
                    break;
                }
                match ev.kind {
                    EventKind::Msg { from, to, payload, shard } => {
                        let to = to.index();
                        let lane = to * shards + usize::from(shard) % shards;
                        let done =
                            cpu_free[lane].max(now) + self.topology.cost().cost_ns(payload.len());
                        cpu_free[lane] = done;
                        {
                            let m = &mut metrics.per_node[to];
                            m.recv_msgs += 1;
                            m.recv_payload_bytes += payload.len() as u64;
                        }
                        let outs = nodes[to].on_message(from, &payload);
                        dispatch!(to, outs, done);
                        check_finished!(to, nodes[to], done);
                    }
                    EventKind::Tick => {
                        let mut emitted = false;
                        for i in 0..n {
                            let outs = nodes[i].on_tick();
                            emitted |= !outs.is_empty();
                            dispatch!(i, outs, now);
                            check_finished!(i, nodes[i], now);
                        }
                        // Reschedule only while the mesh is active: once
                        // nothing is in flight and a tick released
                        // nothing, further ticks cannot change anything.
                        if emitted || !queue.is_empty() {
                            let interval =
                                self.tick_interval_ns.expect("tick events imply an interval");
                            seq += 1;
                            queue.push(Reverse(Event {
                                at: now + interval,
                                seq,
                                kind: EventKind::Tick,
                            }));
                        }
                    }
                }
                if pending_honest == 0 {
                    stop = StopReason::AllHonestFinished;
                    break;
                }
            }
        }

        let outputs = nodes.iter().map(|nd| nd.output()).collect();
        let honest = self.faulty.iter().map(|&f| !f).collect();
        RunReport {
            outputs,
            finish_ns,
            end_ns: now,
            events,
            metrics,
            stop,
            seed: self.seed,
            honest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::Envelope;

    /// Broadcasts once; outputs how many distinct peers it heard from.
    struct Gossip {
        id: NodeId,
        n: usize,
        heard: Vec<bool>,
    }

    impl Gossip {
        fn boxed(id: NodeId, n: usize) -> Box<dyn Protocol<Output = usize>> {
            Box::new(Gossip { id, n, heard: vec![false; n] })
        }
    }

    impl Protocol for Gossip {
        type Output = usize;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            vec![Envelope::to_all(Bytes::from_static(b"hi"))]
        }
        fn on_message(&mut self, from: NodeId, m: &[u8]) -> Vec<Envelope> {
            if m == b"hi" {
                self.heard[from.index()] = true;
            }
            Vec::new()
        }
        fn output(&self) -> Option<usize> {
            let count = self.heard.iter().filter(|&&h| h).count();
            (count == self.n - 1).then_some(count)
        }
    }

    fn gossip_nodes(n: usize) -> Vec<Box<dyn Protocol<Output = usize>>> {
        NodeId::all(n).map(|id| Gossip::boxed(id, n)).collect()
    }

    #[test]
    fn gossip_completes_on_lan() {
        let report = Simulation::new(Topology::lan(5)).seed(1).run(gossip_nodes(5));
        assert_eq!(report.stop, StopReason::AllHonestFinished);
        assert!(report.all_honest_finished());
        for o in report.honest_outputs() {
            assert_eq!(*o, 4);
        }
        // 5 nodes broadcast to 4 peers each.
        assert_eq!(report.metrics.total_msgs(), 20);
        assert_eq!(report.metrics.total_payload_bytes(), 40);
        assert_eq!(report.metrics.total_wire_bytes(), 20 * (2 + WIRE_OVERHEAD_BYTES as u64));
        assert!(report.completion_ns().unwrap() > 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let r1 = Simulation::new(Topology::aws_geo(8)).seed(42).run(gossip_nodes(8));
        let r2 = Simulation::new(Topology::aws_geo(8)).seed(42).run(gossip_nodes(8));
        assert_eq!(r1.completion_ns(), r2.completion_ns());
        assert_eq!(r1.events, r2.events);
        let r3 = Simulation::new(Topology::aws_geo(8)).seed(43).run(gossip_nodes(8));
        assert_ne!(r1.completion_ns(), r3.completion_ns());
    }

    #[test]
    fn crashed_node_stalls_completion_but_not_others() {
        let n = 4;
        let mut nodes = gossip_nodes(n);
        nodes[3] = Box::new(crate::adversary::Crash::new(NodeId(3), n));
        // Node 3 never speaks: honest nodes wait for n-1 greetings forever.
        let report = Simulation::new(Topology::lan(n)).seed(5).faulty(&[NodeId(3)]).run(nodes);
        assert_eq!(report.stop, StopReason::Drained);
        assert!(!report.all_honest_finished());
        assert_eq!(report.outputs[0], None);
    }

    #[test]
    fn completion_excludes_faulty_nodes() {
        // Gossip that needs n-2 greetings tolerates one crash.
        struct Tolerant(Gossip);
        impl Protocol for Tolerant {
            type Output = usize;
            fn node_id(&self) -> NodeId {
                self.0.id
            }
            fn n(&self) -> usize {
                self.0.n
            }
            fn start(&mut self) -> Vec<Envelope> {
                self.0.start()
            }
            fn on_message(&mut self, from: NodeId, m: &[u8]) -> Vec<Envelope> {
                self.0.on_message(from, m)
            }
            fn output(&self) -> Option<usize> {
                let count = self.0.heard.iter().filter(|&&h| h).count();
                (count >= self.0.n - 2).then_some(count)
            }
        }
        let n = 4;
        let mut nodes: Vec<Box<dyn Protocol<Output = usize>>> = NodeId::all(n)
            .map(|id| {
                Box::new(Tolerant(Gossip { id, n, heard: vec![false; n] }))
                    as Box<dyn Protocol<Output = usize>>
            })
            .collect();
        nodes[0] = Box::new(crate::adversary::Crash::new(NodeId(0), n));
        let report = Simulation::new(Topology::lan(n)).seed(5).faulty(&[NodeId(0)]).run(nodes);
        assert_eq!(report.stop, StopReason::AllHonestFinished);
        assert_eq!(report.honest_outputs().count(), 3);
    }

    #[test]
    fn max_events_cap_halts_runaway() {
        /// Ping-pong forever.
        struct Chatter {
            id: NodeId,
            n: usize,
        }
        impl Protocol for Chatter {
            type Output = ();
            fn node_id(&self) -> NodeId {
                self.id
            }
            fn n(&self) -> usize {
                self.n
            }
            fn start(&mut self) -> Vec<Envelope> {
                vec![Envelope::to_all(Bytes::from_static(b"x"))]
            }
            fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
                vec![Envelope::to_all(Bytes::from_static(b"x"))]
            }
            fn output(&self) -> Option<()> {
                None
            }
        }
        let nodes: Vec<Box<dyn Protocol<Output = ()>>> = NodeId::all(3)
            .map(|id| Box::new(Chatter { id, n: 3 }) as Box<dyn Protocol<Output = ()>>)
            .collect();
        let report = Simulation::new(Topology::lan(3)).max_events(1000).run(nodes);
        assert_eq!(report.stop, StopReason::MaxEvents);
        assert!(report.events >= 1000);
    }

    #[test]
    fn fifo_preserves_pairwise_order() {
        /// Sends two numbered messages; receiver records arrival order.
        struct Seq {
            id: NodeId,
            n: usize,
            got: Vec<u8>,
        }
        impl Protocol for Seq {
            type Output = Vec<u8>;
            fn node_id(&self) -> NodeId {
                self.id
            }
            fn n(&self) -> usize {
                self.n
            }
            fn start(&mut self) -> Vec<Envelope> {
                if self.id == NodeId(0) {
                    (0u8..20)
                        .map(|i| Envelope::to_one(NodeId(1), Bytes::copy_from_slice(&[i])))
                        .collect()
                } else {
                    Vec::new()
                }
            }
            fn on_message(&mut self, _: NodeId, m: &[u8]) -> Vec<Envelope> {
                self.got.push(m[0]);
                Vec::new()
            }
            fn output(&self) -> Option<Vec<u8>> {
                (self.got.len() == 20).then(|| self.got.clone())
            }
        }
        // High jitter would reorder without FIFO clamping.
        let topo = Topology::lan(2).with_fifo(true);
        let nodes: Vec<Box<dyn Protocol<Output = Vec<u8>>>> = NodeId::all(2)
            .map(|id| {
                Box::new(Seq { id, n: 2, got: Vec::new() }) as Box<dyn Protocol<Output = Vec<u8>>>
            })
            .collect();
        let report = Simulation::new(topo).seed(11).faulty(&[NodeId(0)]).run(nodes);
        let got = report.outputs[1].clone().unwrap();
        let expect: Vec<u8> = (0..20).collect();
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "wrong id")]
    fn mismatched_ids_rejected() {
        let nodes: Vec<Box<dyn Protocol<Output = usize>>> =
            vec![Gossip::boxed(NodeId(1), 2), Gossip::boxed(NodeId(0), 2)];
        let _ = Simulation::new(Topology::lan(2)).run(nodes);
    }

    /// Withholds its greeting until the first tick — only a tick-enabled
    /// run can complete.
    struct TickGossip {
        inner: Gossip,
        pending: Option<Envelope>,
    }

    impl Protocol for TickGossip {
        type Output = usize;
        fn node_id(&self) -> NodeId {
            self.inner.id
        }
        fn n(&self) -> usize {
            self.inner.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            self.pending = self.inner.start().pop();
            Vec::new()
        }
        fn on_message(&mut self, from: NodeId, m: &[u8]) -> Vec<Envelope> {
            self.inner.on_message(from, m)
        }
        fn on_tick(&mut self) -> Vec<Envelope> {
            self.pending.take().into_iter().collect()
        }
        fn output(&self) -> Option<usize> {
            self.inner.output()
        }
    }

    fn tick_gossip_nodes(n: usize) -> Vec<Box<dyn Protocol<Output = usize>>> {
        NodeId::all(n)
            .map(|id| {
                Box::new(TickGossip {
                    inner: Gossip { id, n, heard: vec![false; n] },
                    pending: None,
                }) as Box<dyn Protocol<Output = usize>>
            })
            .collect()
    }

    #[test]
    fn ticks_release_deferred_sends_and_stop_when_quiet() {
        // Without ticks the deferred greetings never leave: the run drains.
        let stalled = Simulation::new(Topology::lan(3)).seed(2).run(tick_gossip_nodes(3));
        assert_eq!(stalled.stop, StopReason::Drained);
        // With ticks the greetings flush at the first tick and the run
        // completes; tick events stop rescheduling once the mesh is quiet,
        // so a small event count suffices.
        let report = Simulation::new(Topology::lan(3))
            .seed(2)
            .tick_interval_ns(1_000_000)
            .run(tick_gossip_nodes(3));
        assert_eq!(report.stop, StopReason::AllHonestFinished);
        assert!(report.completion_ns().unwrap() >= 1_000_000, "nothing moved before a tick");
        assert!(report.events < 100, "ticks must not spin an idle mesh");
    }

    #[test]
    fn tick_runs_are_deterministic_per_seed() {
        let run = || {
            Simulation::new(Topology::aws_geo(4))
                .seed(9)
                .tick_interval_ns(500_000)
                .run(tick_gossip_nodes(4))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completion_ns(), b.completion_ns());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn bandwidth_limits_increase_latency() {
        let fast = Simulation::new(Topology::lan(4)).seed(3).run(gossip_nodes(4));
        let slow_topo = Topology::lan(4).with_uniform_egress_bps(8_000); // 1 KB/s
        let slow = Simulation::new(slow_topo).seed(3).run(gossip_nodes(4));
        assert!(slow.completion_ns().unwrap() > 10 * fast.completion_ns().unwrap());
    }

    #[test]
    fn cpu_cost_increases_latency() {
        let free = Simulation::new(Topology::lan(4)).seed(3).run(gossip_nodes(4));
        let costly_topo = Topology::lan(4)
            .with_cost(crate::CostModel { per_message_ns: 10_000_000, per_byte_ns: 0 });
        let costly = Simulation::new(costly_topo).seed(3).run(gossip_nodes(4));
        assert!(costly.completion_ns().unwrap() > free.completion_ns().unwrap());
    }

    /// Sends `k` shard-tagged messages to node 1 and outputs immediately;
    /// the receiver outputs after hearing all of them.
    struct ShardBurst {
        id: NodeId,
        k: u16,
        shards: u16,
        heard: usize,
    }

    impl Protocol for ShardBurst {
        type Output = usize;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            2
        }
        fn start(&mut self) -> Vec<Envelope> {
            if self.id != NodeId(0) {
                return Vec::new();
            }
            (0..self.k)
                .map(|i| {
                    Envelope::to_one(NodeId(1), Bytes::copy_from_slice(&[i as u8]))
                        .with_shard(i % self.shards)
                })
                .collect()
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.heard += 1;
            Vec::new()
        }
        fn output(&self) -> Option<usize> {
            if self.id == NodeId(0) {
                Some(0)
            } else {
                (self.heard >= usize::from(self.k)).then_some(self.heard)
            }
        }
    }

    #[test]
    fn sharded_receive_overlaps_cpu_cost_across_lanes() {
        // 8 messages at 10 ms receive CPU each: one lane serializes them
        // (~80 ms), 4 lanes overlap them (~20 ms). Latency and bandwidth
        // are negligible next to the CPU cost, so the ratio is clean.
        let run = |sim_shards: usize, tag_shards: u16| {
            let topo = Topology::lan(2)
                .with_cost(crate::CostModel { per_message_ns: 10_000_000, per_byte_ns: 0 });
            let nodes: Vec<Box<dyn Protocol<Output = usize>>> = NodeId::all(2)
                .map(|id| {
                    Box::new(ShardBurst { id, k: 8, shards: tag_shards, heard: 0 })
                        as Box<dyn Protocol<Output = usize>>
                })
                .collect();
            Simulation::new(topo).seed(4).recv_shards(sim_shards).run(nodes)
        };
        let single = run(1, 4);
        let sharded = run(4, 4);
        assert_eq!(single.outputs[1], Some(8));
        assert_eq!(sharded.outputs[1], Some(8));
        let (t1, t4) = (single.completion_ns().unwrap(), sharded.completion_ns().unwrap());
        assert!(
            t4 * 3 < t1,
            "4 lanes must overlap the receive CPU: {t1} ns single vs {t4} ns sharded"
        );
        // Tagging without lanes (or lanes without tags) changes nothing:
        // every message lands on lane 0 either way.
        let untagged = run(4, 1);
        assert_eq!(untagged.completion_ns(), single.completion_ns());
    }

    #[test]
    fn sharded_send_overlaps_encode_cost_across_lanes() {
        // 8 frames at 10 ms encode CPU each, with the receive side spread
        // over 4 lanes so it keeps up: one egress lane serializes the
        // encodes (the last frame cannot even depart before ~80 ms), 4
        // lanes overlap them. The completion ratio isolates egress CPU —
        // the single-sender funnel the sharded send path removes.
        let run = |send_lanes: usize, tag_shards: u16| {
            let topo = Topology::lan(2)
                .with_cost(crate::CostModel { per_message_ns: 10_000_000, per_byte_ns: 0 });
            let nodes: Vec<Box<dyn Protocol<Output = usize>>> = NodeId::all(2)
                .map(|id| {
                    Box::new(ShardBurst { id, k: 8, shards: tag_shards, heard: 0 })
                        as Box<dyn Protocol<Output = usize>>
                })
                .collect();
            Simulation::new(topo).seed(4).recv_shards(4).send_shards(send_lanes).run(nodes)
        };
        let single = run(1, 4);
        let sharded = run(4, 4);
        assert_eq!(single.outputs[1], Some(8));
        assert_eq!(sharded.outputs[1], Some(8));
        let (t1, t4) = (single.completion_ns().unwrap(), sharded.completion_ns().unwrap());
        assert!(
            t4 * 2 < t1,
            "4 egress lanes must overlap the encode CPU: {t1} ns single vs {t4} ns sharded"
        );
        // Lanes without tags change nothing: every frame encodes on lane
        // 0 no matter how many lanes exist — send parallelism requires a
        // sharded (tagging) sender, exactly as on the TCP path.
        assert_eq!(run(4, 1).completion_ns(), run(1, 1).completion_ns());
    }
}
