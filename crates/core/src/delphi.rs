//! The Delphi protocol node (Algorithm 2).
//!
//! Each node runs one BinAA instance per checkpoint per level — but almost
//! all of those instances are identical: every checkpoint far from every
//! honest input sees only 0-votes. The implementation therefore keeps, per
//! level,
//!
//! - one **background** instance standing for every *undistinguished*
//!   checkpoint of the level, and
//! - a sparse map of **distinguished** (active) instances: the checkpoints
//!   some node has voted 1 for, or otherwise explicitly mentioned.
//!
//! A checkpoint is *forked* off the background the first time any message
//! mentions it; the fork inherits the background's entire quorum history,
//! which is sound because until that moment every received echo concerning
//! the checkpoint was background-scoped. This is the §III-C zero-run
//! optimization made concrete, and it is what turns "one BinAA per point
//! of a 50 000-checkpoint space" into a handful of live instances and
//! `O(n²)` bundle messages per round.
//!
//! # Flood resistance
//!
//! A Byzantine sender could mention unboundedly many checkpoints to force
//! unbounded forking. Each sender therefore has a per-level *introduction
//! budget* ([`INTRO_BUDGET_PER_LEVEL`]); mentions beyond it do not fork
//! (the checkpoint stays represented by the background). Honest nodes
//! introduce at most 3 checkpoints per level themselves, so the budget
//! never constrains honest-only executions. Under a combined
//! flooding-plus-reordering attack a refused mention could in principle
//! discard an honest echo; the paper does not treat flood resistance at
//! all, and we prefer bounded memory with this documented, narrow caveat.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use delphi_primitives::wire::{Encode, VectorValue, MAX_VECTOR_DIMS};
use delphi_primitives::{Dyadic, Envelope, NodeId, Protocol, Round};

use crate::aggregate::{combine_levels, level_summary, LevelSummary};
use crate::bv::{BvAction, BvRound};
use crate::messages::{
    BasketBundle, BasketBundleRef, BasketSection, DelphiBundle, DelphiBundleRef, EchoKind, Section,
};
use crate::params::DelphiConfig;

/// Per-sender, per-level cap on checkpoint introductions (see module docs).
pub const INTRO_BUDGET_PER_LEVEL: u8 = 8;

/// One BinAA instance: either the background of a level or one
/// distinguished checkpoint.
#[derive(Clone, Debug)]
struct Instance {
    /// Round states, indexed by `round − 1`, allocated on first touch.
    rounds: Vec<Option<BvRound>>,
    /// State value entering the level's current round.
    value: Dyadic,
}

impl Instance {
    fn new(r_max: u16, input: Dyadic) -> Instance {
        Instance {
            rounds: std::iter::repeat_with(|| None).take(usize::from(r_max)).collect(),
            value: input,
        }
    }

    fn round_mut(&mut self, round: Round, me: NodeId, n: usize, t: usize) -> &mut BvRound {
        self.rounds[round.index()].get_or_insert_with(|| BvRound::new(me, n, t))
    }

    fn outcome_at(&self, round: Round) -> Option<Dyadic> {
        self.rounds[round.index()].as_ref()?.outcome().map(|o| o.next_value())
    }
}

/// Per-level protocol state.
#[derive(Clone, Debug)]
struct LevelState {
    level: u8,
    k_min: i64,
    k_max: i64,
    /// Current round (1-based); `r_max + 1` once the level has finished.
    round: u16,
    background: Instance,
    actives: BTreeMap<i64, Instance>,
    /// Remaining introduction budget per sender.
    intro_budget: Vec<u8>,
    /// Final `(µ, weight)` pairs once the level completes all rounds.
    summary: Option<LevelSummary>,
}

/// Outgoing-echo collector: groups per-instance echoes into [`Section`]s.
#[derive(Debug, Default)]
struct Collector {
    sections: Vec<Section>,
}

impl Collector {
    /// The level-advance burst: background plus every active echoes its
    /// round input simultaneously.
    fn initial(&mut self, level: u8, round: Round, bg: Dyadic, entries: Vec<(i64, Dyadic)>) {
        self.sections.push(Section {
            level,
            round,
            kind: EchoKind::Echo1,
            background: Some(bg),
            exclude: Vec::new(),
            entries,
        });
    }

    /// A trigger-driven echo for one distinguished checkpoint.
    fn entry(&mut self, level: u8, round: Round, kind: EchoKind, k: i64, v: Dyadic) {
        if let Some(s) = self.sections.iter_mut().find(|s| {
            s.level == level && s.round == round && s.kind == kind && s.background.is_none()
        }) {
            s.entries.push((k, v));
            return;
        }
        let mut s = Section::new(level, round, kind);
        s.entries.push((k, v));
        self.sections.push(s);
    }

    /// A trigger-driven background echo; `exclude` is the emit-time
    /// snapshot of distinguished checkpoints.
    fn background(
        &mut self,
        level: u8,
        round: Round,
        kind: EchoKind,
        v: Dyadic,
        exclude: Vec<i64>,
    ) {
        let mut s = Section::new(level, round, kind);
        s.background = Some(v);
        s.exclude = exclude;
        self.sections.push(s);
    }

    fn into_bundle(self) -> DelphiBundle {
        DelphiBundle { sections: self.sections }
    }
}

/// A Delphi protocol node.
///
/// See the [crate docs](crate) for a runnable quickstart; construction
/// takes the shared [`DelphiConfig`], this node's identity, and its
/// measured input value (clamped into the configured space).
#[derive(Debug)]
pub struct DelphiNode {
    cfg: DelphiConfig,
    me: NodeId,
    input: f64,
    levels: Vec<LevelState>,
    output: Option<f64>,
    /// Optional shared counter bumped once per completed `(level, round)`
    /// (see [`DelphiNode::with_round_probe`]).
    round_probe: Option<Arc<AtomicU64>>,
    /// Reused decode target: each inbound section is materialized into
    /// this one scratch buffer (capacity kept across messages), so the
    /// receive path stays allocation-free at steady state.
    scratch: Section,
}

impl DelphiNode {
    /// Creates a node with input `value` (clamped into `[s, e]`; NaN is
    /// mapped to `s` rather than poisoning the protocol).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for the configured system size.
    pub fn new(cfg: DelphiConfig, me: NodeId, value: f64) -> DelphiNode {
        assert!(me.index() < cfg.n(), "node id out of range");
        let input = if value.is_nan() { cfg.s() } else { cfg.clamp_input(value) };
        let levels = (0..=cfg.l_max())
            .map(|level| {
                let (k_min, k_max) = cfg.checkpoint_range(level);
                LevelState {
                    level,
                    k_min,
                    k_max,
                    round: 1,
                    background: Instance::new(cfg.r_max(), Dyadic::ZERO),
                    actives: BTreeMap::new(),
                    intro_budget: vec![INTRO_BUDGET_PER_LEVEL; cfg.n()],
                    summary: None,
                }
            })
            .collect();
        DelphiNode {
            cfg,
            me,
            input,
            levels,
            output: None,
            round_probe: None,
            scratch: Section::new(0, Round(1), EchoKind::Echo1),
        }
    }

    /// Boxes the node for use with heterogeneous drivers.
    pub fn boxed(self) -> Box<dyn Protocol<Output = f64>> {
        Box::new(self)
    }

    /// Attaches a shared round counter, bumped once every time any level
    /// completes a round at this node. Agreement cost instrumentation:
    /// a full scalar run adds `(l_max + 1) × r_max` to the counter per
    /// asset, so a probe shared across a basket measures total
    /// rounds-per-agreement directly.
    #[must_use]
    pub fn with_round_probe(mut self, probe: Arc<AtomicU64>) -> DelphiNode {
        self.round_probe = Some(probe);
        self
    }

    /// The configuration this node runs under.
    pub fn config(&self) -> &DelphiConfig {
        &self.cfg
    }

    /// The (clamped) input value this node contributes.
    pub fn input(&self) -> f64 {
        self.input
    }

    /// Number of distinguished checkpoints currently tracked at `level`
    /// (diagnostics; the paper's `min(δ/ρ_l, n)` communication term).
    pub fn active_checkpoints(&self, level: u8) -> usize {
        self.levels.get(usize::from(level)).map_or(0, |l| l.actives.len())
    }

    /// A value is plausible for `round` iff it lies in `[0, 1]` on the
    /// grid `j / 2^{r−1}`.
    fn plausible(value: Dyadic, round: Round) -> bool {
        value.in_unit_interval() && u16::from(value.log_den()) < round.0
    }

    /// Forks checkpoint `k` off the background of `level` if it is not yet
    /// distinguished, charging `sponsor`'s introduction budget. Returns
    /// whether the checkpoint is distinguished after the call.
    fn distinguish(level: &mut LevelState, k: i64, sponsor: NodeId) -> bool {
        if k < level.k_min || k > level.k_max {
            return false;
        }
        if level.actives.contains_key(&k) {
            return true;
        }
        let budget = &mut level.intro_budget[sponsor.index()];
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        let fork = level.background.clone();
        level.actives.insert(k, fork);
        true
    }

    /// Applies one echo to one instance, translating its actions into
    /// collector output.
    #[allow(clippy::too_many_arguments)]
    fn apply_echo(
        cfg: &DelphiConfig,
        me: NodeId,
        instance: &mut Instance,
        scope: Option<i64>,
        level: u8,
        round: Round,
        kind: EchoKind,
        from: NodeId,
        value: Dyadic,
        out: &mut Collector,
        deferred_bg: &mut Vec<(u8, Round, EchoKind, Dyadic)>,
    ) {
        let bv = instance.round_mut(round, me, cfg.n(), cfg.t());
        let actions = match kind {
            EchoKind::Echo1 => bv.on_echo1(from, value),
            EchoKind::Echo2 => bv.on_echo2(from, value),
        };
        for action in actions {
            let (k2, v2) = match action {
                BvAction::Echo1(v) => (EchoKind::Echo1, v),
                BvAction::Echo2(v) => (EchoKind::Echo2, v),
            };
            match scope {
                Some(k) => out.entry(level, round, k2, k, v2),
                // Background echoes need an exclude snapshot of the whole
                // level; defer so the caller can take it without aliasing.
                None => deferred_bg.push((level, round, k2, v2)),
            }
        }
    }

    /// Processes one decoded section, collecting any triggered echoes.
    fn process_section(&mut self, from: NodeId, section: &Section, out: &mut Collector) {
        let level_idx = usize::from(section.level);
        if level_idx >= self.levels.len() {
            return;
        }
        if section.round.0 < 1 || section.round.0 > self.cfg.r_max() {
            return;
        }
        if let Some(bg) = section.background {
            if !Self::plausible(bg, section.round) {
                return;
            }
        }

        let cfg = self.cfg.clone();
        let me = self.me;
        let level = &mut self.levels[level_idx];
        let mut deferred_bg: Vec<(u8, Round, EchoKind, Dyadic)> = Vec::new();

        // 1. Every mentioned checkpoint becomes distinguished (fork).
        for &k in section.exclude.iter().chain(section.entries.iter().map(|(k, _)| k)) {
            let _ = Self::distinguish(level, k, from);
        }

        // 2. Explicit per-checkpoint echoes.
        for &(k, value) in &section.entries {
            if !Self::plausible(value, section.round) {
                continue;
            }
            if let Some(instance) = level.actives.get_mut(&k) {
                Self::apply_echo(
                    &cfg,
                    me,
                    instance,
                    Some(k),
                    section.level,
                    section.round,
                    section.kind,
                    from,
                    value,
                    out,
                    &mut deferred_bg,
                );
            }
        }

        // 3. Background echo: applies to the background instance and every
        //    distinguished checkpoint the sender did not mention.
        if let Some(bg_value) = section.background {
            let mentioned = |k: i64| {
                section.exclude.contains(&k) || section.entries.iter().any(|&(ek, _)| ek == k)
            };
            let keys: Vec<i64> = level.actives.keys().copied().filter(|&k| !mentioned(k)).collect();
            for k in keys {
                let instance = level.actives.get_mut(&k).expect("key just listed");
                Self::apply_echo(
                    &cfg,
                    me,
                    instance,
                    Some(k),
                    section.level,
                    section.round,
                    section.kind,
                    from,
                    bg_value,
                    out,
                    &mut deferred_bg,
                );
            }
            Self::apply_echo(
                &cfg,
                me,
                &mut level.background,
                None,
                section.level,
                section.round,
                section.kind,
                from,
                bg_value,
                out,
                &mut deferred_bg,
            );
        }

        // 4. Flush deferred background echoes with an exclude snapshot.
        for (lvl, round, kind, value) in deferred_bg {
            let exclude: Vec<i64> = level.actives.keys().copied().collect();
            out.background(lvl, round, kind, value, exclude);
        }
    }

    /// Advances every level through any rounds whose outcomes are complete,
    /// emitting initial bursts; finalizes levels and the overall output.
    fn advance(&mut self, out: &mut Collector) {
        let cfg = self.cfg.clone();
        let me = self.me;
        let probe = self.round_probe.clone();
        for level in &mut self.levels {
            'rounds: while level.round <= cfg.r_max() {
                let round = Round(level.round);
                // The level advances when the background and every
                // distinguished checkpoint have terminated the round.
                let Some(bg_next) = level.background.outcome_at(round) else { break 'rounds };
                let mut nexts: Vec<(i64, Dyadic)> = Vec::with_capacity(level.actives.len());
                for (&k, inst) in &level.actives {
                    let Some(next) = inst.outcome_at(round) else { break 'rounds };
                    nexts.push((k, next));
                }
                level.background.value = bg_next;
                for (k, next) in &nexts {
                    level.actives.get_mut(k).expect("listed above").value = *next;
                }
                level.round += 1;
                if let Some(p) = &probe {
                    p.fetch_add(1, Ordering::Relaxed);
                }
                if level.round > cfg.r_max() {
                    // Level complete: final values are the weights.
                    let eps_prime = cfg.eps_prime();
                    let checkpoints: Vec<(f64, f64)> = level
                        .actives
                        .iter()
                        .map(|(&k, inst)| {
                            (cfg.checkpoint_value(level.level, k), inst.value.to_f64())
                        })
                        .collect();
                    // The background weight is provably 0 at honest nodes
                    // (its honest inputs are all 0); it carries no mass.
                    debug_assert!(level.background.value.is_zero());
                    let own = cfg.clamp_input(self.input);
                    level.summary = Some(level_summary(&checkpoints, own, eps_prime));
                    break 'rounds;
                }
                // Initial burst for the next round.
                let next_round = Round(level.round);
                let mut deferred: Vec<(u8, Round, EchoKind, Dyadic)> = Vec::new();
                let mut entries: Vec<(i64, Dyadic)> = Vec::new();
                let keys: Vec<i64> = level.actives.keys().copied().collect();
                for k in keys {
                    let inst = level.actives.get_mut(&k).expect("key just listed");
                    let value = inst.value;
                    let actions = inst.round_mut(next_round, me, cfg.n(), cfg.t()).set_input(value);
                    entries.push((k, value));
                    for action in actions {
                        match action {
                            // The initial Echo1 is carried by the burst
                            // entry itself.
                            BvAction::Echo1(v) if v == value => {}
                            BvAction::Echo1(v) => {
                                out.entry(level.level, next_round, EchoKind::Echo1, k, v)
                            }
                            BvAction::Echo2(v) => {
                                out.entry(level.level, next_round, EchoKind::Echo2, k, v)
                            }
                        }
                    }
                }
                let bg_value = level.background.value;
                let bg_actions = level
                    .background
                    .round_mut(next_round, me, cfg.n(), cfg.t())
                    .set_input(bg_value);
                out.initial(level.level, next_round, bg_value, entries);
                for action in bg_actions {
                    match action {
                        BvAction::Echo1(v) if v == bg_value => {}
                        BvAction::Echo1(v) => {
                            deferred.push((level.level, next_round, EchoKind::Echo1, v))
                        }
                        BvAction::Echo2(v) => {
                            deferred.push((level.level, next_round, EchoKind::Echo2, v))
                        }
                    }
                }
                for (lvl, round, kind, value) in deferred {
                    let exclude: Vec<i64> = level.actives.keys().copied().collect();
                    out.background(lvl, round, kind, value, exclude);
                }
            }
        }
        if self.output.is_none() && self.levels.iter().all(|l| l.summary.is_some()) {
            let summaries: Vec<LevelSummary> =
                self.levels.iter().map(|l| l.summary.expect("checked")).collect();
            self.output = Some(combine_levels(&summaries));
        }
    }

    fn flush(&self, out: Collector) -> Vec<Envelope> {
        let bundle = out.into_bundle();
        if bundle.is_empty() {
            Vec::new()
        } else {
            vec![Envelope::to_all(bundle.to_bytes())]
        }
    }
}

impl Protocol for DelphiNode {
    type Output = f64;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.cfg.n()
    }

    fn start(&mut self) -> Vec<Envelope> {
        let cfg = self.cfg.clone();
        let me = self.me;
        let mut out = Collector::default();
        for level in &mut self.levels {
            // Our own 1-checkpoints become distinguished with input 1
            // (charged against our own introduction budget).
            for k in cfg.one_checkpoints(level.level, self.input) {
                if Self::distinguish(level, k, me) {
                    level.actives.get_mut(&k).expect("just distinguished").value = Dyadic::ONE;
                }
            }
            // Round-1 initial burst.
            let round = Round(1);
            let mut entries = Vec::new();
            let keys: Vec<i64> = level.actives.keys().copied().collect();
            for k in keys {
                let inst = level.actives.get_mut(&k).expect("key just listed");
                let value = inst.value;
                let actions = inst.round_mut(round, me, cfg.n(), cfg.t()).set_input(value);
                entries.push((k, value));
                for action in actions {
                    match action {
                        BvAction::Echo1(v) if v == value => {}
                        BvAction::Echo1(v) => out.entry(level.level, round, EchoKind::Echo1, k, v),
                        BvAction::Echo2(v) => out.entry(level.level, round, EchoKind::Echo2, k, v),
                    }
                }
            }
            let bg_actions =
                level.background.round_mut(round, me, cfg.n(), cfg.t()).set_input(Dyadic::ZERO);
            out.initial(level.level, round, Dyadic::ZERO, entries);
            for action in bg_actions {
                match action {
                    BvAction::Echo1(v) if v.is_zero() => {}
                    BvAction::Echo1(v) => {
                        let exclude: Vec<i64> = level.actives.keys().copied().collect();
                        out.background(level.level, round, EchoKind::Echo1, v, exclude);
                    }
                    BvAction::Echo2(v) => {
                        let exclude: Vec<i64> = level.actives.keys().copied().collect();
                        out.background(level.level, round, EchoKind::Echo2, v, exclude);
                    }
                }
            }
        }
        self.advance(&mut out);
        self.flush(out)
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        if from == self.me || from.index() >= self.cfg.n() {
            return Vec::new();
        }
        // Zero-copy decode: one validating pass over the frame bytes,
        // then each section is walked straight out of `payload` into the
        // reused scratch buffer — no owned bundle is ever built.
        let Ok(bundle) = DelphiBundleRef::parse(payload) else {
            return Vec::new(); // malformed: Byzantine, drop
        };
        let mut out = Collector::default();
        let mut scratch =
            std::mem::replace(&mut self.scratch, Section::new(0, Round(1), EchoKind::Echo1));
        for section in bundle.sections() {
            section.fill_section(&mut scratch);
            self.process_section(from, &scratch, &mut out);
        }
        self.scratch = scratch;
        self.advance(&mut out);
        self.flush(out)
    }

    fn output(&self) -> Option<f64> {
        self.output
    }
}

/// Per-dimension state of one level in a vector node: the dimension's
/// own background instance, distinguished checkpoints, introduction
/// budgets, and final summary. This is [`LevelState`] minus the round
/// counter, which a vector level shares across all dimensions.
#[derive(Clone, Debug)]
struct DimLevel {
    background: Instance,
    actives: BTreeMap<i64, Instance>,
    /// Remaining introduction budget per sender, charged per (sender,
    /// dimension) so a flood in one asset cannot starve another.
    intro_budget: Vec<u8>,
    summary: Option<LevelSummary>,
}

impl DimLevel {
    fn new(cfg: &DelphiConfig) -> DimLevel {
        DimLevel {
            background: Instance::new(cfg.r_max(), Dyadic::ZERO),
            actives: BTreeMap::new(),
            intro_budget: vec![INTRO_BUDGET_PER_LEVEL; cfg.n()],
            summary: None,
        }
    }
}

/// Per-level state of a vector node: one shared round counter driving
/// every dimension in lock step, plus the per-dimension instance trees.
#[derive(Clone, Debug)]
struct VLevelState {
    level: u8,
    k_min: i64,
    k_max: i64,
    /// Current round (1-based, shared by all dimensions); `r_max + 1`
    /// once the level has finished.
    round: u16,
    dims: Vec<DimLevel>,
}

/// Outgoing-echo collector for the vector node: groups per-dimension
/// echoes into [`BasketSection`]s so every section's id-run is shared
/// across the basket.
#[derive(Debug, Default)]
struct VCollector {
    sections: Vec<BasketSection>,
}

impl VCollector {
    /// The level-advance burst: one merged section carrying every
    /// dimension's background and active-checkpoint inputs.
    fn initial(
        &mut self,
        level: u8,
        round: Round,
        backgrounds: VectorValue,
        entries: Vec<(i64, VectorValue)>,
    ) {
        let mut s = BasketSection::new(level, round, EchoKind::Echo1);
        s.backgrounds = backgrounds;
        s.entries = entries;
        self.sections.push(s);
    }

    /// A trigger-driven echo for one distinguished checkpoint in one
    /// dimension; merged into the matching background-free section (and
    /// into an existing entry for the same checkpoint where possible).
    fn entry(&mut self, level: u8, round: Round, kind: EchoKind, dim: u16, k: i64, v: Dyadic) {
        if let Some(s) = self.sections.iter_mut().find(|s| {
            s.level == level && s.round == round && s.kind == kind && s.backgrounds.is_empty()
        }) {
            if let Some((_, vv)) =
                s.entries.iter_mut().find(|(ek, vv)| *ek == k && !vv.contains(dim))
            {
                vv.set(dim, v);
            } else {
                s.entries.push((k, VectorValue::single(dim, v)));
            }
            return;
        }
        let mut s = BasketSection::new(level, round, kind);
        s.entries.push((k, VectorValue::single(dim, v)));
        self.sections.push(s);
    }

    /// A trigger-driven background echo for one dimension; `exclude_ids`
    /// is the emit-time snapshot of that dimension's distinguished
    /// checkpoints.
    fn background(
        &mut self,
        level: u8,
        round: Round,
        kind: EchoKind,
        dim: u16,
        v: Dyadic,
        exclude_ids: Vec<i64>,
    ) {
        let mut s = BasketSection::new(level, round, kind);
        s.backgrounds = VectorValue::single(dim, v);
        s.exclude = exclude_ids.into_iter().map(|k| (k, 1u64 << dim)).collect();
        self.sections.push(s);
    }

    fn into_bundle(self) -> BasketBundle {
        BasketBundle { sections: self.sections }
    }
}

/// A vector-valued Delphi node: **one** agreement instance covering a
/// whole basket of assets (up to [`MAX_VECTOR_DIMS`] dimensions).
///
/// Every dimension runs exactly the per-checkpoint BinAA machinery of
/// [`DelphiNode`] — same forking, same budgets, same plausibility gates —
/// but the *round walk is shared*: a level advances to round `r + 1` only
/// once **all** dimensions have terminated round `r`, and the resulting
/// initial burst is a single [`BasketSection`] carrying every dimension's
/// echoes behind one shared checkpoint id-run. Compared with per-asset
/// fan-out this divides sections, wire entries, and rounds-per-agreement
/// by roughly the basket size, at the cost of coupling the basket's
/// latency to its slowest dimension.
#[derive(Debug)]
pub struct VectorDelphiNode {
    cfg: DelphiConfig,
    me: NodeId,
    dims: u16,
    inputs: Vec<f64>,
    levels: Vec<VLevelState>,
    output: Option<Vec<f64>>,
    /// Optional shared counter bumped once per completed `(level, round)`
    /// (see [`VectorDelphiNode::with_round_probe`]).
    round_probe: Option<Arc<AtomicU64>>,
    /// Reused decode target, mirroring [`DelphiNode`]'s scratch section.
    scratch: BasketSection,
}

impl VectorDelphiNode {
    /// Creates a vector node over `values` — one input per basket
    /// dimension, each clamped into `[s, e]` (NaN maps to `s`).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range, `values` is empty, or the basket
    /// exceeds [`MAX_VECTOR_DIMS`] dimensions.
    pub fn new(cfg: DelphiConfig, me: NodeId, values: &[f64]) -> VectorDelphiNode {
        assert!(me.index() < cfg.n(), "node id out of range");
        assert!(!values.is_empty(), "vector node needs at least one dimension");
        assert!(
            values.len() <= usize::from(MAX_VECTOR_DIMS),
            "basket of {} exceeds {MAX_VECTOR_DIMS} dimensions",
            values.len()
        );
        let inputs: Vec<f64> =
            values.iter().map(|&v| if v.is_nan() { cfg.s() } else { cfg.clamp_input(v) }).collect();
        let levels = (0..=cfg.l_max())
            .map(|level| {
                let (k_min, k_max) = cfg.checkpoint_range(level);
                VLevelState {
                    level,
                    k_min,
                    k_max,
                    round: 1,
                    dims: (0..values.len()).map(|_| DimLevel::new(&cfg)).collect(),
                }
            })
            .collect();
        VectorDelphiNode {
            cfg,
            me,
            dims: values.len() as u16,
            inputs,
            levels,
            output: None,
            round_probe: None,
            scratch: BasketSection::new(0, Round(1), EchoKind::Echo1),
        }
    }

    /// Boxes the node for use with heterogeneous drivers.
    pub fn boxed(self) -> Box<dyn Protocol<Output = Vec<f64>>> {
        Box::new(self)
    }

    /// Attaches a shared round counter, bumped once every time any level
    /// completes a round at this node. A full vector run adds
    /// `(l_max + 1) × r_max` to the counter *per basket* — compare with
    /// the same probe on per-asset [`DelphiNode`]s, which pay that cost
    /// per asset.
    #[must_use]
    pub fn with_round_probe(mut self, probe: Arc<AtomicU64>) -> VectorDelphiNode {
        self.round_probe = Some(probe);
        self
    }

    /// The configuration this node runs under.
    pub fn config(&self) -> &DelphiConfig {
        &self.cfg
    }

    /// Number of basket dimensions.
    pub fn dims(&self) -> u16 {
        self.dims
    }

    /// The (clamped) per-dimension inputs this node contributes.
    pub fn inputs(&self) -> &[f64] {
        &self.inputs
    }

    /// Total distinguished checkpoints currently tracked at `level`,
    /// summed across dimensions (diagnostics).
    pub fn active_checkpoints(&self, level: u8) -> usize {
        self.levels
            .get(usize::from(level))
            .map_or(0, |l| l.dims.iter().map(|d| d.actives.len()).sum())
    }

    /// Forks checkpoint `k` off dimension `dim`'s background if not yet
    /// distinguished there, charging `sponsor`'s (sender, dimension)
    /// budget. Returns whether the checkpoint is distinguished after.
    fn distinguish(dim: &mut DimLevel, k_min: i64, k_max: i64, k: i64, sponsor: NodeId) -> bool {
        if k < k_min || k > k_max {
            return false;
        }
        if dim.actives.contains_key(&k) {
            return true;
        }
        let budget = &mut dim.intro_budget[sponsor.index()];
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        let fork = dim.background.clone();
        dim.actives.insert(k, fork);
        true
    }

    /// Applies one echo to one instance of one dimension, translating its
    /// actions into collector output.
    #[allow(clippy::too_many_arguments)]
    fn apply_echo(
        cfg: &DelphiConfig,
        me: NodeId,
        instance: &mut Instance,
        scope: Option<i64>,
        dim: u16,
        level: u8,
        round: Round,
        kind: EchoKind,
        from: NodeId,
        value: Dyadic,
        out: &mut VCollector,
        deferred_bg: &mut Vec<(u8, Round, EchoKind, u16, Dyadic)>,
    ) {
        let bv = instance.round_mut(round, me, cfg.n(), cfg.t());
        let actions = match kind {
            EchoKind::Echo1 => bv.on_echo1(from, value),
            EchoKind::Echo2 => bv.on_echo2(from, value),
        };
        for action in actions {
            let (k2, v2) = match action {
                BvAction::Echo1(v) => (EchoKind::Echo1, v),
                BvAction::Echo2(v) => (EchoKind::Echo2, v),
            };
            match scope {
                Some(k) => out.entry(level, round, k2, dim, k, v2),
                // Background echoes need an exclude snapshot of the whole
                // dimension; defer so the caller can take it without
                // aliasing.
                None => deferred_bg.push((level, round, k2, dim, v2)),
            }
        }
    }

    /// Processes one decoded basket section, collecting triggered echoes.
    fn process_section(&mut self, from: NodeId, section: &BasketSection, out: &mut VCollector) {
        let level_idx = usize::from(section.level);
        if level_idx >= self.levels.len() {
            return;
        }
        if section.round.0 < 1 || section.round.0 > self.cfg.r_max() {
            return;
        }
        // A section whose backgrounds carry any implausible value is
        // dropped whole, mirroring the scalar path's section gate.
        for (_, bg) in section.backgrounds.dims() {
            if !DelphiNode::plausible(bg, section.round) {
                return;
            }
        }

        let cfg = self.cfg.clone();
        let me = self.me;
        let n_dims = self.dims;
        let level = &mut self.levels[level_idx];
        let (k_min, k_max) = (level.k_min, level.k_max);
        let mut deferred_bg: Vec<(u8, Round, EchoKind, u16, Dyadic)> = Vec::new();

        // 1. Every mentioned (dimension, checkpoint) pair becomes
        //    distinguished in that dimension. Dimensions beyond our
        //    basket are ignored throughout (Byzantine senders cannot
        //    spend budget on phantom assets).
        for &(k, mask) in &section.exclude {
            for d in 0..n_dims {
                if mask & (1u64 << d) != 0 {
                    let _ =
                        Self::distinguish(&mut level.dims[usize::from(d)], k_min, k_max, k, from);
                }
            }
        }
        for (k, values) in &section.entries {
            for (d, _) in values.dims() {
                if d < n_dims {
                    let _ =
                        Self::distinguish(&mut level.dims[usize::from(d)], k_min, k_max, *k, from);
                }
            }
        }

        // 2. Explicit per-checkpoint echoes, dimension by dimension.
        for (k, values) in &section.entries {
            for (d, value) in values.dims() {
                if d >= n_dims || !DelphiNode::plausible(value, section.round) {
                    continue;
                }
                let dim = &mut level.dims[usize::from(d)];
                if let Some(instance) = dim.actives.get_mut(k) {
                    Self::apply_echo(
                        &cfg,
                        me,
                        instance,
                        Some(*k),
                        d,
                        section.level,
                        section.round,
                        section.kind,
                        from,
                        value,
                        out,
                        &mut deferred_bg,
                    );
                }
            }
        }

        // 3. Background echoes: per dimension, the background value
        //    applies to that dimension's background instance and every
        //    distinguished checkpoint the sender did not mention *in that
        //    dimension* (an entry or exclude mention in dim d shields
        //    only dim d).
        for (d, bg_value) in section.backgrounds.dims() {
            if d >= n_dims {
                continue;
            }
            let bit = 1u64 << d;
            let mentioned = |k: i64| {
                section.exclude.iter().any(|&(ek, mask)| ek == k && mask & bit != 0)
                    || section.entries.iter().any(|(ek, vv)| *ek == k && vv.contains(d))
            };
            let dim = &mut level.dims[usize::from(d)];
            let keys: Vec<i64> = dim.actives.keys().copied().filter(|&k| !mentioned(k)).collect();
            for k in keys {
                let instance = dim.actives.get_mut(&k).expect("key just listed");
                Self::apply_echo(
                    &cfg,
                    me,
                    instance,
                    Some(k),
                    d,
                    section.level,
                    section.round,
                    section.kind,
                    from,
                    bg_value,
                    out,
                    &mut deferred_bg,
                );
            }
            Self::apply_echo(
                &cfg,
                me,
                &mut dim.background,
                None,
                d,
                section.level,
                section.round,
                section.kind,
                from,
                bg_value,
                out,
                &mut deferred_bg,
            );
        }

        // 4. Flush deferred background echoes with per-dimension exclude
        //    snapshots.
        for (lvl, round, kind, d, value) in deferred_bg {
            let exclude: Vec<i64> = level.dims[usize::from(d)].actives.keys().copied().collect();
            out.background(lvl, round, kind, d, value, exclude);
        }
    }

    /// Advances every level through rounds whose outcomes are complete in
    /// **all** dimensions, emitting one merged burst per advance.
    fn advance(&mut self, out: &mut VCollector) {
        let cfg = self.cfg.clone();
        let me = self.me;
        let probe = self.round_probe.clone();
        for level in &mut self.levels {
            'rounds: while level.round <= cfg.r_max() {
                let round = Round(level.round);
                // Shared round walk: the whole basket advances together,
                // or not at all.
                let mut bg_nexts: Vec<Dyadic> = Vec::with_capacity(level.dims.len());
                let mut nexts: Vec<Vec<(i64, Dyadic)>> = Vec::with_capacity(level.dims.len());
                for dim in &level.dims {
                    let Some(bg_next) = dim.background.outcome_at(round) else { break 'rounds };
                    let mut dim_nexts = Vec::with_capacity(dim.actives.len());
                    for (&k, inst) in &dim.actives {
                        let Some(next) = inst.outcome_at(round) else { break 'rounds };
                        dim_nexts.push((k, next));
                    }
                    bg_nexts.push(bg_next);
                    nexts.push(dim_nexts);
                }
                for (dim, (bg_next, dim_nexts)) in
                    level.dims.iter_mut().zip(bg_nexts.into_iter().zip(nexts))
                {
                    dim.background.value = bg_next;
                    for (k, next) in dim_nexts {
                        dim.actives.get_mut(&k).expect("listed above").value = next;
                    }
                }
                level.round += 1;
                if let Some(p) = &probe {
                    p.fetch_add(1, Ordering::Relaxed);
                }
                if level.round > cfg.r_max() {
                    // Level complete in every dimension simultaneously.
                    let eps_prime = cfg.eps_prime();
                    for (d, dim) in level.dims.iter_mut().enumerate() {
                        let checkpoints: Vec<(f64, f64)> = dim
                            .actives
                            .iter()
                            .map(|(&k, inst)| {
                                (cfg.checkpoint_value(level.level, k), inst.value.to_f64())
                            })
                            .collect();
                        debug_assert!(dim.background.value.is_zero());
                        let own = cfg.clamp_input(self.inputs[d]);
                        dim.summary = Some(level_summary(&checkpoints, own, eps_prime));
                    }
                    break 'rounds;
                }
                // One merged initial burst for the next round.
                let next_round = Round(level.round);
                let mut deferred: Vec<(u8, Round, EchoKind, u16, Dyadic)> = Vec::new();
                let mut backgrounds = VectorValue::new();
                let mut entry_map: BTreeMap<i64, VectorValue> = BTreeMap::new();
                for (d, dim) in level.dims.iter_mut().enumerate() {
                    let d16 = d as u16;
                    let keys: Vec<i64> = dim.actives.keys().copied().collect();
                    for k in keys {
                        let inst = dim.actives.get_mut(&k).expect("key just listed");
                        let value = inst.value;
                        let actions =
                            inst.round_mut(next_round, me, cfg.n(), cfg.t()).set_input(value);
                        entry_map.entry(k).or_default().set(d16, value);
                        for action in actions {
                            match action {
                                // The initial Echo1 rides in the burst
                                // entry itself.
                                BvAction::Echo1(v) if v == value => {}
                                BvAction::Echo1(v) => {
                                    out.entry(level.level, next_round, EchoKind::Echo1, d16, k, v)
                                }
                                BvAction::Echo2(v) => {
                                    out.entry(level.level, next_round, EchoKind::Echo2, d16, k, v)
                                }
                            }
                        }
                    }
                    let bg_value = dim.background.value;
                    let bg_actions = dim
                        .background
                        .round_mut(next_round, me, cfg.n(), cfg.t())
                        .set_input(bg_value);
                    backgrounds.set(d16, bg_value);
                    for action in bg_actions {
                        match action {
                            BvAction::Echo1(v) if v == bg_value => {}
                            BvAction::Echo1(v) => {
                                deferred.push((level.level, next_round, EchoKind::Echo1, d16, v))
                            }
                            BvAction::Echo2(v) => {
                                deferred.push((level.level, next_round, EchoKind::Echo2, d16, v))
                            }
                        }
                    }
                }
                out.initial(level.level, next_round, backgrounds, entry_map.into_iter().collect());
                for (lvl, round, kind, d, value) in deferred {
                    let exclude: Vec<i64> =
                        level.dims[usize::from(d)].actives.keys().copied().collect();
                    out.background(lvl, round, kind, d, value, exclude);
                }
            }
        }
        if self.output.is_none()
            && self.levels.iter().all(|l| l.dims.iter().all(|d| d.summary.is_some()))
        {
            let outputs: Vec<f64> = (0..usize::from(self.dims))
                .map(|d| {
                    let summaries: Vec<LevelSummary> =
                        self.levels.iter().map(|l| l.dims[d].summary.expect("checked")).collect();
                    combine_levels(&summaries)
                })
                .collect();
            self.output = Some(outputs);
        }
    }

    fn flush(&self, out: VCollector) -> Vec<Envelope> {
        let bundle = out.into_bundle();
        if bundle.is_empty() {
            Vec::new()
        } else {
            vec![Envelope::to_all(bundle.to_bytes())]
        }
    }
}

impl Protocol for VectorDelphiNode {
    type Output = Vec<f64>;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.cfg.n()
    }

    fn start(&mut self) -> Vec<Envelope> {
        let cfg = self.cfg.clone();
        let me = self.me;
        let mut out = VCollector::default();
        for level in &mut self.levels {
            let (k_min, k_max) = (level.k_min, level.k_max);
            let round = Round(1);
            let mut backgrounds = VectorValue::new();
            let mut entry_map: BTreeMap<i64, VectorValue> = BTreeMap::new();
            let mut deferred: Vec<(EchoKind, u16, Dyadic)> = Vec::new();
            for (d, dim) in level.dims.iter_mut().enumerate() {
                let d16 = d as u16;
                // This dimension's own 1-checkpoints become distinguished
                // with input 1 (charged against our own budget).
                for k in cfg.one_checkpoints(level.level, self.inputs[d]) {
                    if Self::distinguish(dim, k_min, k_max, k, me) {
                        dim.actives.get_mut(&k).expect("just distinguished").value = Dyadic::ONE;
                    }
                }
                let keys: Vec<i64> = dim.actives.keys().copied().collect();
                for k in keys {
                    let inst = dim.actives.get_mut(&k).expect("key just listed");
                    let value = inst.value;
                    let actions = inst.round_mut(round, me, cfg.n(), cfg.t()).set_input(value);
                    entry_map.entry(k).or_default().set(d16, value);
                    for action in actions {
                        match action {
                            BvAction::Echo1(v) if v == value => {}
                            BvAction::Echo1(v) => {
                                out.entry(level.level, round, EchoKind::Echo1, d16, k, v)
                            }
                            BvAction::Echo2(v) => {
                                out.entry(level.level, round, EchoKind::Echo2, d16, k, v)
                            }
                        }
                    }
                }
                let bg_actions =
                    dim.background.round_mut(round, me, cfg.n(), cfg.t()).set_input(Dyadic::ZERO);
                backgrounds.set(d16, Dyadic::ZERO);
                for action in bg_actions {
                    match action {
                        BvAction::Echo1(v) if v.is_zero() => {}
                        BvAction::Echo1(v) => deferred.push((EchoKind::Echo1, d16, v)),
                        BvAction::Echo2(v) => deferred.push((EchoKind::Echo2, d16, v)),
                    }
                }
            }
            out.initial(level.level, round, backgrounds, entry_map.into_iter().collect());
            for (kind, d, value) in deferred {
                let exclude: Vec<i64> =
                    level.dims[usize::from(d)].actives.keys().copied().collect();
                out.background(level.level, round, kind, d, value, exclude);
            }
        }
        self.advance(&mut out);
        self.flush(out)
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        if from == self.me || from.index() >= self.cfg.n() {
            return Vec::new();
        }
        // Zero-copy decode, mirroring the scalar path: one validating
        // pass, then each section is walked into the reused scratch.
        let Ok(bundle) = BasketBundleRef::parse(payload) else {
            return Vec::new(); // malformed: Byzantine, drop
        };
        let mut out = VCollector::default();
        let mut scratch =
            std::mem::replace(&mut self.scratch, BasketSection::new(0, Round(1), EchoKind::Echo1));
        for section in bundle.sections() {
            section.fill_section(&mut scratch);
            self.process_section(from, &scratch, &mut out);
        }
        self.scratch = scratch;
        self.advance(&mut out);
        self.flush(out)
    }

    fn output(&self) -> Option<Vec<f64>> {
        self.output.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::InputRule;
    use delphi_sim::adversary::{Crash, GarbageSpammer, SilentAfter};
    use delphi_sim::{Simulation, Topology};
    use proptest::prelude::*;

    fn small_cfg(n: usize) -> DelphiConfig {
        DelphiConfig::builder(n)
            .space(0.0, 1000.0)
            .rho0(1.0)
            .delta_max(32.0)
            .epsilon(1.0)
            .build()
            .unwrap()
    }

    fn run_delphi(
        cfg: &DelphiConfig,
        inputs: &[f64],
        faulty: &[usize],
        make_faulty: impl Fn(NodeId) -> Box<dyn Protocol<Output = f64>>,
        seed: u64,
    ) -> Vec<f64> {
        let n = cfg.n();
        assert_eq!(inputs.len(), n);
        let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
            .map(|id| {
                if faulty.contains(&id.index()) {
                    make_faulty(id)
                } else {
                    DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed()
                }
            })
            .collect();
        let faulty_ids: Vec<NodeId> = faulty.iter().map(|&i| NodeId(i as u16)).collect();
        let report = Simulation::new(Topology::lan(n)).seed(seed).faulty(&faulty_ids).run(nodes);
        assert!(
            report.all_honest_finished(),
            "Delphi did not terminate (seed {seed}, stop {:?})",
            report.stop
        );
        report.honest_outputs().copied().collect()
    }

    fn assert_agreement_validity(outputs: &[f64], honest_inputs: &[f64], cfg: &DelphiConfig) {
        let m = honest_inputs.iter().copied().fold(f64::INFINITY, f64::min);
        let big_m = honest_inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let delta = big_m - m;
        let relax = cfg.rho0().max(delta);
        for a in outputs {
            assert!(
                *a >= m - relax - 1e-9 && *a <= big_m + relax + 1e-9,
                "validity: output {a} outside [{} - {relax}, {} + {relax}]",
                m,
                big_m
            );
            for b in outputs {
                assert!(
                    (a - b).abs() <= cfg.epsilon() + 1e-9,
                    "agreement: |{a} - {b}| > ε = {}",
                    cfg.epsilon()
                );
            }
        }
    }

    #[test]
    fn identical_inputs_output_close_to_input() {
        let cfg = small_cfg(4);
        let inputs = [500.0; 4];
        let outs = run_delphi(&cfg, &inputs, &[], |_| unreachable!(), 1);
        assert_agreement_validity(&outs, &inputs, &cfg);
        for o in &outs {
            assert!((o - 500.0).abs() <= cfg.rho0() + 1e-9, "output {o} near input 500");
        }
    }

    #[test]
    fn clustered_inputs_reach_agreement() {
        let cfg = small_cfg(4);
        let inputs = [499.2, 500.1, 500.9, 499.7];
        let outs = run_delphi(&cfg, &inputs, &[], |_| unreachable!(), 2);
        assert_agreement_validity(&outs, &inputs, &cfg);
    }

    #[test]
    fn spread_inputs_still_agree_within_epsilon() {
        let cfg = small_cfg(4);
        // δ = 20 spans many level-0 checkpoints, exercising higher levels.
        let inputs = [490.0, 495.0, 505.0, 510.0];
        let outs = run_delphi(&cfg, &inputs, &[], |_| unreachable!(), 3);
        assert_agreement_validity(&outs, &inputs, &cfg);
    }

    #[test]
    fn seven_nodes_mixed_inputs() {
        let cfg = small_cfg(7);
        let inputs = [100.0, 101.0, 99.5, 100.2, 102.0, 98.9, 100.7];
        let outs = run_delphi(&cfg, &inputs, &[], |_| unreachable!(), 4);
        assert_agreement_validity(&outs, &inputs, &cfg);
    }

    #[test]
    fn tolerates_crash_fault() {
        let cfg = small_cfg(4);
        let inputs = [200.0, 201.0, 199.0, 0.0];
        let outs = run_delphi(&cfg, &inputs, &[3], |id| Box::new(Crash::new(id, 4)), 5);
        assert_agreement_validity(&outs, &inputs[..3], &cfg);
    }

    #[test]
    fn tolerates_mid_protocol_crash() {
        let cfg = small_cfg(4);
        let inputs = [200.0, 201.0, 199.0, 200.5];
        let outs = run_delphi(
            &cfg,
            &inputs,
            &[1],
            |id| Box::new(SilentAfter::new(DelphiNode::new(small_cfg(4), id, 201.0), 40)),
            6,
        );
        let honest_inputs = [200.0, 199.0, 200.5];
        assert_agreement_validity(&outs, &honest_inputs, &cfg);
    }

    #[test]
    fn tolerates_garbage_spammer() {
        let cfg = small_cfg(4);
        let inputs = [300.0, 300.5, 299.5, 0.0];
        let outs = run_delphi(
            &cfg,
            &inputs,
            &[3],
            |id| Box::new(GarbageSpammer::new(id, 4, 3, 2, 200, 60)),
            7,
        );
        assert_agreement_validity(&outs, &inputs[..3], &cfg);
    }

    #[test]
    fn byzantine_outlier_input_cannot_drag_output() {
        // A Byzantine node participates *honestly* in the protocol but
        // with an absurd input. Validity must hold w.r.t. honest inputs
        // plus the relaxation.
        let cfg = small_cfg(4);
        let inputs = [100.0, 101.0, 100.5, 900.0];
        let outs = run_delphi(
            &cfg,
            &inputs,
            &[3],
            |id| DelphiNode::new(small_cfg(4), id, 900.0).boxed(),
            8,
        );
        // Validity for honest inputs [100, 101]: relax = max(ρ0, δ) = 1.
        for o in &outs {
            assert!(
                (99.0 - 1e-9..=102.0 + 1e-9).contains(o),
                "Byzantine outlier dragged output to {o}"
            );
        }
        assert_agreement_validity(&outs, &inputs[..3], &cfg);
    }

    #[test]
    fn works_at_sixteen_nodes() {
        let cfg = small_cfg(16);
        let inputs: Vec<f64> = (0..16).map(|i| 400.0 + (i as f64) * 0.3).collect();
        let outs = run_delphi(&cfg, &inputs, &[], |_| unreachable!(), 9);
        assert_agreement_validity(&outs, &inputs, &cfg);
    }

    #[test]
    fn within_rho_input_rule_also_works() {
        let cfg = DelphiConfig::builder(4)
            .space(0.0, 1000.0)
            .rho0(1.0)
            .delta_max(32.0)
            .epsilon(1.0)
            .input_rule(InputRule::WithinRho)
            .build()
            .unwrap();
        let inputs = [250.0, 250.4, 249.8, 250.2];
        let outs = run_delphi(&cfg, &inputs, &[], |_| unreachable!(), 10);
        assert_agreement_validity(&outs, &inputs, &cfg);
    }

    #[test]
    fn inputs_clamped_to_space() {
        let cfg = small_cfg(4);
        let node = DelphiNode::new(cfg.clone(), NodeId(0), -123.0);
        assert_eq!(node.input(), 0.0);
        let node = DelphiNode::new(cfg.clone(), NodeId(0), f64::NAN);
        assert_eq!(node.input(), 0.0);
        let node = DelphiNode::new(cfg, NodeId(0), 1e9);
        assert_eq!(node.input(), 1000.0);
    }

    #[test]
    fn malformed_messages_ignored() {
        let cfg = small_cfg(4);
        let mut node = DelphiNode::new(cfg, NodeId(0), 500.0);
        let _ = node.start();
        assert!(node.on_message(NodeId(1), b"\xff\xff\xff").is_empty());
        assert!(node.on_message(NodeId(1), b"").is_empty());
        // Message claiming to be from ourselves is dropped.
        assert!(node.on_message(NodeId(0), b"").is_empty());
    }

    #[test]
    fn intro_budget_bounds_active_set() {
        let cfg = small_cfg(4);
        let mut node = DelphiNode::new(cfg, NodeId(0), 500.0);
        let _ = node.start();
        let before = node.active_checkpoints(0);
        // A Byzantine sender mentions many distinct checkpoints at level 0.
        for wave in 0..20i64 {
            let mut s = Section::new(0, Round(1), EchoKind::Echo1);
            s.entries = (0..10).map(|i| (wave * 10 + i, Dyadic::ONE)).collect();
            let bundle = DelphiBundle { sections: vec![s] };
            let _ = node.on_message(NodeId(3), &bundle.to_bytes());
        }
        let after = node.active_checkpoints(0);
        assert!(
            after <= before + usize::from(INTRO_BUDGET_PER_LEVEL),
            "flood created {after} actives (budget {INTRO_BUDGET_PER_LEVEL})"
        );
    }

    #[test]
    fn out_of_range_checkpoints_ignored() {
        let cfg = small_cfg(4);
        let mut node = DelphiNode::new(cfg, NodeId(0), 500.0);
        let _ = node.start();
        let before = node.active_checkpoints(0);
        let mut s = Section::new(0, Round(1), EchoKind::Echo1);
        s.entries = vec![(-5, Dyadic::ONE), (10_000, Dyadic::ONE)];
        let bundle = DelphiBundle { sections: vec![s] };
        let _ = node.on_message(NodeId(2), &bundle.to_bytes());
        assert_eq!(node.active_checkpoints(0), before);
    }

    /// A schema-aware Byzantine node: sends *different* initial votes to
    /// different peers (vote 1 on far-apart checkpoints per recipient),
    /// the strongest single-node equivocation against Delphi's level 0.
    struct SectionEquivocator {
        me: NodeId,
        cfg: DelphiConfig,
    }

    impl Protocol for SectionEquivocator {
        type Output = f64;
        fn node_id(&self) -> NodeId {
            self.me
        }
        fn n(&self) -> usize {
            self.cfg.n()
        }
        fn start(&mut self) -> Vec<Envelope> {
            let mut out = Vec::new();
            for dest in 0..self.cfg.n() {
                if dest == self.me.index() {
                    continue;
                }
                let mut bundle = DelphiBundle::new();
                for level in 0..=self.cfg.l_max() {
                    let (k_min, k_max) = self.cfg.checkpoint_range(level);
                    // Vote 1 somewhere different per destination.
                    let k =
                        (k_min + (dest as i64 * 17) % (k_max - k_min).max(1)).clamp(k_min, k_max);
                    let mut s = Section::new(level, Round(1), EchoKind::Echo1);
                    s.background = Some(Dyadic::ZERO);
                    s.entries = vec![(k, Dyadic::ONE), (k + 1, Dyadic::ONE)];
                    bundle.sections.push(s);
                }
                out.push(Envelope::to_one(NodeId(dest as u16), bundle.to_bytes()));
            }
            out
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            Vec::new()
        }
        fn output(&self) -> Option<f64> {
            None
        }
    }

    #[test]
    fn tolerates_section_level_equivocation() {
        for seed in 0..4 {
            let cfg = small_cfg(4);
            let inputs = [600.0, 600.5, 601.0, 0.0];
            let outs = run_delphi(
                &cfg,
                &inputs,
                &[3],
                |id| Box::new(SectionEquivocator { me: id, cfg: small_cfg(4) }),
                40 + seed,
            );
            assert_agreement_validity(&outs, &inputs[..3], &cfg);
        }
    }

    /// Byzantine sender claiming weights for rounds ahead of everyone
    /// (future-round flooding) must neither stall nor skew the run.
    #[test]
    fn tolerates_future_round_flooding() {
        let cfg = small_cfg(4);
        let inputs = [700.0, 700.4, 700.8, 0.0];
        let make_flooder = |id: NodeId| -> Box<dyn Protocol<Output = f64>> {
            struct Flooder {
                me: NodeId,
                cfg: DelphiConfig,
            }
            impl Protocol for Flooder {
                type Output = f64;
                fn node_id(&self) -> NodeId {
                    self.me
                }
                fn n(&self) -> usize {
                    self.cfg.n()
                }
                fn start(&mut self) -> Vec<Envelope> {
                    let mut bundle = DelphiBundle::new();
                    for round in (1..=self.cfg.r_max()).rev() {
                        let mut s = Section::new(0, Round(round), EchoKind::Echo2);
                        s.entries = vec![(700, Dyadic::new(1, (round - 1).min(60) as u8))];
                        bundle.sections.push(s);
                    }
                    vec![Envelope::to_all(bundle.to_bytes())]
                }
                fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
                    Vec::new()
                }
                fn output(&self) -> Option<f64> {
                    None
                }
            }
            Box::new(Flooder { me: id, cfg: small_cfg(4) })
        };
        let outs = run_delphi(&cfg, &inputs, &[3], make_flooder, 50);
        assert_agreement_validity(&outs, &inputs[..3], &cfg);
    }

    fn run_vector_delphi(
        cfg: &DelphiConfig,
        inputs: &[Vec<f64>],
        faulty: &[usize],
        make_faulty: impl Fn(NodeId) -> Box<dyn Protocol<Output = Vec<f64>>>,
        seed: u64,
        probe: Option<Arc<AtomicU64>>,
    ) -> Vec<Vec<f64>> {
        let n = cfg.n();
        assert_eq!(inputs.len(), n);
        let nodes: Vec<Box<dyn Protocol<Output = Vec<f64>>>> = NodeId::all(n)
            .map(|id| {
                if faulty.contains(&id.index()) {
                    make_faulty(id)
                } else {
                    let mut node = VectorDelphiNode::new(cfg.clone(), id, &inputs[id.index()]);
                    if let Some(p) = &probe {
                        node = node.with_round_probe(p.clone());
                    }
                    node.boxed()
                }
            })
            .collect();
        let faulty_ids: Vec<NodeId> = faulty.iter().map(|&i| NodeId(i as u16)).collect();
        let report = Simulation::new(Topology::lan(n)).seed(seed).faulty(&faulty_ids).run(nodes);
        assert!(
            report.all_honest_finished(),
            "vector Delphi did not terminate (seed {seed}, stop {:?})",
            report.stop
        );
        report.honest_outputs().cloned().collect()
    }

    #[test]
    fn vector_basket_agrees_and_validates_per_dimension() {
        let cfg = small_cfg(4);
        let dims = 4usize;
        // Four assets at very different price points, small honest spread.
        let inputs: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..dims).map(|d| 150.0 + d as f64 * 180.0 + i as f64 * 0.3).collect())
            .collect();
        let outs = run_vector_delphi(&cfg, &inputs, &[], |_| unreachable!(), 11, None);
        for d in 0..dims {
            let douts: Vec<f64> = outs.iter().map(|o| o[d]).collect();
            let dins: Vec<f64> = inputs.iter().map(|o| o[d]).collect();
            assert_agreement_validity(&douts, &dins, &cfg);
        }
    }

    #[test]
    fn vector_single_dimension_behaves_like_scalar() {
        let cfg = small_cfg(4);
        let inputs: Vec<Vec<f64>> = vec![vec![500.2], vec![499.8], vec![500.5], vec![500.0]];
        let outs = run_vector_delphi(&cfg, &inputs, &[], |_| unreachable!(), 12, None);
        let flat: Vec<f64> = outs.iter().map(|o| o[0]).collect();
        let scalar_ins: Vec<f64> = inputs.iter().map(|o| o[0]).collect();
        assert_agreement_validity(&flat, &scalar_ins, &cfg);
    }

    #[test]
    fn vector_tolerates_crash_fault() {
        let cfg = small_cfg(4);
        let inputs: Vec<Vec<f64>> =
            (0..4).map(|i| vec![200.0 + i as f64 * 0.4, 700.0 - i as f64 * 0.4]).collect();
        let outs =
            run_vector_delphi(&cfg, &inputs, &[3], |id| Box::new(Crash::new(id, 4)), 13, None);
        for d in 0..2 {
            let douts: Vec<f64> = outs.iter().map(|o| o[d]).collect();
            let dins: Vec<f64> = inputs[..3].iter().map(|o| o[d]).collect();
            assert_agreement_validity(&douts, &dins, &cfg);
        }
    }

    #[test]
    fn vector_tolerates_garbage_spammer() {
        let cfg = small_cfg(4);
        let inputs: Vec<Vec<f64>> =
            (0..4).map(|i| vec![300.0 + i as f64 * 0.3, 301.0, 299.5]).collect();
        let outs = run_vector_delphi(
            &cfg,
            &inputs,
            &[3],
            |id| Box::new(GarbageSpammer::new(id, 4, 3, 2, 200, 60)),
            14,
            None,
        );
        for d in 0..3 {
            let douts: Vec<f64> = outs.iter().map(|o| o[d]).collect();
            let dins: Vec<f64> = inputs[..3].iter().map(|o| o[d]).collect();
            assert_agreement_validity(&douts, &dins, &cfg);
        }
    }

    #[test]
    fn vector_rounds_are_shared_across_the_basket() {
        // The round probe counts (level, round) completions. A scalar
        // deployment pays that walk once per asset; the vector node pays
        // it once per basket, so at basket size m the scalar total is
        // exactly m× the vector total.
        let cfg = small_cfg(4);
        let m = 4usize;
        let vector_probe = Arc::new(AtomicU64::new(0));
        let inputs: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..m).map(|d| 400.0 + d as f64 * 30.0 + i as f64 * 0.2).collect())
            .collect();
        let _ = run_vector_delphi(
            &cfg,
            &inputs,
            &[],
            |_| unreachable!(),
            15,
            Some(vector_probe.clone()),
        );

        let scalar_probe = Arc::new(AtomicU64::new(0));
        #[allow(clippy::needless_range_loop)] // d also seeds each per-dimension sim
        for d in 0..m {
            let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(4)
                .map(|id| {
                    Box::new(
                        DelphiNode::new(cfg.clone(), id, inputs[id.index()][d])
                            .with_round_probe(scalar_probe.clone()),
                    ) as Box<dyn Protocol<Output = f64>>
                })
                .collect();
            let report = Simulation::new(Topology::lan(4)).seed(16 + d as u64).run(nodes);
            assert!(report.all_honest_finished());
        }

        let vector_rounds = vector_probe.load(Ordering::Relaxed);
        let scalar_rounds = scalar_probe.load(Ordering::Relaxed);
        let expected_per_basket = 4 * u64::from(cfg.l_max() + 1) * u64::from(cfg.r_max());
        assert_eq!(vector_rounds, expected_per_basket);
        assert_eq!(scalar_rounds, vector_rounds * m as u64);
    }

    #[test]
    fn vector_malformed_messages_ignored() {
        let cfg = small_cfg(4);
        let mut node = VectorDelphiNode::new(cfg, NodeId(0), &[500.0, 600.0]);
        let _ = node.start();
        assert!(node.on_message(NodeId(1), b"\xff\xff\xff").is_empty());
        assert!(node.on_message(NodeId(1), b"").is_empty());
        assert!(node.on_message(NodeId(0), b"").is_empty());
        // A scalar-codec bundle is not a valid basket bundle here either:
        // feeding one must not panic (it is simply dropped or ignored).
        let mut s = Section::new(0, Round(1), EchoKind::Echo1);
        s.entries = vec![(500, Dyadic::ONE)];
        let bundle = DelphiBundle { sections: vec![s] };
        let _ = node.on_message(NodeId(2), &bundle.to_bytes());
    }

    #[test]
    fn vector_intro_budget_is_per_dimension() {
        let cfg = small_cfg(4);
        let mut node = VectorDelphiNode::new(cfg, NodeId(0), &[500.0, 500.0]);
        let _ = node.start();
        let before = node.active_checkpoints(0);
        // A Byzantine sender floods checkpoint mentions in dimension 0
        // only; dimension 1 must keep its own untouched budget.
        for wave in 0..20i64 {
            let mut s = BasketSection::new(0, Round(1), EchoKind::Echo1);
            s.entries =
                (0..10).map(|i| (wave * 10 + i, VectorValue::single(0, Dyadic::ONE))).collect();
            let bundle = BasketBundle { sections: vec![s] };
            let _ = node.on_message(NodeId(3), &bundle.to_bytes());
        }
        let after_flood = node.active_checkpoints(0);
        assert!(
            after_flood <= before + usize::from(INTRO_BUDGET_PER_LEVEL),
            "dim-0 flood created {after_flood} actives from {before}"
        );
        // The same sender can still introduce checkpoints in dimension 1.
        let mut s = BasketSection::new(0, Round(1), EchoKind::Echo1);
        s.entries = vec![(300, VectorValue::single(1, Dyadic::ONE))];
        let bundle = BasketBundle { sections: vec![s] };
        let _ = node.on_message(NodeId(3), &bundle.to_bytes());
        assert_eq!(node.active_checkpoints(0), after_flood + 1);
    }

    #[test]
    fn vector_ignores_dimensions_beyond_basket() {
        let cfg = small_cfg(4);
        let mut node = VectorDelphiNode::new(cfg, NodeId(0), &[500.0]);
        let _ = node.start();
        let before = node.active_checkpoints(0);
        let mut s = BasketSection::new(0, Round(1), EchoKind::Echo1);
        s.entries = vec![(300, {
            let mut v = VectorValue::single(0, Dyadic::ONE);
            v.set(7, Dyadic::ONE); // phantom asset
            v
        })];
        let bundle = BasketBundle { sections: vec![s] };
        let _ = node.on_message(NodeId(2), &bundle.to_bytes());
        // Dim 0's mention lands; the phantom dim-7 mention is discarded.
        assert_eq!(node.active_checkpoints(0), before + 1);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn vector_basket_size_is_bounded() {
        let inputs = vec![500.0; usize::from(MAX_VECTOR_DIMS) + 1];
        let _ = VectorDelphiNode::new(small_cfg(4), NodeId(0), &inputs);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn prop_vector_agreement_and_validity_per_dimension(
            dims in 1usize..6,
            base in 100.0..900.0f64,
            spreads in proptest::collection::vec(0.0..1.0f64, 4 * 6),
            delta in 0.5..16.0f64,
            seed in 0u64..u64::MAX,
        ) {
            let cfg = small_cfg(4);
            let inputs: Vec<Vec<f64>> = (0..4)
                .map(|i| {
                    (0..dims)
                        .map(|d| base + d as f64 * 11.0 + spreads[i * 6 + d] * delta)
                        .collect()
                })
                .collect();
            let outs = run_vector_delphi(&cfg, &inputs, &[], |_| unreachable!(), seed, None);
            for d in 0..dims {
                let douts: Vec<f64> = outs.iter().map(|o| o[d]).collect();
                let dins: Vec<f64> = inputs.iter().map(|o| o[d]).collect();
                let m = dins.iter().copied().fold(f64::INFINITY, f64::min);
                let big_m = dins.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let relax = cfg.rho0().max(big_m - m);
                for a in &douts {
                    prop_assert!(*a >= m - relax - 1e-9 && *a <= big_m + relax + 1e-9);
                    for b in &douts {
                        prop_assert!((a - b).abs() <= cfg.epsilon() + 1e-9);
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_agreement_and_validity(
            n in 4usize..8,
            base in 100.0..900.0f64,
            spreads in proptest::collection::vec(0.0..1.0f64, 8),
            delta in 0.5..24.0f64,
            seed in 0u64..u64::MAX,
        ) {
            let cfg = small_cfg(n);
            let inputs: Vec<f64> = (0..n).map(|i| base + spreads[i] * delta).collect();
            let outs = run_delphi(&cfg, &inputs, &[], |_| unreachable!(), seed);
            let m = inputs.iter().copied().fold(f64::INFINITY, f64::min);
            let big_m = inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let relax = cfg.rho0().max(big_m - m);
            for a in &outs {
                prop_assert!(*a >= m - relax - 1e-9 && *a <= big_m + relax + 1e-9);
                for b in &outs {
                    prop_assert!((a - b).abs() <= cfg.epsilon() + 1e-9);
                }
            }
        }
    }
}
