//! Probability and statistics toolkit backing the Delphi paper's data
//! analysis (§IV-D, §VI-A, §VI-B, Figs. 4–5).
//!
//! The paper's parameter engine rests on distributional reasoning: honest
//! oracle inputs come from thin-tailed laws (Normal, Gamma, Lognormal) or
//! fatter ones (Pareto, Loggamma); their *range* follows Gumbel or Fréchet
//! extreme-value laws; and `Δ` is chosen as a `λ`-bit tail bound of that
//! range. This crate implements all of it from scratch:
//!
//! - [`dist`]: samplers, pdf/cdf/quantile for Normal, Lognormal, Gamma,
//!   Pareto, Gumbel, Fréchet, and Loggamma;
//! - [`special`]: the underlying special functions (`erf`, `ln Γ`,
//!   regularized incomplete gamma) with classic, tested approximations;
//! - [`fit`]: parameter estimation (closed-form MLE where it exists,
//!   method of moments / log-transform tricks elsewhere);
//! - [`ks`]: Kolmogorov–Smirnov distances for the "which distribution
//!   fits best" comparisons of Figs. 4 and 5;
//! - [`evt`]: extreme-value helpers — range sampling and the
//!   `Δ = f(n, λ)` tail bounds of §IV-D (Gumbel: `O(λ)`, Fréchet:
//!   `O(2^{λ/α})`);
//! - [`histogram`]: fixed-bin histograms with CSV/ASCII rendering for the
//!   figure-regeneration binaries;
//! - [`describe`]: summary statistics.
//!
//! # Example
//!
//! ```
//! use delphi_stats::dist::{ContinuousDist, Normal};
//! use delphi_stats::fit;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let true_dist = Normal::new(10.0, 2.0).unwrap();
//! let samples: Vec<f64> = (0..5000).map(|_| true_dist.sample(&mut rng)).collect();
//! let fitted = fit::normal_mle(&samples).unwrap();
//! assert!((fitted.mean() - 10.0).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod describe;
pub mod dist;
pub mod evt;
pub mod fit;
pub mod histogram;
pub mod ks;
pub mod special;

pub use describe::Summary;
pub use dist::{ContinuousDist, Frechet, Gamma, Gumbel, LogGamma, Lognormal, Normal, Pareto};
pub use histogram::Histogram;
