//! Per-peer authenticated sessions: framing format choice, batching,
//! adaptive flushing, sharded egress lanes, and drain-on-shutdown.
//!
//! A [`SessionSet`] sits between the protocol-driving service layer and
//! the [`transport`](crate::transport) write loops. Since the send path
//! was sharded it is a thin router in front of `send_shards` egress lane
//! workers ([`EgressLane`]), each owning a disjoint set of the
//! *(destination, receive shard)* pending buffers:
//!
//! - the router partitions every step's envelope bursts by destination
//!   and receive-shard class (the same stable `shard()` hash the
//!   receive path dispatches by) and hands each group to the lane owning
//!   that class (`class % send_shards`);
//! - each lane accumulates entries under the session's [`FlushPolicy`]
//!   on its own task — running the size triggers inline and the
//!   adaptive time trigger on its own timer — and performs frame encode
//!   plus HMAC there, so MAC work parallelizes across lanes instead of
//!   serializing on the service loop;
//! - lane assignment never splits a `(destination, shard)` buffer, so
//!   the frames on the wire are byte-identical for any `send_shards`:
//!   send sharding is pure CPU parallelism, which is what keeps the
//!   sim/TCP frame-accounting parity tests exact;
//! - with batching on, all envelopes of one step bound for the same peer
//!   share one v2 frame (one HMAC tag for the whole step); a solo
//!   (single-instance) runner keeps the 4-bytes-cheaper v1 format for
//!   single-envelope flushes;
//! - routing and pending buffers are recycled between flushes (the
//!   free-list in `PendingBatchesBy`), so a steady-state flush allocates
//!   nothing but the frame itself; `NetStats::buffer_reuses` counts the
//!   hits;
//! - encoded frames are `try_send`-handed to the bounded per-peer writer
//!   queues; a full queue drops the frame, counted globally
//!   (`dropped_egress`), per lane (`dropped_egress_shard`) and per
//!   `(peer, lane)` site — so a single slow peer (drops in one peer's
//!   row, across lanes) is never confused with a saturated lane (drops
//!   in one lane's column, across peers);
//! - [`SessionSet::shutdown`] closes the lanes first — each flushes
//!   everything it still buffers — and only then closes the writer
//!   queues and waits (bounded) for the write loops to flush, so a slow
//!   peer still receives everything that was queued.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use delphi_crypto::Keychain;
use delphi_primitives::epoch::route_epoch_bursts_into;
use delphi_primitives::mux::route_bursts_into;
use delphi_primitives::{
    AgreementId, Envelope, FlushPolicy, InstanceId, NodeId, PendingBatches, PendingBatchesBy,
};
use tokio::sync::mpsc;

use crate::frame::{encode_batch_frame, encode_epoch_frame, encode_frame};
use crate::transport::{spawn_writer, Counters, MAX_RECV_SHARDS};

/// Capacity (messages) of each egress lane's inbox. The router `await`s
/// when a lane falls this far behind — backpressure on the protocol
/// loop, never unbounded growth; actual frame dropping happens only at
/// the bounded per-peer writer queues.
const LANE_QUEUE_MSGS: usize = 1024;

/// Hands `frame` to a peer's bounded writer queue, returning whether it
/// was dropped because the peer is `egress_capacity` frames behind. The
/// lane flush paths are synchronous, so blocking for room is not an
/// option — and is not wanted: a peer slower than its queue is treated
/// like a crashed peer (the `t < n/3` budget) instead of a memory leak.
/// A closed queue means the writer already exited (shutdown/abort); the
/// frame is silently discarded exactly as the old unbounded send was.
fn send_or_drop(tx: &mpsc::Sender<Bytes>, frame: Bytes, counters: &Counters) -> bool {
    if let Err(mpsc::error::TrySendError::Full(_)) = tx.try_send(frame) {
        counters.dropped_egress.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Per-`(peer, lane)` egress drop sites: the attribution that separates
/// "peer 2 is slow" (one row lights up, across lanes) from "lane 0 is
/// saturated" (one column lights up, across peers). Shared between the
/// lanes; the first drop at a site emits one log line.
struct EgressDropSites {
    /// `counts[peer * MAX_RECV_SHARDS + lane]`.
    counts: Vec<AtomicU64>,
}

impl EgressDropSites {
    fn new(n: usize) -> EgressDropSites {
        EgressDropSites { counts: (0..n * MAX_RECV_SHARDS).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Records one drop at `(peer, lane)`, returning the new site count.
    fn record(&self, peer: usize, lane: usize) -> u64 {
        self.counts[peer * MAX_RECV_SHARDS + lane].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Per-peer rows of per-lane drop counts.
    #[cfg(test)]
    fn snapshot(&self) -> Vec<[u64; MAX_RECV_SHARDS]> {
        self.counts
            .chunks(MAX_RECV_SHARDS)
            .map(|row| {
                let mut out = [0u64; MAX_RECV_SHARDS];
                for (slot, c) in out.iter_mut().zip(row) {
                    *slot = c.load(Ordering::Relaxed);
                }
                out
            })
            .collect()
    }
}

/// Work shipped from the router to an egress lane. Entries arrive
/// already partitioned to one *(destination, receive shard)* pending
/// slot; `Flush` releases everything the lane still buffers (the start
/// bursts and pre-drain flushes the service loop requests explicitly —
/// the adaptive time trigger runs on the lane's own timer).
enum LaneMsg {
    Solo { slot: usize, entries: Vec<(InstanceId, Bytes)> },
    Epoch { slot: usize, entries: Vec<(AgreementId, Bytes)> },
    Flush,
}

/// One egress shard worker: owns the pending buffers of its receive-
/// shard classes, runs the flush policy's size and time triggers, and
/// performs frame encode + HMAC on its own task.
struct EgressLane {
    lane: usize,
    keychain: Arc<Keychain>,
    counters: Arc<Counters>,
    drop_sites: Arc<EgressDropSites>,
    /// Clones of the per-peer writer senders: writers observe close only
    /// once every lane has exited *and* the router dropped its copies.
    peer_tx: Vec<Option<mpsc::Sender<Bytes>>>,
    batching: bool,
    solo: bool,
    recv_shards: usize,
    /// Per-slot epoch entries awaiting flush (epoch streams only) —
    /// the same accumulator `EpochProtocol` uses under the simulator, so
    /// the two transports share one flush-trigger semantics. Full-size
    /// (`n * recv_shards` slots); only this lane's classes see traffic.
    pending: PendingBatches,
    /// Per-slot one-shot entries awaiting flush (`run_instances`).
    pending_solo: PendingBatchesBy<InstanceId>,
    /// The adaptive policy's time trigger (None per-step).
    flush_delay: Option<Duration>,
    /// Reuse hits already published into the shared counter.
    published_reuses: u64,
}

impl EgressLane {
    /// The lane's event loop: accumulate, flush on size/time triggers or
    /// explicit `Flush`, and drain everything when the router closes the
    /// inbox (shutdown) — before the writer queues close behind it.
    async fn run(mut self, mut rx: mpsc::Receiver<LaneMsg>) {
        let mut flush_at: Option<tokio::time::Instant> = None;
        loop {
            let msg = match flush_at {
                Some(at) => tokio::select! {
                    m = rx.recv() => Some(m),
                    _ = tokio::time::sleep_until(at) => None,
                },
                None => Some(rx.recv().await),
            };
            match msg {
                Some(Some(LaneMsg::Solo { slot, mut entries })) => {
                    if self.pending_solo.push_drain(slot, &mut entries) {
                        self.flush_solo_slot(slot);
                    }
                }
                Some(Some(LaneMsg::Epoch { slot, mut entries })) => {
                    if self.pending.push_drain(slot, &mut entries) {
                        self.flush_epoch_slot(slot);
                    }
                }
                Some(Some(LaneMsg::Flush)) | None => {
                    self.flush_all();
                    flush_at = None;
                }
                Some(None) => break,
            }
            // The lane's own time trigger: armed while anything is
            // pending, disarmed once a flush emptied every slot.
            if let Some(delay) = self.flush_delay {
                if !(self.pending.has_pending() || self.pending_solo.has_pending()) {
                    flush_at = None;
                } else if flush_at.is_none() {
                    flush_at = Some(tokio::time::Instant::now() + delay);
                }
            }
        }
        // Inbox closed: final drain, while the writer queues are still
        // open (shutdown joins the lanes before closing them).
        self.flush_all();
    }

    fn flush_all(&mut self) {
        for slot in 0..self.pending.dests() {
            self.flush_epoch_slot(slot);
        }
        for slot in 0..self.pending_solo.dests() {
            self.flush_solo_slot(slot);
        }
    }

    /// Hands one encoded frame to `dest`'s writer queue, attributing any
    /// overflow drop to this lane and the `(peer, lane)` site.
    fn ship_frame(&self, dest: usize, tx: &mpsc::Sender<Bytes>, frame: Bytes) {
        if send_or_drop(tx, frame, &self.counters) {
            self.counters.dropped_egress_shard[self.lane].fetch_add(1, Ordering::Relaxed);
            if self.drop_sites.record(dest, self.lane) == 1 {
                eprintln!(
                    "delphi-net: egress lane {} started dropping frames to peer {} \
                     (writer queue full)",
                    self.lane, dest
                );
            }
        }
    }

    fn flush_solo_slot(&mut self, slot: usize) {
        let entries = self.pending_solo.take(slot);
        if entries.is_empty() {
            return;
        }
        let dest = slot / self.recv_shards;
        let Some(Some(tx)) = self.peer_tx.get(dest) else {
            self.pending_solo.recycle(entries);
            return;
        };
        self.counters.egress_shard_entries[self.lane]
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        let to = NodeId(dest as u16);
        if self.batching {
            let frame = match &entries[..] {
                [(_, payload)] if self.solo => encode_frame(&self.keychain, to, payload),
                _ => encode_batch_frame(&self.keychain, to, &entries),
            };
            self.count_mac();
            self.ship_frame(dest, tx, frame);
        } else {
            // One frame per entry: the measurement baseline.
            for (instance, payload) in &entries {
                let frame = if self.solo {
                    encode_frame(&self.keychain, to, payload)
                } else {
                    encode_batch_frame(&self.keychain, to, &[(*instance, payload.clone())])
                };
                self.count_mac();
                self.ship_frame(dest, tx, frame);
            }
        }
        self.pending_solo.recycle(entries);
        self.publish_reuses();
    }

    fn flush_epoch_slot(&mut self, slot: usize) {
        let entries = self.pending.take(slot);
        if entries.is_empty() {
            return;
        }
        let dest = slot / self.recv_shards;
        let Some(Some(tx)) = self.peer_tx.get(dest) else {
            self.pending.recycle(entries);
            return;
        };
        self.counters.egress_shard_entries[self.lane]
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        let to = NodeId(dest as u16);
        if self.batching {
            let frame = encode_epoch_frame(&self.keychain, to, &entries);
            self.count_mac();
            self.ship_frame(dest, tx, frame);
        } else {
            // One frame per entry: the measurement baseline.
            for entry in &entries {
                let frame = encode_epoch_frame(&self.keychain, to, std::slice::from_ref(entry));
                self.count_mac();
                self.ship_frame(dest, tx, frame);
            }
        }
        self.pending.recycle(entries);
        self.publish_reuses();
    }

    /// One encode-side HMAC: counted globally and attributed to the lane.
    fn count_mac(&self) {
        self.counters.mac_ops.fetch_add(1, Ordering::Relaxed);
        self.counters.egress_shard_macs[self.lane].fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes fresh pending-buffer reuse hits into the shared stats
    /// (per-lane deltas: lanes share the counter, so `store` would race).
    fn publish_reuses(&mut self) {
        let total = self.pending.reuse_hits() + self.pending_solo.reuse_hits();
        let delta = total - self.published_reuses;
        if delta > 0 {
            self.counters.buffer_reuses.fetch_add(delta, Ordering::Relaxed);
            self.published_reuses = total;
        }
    }
}

/// The outbound half of a full-mesh node: one authenticated session per
/// peer, partitioned across `send_shards` egress lane workers.
///
/// One-shot runs queue whole steps ([`SessionSet::enqueue_step`]); epoch
/// streams queue epoch-addressed entries
/// ([`SessionSet::enqueue_epoch_step`]). Both paths route per
/// *(destination, receive shard)* — so a sharded deployment's frames
/// each land wholly on one of the receiver's dispatch workers, exactly
/// like the simulator's `EpochProtocol::new_sharded` sender model — and
/// the owning lane (`shard class % send_shards`) batches, encodes, and
/// MACs them off the service loop.
pub(crate) struct SessionSet {
    /// `peer_tx[p]` queues frames for peer `p`; `None` at our own slot.
    /// Queues are bounded (`egress_capacity` frames): a peer that falls
    /// further behind has its frames dropped and counted in
    /// `NetStats::dropped_egress` — a slower-than-capacity peer is
    /// treated as crashed (within the `t < n/3` budget) rather than
    /// allowed to inflate memory or stall the flush path. The router
    /// keeps these originals so writers close only after the lanes (which
    /// hold clones) have drained and exited.
    peer_tx: Vec<Option<mpsc::Sender<Bytes>>>,
    writer_tasks: Vec<tokio::task::JoinHandle<()>>,
    /// `lane_tx[l]` feeds egress lane `l`; closing them (shutdown) makes
    /// each lane flush its remaining buffers and exit.
    lane_tx: Vec<mpsc::Sender<LaneMsg>>,
    lane_tasks: Vec<tokio::task::JoinHandle<()>>,
    me: NodeId,
    counters: Arc<Counters>,
    #[cfg_attr(not(test), allow(dead_code))]
    drop_sites: Arc<EgressDropSites>,
    /// Receive shards the deployment runs (1 = unsharded): pending slots
    /// are indexed `dest * recv_shards + shard`.
    recv_shards: usize,
    /// Reused routing buffers, one set per address space.
    route_epoch: Vec<Vec<(AgreementId, Bytes)>>,
    route_solo: Vec<Vec<(InstanceId, Bytes)>>,
    /// Reused per-shard partition buffers (sharded mode only).
    shard_epoch: Vec<Vec<(AgreementId, Bytes)>>,
    shard_solo: Vec<Vec<(InstanceId, Bytes)>>,
}

impl SessionSet {
    /// Opens a session (a lazy-dialing write loop) to every peer in
    /// `addrs` except `keychain.node_id()` itself, and spawns
    /// `send_shards` egress lane workers over them. `recv_shards` is the
    /// deployment's receive-shard count: outbound batches are flushed per
    /// `(destination, shard)` so every frame belongs wholly to one of the
    /// receiver's dispatch workers; lane `class % send_shards` owns each
    /// shard class end to end (send parallelism therefore tops out at
    /// `recv_shards` lanes).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn connect(
        keychain: Arc<Keychain>,
        addrs: &[SocketAddr],
        reconnect_delay: Duration,
        counters: Arc<Counters>,
        batching: bool,
        solo: bool,
        flush: FlushPolicy,
        recv_shards: usize,
        send_shards: usize,
        egress_capacity: usize,
    ) -> SessionSet {
        assert!(recv_shards >= 1, "need at least one receive shard");
        assert!(
            (1..=MAX_RECV_SHARDS).contains(&send_shards),
            "send shards must be in 1..={MAX_RECV_SHARDS}"
        );
        assert!(egress_capacity >= 1, "need at least one frame of egress capacity");
        let me = keychain.node_id();
        let n = addrs.len();
        let mut peer_tx: Vec<Option<mpsc::Sender<Bytes>>> = Vec::with_capacity(n);
        let mut writer_tasks = Vec::new();
        for peer in NodeId::all(n) {
            if peer == me {
                peer_tx.push(None);
                continue;
            }
            let (tx, rx) = mpsc::channel::<Bytes>(egress_capacity);
            peer_tx.push(Some(tx));
            writer_tasks.push(spawn_writer(
                addrs[peer.index()],
                rx,
                reconnect_delay,
                counters.clone(),
            ));
        }
        let flush_delay = match flush {
            FlushPolicy::Adaptive { max_delay, .. } => Some(max_delay),
            FlushPolicy::PerStep => None,
        };
        let drop_sites = Arc::new(EgressDropSites::new(n));
        let mut lane_tx = Vec::with_capacity(send_shards);
        let mut lane_tasks = Vec::with_capacity(send_shards);
        for lane in 0..send_shards {
            let (tx, rx) = mpsc::channel::<LaneMsg>(LANE_QUEUE_MSGS);
            lane_tx.push(tx);
            let worker = EgressLane {
                lane,
                keychain: keychain.clone(),
                counters: counters.clone(),
                drop_sites: drop_sites.clone(),
                peer_tx: peer_tx.clone(),
                batching,
                solo,
                recv_shards,
                pending: PendingBatches::new(n * recv_shards, flush),
                pending_solo: PendingBatchesBy::new(n * recv_shards, flush),
                flush_delay,
                published_reuses: 0,
            };
            lane_tasks.push(tokio::spawn(worker.run(rx)));
        }
        SessionSet {
            peer_tx,
            writer_tasks,
            lane_tx,
            lane_tasks,
            me,
            counters,
            drop_sites,
            recv_shards,
            route_epoch: Vec::new(),
            route_solo: Vec::new(),
            shard_epoch: std::iter::repeat_with(Vec::new).take(recv_shards).collect(),
            shard_solo: std::iter::repeat_with(Vec::new).take(recv_shards).collect(),
        }
    }

    /// Hands one partitioned group to the lane owning `class`. An `await`
    /// here is backpressure on a lane more than [`LANE_QUEUE_MSGS`]
    /// behind; a closed lane means shutdown already ran and the group is
    /// discarded exactly like a send on a closed writer queue was.
    async fn ship(&self, class: usize, msg: LaneMsg) {
        let lane = class % self.lane_tx.len();
        let _ = self.lane_tx[lane].send(msg).await;
    }

    /// Queues one protocol step's output: the envelope bursts of every
    /// instance that acted, routed per destination (and receive shard)
    /// and handed to the owning egress lane, which accumulates and
    /// flushes them per the session's [`FlushPolicy`] (per-step
    /// immediately — the classic one-frame-per-step cost model; adaptive
    /// on size triggers, with the lane's own timer as the time trigger).
    ///
    /// Multi-instance runs speak pure v2 so `NetStats` byte counts equal
    /// the simulator's `Mux` accounting; solo single-envelope flushes
    /// keep the (4 bytes cheaper) v1 format.
    pub(crate) async fn enqueue_step(&mut self, bursts: Vec<(InstanceId, Vec<Envelope>)>) {
        let (n, shards) = (self.peer_tx.len(), self.recv_shards);
        let mut routed = std::mem::take(&mut self.route_solo);
        route_bursts_into(bursts, n, self.me, &mut routed);
        for (dest, entries) in routed.iter_mut().enumerate() {
            if entries.is_empty() || self.peer_tx[dest].is_none() {
                continue;
            }
            self.counters.sent_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
            if shards == 1 {
                let entries = std::mem::take(entries);
                self.ship(0, LaneMsg::Solo { slot: dest, entries }).await;
                continue;
            }
            // Partition into shard classes so every flushed frame lands
            // wholly on one of the receiver's dispatch workers.
            let mut groups = std::mem::take(&mut self.shard_solo);
            for (id, payload) in entries.drain(..) {
                groups[id.shard(shards)].push((id, payload));
            }
            for (shard, group) in groups.iter_mut().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let entries = std::mem::take(group);
                self.ship(shard, LaneMsg::Solo { slot: dest * shards + shard, entries }).await;
            }
            self.shard_solo = groups;
        }
        self.route_solo = routed;
    }

    /// Queues one epoch-stream step: epoch-addressed bursts routed per
    /// (destination, shard) and handed to the owning egress lane.
    pub(crate) async fn enqueue_epoch_step(&mut self, bursts: Vec<(AgreementId, Vec<Envelope>)>) {
        let (n, shards) = (self.peer_tx.len(), self.recv_shards);
        let mut routed = std::mem::take(&mut self.route_epoch);
        route_epoch_bursts_into(bursts, n, self.me, &mut routed);
        for (dest, entries) in routed.iter_mut().enumerate() {
            if entries.is_empty() || self.peer_tx[dest].is_none() {
                continue;
            }
            self.counters.sent_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
            if shards == 1 {
                let entries = std::mem::take(entries);
                self.ship(0, LaneMsg::Epoch { slot: dest, entries }).await;
                continue;
            }
            let mut groups = std::mem::take(&mut self.shard_epoch);
            for (id, payload) in entries.drain(..) {
                groups[id.shard(shards)].push((id, payload));
            }
            for (shard, group) in groups.iter_mut().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let entries = std::mem::take(group);
                self.ship(shard, LaneMsg::Epoch { slot: dest * shards + shard, entries }).await;
            }
            self.shard_epoch = groups;
        }
        self.route_epoch = routed;
    }

    /// Asks every lane to flush its pending epoch entries (start bursts
    /// and pre-shutdown drains; the adaptive time trigger runs on the
    /// lanes' own timers). Lane inboxes are FIFO, so the flush lands
    /// after everything enqueued before it.
    pub(crate) async fn flush_epochs(&mut self) {
        for tx in &self.lane_tx {
            let _ = tx.send(LaneMsg::Flush).await;
        }
    }

    /// Asks every lane to flush its pending one-shot entries.
    pub(crate) async fn flush_steps(&mut self) {
        for tx in &self.lane_tx {
            let _ = tx.send(LaneMsg::Flush).await;
        }
    }

    /// The shared per-`(peer, lane)` drop sites (test observability).
    #[cfg(test)]
    fn drop_sites(&self) -> Arc<EgressDropSites> {
        self.drop_sites.clone()
    }

    /// Graceful drain, in dependency order: close the lane inboxes so
    /// every lane flushes its remaining buffers into the writer queues
    /// and exits; then close the per-peer queues so each write loop
    /// flushes its remaining frames and exits at channel-close; join
    /// both layers against a shared `drain_timeout` deadline. Closing
    /// the writers first would lose whatever the lanes still buffered —
    /// the lanes-flush-before-writer-close ordering is load-bearing.
    pub(crate) async fn shutdown(self, drain_timeout: Duration) {
        let SessionSet { peer_tx, writer_tasks, lane_tx, lane_tasks, .. } = self;
        let drain_deadline = tokio::time::Instant::now() + drain_timeout;
        drop(lane_tx);
        for task in lane_tasks {
            let mut task = task;
            tokio::select! {
                _ = &mut task => {},
                _ = tokio::time::sleep_until(drain_deadline) => task.abort(),
            }
        }
        // Lanes are gone (their peer_tx clones dropped); releasing the
        // router's originals is what lets the writers observe close.
        drop(peer_tx);
        for task in writer_tasks {
            let mut task = task;
            tokio::select! {
                _ = &mut task => {},
                _ = tokio::time::sleep_until(drain_deadline) => task.abort(),
            }
        }
    }

    /// Aborts every lane and writer immediately, dropping queued frames
    /// (used on deadline failure, where there is no output worth
    /// draining for).
    pub(crate) fn abort(self) {
        for l in self.lane_tasks {
            l.abort();
        }
        for w in self.writer_tasks {
            w.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::Envelope;

    #[test]
    fn send_or_drop_counts_overflow_and_keeps_capacity_frames() {
        let counters = Counters::default();
        let (tx, mut rx) = mpsc::channel::<Bytes>(4);
        for i in 0u8..100 {
            send_or_drop(&tx, Bytes::from(vec![i]), &counters);
        }
        assert_eq!(counters.dropped_egress.load(Ordering::Relaxed), 96);
        // The frames that made it are the first four, in order.
        drop(tx);
        let mut delivered = Vec::new();
        while let Some(frame) = futures_recv(&mut rx) {
            delivered.push(frame[0]);
        }
        assert_eq!(delivered, vec![0, 1, 2, 3]);
    }

    /// Drains one value from a receiver without a runtime (the channel
    /// stub resolves immediately when a value or closure is available).
    fn futures_recv(rx: &mut mpsc::Receiver<Bytes>) -> Option<Bytes> {
        tokio::runtime::Runtime::new().ok()?.block_on(rx.recv())
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn full_writer_queue_drops_frames_instead_of_growing() {
        // Peer 1 lives at a dead address (nothing listens on port 1), so
        // its writer can never drain. With `egress_capacity = 4`, flushing
        // 100 single-envelope steps must keep at most capacity frames
        // queued (+1 the writer may already hold while dialing) and count
        // every other frame as dropped egress — never grow memory.
        let keychain = Arc::new(Keychain::derive(b"egress", NodeId(0), 2));
        let addrs: Vec<SocketAddr> =
            vec!["127.0.0.1:9".parse().unwrap(), "127.0.0.1:1".parse().unwrap()];
        let counters = Arc::new(Counters::default());
        let mut sessions = SessionSet::connect(
            keychain,
            &addrs,
            Duration::from_secs(60), // park the writer after its first dial fails
            counters.clone(),
            true,
            true,
            FlushPolicy::PerStep,
            1,
            1,
            4,
        );
        for step in 0..100u16 {
            sessions
                .enqueue_step(vec![(
                    InstanceId(0),
                    vec![Envelope::to_one(NodeId(1), Bytes::from(step.to_be_bytes().to_vec()))],
                )])
                .await;
        }
        // Joining the (asynchronous) lane is the barrier that makes the
        // drop count final; the parked writer is aborted at the deadline.
        sessions.shutdown(Duration::from_millis(500)).await;
        let dropped = counters.dropped_egress.load(Ordering::Relaxed);
        assert!(
            (95..=96).contains(&dropped),
            "expected all but capacity(+1 in-flight) frames dropped, got {dropped}"
        );
        assert_eq!(counters.dropped_egress_shard[0].load(Ordering::Relaxed), dropped);
        assert_eq!(counters.sent_frames.load(Ordering::Relaxed), 0);
    }

    /// Finds an instance id hashing to shard class `want` of 2.
    fn id_of_class(want: usize) -> InstanceId {
        (0u16..64)
            .map(InstanceId)
            .find(|i| i.shard(2) == want)
            .expect("both classes occur within 64 ids")
    }

    /// One step carrying one envelope of shard class `class` to `dest`.
    async fn send_one(sessions: &mut SessionSet, dest: u16, class: usize) {
        sessions
            .enqueue_step(vec![(
                id_of_class(class),
                vec![Envelope::to_one(NodeId(dest), Bytes::from_static(b"x"))],
            )])
            .await;
    }

    /// Builds a 3-node SessionSet (me = 0, peers 1 and 2 at dead
    /// addresses) with 2 receive shards and 2 egress lanes.
    fn dead_peer_sessions(counters: &Arc<Counters>) -> SessionSet {
        let keychain = Arc::new(Keychain::derive(b"drop-attr", NodeId(0), 3));
        let addrs: Vec<SocketAddr> = vec![
            "127.0.0.1:9".parse().unwrap(),
            "127.0.0.1:1".parse().unwrap(),
            "127.0.0.1:1".parse().unwrap(),
        ];
        SessionSet::connect(
            keychain,
            &addrs,
            Duration::from_secs(60), // park the writers after their first dial fails
            counters.clone(),
            true,
            false,
            FlushPolicy::PerStep,
            2,
            2,
            2,
        )
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn egress_drops_attribute_slow_peer_vs_saturated_lane() {
        // Cause 1 — a slow peer: overflow traffic on BOTH shard classes,
        // but only toward peer 1. Drops must land in peer 1's row across
        // both lanes, and nowhere in peer 2's row — the signature that
        // says "that peer is behind", not "a lane is saturated".
        let counters = Arc::new(Counters::default());
        let sessions = {
            let mut s = dead_peer_sessions(&counters);
            for _ in 0..30 {
                send_one(&mut s, 1, 0).await;
                send_one(&mut s, 1, 1).await;
            }
            s
        };
        let sites = sessions.drop_sites();
        sessions.shutdown(Duration::from_millis(500)).await;
        let rows = sites.snapshot();
        assert!(rows[1][0] > 0 && rows[1][1] > 0, "slow peer drops on both lanes: {rows:?}");
        assert!(rows[2].iter().all(|&c| c == 0), "no drops to the idle peer: {rows:?}");
        let snap = counters.snapshot();
        assert_eq!(
            snap.dropped_egress_shard.iter().sum::<u64>(),
            snap.dropped_egress,
            "every drop is attributed to a lane"
        );

        // Cause 2 — a saturated lane: overflow traffic on ONE shard class
        // toward both peers. Drops must land in lane 0's column across
        // both peers, and never on lane 1.
        let counters = Arc::new(Counters::default());
        let sessions = {
            let mut s = dead_peer_sessions(&counters);
            for _ in 0..30 {
                send_one(&mut s, 1, 0).await;
                send_one(&mut s, 2, 0).await;
            }
            s
        };
        let sites = sessions.drop_sites();
        sessions.shutdown(Duration::from_millis(500)).await;
        let rows = sites.snapshot();
        assert!(rows[1][0] > 0 && rows[2][0] > 0, "lane-0 drops for both peers: {rows:?}");
        assert!(rows.iter().all(|row| row[1] == 0), "the idle lane must stay clean: {rows:?}");
        let snap = counters.snapshot();
        assert_eq!(snap.dropped_egress_shard[1], 0);
        assert_eq!(snap.dropped_egress_shard[0], snap.dropped_egress);
    }
}
