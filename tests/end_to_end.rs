//! Cross-crate integration: the Delphi protocol under realistic
//! topologies, fault mixes, and configuration corners.

use delphi::core::{DelphiConfig, DelphiNode};
use delphi::primitives::{NodeId, Protocol};
use delphi::sim::adversary::{ByteMutator, Crash, GarbageSpammer, Replayer, SilentAfter};
use delphi::sim::{Simulation, StopReason, Topology};
use delphi::workloads::{BtcFeed, BtcFeedConfig, DroneScenario, DroneScenarioConfig};

fn oracle_cfg(n: usize) -> DelphiConfig {
    DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(2.0)
        .delta_max(2000.0)
        .epsilon(2.0)
        .build()
        .expect("valid oracle config")
}

fn assert_agreement_validity(outs: &[f64], honest_inputs: &[f64], cfg: &DelphiConfig) {
    let lo = honest_inputs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = honest_inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let relax = cfg.rho0().max(hi - lo);
    for a in outs {
        assert!(
            *a >= lo - relax - 1e-9 && *a <= hi + relax + 1e-9,
            "validity: {a} outside [{lo} - {relax}, {hi} + {relax}]"
        );
        for b in outs {
            assert!((a - b).abs() <= cfg.epsilon() + 1e-9, "agreement: |{a} - {b}|");
        }
    }
}

#[test]
fn oracle_workload_on_geo_topology() {
    let n = 16;
    let cfg = oracle_cfg(n);
    let mut feed = BtcFeed::new(BtcFeedConfig::default(), 11);
    let quote = feed.next_minute();
    let inputs = feed.node_inputs(&quote, n);
    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
        .collect();
    let report = Simulation::new(Topology::aws_geo(n)).seed(1).run(nodes);
    assert_eq!(report.stop, StopReason::AllHonestFinished);
    let outs: Vec<f64> = report.honest_outputs().copied().collect();
    assert_agreement_validity(&outs, &inputs, &cfg);
}

#[test]
fn drone_workload_on_cps_topology() {
    let n = 15;
    let cfg = DelphiConfig::builder(n)
        .space(-10_000.0, 10_000.0)
        .rho0(0.5)
        .delta_max(50.0)
        .epsilon(0.5)
        .build()
        .expect("valid CPS config");
    let mut scenario = DroneScenario::new(DroneScenarioConfig::default(), (57.0, -3.0), 2);
    let (xs, _) = scenario.axis_inputs(n);
    let nodes =
        NodeId::all(n).map(|id| DelphiNode::new(cfg.clone(), id, xs[id.index()]).boxed()).collect();
    let report = Simulation::new(Topology::cps(n, 15)).seed(2).run(nodes);
    assert!(report.all_honest_finished());
    let outs: Vec<f64> = report.honest_outputs().copied().collect();
    assert_agreement_validity(&outs, &xs, &cfg);
}

#[test]
fn survives_maximum_fault_mix() {
    // n = 13, t = 4: four Byzantine nodes with four different behaviours.
    let n = 13;
    let cfg = oracle_cfg(n);
    let base = 40_000.0;
    let inputs: Vec<f64> = (0..n).map(|i| base + i as f64).collect();
    let faulty = [NodeId(1), NodeId(4), NodeId(7), NodeId(10)];
    let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
        .map(|id| match id.index() {
            1 => Box::new(Crash::new(id, n)) as Box<_>,
            4 => Box::new(GarbageSpammer::new(id, n, 44, 3, 256, 120)) as Box<_>,
            7 => Box::new(ByteMutator::new(DelphiNode::new(cfg.clone(), id, base + 7.0), 7, 0.4))
                as Box<_>,
            10 => Box::new(Replayer::new(id, n, 200)) as Box<_>,
            _ => DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed(),
        })
        .collect();
    let honest_inputs: Vec<f64> =
        (0..n).filter(|i| !faulty.iter().any(|f| f.index() == *i)).map(|i| inputs[i]).collect();
    let report = Simulation::new(Topology::lan(n)).seed(3).faulty(&faulty).run(nodes);
    assert!(report.all_honest_finished(), "stalled: {:?}", report.stop);
    let outs: Vec<f64> = report.honest_outputs().copied().collect();
    assert_eq!(outs.len(), n - 4);
    assert_agreement_validity(&outs, &honest_inputs, &cfg);
}

#[test]
fn mid_protocol_crashes_tolerated() {
    let n = 7;
    let cfg = oracle_cfg(n);
    let inputs: Vec<f64> = (0..n).map(|i| 20_000.0 + (i as f64) * 3.0).collect();
    let faulty = [NodeId(2), NodeId(5)];
    let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
        .map(|id| {
            if faulty.contains(&id) {
                Box::new(SilentAfter::new(
                    DelphiNode::new(cfg.clone(), id, inputs[id.index()]),
                    30 * id.index(),
                )) as Box<_>
            } else {
                DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed()
            }
        })
        .collect();
    let honest_inputs: Vec<f64> =
        (0..n).filter(|i| !faulty.iter().any(|f| f.index() == *i)).map(|i| inputs[i]).collect();
    let report = Simulation::new(Topology::lan(n)).seed(4).faulty(&faulty).run(nodes);
    assert!(report.all_honest_finished(), "stalled: {:?}", report.stop);
    let outs: Vec<f64> = report.honest_outputs().copied().collect();
    assert_agreement_validity(&outs, &honest_inputs, &cfg);
}

#[test]
fn identical_seeds_identical_runs() {
    let n = 7;
    let cfg = oracle_cfg(n);
    let run = |seed| {
        let nodes = NodeId::all(n)
            .map(|id| DelphiNode::new(cfg.clone(), id, 30_000.0 + id.index() as f64).boxed())
            .collect();
        let report = Simulation::new(Topology::aws_geo(n)).seed(seed).run(nodes);
        (
            report.completion_ns(),
            report.metrics.total_wire_bytes(),
            report.outputs.iter().map(|o| o.unwrap().to_bits()).collect::<Vec<u64>>(),
        )
    };
    assert_eq!(run(99), run(99), "simulation must be deterministic");
}

#[test]
fn fifo_and_reordering_deliveries_both_work() {
    let n = 7;
    let cfg = oracle_cfg(n);
    let inputs: Vec<f64> = (0..n).map(|i| 30_000.0 + (i as f64) * 2.5).collect();
    for fifo in [false, true] {
        let nodes = NodeId::all(n)
            .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
            .collect();
        let topo = Topology::lan(n).with_fifo(fifo);
        let report = Simulation::new(topo).seed(5).run(nodes);
        assert!(report.all_honest_finished(), "fifo={fifo} stalled");
        let outs: Vec<f64> = report.honest_outputs().copied().collect();
        assert_agreement_validity(&outs, &inputs, &cfg);
    }
}

#[test]
fn wide_spread_inputs_use_higher_levels() {
    // δ close to Δ forces agreement to come from coarse levels.
    let n = 7;
    let cfg = oracle_cfg(n);
    let inputs = [10_000.0, 10_400.0, 10_900.0, 11_200.0, 11_500.0, 11_800.0, 11_900.0];
    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
        .collect();
    let report = Simulation::new(Topology::lan(n)).seed(6).run(nodes);
    assert!(report.all_honest_finished());
    let outs: Vec<f64> = report.honest_outputs().copied().collect();
    assert_agreement_validity(&outs, &inputs, &cfg);
}

#[test]
fn single_level_configuration_works_end_to_end() {
    let n = 4;
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 100.0)
        .rho0(1.0)
        .delta_max(1.0)
        .epsilon(1.0)
        .build()
        .expect("single-level config");
    assert_eq!(cfg.num_levels(), 1);
    let inputs = [50.2, 50.3, 50.4, 50.5];
    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
        .collect();
    let report = Simulation::new(Topology::lan(n)).seed(7).run(nodes);
    assert!(report.all_honest_finished());
    let outs: Vec<f64> = report.honest_outputs().copied().collect();
    assert_agreement_validity(&outs, &inputs, &cfg);
}
