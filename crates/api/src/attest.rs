//! [`QuorumSigner`]: minting slot-bound [`FeedAttestation`]s for served
//! values, plus the hex transport helpers light clients use.
//!
//! DORA's certificate story (paper §V) has every node broadcast a
//! signature over the rounded agreement value and any node aggregate
//! `t + 1` of them. The workspace's vendored signature scheme is
//! symmetric (HMAC under keys derived from the deployment seed — the
//! same trust model as the transport's pairwise [`Keychain`] keys), so a
//! holder of the seed can derive every signer's key locally. The signer
//! exploits that: it derives `t + 1` signing keys once and mints the
//! quorum certificate in-process instead of re-running the signature
//! exchange per epoch. Under a real asymmetric scheme this type would
//! aggregate the DORA broadcast instead; its output shape — a
//! [`FeedAttestation`] that [`FeedAttestation::verify`] accepts — is the
//! same either way, which is what the offline light-client check cares
//! about.
//!
//! [`Keychain`]: delphi_crypto::Keychain

use delphi_crypto::signing::SigningKey;
use delphi_dora::{round_to_epsilon, Certificate, FeedAttestation};
use delphi_primitives::wire::{Decode, Encode};
use delphi_primitives::{EpochId, InstanceId, NodeId};

/// Derives `t + 1` signing keys from the deployment seed and signs each
/// served `(epoch, asset, value)` slot with all of them.
#[derive(Debug)]
pub struct QuorumSigner {
    keys: Vec<SigningKey>,
    epsilon: f64,
}

impl QuorumSigner {
    /// A signer for a deployment with fault threshold `t`, rounding
    /// values to the protocol's `epsilon` grid before signing (the DORA
    /// rounding rule, so attestations cost one extra `ε` of validity).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not strictly positive.
    pub fn new(seed: &[u8], t: usize, epsilon: f64) -> QuorumSigner {
        assert!(epsilon > 0.0, "epsilon grid must be positive");
        let keys = (0..=t).map(|i| SigningKey::derive(seed, NodeId(i as u16))).collect();
        QuorumSigner { keys, epsilon }
    }

    /// Mints the quorum attestation for one served slot.
    pub fn attest(&self, epoch: EpochId, asset: InstanceId, value: f64) -> FeedAttestation {
        let k = round_to_epsilon(value, self.epsilon);
        let ctx = FeedAttestation::context(epoch, asset);
        let msg = Certificate::message_with_context(&ctx, k, self.epsilon);
        let signatures = self.keys.iter().map(|key| key.sign(&msg)).collect();
        FeedAttestation { epoch, asset, cert: Certificate { k, epsilon: self.epsilon, signatures } }
    }
}

/// Renders an attestation as lowercase hex over its wire encoding — the
/// form the HTTP routes serve.
pub fn attestation_to_hex(att: &FeedAttestation) -> String {
    let bytes = att.to_bytes();
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes.as_ref() {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Parses an attestation back from its hex form — the light-client side
/// of [`attestation_to_hex`]. `None` on anything but valid hex over a
/// valid wire encoding.
pub fn attestation_from_hex(hex: &str) -> Option<FeedAttestation> {
    if hex.len() % 2 != 0 {
        return None;
    }
    let bytes: Option<Vec<u8>> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(hex.get(i..i + 2)?, 16).ok())
        .collect();
    FeedAttestation::from_bytes(&bytes?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_crypto::signing::Verifier;

    #[test]
    fn minted_attestation_verifies_offline_and_survives_hex() {
        let signer = QuorumSigner::new(b"api-attest-test", 1, 2.0);
        let att = signer.attest(EpochId(3), InstanceId(1), 40_013.2);
        // A process that never ran the protocol: only the seed.
        let verifier = Verifier::new(b"api-attest-test");
        assert!(att.verify(&verifier, 4, 1));
        assert!((att.value() - 40_014.0).abs() < 1e-9, "rounded to the 2.0 grid");
        let wire = attestation_from_hex(&attestation_to_hex(&att)).unwrap();
        assert_eq!(wire, att);
        assert!(wire.verify(&verifier, 4, 1));
        // The hex survives a transport that lowercases/uppercases.
        let upper = attestation_to_hex(&att).to_uppercase();
        assert_eq!(attestation_from_hex(&upper).unwrap(), att);
    }

    #[test]
    fn hex_parsing_rejects_garbage() {
        assert!(attestation_from_hex("abc").is_none(), "odd length");
        assert!(attestation_from_hex("zz").is_none(), "not hex");
        assert!(attestation_from_hex("").is_none(), "truncated wire");
        assert!(attestation_from_hex("00ff00").is_none(), "not an attestation");
    }

    #[test]
    fn wrong_slot_or_seed_fails_offline_verification() {
        let signer = QuorumSigner::new(b"api-attest-test", 1, 2.0);
        let att = signer.attest(EpochId(3), InstanceId(1), 40_013.2);
        let moved = FeedAttestation { epoch: EpochId(4), ..att.clone() };
        assert!(!moved.verify(&Verifier::new(b"api-attest-test"), 4, 1));
        assert!(!att.verify(&Verifier::new(b"other-seed"), 4, 1));
    }
}
