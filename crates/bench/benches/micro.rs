//! Micro-benchmarks for the per-component costs behind Table I's
//! computation column: hashing, MAC, wire codec, the BinAA quorum
//! machine's hot path, and the frame→protocol receive dispatch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bytes::Bytes;
use delphi_core::{DelphiBundle, DelphiBundleRef, EchoKind, Section};
use delphi_crypto::{hmac_sha256, sha256, Keychain};
use delphi_net::{decode_inbound_frame_ref, encode_epoch_frame};
use delphi_primitives::wire::{Decode, Encode};
use delphi_primitives::{AgreementId, Dyadic, EpochId, InstanceId, NodeId, Round};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data_1k = vec![0xa5u8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256_1k", |b| b.iter(|| sha256(black_box(&data_1k))));
    group.bench_function("hmac_sha256_1k", |b| {
        b.iter(|| hmac_sha256(black_box(b"channel-key"), black_box(&data_1k)))
    });
    group.finish();

    c.bench_function("keychain_derive_n160", |b| {
        b.iter(|| Keychain::derive(black_box(b"seed"), NodeId(0), 160))
    });

    // The per-frame transport hot path: tagging a small frame under a
    // long-lived channel key. The precomputed pad states halve this.
    let kc = Keychain::derive(b"seed", NodeId(0), 160);
    let header = 42u16.to_be_bytes();
    let body = vec![0x3cu8; 40];
    c.bench_function("channel_tag_40B", |b| {
        b.iter(|| kc.channel(NodeId(1)).tag_segments(&[black_box(&header), black_box(&body)]))
    });
}

fn realistic_bundle() -> DelphiBundle {
    let mut bundle = DelphiBundle::new();
    for level in 0..11u8 {
        let mut s = Section::new(level, Round(12), EchoKind::Echo1);
        s.background = Some(Dyadic::ZERO);
        s.exclude = vec![20_000, 20_001, 20_002];
        s.entries = (0..6).map(|i| (19_998 + i, Dyadic::new(1 + 2 * i as u64, 12))).collect();
        bundle.sections.push(s);
    }
    bundle
}

fn bench_wire(c: &mut Criterion) {
    let bundle = realistic_bundle();
    let bytes = bundle.to_bytes();
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_delphi_bundle", |b| b.iter(|| black_box(&bundle).to_bytes()));
    group.bench_function("decode_delphi_bundle", |b| {
        b.iter(|| DelphiBundle::from_bytes(black_box(&bytes)).expect("valid"))
    });
    // The zero-copy decoder on the frame path: one validating pass, no
    // owned bundle — what `DelphiNode::on_message` actually runs.
    group.bench_function("decode_delphi_bundle_borrowed", |b| {
        b.iter(|| DelphiBundleRef::parse(black_box(&bytes)).expect("valid"))
    });
    // Parse *and* walk every section, id, and value — the full
    // information extraction the owned decoder materializes, still with
    // zero allocations.
    group.bench_function("decode_delphi_bundle_borrowed_walk", |b| {
        b.iter(|| {
            let view = DelphiBundleRef::parse(black_box(&bytes)).expect("valid");
            let mut checksum = 0i64;
            for section in view.sections() {
                checksum = checksum.wrapping_add(i64::from(section.level));
                if let Some(bg) = section.background {
                    checksum = checksum.wrapping_add(bg.num() as i64);
                }
                for k in section.exclude() {
                    checksum = checksum.wrapping_add(k);
                }
                for (k, v) in section.entries() {
                    checksum = checksum.wrapping_add(k).wrapping_add(v.num() as i64);
                }
            }
            checksum
        })
    });
    group.finish();
}

/// The receive-dispatch hot path: verify + borrowed split + shard routing
/// of authenticated epoch frames through the same `SessionSet`-facing
/// machinery the TCP read loop runs, at shard counts 1/2/4. Reported as
/// entries/second (`Throughput::Elements`); the shard sweep shows the
/// sharded routing walk adds ~nothing over the unsharded path.
fn bench_dispatch(c: &mut Criterion) {
    let n = 4;
    let assets = 8u16;
    let alice = Keychain::derive(b"dispatch-bench", NodeId(0), n);
    let bob = Keychain::derive(b"dispatch-bench", NodeId(1), n);
    // A realistic inbound burst: one epoch frame per peer step, each
    // carrying one 40-byte entry per asset (the fig_throughput shape).
    let frames: Vec<Bytes> = (0..16u32)
        .map(|step| {
            let entries: Vec<(AgreementId, Bytes)> = (0..assets)
                .map(|a| {
                    (AgreementId::new(EpochId(step), InstanceId(a)), Bytes::from(vec![a as u8; 40]))
                })
                .collect();
            encode_epoch_frame(&alice, NodeId(1), &entries)
        })
        .collect();
    let total_entries = frames.len() as u64 * u64::from(assets);

    let mut group = c.benchmark_group("dispatch");
    group.throughput(Throughput::Elements(total_entries));
    for shards in [1usize, 2, 4] {
        let name = format!("recv_entries_shard{shards}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut per_shard = [0u64; 8];
                for frame in &frames {
                    let (_, entries) =
                        decode_inbound_frame_ref(&bob, black_box(&frame[4..])).expect("authentic");
                    for (id, payload) in entries.iter() {
                        per_shard[id.shard(shards)] += payload.len() as u64;
                    }
                }
                per_shard
            })
        });
    }

    // The egress mirror: partition one step's entries into shard-class
    // groups and encode + MAC one epoch frame per group — what a single
    // `EgressLane` does per flush, so `send_entries_shard{k}` rows track
    // the per-lane cost of the sharded send pipeline exactly as
    // `recv_entries_shard{k}` tracks sharded dispatch.
    let step_entries: Vec<(AgreementId, Bytes)> = (0..16u32)
        .flat_map(|step| {
            (0..assets).map(move |a| {
                (AgreementId::new(EpochId(step), InstanceId(a)), Bytes::from(vec![a as u8; 40]))
            })
        })
        .collect();
    for shards in [1usize, 2, 4] {
        let name = format!("send_entries_shard{shards}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut groups: Vec<Vec<(AgreementId, Bytes)>> = vec![Vec::new(); shards];
                for (id, payload) in &step_entries {
                    groups[id.shard(shards)].push((*id, payload.clone()));
                }
                let mut bytes = 0usize;
                for group in &groups {
                    if !group.is_empty() {
                        bytes += encode_epoch_frame(&alice, NodeId(1), group).len();
                    }
                }
                bytes
            })
        });
    }
    group.finish();
}

fn bench_bv_round(c: &mut Criterion) {
    use delphi_core::bv::BvRound;
    let n = 160;
    let t = 53;
    c.bench_function("bv_round_full_quorum_n160", |b| {
        b.iter_batched(
            || {
                let mut bv = BvRound::new(NodeId(0), n, t);
                let _ = bv.set_input(Dyadic::ONE);
                bv
            },
            |mut bv| {
                // A full wave of echoes from every peer.
                for i in 1..n as u16 {
                    let _ = bv.on_echo1(NodeId(i), Dyadic::ONE);
                }
                for i in 1..n as u16 {
                    let _ = bv.on_echo2(NodeId(i), Dyadic::ONE);
                }
                assert!(bv.is_terminated());
                bv
            },
            BatchSize::SmallInput,
        )
    });

    // The frontier workload: echoes spread over many distinct values, so
    // quorum detection rides the cached per-value counts and crossing
    // queues instead of (pre-frontier) rescanning every value list on
    // every progress step.
    let mut group = c.benchmark_group("core");
    group.bench_function("bv_round", |b| {
        b.iter_batched(
            || {
                let mut bv = BvRound::new(NodeId(0), n, t);
                let _ = bv.set_input(Dyadic::ONE);
                bv
            },
            |mut bv| {
                for i in 1..n as u16 {
                    let _ = bv.on_echo1(NodeId(i), Dyadic::new(u64::from(i % 8), 3));
                }
                for i in 1..n as u16 {
                    let _ = bv.on_echo1(NodeId(i), Dyadic::ONE);
                }
                for i in 1..n as u16 {
                    let _ = bv.on_echo2(NodeId(i), Dyadic::ONE);
                }
                assert!(bv.is_terminated());
                bv
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_dyadic(c: &mut Criterion) {
    let a = Dyadic::new(123_456_789, 30);
    let b_val = Dyadic::new(987_654_321, 31);
    c.bench_function("dyadic_midpoint", |b| b.iter(|| black_box(a).midpoint(black_box(b_val))));
    c.bench_function("dyadic_cmp", |b| b.iter(|| black_box(a).cmp(&black_box(b_val))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_crypto, bench_wire, bench_dispatch, bench_bv_round, bench_dyadic
}
criterion_main!(benches);
