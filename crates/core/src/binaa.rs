//! The BinAA protocol (Algorithm 1): approximate agreement for binary
//! inputs.
//!
//! BinAA runs `r_M = log2(1/ε)` successive weak BV-broadcast rounds
//! ([`BvRound`]). Each round's output set contains one or two values; the
//! node's state moves to the single value or the midpoint, and the honest
//! range provably at least halves per round. After `r_M` rounds the honest
//! outputs are within `2^{-r_M}` of each other — exactly, which the tests
//! assert with [`Dyadic`] arithmetic.
//!
//! [`BinAaNode`] is the standalone protocol (binary input, one instance);
//! inside Delphi the same [`BvRound`] machinery runs once per checkpoint,
//! with messages bundled (see [`crate::delphi`]).

use delphi_primitives::wire::{Decode, Encode};
use delphi_primitives::{Dyadic, Envelope, NodeId, Protocol, Round};

use crate::bv::{BvAction, BvRound};
use crate::messages::{BinAaMsg, EchoKind};
use crate::params::MAX_ROUNDS;

/// A standalone BinAA node: approximate agreement on `{0, 1}` inputs.
///
/// # Example
///
/// ```
/// use delphi_core::BinAaNode;
/// use delphi_primitives::{NodeId, Protocol};
/// use delphi_sim::{Simulation, Topology};
///
/// let n = 4;
/// let inputs = [false, true, true, false];
/// let nodes = NodeId::all(n)
///     .map(|id| BinAaNode::new(id, n, 1, inputs[id.index()], 10).boxed())
///     .collect();
/// let report = Simulation::new(Topology::lan(n)).seed(3).run(nodes);
/// let outs: Vec<_> = report.honest_outputs().collect();
/// // ε-agreement: outputs within 2^-10 of each other.
/// for pair in outs.windows(2) {
///     assert!(pair[0].abs_diff(*pair[1]) <= delphi_primitives::Dyadic::new(1, 10));
/// }
/// ```
#[derive(Debug)]
pub struct BinAaNode {
    me: NodeId,
    n: usize,
    t: usize,
    r_max: u16,
    /// Round states, indexed by `round − 1`; allocated on first use.
    rounds: Vec<Option<BvRound>>,
    /// The round this node is currently executing (1-based);
    /// `r_max + 1` means all rounds are complete.
    current: u16,
    /// State value entering `current`.
    value: Dyadic,
    output: Option<Dyadic>,
}

impl BinAaNode {
    /// Creates a BinAA node with binary input `input`, running `r_max`
    /// rounds (use `r_max = ⌈log2(1/ε)⌉` for ε-agreement).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1`, `me` is out of range, or
    /// `r_max ∉ 1..=`[`MAX_ROUNDS`].
    pub fn new(me: NodeId, n: usize, t: usize, input: bool, r_max: u16) -> BinAaNode {
        assert!(n > 3 * t, "BinAA requires n >= 3t + 1");
        assert!(me.index() < n, "node id out of range");
        assert!((1..=MAX_ROUNDS).contains(&r_max), "r_max must be in 1..={MAX_ROUNDS}");
        BinAaNode {
            me,
            n,
            t,
            r_max,
            rounds: std::iter::repeat_with(|| None).take(usize::from(r_max)).collect(),
            current: 1,
            value: Dyadic::from_bit(input),
            output: None,
        }
    }

    /// Boxes the node for use with heterogeneous drivers.
    pub fn boxed(self) -> Box<dyn Protocol<Output = Dyadic>> {
        Box::new(self)
    }

    /// The configured round count.
    pub fn r_max(&self) -> u16 {
        self.r_max
    }

    /// The round currently executing (1-based), `r_max + 1` when done.
    pub fn current_round(&self) -> u16 {
        self.current
    }

    fn round_mut(&mut self, round: Round) -> &mut BvRound {
        let (me, n, t) = (self.me, self.n, self.t);
        self.rounds[round.index()].get_or_insert_with(|| BvRound::new(me, n, t))
    }

    /// A value is plausible for round `r` iff it lies in `[0, 1]` on the
    /// grid `j / 2^{r−1}` — anything else is Byzantine junk we drop early.
    fn plausible(value: Dyadic, round: Round) -> bool {
        value.in_unit_interval() && u16::from(value.log_den()) < round.0
    }

    /// Advances through any rounds whose outcome is already known,
    /// emitting the initial echoes of each newly entered round.
    fn advance(&mut self, out: &mut Vec<(Round, BvAction)>) {
        while self.current <= self.r_max {
            let round = Round(self.current);
            let Some(bv) = self.rounds[round.index()].as_ref() else { break };
            let Some(outcome) = bv.outcome() else { break };
            self.value = outcome.next_value();
            self.current += 1;
            if self.current <= self.r_max {
                let value = self.value;
                let next = Round(self.current);
                let actions = self.round_mut(next).set_input(value);
                out.extend(actions.into_iter().map(|a| (next, a)));
            } else {
                self.output = Some(self.value);
            }
        }
    }

    fn to_envelopes(&self, actions: Vec<(Round, BvAction)>) -> Vec<Envelope> {
        actions
            .into_iter()
            .map(|(round, action)| {
                let (kind, value) = match action {
                    BvAction::Echo1(v) => (EchoKind::Echo1, v),
                    BvAction::Echo2(v) => (EchoKind::Echo2, v),
                };
                Envelope::to_all(BinAaMsg { round, kind, value }.to_bytes())
            })
            .collect()
    }
}

impl Protocol for BinAaNode {
    type Output = Dyadic;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn start(&mut self) -> Vec<Envelope> {
        let value = self.value;
        let mut actions: Vec<(Round, BvAction)> = self
            .round_mut(Round::FIRST)
            .set_input(value)
            .into_iter()
            .map(|a| (Round::FIRST, a))
            .collect();
        self.advance(&mut actions);
        self.to_envelopes(actions)
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        let Ok(msg) = BinAaMsg::from_bytes(payload) else {
            return Vec::new(); // malformed: Byzantine, drop
        };
        if msg.round.0 < 1 || msg.round.0 > self.r_max || !Self::plausible(msg.value, msg.round) {
            return Vec::new();
        }
        let bv = self.round_mut(msg.round);
        let actions = match msg.kind {
            EchoKind::Echo1 => bv.on_echo1(from, msg.value),
            EchoKind::Echo2 => bv.on_echo2(from, msg.value),
        };
        let mut actions: Vec<(Round, BvAction)> =
            actions.into_iter().map(|a| (msg.round, a)).collect();
        self.advance(&mut actions);
        self.to_envelopes(actions)
    }

    fn output(&self) -> Option<Dyadic> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_sim::adversary::{Crash, GarbageSpammer};
    use delphi_sim::{Simulation, Topology};
    use proptest::prelude::*;

    /// Byzantine node that tells half the network 0 and the other half 1,
    /// in every round, and spams ECHO2s for both values.
    struct Equivocator {
        me: NodeId,
        n: usize,
        r_max: u16,
    }

    impl Protocol for Equivocator {
        type Output = Dyadic;
        fn node_id(&self) -> NodeId {
            self.me
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            let mut out = Vec::new();
            for round in 1..=self.r_max {
                for dest in 0..self.n {
                    if dest == self.me.index() {
                        continue;
                    }
                    let value = Dyadic::from_bit(dest % 2 == 0);
                    for kind in [EchoKind::Echo1, EchoKind::Echo2] {
                        let msg = BinAaMsg { round: Round(round), kind, value };
                        out.push(Envelope::to_one(NodeId(dest as u16), msg.to_bytes()));
                    }
                }
            }
            out
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            Vec::new()
        }
        fn output(&self) -> Option<Dyadic> {
            None
        }
    }

    fn run_binaa(
        n: usize,
        t: usize,
        r_max: u16,
        inputs: &[bool],
        faulty: &[usize],
        make_faulty: impl Fn(NodeId) -> Box<dyn Protocol<Output = Dyadic>>,
        seed: u64,
    ) -> Vec<Dyadic> {
        let nodes: Vec<Box<dyn Protocol<Output = Dyadic>>> = NodeId::all(n)
            .map(|id| {
                if faulty.contains(&id.index()) {
                    make_faulty(id)
                } else {
                    BinAaNode::new(id, n, t, inputs[id.index()], r_max).boxed()
                }
            })
            .collect();
        let faulty_ids: Vec<NodeId> = faulty.iter().map(|&i| NodeId(i as u16)).collect();
        let report = Simulation::new(Topology::lan(n)).seed(seed).faulty(&faulty_ids).run(nodes);
        assert!(
            report.all_honest_finished(),
            "BinAA did not terminate (seed {seed}, stop {:?})",
            report.stop
        );
        report.honest_outputs().copied().collect()
    }

    #[test]
    fn unanimous_inputs_decide_exactly() {
        for bit in [false, true] {
            let outs = run_binaa(4, 1, 8, &[bit; 4], &[], |_| unreachable!(), 1);
            for o in outs {
                assert_eq!(o, Dyadic::from_bit(bit), "validity for unanimous {bit}");
            }
        }
    }

    #[test]
    fn mixed_inputs_reach_epsilon_agreement() {
        let r_max = 10;
        let tol = Dyadic::new(1, r_max as u8);
        let outs = run_binaa(4, 1, r_max, &[false, true, true, false], &[], |_| unreachable!(), 7);
        for a in &outs {
            assert!(a.in_unit_interval(), "validity: output {a} within [0,1]");
            for b in &outs {
                assert!(a.abs_diff(*b) <= tol, "|{a} - {b}| > 2^-{r_max}");
            }
        }
    }

    #[test]
    fn tolerates_crash_fault() {
        let outs = run_binaa(
            4,
            1,
            8,
            &[true, true, false, true],
            &[2],
            |id| Box::new(Crash::new(id, 4)),
            11,
        );
        assert_eq!(outs.len(), 3);
        let tol = Dyadic::new(1, 8);
        for a in &outs {
            for b in &outs {
                assert!(a.abs_diff(*b) <= tol);
            }
        }
    }

    #[test]
    fn tolerates_equivocating_byzantine() {
        for seed in 0..5 {
            let outs = run_binaa(
                7,
                2,
                8,
                &[true, true, true, false, false, true, true],
                &[6],
                |id| Box::new(Equivocator { me: id, n: 7, r_max: 8 }),
                seed,
            );
            let tol = Dyadic::new(1, 8);
            for a in &outs {
                assert!(a.in_unit_interval());
                for b in &outs {
                    assert!(a.abs_diff(*b) <= tol, "seed {seed}: |{a} - {b}|");
                }
            }
        }
    }

    #[test]
    fn equivocator_cannot_break_unanimous_validity() {
        // All honest input 1: Byzantine equivocation must not drag the
        // output off 1 (convex validity for binary inputs).
        for seed in 0..5 {
            let outs = run_binaa(
                4,
                1,
                8,
                &[true, true, true, true],
                &[3],
                |id| Box::new(Equivocator { me: id, n: 4, r_max: 8 }),
                seed,
            );
            for o in outs {
                assert_eq!(o, Dyadic::ONE, "seed {seed}");
            }
        }
    }

    #[test]
    fn tolerates_garbage_spammer() {
        let outs = run_binaa(
            4,
            1,
            6,
            &[true, false, true, true],
            &[1],
            |id| Box::new(GarbageSpammer::new(id, 4, 99, 3, 64, 50)),
            13,
        );
        let tol = Dyadic::new(1, 6);
        for a in &outs {
            for b in &outs {
                assert!(a.abs_diff(*b) <= tol);
            }
        }
    }

    #[test]
    fn single_round_matches_weak_bv() {
        // r_max = 1: outputs are the next_value of one BV round, within 1/2.
        let outs = run_binaa(4, 1, 1, &[false, true, false, true], &[], |_| unreachable!(), 3);
        let tol = Dyadic::new(1, 1);
        for a in &outs {
            for b in &outs {
                assert!(a.abs_diff(*b) <= tol);
            }
        }
    }

    #[test]
    fn works_at_larger_scale() {
        let n = 16;
        let inputs: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let outs = run_binaa(n, 5, 8, &inputs, &[], |_| unreachable!(), 17);
        let tol = Dyadic::new(1, 8);
        for a in &outs {
            for b in &outs {
                assert!(a.abs_diff(*b) <= tol);
            }
        }
    }

    #[test]
    fn rejects_malformed_and_out_of_range_messages() {
        let mut node = BinAaNode::new(NodeId(0), 4, 1, true, 4);
        let _ = node.start();
        assert!(node.on_message(NodeId(1), b"garbage").is_empty());
        // Round 0 and round > r_max are invalid.
        let bad = BinAaMsg { round: Round(0), kind: EchoKind::Echo1, value: Dyadic::ONE };
        assert!(node.on_message(NodeId(1), &bad.to_bytes()).is_empty());
        let bad = BinAaMsg { round: Round(5), kind: EchoKind::Echo1, value: Dyadic::ONE };
        assert!(node.on_message(NodeId(1), &bad.to_bytes()).is_empty());
        // Value off the round-1 grid {0, 1}.
        let bad = BinAaMsg { round: Round(1), kind: EchoKind::Echo1, value: Dyadic::new(1, 2) };
        assert!(node.on_message(NodeId(1), &bad.to_bytes()).is_empty());
        // Value outside [0, 1].
        let bad = BinAaMsg { round: Round(2), kind: EchoKind::Echo1, value: Dyadic::new(3, 1) };
        assert!(node.on_message(NodeId(1), &bad.to_bytes()).is_empty());
    }

    #[test]
    #[should_panic(expected = "r_max")]
    fn zero_rounds_rejected() {
        let _ = BinAaNode::new(NodeId(0), 4, 1, true, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_agreement_and_validity(
            n in 4usize..9,
            bits in proptest::collection::vec(any::<bool>(), 9),
            r_max in 2u16..9,
            seed in 0u64..u64::MAX,
        ) {
            let t = (n - 1) / 3;
            let inputs = &bits[..n];
            let outs = run_binaa(n, t, r_max, inputs, &[], |_| unreachable!(), seed);
            let tol = Dyadic::new(1, r_max as u8);
            let any_one = inputs.iter().any(|&b| b);
            let any_zero = inputs.iter().any(|&b| !b);
            for a in &outs {
                // Convex validity for binary inputs.
                prop_assert!(a.in_unit_interval());
                if !any_one {
                    prop_assert_eq!(*a, Dyadic::ZERO);
                }
                if !any_zero {
                    prop_assert_eq!(*a, Dyadic::ONE);
                }
                for b in &outs {
                    prop_assert!(a.abs_diff(*b) <= tol);
                }
            }
        }
    }
}
