//! TOML cluster-configuration format for multi-process deployments.
//!
//! A cluster file describes one full-mesh deployment: a `[cluster]`
//! section with shared settings and one `[[node]]` entry per node with its
//! id, listen address, and key material. The same file is handed to every
//! `delphi-node` process (each picks its own entry by `--id`) and to the
//! `delphi-cluster` launcher:
//!
//! ```toml
//! [cluster]
//! name = "local-4"
//! seed = "64656c7068692d636c7573746572"   # hex; shared HMAC key material
//!
//! [[node]]
//! id = 0
//! address = "127.0.0.1:7100"
//!
//! [[node]]
//! id = 1
//! address = "127.0.0.1:7101"
//! # key = "..." would override the cluster seed for this node
//! ```
//!
//! Key material: the workspace's [`Keychain`] derives all pairwise channel
//! keys from one deployment seed, so the natural layout is a cluster-level
//! `seed`. A `[[node]]` entry may carry its own `key` (hex) instead — a
//! node only ever reads *its own* key material — but mismatched seeds
//! simply mean every frame between the mismatched pair fails
//! authentication and is dropped, exactly as a mis-provisioned real
//! deployment would behave. A node with neither a `key` nor a cluster
//! `seed` is a configuration error.
//!
//! The parser is a dependency-free subset of TOML (sections, array
//! sections, string/integer values, `#` comments) — enough for cluster
//! files while the environment has no crates.io access; unknown keys are
//! rejected so typos fail loudly instead of silently misconfiguring a
//! deployment.

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::path::Path;

use delphi_crypto::Keychain;
use delphi_primitives::NodeId;

/// One `[[node]]` entry: a node's identity, listen address, and key
/// material.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeEntry {
    /// Node id; entries must cover `0..n` exactly.
    pub id: u16,
    /// The node's listen address; peers dial it.
    pub address: SocketAddr,
    /// Per-node key material (raw bytes decoded from hex), overriding the
    /// cluster seed when present.
    pub key: Option<Vec<u8>>,
}

/// A parsed cluster configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Optional human-readable deployment name.
    pub name: Option<String>,
    /// Cluster-wide key material (raw bytes decoded from hex) used by
    /// every node without its own `key`.
    pub seed: Option<Vec<u8>>,
    /// Node entries, sorted by id after validation.
    pub nodes: Vec<NodeEntry>,
}

/// Cluster-configuration failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The TOML subset parser rejected a line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// Two `[[node]]` entries claim the same id.
    DuplicateId(u16),
    /// Node ids do not cover `0..n` exactly.
    NonContiguousIds {
        /// Number of node entries.
        n: usize,
        /// The first id outside `0..n` (or the missing id).
        offender: u16,
    },
    /// A node's `address` did not parse as `host:port`.
    BadAddress {
        /// The node the address belongs to.
        id: u16,
        /// The rejected value.
        value: String,
    },
    /// A node has neither its own `key` nor a cluster `seed` to fall back
    /// on.
    MissingKey(u16),
    /// A `seed`/`key` value is not valid hex.
    BadHex {
        /// The offending value.
        value: String,
    },
    /// The file declares no `[[node]]` entries.
    Empty,
    /// The requested node id does not exist in this config.
    UnknownNode(u16),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ConfigError::DuplicateId(id) => write!(f, "duplicate node id {id}"),
            ConfigError::NonContiguousIds { n, offender } => {
                write!(f, "node ids must cover 0..{n} exactly (offending id {offender})")
            }
            ConfigError::BadAddress { id, value } => {
                write!(f, "node {id}: invalid address {value:?}")
            }
            ConfigError::MissingKey(id) => {
                write!(f, "node {id} has no key and the cluster declares no seed")
            }
            ConfigError::BadHex { value } => write!(f, "invalid hex key material {value:?}"),
            ConfigError::Empty => write!(f, "cluster config declares no nodes"),
            ConfigError::UnknownNode(id) => write!(f, "no node with id {id} in cluster config"),
        }
    }
}

impl Error for ConfigError {}

impl ClusterConfig {
    /// Builds an `n`-node localhost cluster on consecutive ports starting
    /// at `base_port`, sharing `seed` as key material.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not fit the port range above `base_port` or
    /// exceeds `u16` node ids.
    pub fn localhost(n: usize, base_port: u16, seed: &[u8]) -> ClusterConfig {
        assert!(n > 0 && n <= usize::from(u16::MAX), "node count out of range");
        let nodes = (0..n)
            .map(|i| {
                let port = base_port.checked_add(i as u16).expect("port range overflow");
                NodeEntry {
                    id: i as u16,
                    address: SocketAddr::from(([127, 0, 0, 1], port)),
                    key: None,
                }
            })
            .collect();
        ClusterConfig { name: Some("localhost".to_string()), seed: Some(seed.to_vec()), nodes }
    }

    /// Parses and validates a cluster config from TOML text.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on syntax errors, duplicate or
    /// non-contiguous ids, unparsable addresses, bad hex, missing key
    /// material, or an empty node list.
    pub fn parse(text: &str) -> Result<ClusterConfig, ConfigError> {
        let raw = parse_toml_subset(text)?;
        let mut name = None;
        let mut seed = None;
        for (line, key, value) in &raw.cluster {
            match key.as_str() {
                "name" => name = Some(value.expect_string(*line)?),
                "seed" => seed = Some(decode_hex(&value.expect_string(*line)?)?),
                other => {
                    return Err(ConfigError::Syntax {
                        line: *line,
                        msg: format!("unknown [cluster] key {other:?}"),
                    })
                }
            }
        }
        let mut nodes = Vec::with_capacity(raw.nodes.len());
        for entry in &raw.nodes {
            let mut id: Option<u16> = None;
            let mut address: Option<(usize, String)> = None;
            let mut key: Option<Vec<u8>> = None;
            for (line, k, v) in entry {
                match k.as_str() {
                    "id" => id = Some(v.expect_u16(*line)?),
                    "address" => address = Some((*line, v.expect_string(*line)?)),
                    "key" => key = Some(decode_hex(&v.expect_string(*line)?)?),
                    other => {
                        return Err(ConfigError::Syntax {
                            line: *line,
                            msg: format!("unknown [[node]] key {other:?}"),
                        })
                    }
                }
            }
            let first_line = entry.first().map_or(0, |(l, _, _)| *l);
            let id = id.ok_or_else(|| ConfigError::Syntax {
                line: first_line,
                msg: "[[node]] entry missing `id`".to_string(),
            })?;
            let (_, addr_text) = address.ok_or_else(|| ConfigError::Syntax {
                line: first_line,
                msg: format!("node {id} missing `address`"),
            })?;
            let address = addr_text
                .parse()
                .map_err(|_| ConfigError::BadAddress { id, value: addr_text.clone() })?;
            nodes.push(NodeEntry { id, address, key });
        }
        let mut config = ClusterConfig { name, seed, nodes };
        config.validate()?;
        // Consumers index `nodes` positionally (`addresses()[i]` must be
        // node i's listen address), so entry order in the file must not
        // matter.
        config.nodes.sort_by_key(|n| n.id);
        Ok(config)
    }

    /// Reads and parses a cluster config file.
    ///
    /// # Errors
    ///
    /// I/O failures surface as a [`ConfigError::Syntax`] at line 0; parse
    /// failures as in [`ClusterConfig::parse`].
    pub fn load(path: &Path) -> Result<ClusterConfig, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|e| ConfigError::Syntax {
            line: 0,
            msg: format!("cannot read {}: {e}", path.display()),
        })?;
        ClusterConfig::parse(&text)
    }

    /// Renders the config back to TOML (the format [`ClusterConfig::parse`]
    /// accepts; `parse(to_toml(c)) == c` after validation).
    pub fn to_toml(&self) -> String {
        let mut out = String::from("[cluster]\n");
        if let Some(name) = &self.name {
            out.push_str(&format!("name = \"{name}\"\n"));
        }
        if let Some(seed) = &self.seed {
            out.push_str(&format!("seed = \"{}\"\n", encode_hex(seed)));
        }
        for node in &self.nodes {
            out.push_str(&format!(
                "\n[[node]]\nid = {}\naddress = \"{}\"\n",
                node.id, node.address
            ));
            if let Some(key) = &node.key {
                out.push_str(&format!("key = \"{}\"\n", encode_hex(key)));
            }
        }
        out
    }

    /// Number of nodes in the deployment.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Listen addresses indexed by node id (the shape
    /// [`crate::run_node`] expects).
    pub fn addresses(&self) -> Vec<SocketAddr> {
        self.nodes.iter().map(|n| n.address).collect()
    }

    /// The key material effective for node `id` (its own `key`, else the
    /// cluster `seed`).
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownNode`] for an id outside the deployment;
    /// [`ConfigError::MissingKey`] if neither source exists (unreachable
    /// for configs that came out of [`ClusterConfig::parse`]).
    pub fn key_material(&self, id: u16) -> Result<&[u8], ConfigError> {
        let node = self.nodes.iter().find(|n| n.id == id).ok_or(ConfigError::UnknownNode(id))?;
        node.key.as_deref().or(self.seed.as_deref()).ok_or(ConfigError::MissingKey(id))
    }

    /// Derives the pairwise channel keychain for node `id`.
    ///
    /// # Errors
    ///
    /// See [`ClusterConfig::key_material`].
    pub fn keychain(&self, id: u16) -> Result<Keychain, ConfigError> {
        let seed = self.key_material(id)?;
        Ok(Keychain::derive(seed, NodeId(id), self.n()))
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes.is_empty() {
            return Err(ConfigError::Empty);
        }
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        for node in &self.nodes {
            let idx = usize::from(node.id);
            if idx >= n {
                return Err(ConfigError::NonContiguousIds { n, offender: node.id });
            }
            if seen[idx] {
                return Err(ConfigError::DuplicateId(node.id));
            }
            seen[idx] = true;
            if node.key.is_none() && self.seed.is_none() {
                return Err(ConfigError::MissingKey(node.id));
            }
        }
        Ok(())
    }
}

/// A parsed raw value: string or integer.
#[derive(Clone, Debug)]
enum RawValue {
    Str(String),
    Int(i64),
}

impl RawValue {
    fn expect_string(&self, line: usize) -> Result<String, ConfigError> {
        match self {
            RawValue::Str(s) => Ok(s.clone()),
            RawValue::Int(_) => {
                Err(ConfigError::Syntax { line, msg: "expected a quoted string".to_string() })
            }
        }
    }

    fn expect_u16(&self, line: usize) -> Result<u16, ConfigError> {
        match self {
            RawValue::Int(i) => u16::try_from(*i).map_err(|_| ConfigError::Syntax {
                line,
                msg: format!("integer {i} out of range for a node id"),
            }),
            RawValue::Str(_) => {
                Err(ConfigError::Syntax { line, msg: "expected an integer".to_string() })
            }
        }
    }
}

type RawEntry = (usize, String, RawValue);

struct RawConfig {
    cluster: Vec<RawEntry>,
    nodes: Vec<Vec<RawEntry>>,
}

/// Which section the parser is currently filling.
enum Cursor {
    Top,
    Cluster,
    Node(usize),
}

fn parse_toml_subset(text: &str) -> Result<RawConfig, ConfigError> {
    let mut raw = RawConfig { cluster: Vec::new(), nodes: Vec::new() };
    let mut cursor = Cursor::Top;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[cluster]" {
            cursor = Cursor::Cluster;
            continue;
        }
        if line == "[[node]]" {
            raw.nodes.push(Vec::new());
            cursor = Cursor::Node(raw.nodes.len() - 1);
            continue;
        }
        if line.starts_with('[') {
            return Err(ConfigError::Syntax {
                line: line_no,
                msg: format!("unknown section {line:?} (expected [cluster] or [[node]])"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError::Syntax {
                line: line_no,
                msg: format!("expected `key = value`, got {line:?}"),
            });
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(ConfigError::Syntax { line: line_no, msg: format!("invalid key {key:?}") });
        }
        let value = parse_value(value.trim(), line_no)?;
        let entry = (line_no, key.to_string(), value);
        match cursor {
            Cursor::Top => {
                return Err(ConfigError::Syntax {
                    line: line_no,
                    msg: "key outside any section (expected [cluster] or [[node]] first)"
                        .to_string(),
                })
            }
            Cursor::Cluster => raw.cluster.push(entry),
            Cursor::Node(i) => raw.nodes[i].push(entry),
        }
    }
    Ok(raw)
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line: usize) -> Result<RawValue, ConfigError> {
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(ConfigError::Syntax { line, msg: "unterminated string".to_string() });
        };
        if inner.contains('"') || inner.contains('\\') {
            return Err(ConfigError::Syntax {
                line,
                msg: "escapes and embedded quotes are not supported".to_string(),
            });
        }
        return Ok(RawValue::Str(inner.to_string()));
    }
    text.parse::<i64>()
        .map(RawValue::Int)
        .map_err(|_| ConfigError::Syntax { line, msg: format!("invalid value {text:?}") })
}

fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn decode_hex(text: &str) -> Result<Vec<u8>, ConfigError> {
    let bad = || ConfigError::BadHex { value: text.to_string() };
    if text.is_empty() || text.len() % 2 != 0 {
        return Err(bad());
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or_else(bad)?;
        let lo = (pair[1] as char).to_digit(16).ok_or_else(bad)?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# A 3-node localhost deployment.
[cluster]
name = "sample"
seed = "00aaff"

[[node]]
id = 0
address = "127.0.0.1:7100"

[[node]]
id = 1
address = "127.0.0.1:7101"
key = "beef"   # per-node override

[[node]]
id = 2
address = "127.0.0.1:7102"
"#;

    #[test]
    fn parses_sample_and_roundtrips() {
        let cfg = ClusterConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.name.as_deref(), Some("sample"));
        assert_eq!(cfg.seed.as_deref(), Some(&[0x00, 0xaa, 0xff][..]));
        assert_eq!(cfg.n(), 3);
        assert_eq!(cfg.nodes[1].key.as_deref(), Some(&[0xbe, 0xef][..]));
        assert_eq!(cfg.addresses()[2], "127.0.0.1:7102".parse().unwrap());

        // Emit-and-reparse must be the identity.
        let reparsed = ClusterConfig::parse(&cfg.to_toml()).unwrap();
        assert_eq!(reparsed, cfg);
    }

    #[test]
    fn localhost_constructor_roundtrips() {
        let cfg = ClusterConfig::localhost(4, 7200, b"seed-material");
        assert_eq!(cfg.n(), 4);
        assert_eq!(cfg.addresses()[3], "127.0.0.1:7203".parse().unwrap());
        let reparsed = ClusterConfig::parse(&cfg.to_toml()).unwrap();
        assert_eq!(reparsed, cfg);
    }

    #[test]
    fn key_material_prefers_node_override() {
        let cfg = ClusterConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.key_material(0).unwrap(), &[0x00, 0xaa, 0xff]);
        assert_eq!(cfg.key_material(1).unwrap(), &[0xbe, 0xef]);
        assert_eq!(cfg.key_material(9), Err(ConfigError::UnknownNode(9)));
    }

    #[test]
    fn keychains_from_shared_seed_authenticate_each_other() {
        let cfg = ClusterConfig::localhost(3, 7300, b"pairwise");
        let a = cfg.keychain(0).unwrap();
        let b = cfg.keychain(1).unwrap();
        let tag = a.channel(NodeId(1)).tag(b"hello");
        assert!(b.channel(NodeId(0)).verify(b"hello", &tag).is_ok());
    }

    #[test]
    fn out_of_order_entries_are_sorted_by_id() {
        // Consumers index nodes positionally, so a file listing entries
        // out of id order must still yield addresses()[i] == node i.
        let text = r#"
[cluster]
seed = "aa"
[[node]]
id = 1
address = "127.0.0.1:2"
[[node]]
id = 0
address = "127.0.0.1:1"
"#;
        let cfg = ClusterConfig::parse(text).unwrap();
        assert_eq!(cfg.nodes[0].id, 0);
        assert_eq!(cfg.addresses()[0], "127.0.0.1:1".parse().unwrap());
        assert_eq!(cfg.addresses()[1], "127.0.0.1:2".parse().unwrap());
    }

    #[test]
    fn duplicate_id_rejected() {
        let text = r#"
[cluster]
seed = "aa"
[[node]]
id = 0
address = "127.0.0.1:1"
[[node]]
id = 0
address = "127.0.0.1:2"
"#;
        assert_eq!(ClusterConfig::parse(text), Err(ConfigError::DuplicateId(0)));
    }

    #[test]
    fn non_contiguous_ids_rejected() {
        let text = r#"
[cluster]
seed = "aa"
[[node]]
id = 0
address = "127.0.0.1:1"
[[node]]
id = 5
address = "127.0.0.1:2"
"#;
        assert_eq!(
            ClusterConfig::parse(text),
            Err(ConfigError::NonContiguousIds { n: 2, offender: 5 })
        );
    }

    #[test]
    fn bad_address_rejected() {
        let text = r#"
[cluster]
seed = "aa"
[[node]]
id = 0
address = "not-an-address"
"#;
        assert_eq!(
            ClusterConfig::parse(text),
            Err(ConfigError::BadAddress { id: 0, value: "not-an-address".to_string() })
        );
    }

    #[test]
    fn missing_key_material_rejected() {
        let text = r#"
[cluster]
name = "keyless"
[[node]]
id = 0
address = "127.0.0.1:1"
"#;
        assert_eq!(ClusterConfig::parse(text), Err(ConfigError::MissingKey(0)));
    }

    #[test]
    fn node_key_satisfies_missing_cluster_seed() {
        let text = r#"
[cluster]
name = "keyless"
[[node]]
id = 0
address = "127.0.0.1:1"
key = "0102"
"#;
        let cfg = ClusterConfig::parse(text).unwrap();
        assert_eq!(cfg.key_material(0).unwrap(), &[1, 2]);
    }

    #[test]
    fn empty_config_rejected() {
        assert_eq!(ClusterConfig::parse("[cluster]\nseed = \"aa\"\n"), Err(ConfigError::Empty));
    }

    #[test]
    fn bad_hex_rejected() {
        for bad in ["zz", "abc", ""] {
            let text =
                format!("[cluster]\nseed = \"{bad}\"\n[[node]]\nid = 0\naddress = \"1.2.3.4:5\"\n");
            assert_eq!(
                ClusterConfig::parse(&text),
                Err(ConfigError::BadHex { value: bad.to_string() }),
                "hex {bad:?}"
            );
        }
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = ClusterConfig::parse("[cluster]\nseed = \n").unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { line: 2, .. }), "{err}");
        let err = ClusterConfig::parse("id = 3\n").unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { line: 1, .. }), "{err}");
        let err = ClusterConfig::parse("[wat]\n").unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { line: 1, .. }), "{err}");
        let err = ClusterConfig::parse("[cluster]\nname = \"a\" trailing\n").unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { line: 2, .. }), "{err}");
    }

    #[test]
    fn unknown_keys_rejected() {
        let err = ClusterConfig::parse("[cluster]\nsede = \"aa\"\n").unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { line: 2, .. }), "{err}");
        let text =
            "[cluster]\nseed = \"aa\"\n[[node]]\nid = 0\naddress = \"1.2.3.4:5\"\nport = 9\n";
        let err = ClusterConfig::parse(text).unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { line: 6, .. }), "{err}");
    }

    #[test]
    fn comments_respect_strings() {
        let text = "[cluster]\nseed = \"aa\"  # trailing comment\nname = \"has#hash\"\n[[node]]\nid = 0\naddress = \"127.0.0.1:9\"\n";
        let cfg = ClusterConfig::parse(text).unwrap();
        assert_eq!(cfg.name.as_deref(), Some("has#hash"));
    }

    #[test]
    fn missing_required_node_fields_rejected() {
        let text = "[cluster]\nseed = \"aa\"\n[[node]]\naddress = \"1.2.3.4:5\"\n";
        let err = ClusterConfig::parse(text).unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { .. }), "{err}");
        let text = "[cluster]\nseed = \"aa\"\n[[node]]\nid = 0\n";
        let err = ClusterConfig::parse(text).unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { .. }), "{err}");
    }

    #[test]
    fn error_display_nonempty() {
        let errors = [
            ConfigError::Syntax { line: 3, msg: "boom".to_string() },
            ConfigError::DuplicateId(1),
            ConfigError::NonContiguousIds { n: 2, offender: 7 },
            ConfigError::BadAddress { id: 0, value: "x".to_string() },
            ConfigError::MissingKey(2),
            ConfigError::BadHex { value: "zz".to_string() },
            ConfigError::Empty,
            ConfigError::UnknownNode(4),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
