//! The epoch layer: long-lived multi-round agreement pipelines.
//!
//! Everything below [`crate::mux`] is one-shot: a fixed set of instances
//! runs to a single output and stops. An oracle deployment is not one-shot
//! — it agrees on *fresh* prices round after round, one agreement per
//! `(epoch, asset)` pair, forever. This module provides that lifecycle as
//! sans-io machinery shared by the simulator and the TCP runtime:
//!
//! - [`EpochId`] / [`AgreementId`]: epoch-aware instance addressing with a
//!   stable wire encoding (`u32` epoch × `u16` asset).
//! - an **epoch batch codec**: `(AgreementId, payload)` entry sequences,
//!   the epoch-aware sibling of the [`crate::mux`] batch codec. `delphi-net`
//!   wraps exactly this sequence in its authenticated epoch frames, and
//!   [`EpochProtocol`] uses it as the payload of simulator messages, so
//!   simulated epoch bytes equal TCP epoch bytes.
//! - [`EpochMux`]: the pipeline driver. It spawns per-asset protocol
//!   instances epoch after epoch from a factory (the streaming price
//!   source), keeps at most [`EpochConfig::depth`] epochs in flight and at
//!   most [`EpochConfig::window`] resident in memory, garbage-collects
//!   completed and stale epochs, fast-forwards a node that fell behind the
//!   quorum frontier, and emits a strictly epoch-ordered stream of
//!   [`EpochEvent`]s.
//! - [`EpochProtocol`]: a [`Protocol`] adapter over [`EpochMux`] so the
//!   whole pipeline runs unchanged under the discrete-event simulator (and
//!   any other envelope transport), with [`FlushPolicy`]-controlled
//!   adaptive batching across protocol steps.
//!
//! # Garbage collection and the live window
//!
//! At most `depth` epochs are *unfinished* at any time (the pipelining
//! knob), and at most `window` epochs are *resident* (unfinished epochs
//! plus completed lingerers that keep answering slower peers, exactly like
//! the one-shot runners' linger phase). Eviction only ever removes a
//! *resolved* epoch: `window ≥ depth` guarantees a resolved resident
//! exists whenever the budget is exceeded, so an unfinished epoch inside
//! the window is never evicted. Entries addressed to an evicted epoch are
//! dropped and counted ([`EpochStats::late_entries`]), never treated as
//! protocol errors.
//!
//! # Falling behind and rejoining
//!
//! A node that crashes or goes silent for a while rejoins a stream whose
//! peers are many epochs ahead. The mux tracks, per authenticated sender,
//! the highest epoch that sender has addressed; once `t + 1` senders (at
//! least one honest) are beyond an unfinished epoch by more than the
//! window, that epoch can no longer complete (the quorum has evicted it)
//! and is resolved as [`EpochOutcome::Skipped`], letting the node jump
//! forward to the live frontier instead of stalling the stream. A single
//! Byzantine sender advertising an enormous epoch moves nothing.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::{BufMut, Bytes, BytesMut};

use crate::mux::route_bursts_by;
use crate::wire::{Decode, Encode, Reader, WireError, Writer};
use crate::{Envelope, InstanceId, NodeId, Protocol};

/// Identity of one agreement round in a streaming oracle deployment.
///
/// Epochs are dense and start at 0; a `u32` outlasts a century of
/// per-second agreements.
///
/// # Example
///
/// ```
/// use delphi_primitives::EpochId;
///
/// let e = EpochId(3);
/// assert_eq!(e.next(), EpochId(4));
/// assert_eq!(format!("{e}"), "epoch-3");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpochId(pub u32);

impl EpochId {
    /// The first epoch of any stream.
    pub const FIRST: EpochId = EpochId(0);

    /// The epoch after this one.
    #[inline]
    pub fn next(self) -> EpochId {
        EpochId(self.0 + 1)
    }

    /// The epoch's index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch-{}", self.0)
    }
}

impl From<u32> for EpochId {
    fn from(raw: u32) -> Self {
        EpochId(raw)
    }
}

impl Encode for EpochId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
}

impl Decode for EpochId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(EpochId(r.get_u32()?))
    }
}

/// Epoch-aware instance address: one agreement instance is the pair
/// *(epoch, asset)*.
///
/// The one-shot [`InstanceId`] keeps meaning "asset"; the epoch dimension
/// is what turns a fixed instance set into a stream. The wire encoding is
/// stable: 4 epoch bytes then 2 asset bytes, big-endian, inside the epoch
/// batch codec.
///
/// # Example
///
/// ```
/// use delphi_primitives::{AgreementId, EpochId, InstanceId};
///
/// let id = AgreementId::new(EpochId(7), InstanceId(2));
/// assert_eq!(format!("{id}"), "epoch-7/instance-2");
/// assert!(id < AgreementId::new(EpochId(8), InstanceId(0)), "epoch-major order");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgreementId {
    /// The agreement round.
    pub epoch: EpochId,
    /// The asset (one-shot instance) within the round.
    pub asset: InstanceId,
}

impl AgreementId {
    /// Builds an id from its two components.
    pub fn new(epoch: EpochId, asset: InstanceId) -> AgreementId {
        AgreementId { epoch, asset }
    }

    /// The address one-shot transports implicitly use: epoch 0.
    pub fn solo(asset: InstanceId) -> AgreementId {
        AgreementId { epoch: EpochId::FIRST, asset }
    }

    /// Stable receive-shard assignment, by asset: every epoch of one asset
    /// lands on the same dispatch worker, so per-instance FIFO ordering
    /// survives sharding. See [`InstanceId::shard`].
    #[inline]
    pub fn shard(self, shards: usize) -> usize {
        self.asset.shard(shards)
    }
}

impl fmt::Display for AgreementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.epoch, self.asset)
    }
}

impl Encode for AgreementId {
    fn encode(&self, w: &mut Writer) {
        self.epoch.encode(w);
        self.asset.encode(w);
    }
}

impl Decode for AgreementId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AgreementId { epoch: EpochId::decode(r)?, asset: InstanceId::decode(r)? })
    }
}

/// Bytes of epoch-batch overhead per entry: 4-byte epoch, 2-byte asset,
/// 4-byte length prefix.
pub const EPOCH_ENTRY_OVERHEAD_BYTES: usize = 10;

/// Bytes of epoch-batch overhead per batch: the 2-byte entry count.
pub const EPOCH_COUNT_BYTES: usize = 2;

/// Encoded length of an epoch batch with the given payload lengths.
pub fn epoch_batch_len(payload_lens: impl IntoIterator<Item = usize>) -> usize {
    EPOCH_COUNT_BYTES
        + payload_lens.into_iter().map(|l| EPOCH_ENTRY_OVERHEAD_BYTES + l).sum::<usize>()
}

/// Encodes `(agreement, payload)` entries into one epoch batch payload:
/// `[u16 count]` then `count` entries of `[u32 epoch][u16 asset][u32 len]
/// [len bytes]`, big-endian.
///
/// # Panics
///
/// Panics if `entries` holds more than `u16::MAX` entries or an entry
/// exceeds `u32::MAX` bytes (unreachable for protocol traffic).
pub fn encode_epoch_batch(entries: &[(AgreementId, Bytes)]) -> Bytes {
    let count = u16::try_from(entries.len()).expect("epoch batch entry count fits u16");
    let mut buf = BytesMut::with_capacity(epoch_batch_len(entries.iter().map(|(_, p)| p.len())));
    buf.put_u16(count);
    for (id, payload) in entries {
        buf.put_u32(id.epoch.0);
        buf.put_u16(id.asset.0);
        buf.put_u32(u32::try_from(payload.len()).expect("entry length fits u32"));
        buf.put_slice(payload);
    }
    buf.freeze()
}

/// Decodes an epoch batch payload back into `(agreement, payload)`
/// entries.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on input ending mid-entry,
/// [`WireError::LengthOutOfBounds`] on an overrunning declared length, and
/// [`WireError::TrailingBytes`] on bytes past the declared count — all
/// expected on Byzantine-controlled input.
pub fn decode_epoch_batch(buf: &[u8]) -> Result<Vec<(AgreementId, Bytes)>, WireError> {
    let mut rest = buf;
    let count = take_u16(&mut rest)?;
    let mut entries = Vec::with_capacity(usize::from(count).min(rest.len() / 2 + 1));
    for _ in 0..count {
        let epoch = EpochId(take_u32(&mut rest)?);
        let asset = InstanceId(take_u16(&mut rest)?);
        let len = take_u32(&mut rest)? as usize;
        if len > rest.len() {
            return Err(WireError::LengthOutOfBounds);
        }
        let (payload, tail) = rest.split_at(len);
        entries.push((AgreementId::new(epoch, asset), Bytes::copy_from_slice(payload)));
        rest = tail;
    }
    if !rest.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(entries)
}

/// A validated, borrowed view of an epoch batch payload: the zero-copy
/// sibling of [`decode_epoch_batch`].
///
/// [`decode_epoch_batch_ref`] validates the whole structure up front
/// (identical acceptance and errors to the owned decoder, property-tested),
/// then [`EpochEntriesRef::iter`] yields `(agreement, payload)` entries as
/// slices into the input — no per-entry allocation, no copies.
#[derive(Clone, Copy, Debug)]
pub struct EpochEntriesRef<'a> {
    /// Entry bytes (everything after the count), pre-validated.
    entries: &'a [u8],
    count: u16,
}

/// Parses a borrowed [`EpochEntriesRef`] view of an epoch batch payload.
///
/// # Errors
///
/// Identical to [`decode_epoch_batch`].
pub fn decode_epoch_batch_ref(buf: &[u8]) -> Result<EpochEntriesRef<'_>, WireError> {
    let mut rest = buf;
    let count = take_u16(&mut rest)?;
    let entries = rest;
    for _ in 0..count {
        let _epoch = take_u32(&mut rest)?;
        let _asset = take_u16(&mut rest)?;
        let len = take_u32(&mut rest)? as usize;
        if len > rest.len() {
            return Err(WireError::LengthOutOfBounds);
        }
        rest = &rest[len..];
    }
    if !rest.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(EpochEntriesRef { entries, count })
}

impl<'a> EpochEntriesRef<'a> {
    /// Number of entries in the batch.
    pub fn len(&self) -> usize {
        usize::from(self.count)
    }

    /// Whether the batch carries no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the entries as borrowed slices.
    pub fn iter(&self) -> EpochEntryIter<'a> {
        EpochEntryIter { rest: self.entries, remaining: self.count }
    }

    /// Materializes owned entries (the protocol-boundary escape hatch).
    pub fn to_owned_entries(&self) -> Vec<(AgreementId, Bytes)> {
        self.iter().map(|(id, p)| (id, Bytes::copy_from_slice(p))).collect()
    }
}

/// Iterator over a pre-validated [`EpochEntriesRef`].
#[derive(Clone, Debug)]
pub struct EpochEntryIter<'a> {
    rest: &'a [u8],
    remaining: u16,
}

impl<'a> Iterator for EpochEntryIter<'a> {
    type Item = (AgreementId, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Validated at parse time; the checks below are unreachable but
        // keep the iterator panic-free on principle.
        let epoch = EpochId(take_u32(&mut self.rest).ok()?);
        let asset = InstanceId(take_u16(&mut self.rest).ok()?);
        let len = take_u32(&mut self.rest).ok()? as usize;
        if len > self.rest.len() {
            self.remaining = 0;
            return None;
        }
        let (payload, tail) = self.rest.split_at(len);
        self.rest = tail;
        Some((AgreementId::new(epoch, asset), payload))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::from(self.remaining), Some(usize::from(self.remaining)))
    }
}

fn take_u16(rest: &mut &[u8]) -> Result<u16, WireError> {
    let Some((head, tail)) = rest.split_first_chunk::<2>() else {
        return Err(WireError::Truncated);
    };
    *rest = tail;
    Ok(u16::from_be_bytes(*head))
}

fn take_u32(rest: &mut &[u8]) -> Result<u32, WireError> {
    let Some((head, tail)) = rest.split_first_chunk::<4>() else {
        return Err(WireError::Truncated);
    };
    *rest = tail;
    Ok(u32::from_be_bytes(*head))
}

/// Routes epoch-addressed envelope bursts into per-destination entry
/// lists, with the same broadcast-expansion and out-of-range-drop
/// semantics every transport in the workspace uses.
pub fn route_epoch_bursts(
    bursts: Vec<(AgreementId, Vec<Envelope>)>,
    n: usize,
    me: NodeId,
) -> Vec<Vec<(AgreementId, Bytes)>> {
    route_bursts_by(bursts, n, me)
}

/// [`route_epoch_bursts`] into caller-owned scratch buffers (see
/// [`route_bursts_into`](crate::mux::route_bursts_into)).
pub fn route_epoch_bursts_into(
    bursts: Vec<(AgreementId, Vec<Envelope>)>,
    n: usize,
    me: NodeId,
    per_dest: &mut Vec<Vec<(AgreementId, Bytes)>>,
) {
    crate::mux::route_bursts_by_into(bursts, n, me, per_dest);
}

/// When a transport flushes accumulated batch entries.
///
/// `PerStep` reproduces the one-shot runners' behaviour: every protocol
/// step's entries are flushed immediately, one frame per destination per
/// step. `Adaptive` accumulates entries across steps and flushes a
/// destination when its pending batch exceeds a size trigger — or when the
/// time trigger fires (the simulator's tick, the TCP runner's flush
/// timer) — trading a bounded delay for fewer frames and MAC tags per
/// agreement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush every step's entries immediately (the one-shot cost model).
    PerStep,
    /// Accumulate entries across steps; flush on any trigger.
    Adaptive {
        /// Flush a destination once this many entries are pending for it.
        max_entries: usize,
        /// Flush a destination once this many payload bytes are pending.
        max_bytes: usize,
        /// Upper bound on how long an entry may sit unflushed (drives the
        /// TCP runner's flush timer; the simulator uses its tick interval).
        max_delay: Duration,
    },
}

impl FlushPolicy {
    /// A reasonable adaptive default: flush at 32 entries or 8 KiB, within
    /// a millisecond.
    pub fn adaptive() -> FlushPolicy {
        FlushPolicy::Adaptive {
            max_entries: 32,
            max_bytes: 8 * 1024,
            max_delay: Duration::from_millis(1),
        }
    }

    /// Whether this policy defers flushing at all.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, FlushPolicy::Adaptive { .. })
    }
}

/// Shape of one epoch pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochConfig {
    /// Total epochs the stream runs (`K`).
    pub epochs: u32,
    /// Agreement instances (assets) per epoch.
    pub assets: u16,
    /// Maximum epochs in flight (unfinished) at once — the pipelining
    /// depth, i.e. the epoch-rate knob.
    pub depth: usize,
    /// Maximum epochs resident in memory, completed lingerers included.
    /// Must be at least `depth`; the excess is how long a completed epoch
    /// keeps answering slower peers before eviction.
    pub window: usize,
    /// Fault threshold `t`: fast-forward requires `t + 1` senders beyond
    /// an epoch before it may be skipped.
    pub t: usize,
}

impl EpochConfig {
    /// A window-validated config with the given stream length and basket
    /// size, pipelining `depth` epochs and lingering `window - depth`
    /// completed ones.
    ///
    /// # Panics
    ///
    /// Panics on a zero-epoch or zero-asset stream, zero depth, or
    /// `window < depth`.
    pub fn new(epochs: u32, assets: u16, depth: usize, window: usize, t: usize) -> EpochConfig {
        assert!(epochs >= 1, "stream needs at least one epoch");
        assert!(assets >= 1, "epoch needs at least one asset");
        assert!(depth >= 1, "pipeline depth must be at least 1");
        assert!(window >= depth, "window must cover the pipeline depth");
        EpochConfig { epochs, assets, depth, window, t }
    }
}

/// Counters the epoch layer exposes for observability and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Entries addressed to an already-evicted epoch, dropped.
    pub late_entries: u64,
    /// Entries addressed beyond the early-buffer horizon, dropped.
    pub early_dropped: u64,
    /// Buffered early entries replayed once their epoch spawned.
    pub replayed_entries: u64,
    /// Epochs resolved as [`EpochOutcome::Skipped`] (no agreement).
    pub stale_epochs: u64,
    /// Most epochs resident in memory at once (live-window bound check).
    pub peak_resident: usize,
}

/// A single-writer, many-reader cell for live [`EpochStats`] publication —
/// a seqlock built from plain atomics (no locks on either side, safe
/// Rust only).
///
/// The sharded epoch workers each own one cell and
/// [`publish`](EpochStatsCell::publish) after every frame; any number of
/// observers (a stats route, a monitoring thread, the service handle) call
/// [`stats_snapshot`](EpochStatsCell::stats_snapshot) and always see one
/// *coherent* published value — never a mix of two publications — because
/// the sequence number is bumped to odd before the fields are written and
/// back to even after, and a reader retries until it observes the same
/// even sequence on both sides of its field reads.
#[derive(Debug, Default)]
pub struct EpochStatsCell {
    seq: AtomicU64,
    late_entries: AtomicU64,
    early_dropped: AtomicU64,
    replayed_entries: AtomicU64,
    stale_epochs: AtomicU64,
    peak_resident: AtomicU64,
}

impl EpochStatsCell {
    /// An empty cell (all counters zero).
    pub fn new() -> EpochStatsCell {
        EpochStatsCell::default()
    }

    /// Publishes a new coherent value. Single writer: the owning shard
    /// worker. (Two concurrent writers would corrupt the seqlock's
    /// odd/even discipline; the type is not built for that.)
    pub fn publish(&self, stats: EpochStats) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::SeqCst); // odd: write in progress
        self.late_entries.store(stats.late_entries, Ordering::SeqCst);
        self.early_dropped.store(stats.early_dropped, Ordering::SeqCst);
        self.replayed_entries.store(stats.replayed_entries, Ordering::SeqCst);
        self.stale_epochs.store(stats.stale_epochs, Ordering::SeqCst);
        self.peak_resident.store(stats.peak_resident as u64, Ordering::SeqCst);
        self.seq.store(s.wrapping_add(2), Ordering::SeqCst); // even: consistent
    }

    /// One coherent copy of the latest published value. Lock-free for the
    /// writer; the reader spins only while a publication is mid-flight.
    pub fn stats_snapshot(&self) -> EpochStats {
        loop {
            let before = self.seq.load(Ordering::SeqCst);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let stats = EpochStats {
                late_entries: self.late_entries.load(Ordering::SeqCst),
                early_dropped: self.early_dropped.load(Ordering::SeqCst),
                replayed_entries: self.replayed_entries.load(Ordering::SeqCst),
                stale_epochs: self.stale_epochs.load(Ordering::SeqCst),
                peak_resident: self.peak_resident.load(Ordering::SeqCst) as usize,
            };
            if self.seq.load(Ordering::SeqCst) == before {
                return stats;
            }
            std::hint::spin_loop();
        }
    }
}

/// How one epoch of the stream resolved.
#[derive(Clone, Debug, PartialEq)]
pub enum EpochOutcome<O> {
    /// Every asset instance produced an output; values in asset order.
    Agreed(Vec<O>),
    /// The epoch was abandoned (the node fell behind the quorum frontier
    /// past the live window and could no longer complete it).
    Skipped,
}

/// One element of the ordered output stream: `(epoch, outcome)`.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochEvent<O> {
    /// The resolved epoch.
    pub epoch: EpochId,
    /// Its outcome.
    pub outcome: EpochOutcome<O>,
}

impl<O> EpochEvent<O> {
    /// The `(epoch, asset, value)` agreements this event carries (empty
    /// for skipped epochs).
    pub fn agreements(&self) -> impl Iterator<Item = (EpochId, InstanceId, &O)> {
        let values = match &self.outcome {
            EpochOutcome::Agreed(values) => &values[..],
            EpochOutcome::Skipped => &[],
        };
        values.iter().enumerate().map(move |(a, v)| (self.epoch, InstanceId(a as u16), v))
    }
}

/// Expands a vector-basket event stream into the per-asset shape.
///
/// In vector mode ([`EpochMux::new_vector`]) each agreed epoch carries one
/// output *per instance slot* (a single slot), and that output is itself
/// the whole basket — `EpochOutcome::Agreed(vec![vec![v0, .., vm]])`.
/// Concatenating the slots yields `Agreed(vec![v0, .., vm])`, exactly what
/// the per-asset pipeline emits, so everything downstream (publishers,
/// agreement counters, convergence checks) is mode-oblivious.
pub fn flatten_vector_events<O>(events: Vec<EpochEvent<Vec<O>>>) -> Vec<EpochEvent<O>> {
    events
        .into_iter()
        .map(|event| EpochEvent {
            epoch: event.epoch,
            outcome: match event.outcome {
                EpochOutcome::Agreed(slots) => {
                    EpochOutcome::Agreed(slots.into_iter().flatten().collect())
                }
                EpochOutcome::Skipped => EpochOutcome::Skipped,
            },
        })
        .collect()
}

/// One resident epoch: its per-asset instances and completion state.
struct Slot<P: Protocol> {
    instances: Vec<P>,
    outputs: Vec<Option<P::Output>>,
    missing: usize,
}

impl<P: Protocol> Slot<P> {
    fn done(&self) -> bool {
        self.missing == 0
    }
}

/// Cap on bytes buffered for not-yet-spawned epochs (per node). Honest
/// peers run at most `depth` epochs ahead, so the buffer stays tiny; the
/// cap only bounds Byzantine flooding.
const EARLY_BUFFER_BYTES: usize = 256 * 1024;

/// Budget charge for one buffered early entry: its payload plus a fixed
/// per-entry overhead, so empty-payload floods from an authenticated
/// Byzantine peer still exhaust the cap instead of growing the buffer's
/// bookkeeping without bound.
fn early_entry_cost(payload_len: usize) -> usize {
    payload_len + 64
}

/// The long-lived multi-epoch agreement pipeline.
///
/// `EpochMux` is sans-io: it consumes authenticated `(sender, agreement,
/// payload)` entries and returns epoch-addressed envelope bursts for the
/// transport to route. Drive it through [`EpochProtocol`] under the
/// simulator, or natively through `delphi-net`'s `run_epoch_service` over
/// real sockets.
///
/// Instances are created lazily by the factory, one call per `(epoch,
/// asset)` pair — the factory *is* the streaming input source.
pub struct EpochMux<P: Protocol> {
    cfg: EpochConfig,
    me: NodeId,
    n: usize,
    factory: Box<dyn FnMut(EpochId, InstanceId) -> P + Send>,
    /// Resident epochs by id (unfinished + completed lingerers).
    slots: BTreeMap<u32, Slot<P>>,
    /// Next epoch id to spawn (everything below is spawned or skipped).
    next_spawn: u32,
    /// Unfinished resident epochs (≤ `cfg.depth`).
    unfinished: usize,
    /// Out-of-order resolutions awaiting ordered emission.
    resolved: BTreeMap<u32, EpochOutcome<P::Output>>,
    /// The ordered output stream.
    events: Vec<EpochEvent<P::Output>>,
    /// Epochs `< emit_floor` have been emitted.
    emit_floor: u32,
    /// Highest epoch each sender has addressed to us.
    frontier: Vec<Option<u32>>,
    /// Entries for epochs we have not spawned yet, replayed at spawn.
    early: BTreeMap<u32, Vec<(NodeId, InstanceId, Bytes)>>,
    early_bytes: usize,
    stats: EpochStats,
    started: bool,
    /// Basket dimensions when the pipeline runs one *vector-valued*
    /// instance per epoch (see [`EpochMux::new_vector`]); `0` in the
    /// ordinary per-asset mode.
    vector_dims: u16,
}

impl<P: Protocol> fmt::Debug for EpochMux<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochMux")
            .field("cfg", &self.cfg)
            .field("me", &self.me)
            .field("next_spawn", &self.next_spawn)
            .field("resident", &self.slots.len())
            .field("emit_floor", &self.emit_floor)
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> EpochMux<P> {
    /// Creates the pipeline for node `me` of an `n`-node deployment.
    ///
    /// `factory(epoch, asset)` builds the agreement instance for that pair
    /// — typically a fresh protocol node seeded with the epoch's price
    /// sample. It is called lazily, at most [`EpochConfig::window`] epochs
    /// ahead of the oldest resident epoch.
    ///
    /// # Panics
    ///
    /// Panics on an invalid config (see [`EpochConfig::new`]) or `me` out
    /// of range.
    pub fn new(
        cfg: EpochConfig,
        me: NodeId,
        n: usize,
        factory: Box<dyn FnMut(EpochId, InstanceId) -> P + Send>,
    ) -> EpochMux<P> {
        let cfg = EpochConfig::new(cfg.epochs, cfg.assets, cfg.depth, cfg.window, cfg.t);
        assert!(me.index() < n, "node id {me} out of range for n={n}");
        EpochMux {
            cfg,
            me,
            n,
            factory,
            slots: BTreeMap::new(),
            next_spawn: 0,
            unfinished: 0,
            resolved: BTreeMap::new(),
            events: Vec::new(),
            emit_floor: 0,
            frontier: vec![None; n],
            early: BTreeMap::new(),
            early_bytes: 0,
            stats: EpochStats::default(),
            started: false,
            vector_dims: 0,
        }
    }

    /// Basket dimensions in vector mode ([`EpochMux::new_vector`]); `0`
    /// when the pipeline fans out per asset.
    pub fn vector_dims(&self) -> u16 {
        self.vector_dims
    }

    /// This node's identity.
    pub fn node_id(&self) -> NodeId {
        self.me
    }

    /// System size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The pipeline's shape.
    pub fn config(&self) -> &EpochConfig {
        &self.cfg
    }

    /// Whether every epoch of the stream has resolved and been emitted.
    pub fn is_complete(&self) -> bool {
        self.emit_floor == self.cfg.epochs
    }

    /// The ordered output stream emitted so far.
    pub fn events(&self) -> &[EpochEvent<P::Output>] {
        &self.events
    }

    /// Drops and returns the events emitted since the last drain.
    pub fn drain_events(&mut self) -> Vec<EpochEvent<P::Output>> {
        std::mem::take(&mut self.events)
    }

    /// Observability counters.
    pub fn stats(&self) -> EpochStats {
        self.stats
    }

    /// Epochs currently resident in memory.
    pub fn resident_epochs(&self) -> usize {
        self.slots.len()
    }

    /// Starts the pipeline: spawns the first `depth` epochs and returns
    /// their start bursts.
    ///
    /// Call exactly once, before any [`EpochMux::on_entry`].
    pub fn start(&mut self) -> Vec<(AgreementId, Vec<Envelope>)> {
        assert!(!self.started, "start() must be called exactly once");
        self.started = true;
        let mut bursts = Vec::new();
        self.fill_pipeline(&mut bursts);
        bursts
    }

    /// Feeds one authenticated entry from `from`, returning the envelope
    /// bursts it triggered (including start bursts of any newly spawned
    /// epochs).
    pub fn on_entry(
        &mut self,
        from: NodeId,
        id: AgreementId,
        payload: &[u8],
    ) -> Vec<(AgreementId, Vec<Envelope>)> {
        let mut bursts = Vec::new();
        if from.index() < self.n && from != self.me {
            // Clamp to the stream: epochs past the end are nonsense and
            // must not drag the frontier (and everyone's skips) with them.
            let claimed = id.epoch.0.min(self.cfg.epochs - 1);
            let slot = &mut self.frontier[from.index()];
            *slot = Some(slot.map_or(claimed, |f| f.max(claimed)));
        }
        self.fast_forward(&mut bursts);

        let epoch = id.epoch.0;
        if epoch >= self.next_spawn {
            self.buffer_early(from, id, payload);
            return bursts;
        }
        let Some(slot) = self.slots.get_mut(&epoch) else {
            // Evicted or skipped: a peer slower (or faster, pre-skip) than
            // us. Expected traffic, never an error.
            self.stats.late_entries += 1;
            return bursts;
        };
        let Some(instance) = slot.instances.get_mut(id.asset.index()) else {
            return bursts; // unknown asset: ignore the entry
        };
        let burst = instance.on_message(from, payload);
        if !burst.is_empty() {
            bursts.push((id, burst));
        }
        self.harvest(epoch, id.asset.index());
        self.fill_pipeline(&mut bursts);
        bursts
    }

    /// Records a fresh output on `(epoch, asset)` and resolves the epoch
    /// once every asset has one.
    fn harvest(&mut self, epoch: u32, asset: usize) {
        let Some(slot) = self.slots.get_mut(&epoch) else { return };
        if slot.outputs[asset].is_none() {
            if let Some(out) = slot.instances[asset].output() {
                slot.outputs[asset] = Some(out);
                slot.missing -= 1;
                if slot.done() {
                    self.unfinished -= 1;
                    let outputs =
                        slot.outputs.iter().map(|o| o.clone().expect("all present")).collect();
                    self.resolve(epoch, EpochOutcome::Agreed(outputs));
                }
            }
        }
    }

    /// Queues `outcome` for ordered emission (the slot, if any, stays
    /// resident as a lingerer until evicted).
    fn resolve(&mut self, epoch: u32, outcome: EpochOutcome<P::Output>) {
        self.resolved.insert(epoch, outcome);
        while let Some(outcome) = self.resolved.remove(&self.emit_floor) {
            self.events.push(EpochEvent { epoch: EpochId(self.emit_floor), outcome });
            self.emit_floor += 1;
        }
    }

    /// Spawns epochs until `depth` are unfinished (or the stream ends),
    /// replaying buffered early entries, and evicts lingerers beyond the
    /// window.
    fn fill_pipeline(&mut self, bursts: &mut Vec<(AgreementId, Vec<Envelope>)>) {
        while self.unfinished < self.cfg.depth && self.next_spawn < self.cfg.epochs {
            let epoch = self.next_spawn;
            self.next_spawn += 1;
            if self.hopeless(epoch) {
                // The quorum frontier has moved past this epoch by more
                // than the window: peers have evicted it, it can never
                // complete. Skip without building instances, releasing
                // whatever the epoch had buffered back to the budget.
                for (_, _, payload) in self.early.remove(&epoch).unwrap_or_default() {
                    self.early_bytes -= early_entry_cost(payload.len());
                }
                self.stats.stale_epochs += 1;
                self.resolve(epoch, EpochOutcome::Skipped);
                continue;
            }
            // Make room first so residency never exceeds the window, even
            // transiently: when the budget is full, a resolved lingerer
            // always exists (the spawn loop runs only while unfinished <
            // depth ≤ window) and is evicted before the new epoch lands.
            self.evict_lingerers();
            let assets = usize::from(self.cfg.assets);
            let mut instances = Vec::with_capacity(assets);
            for a in 0..assets {
                instances.push((self.factory)(EpochId(epoch), InstanceId(a as u16)));
            }
            let mut slot = Slot { instances, outputs: vec![None; assets], missing: assets };
            for (a, instance) in slot.instances.iter_mut().enumerate() {
                let burst = instance.start();
                if !burst.is_empty() {
                    bursts.push((AgreementId::new(EpochId(epoch), InstanceId(a as u16)), burst));
                }
            }
            self.slots.insert(epoch, slot);
            self.unfinished += 1;
            self.stats.peak_resident = self.stats.peak_resident.max(self.slots.len());
            // An instance may output at start (degenerate protocols).
            for a in 0..assets {
                self.harvest(epoch, a);
            }
            self.replay_early(epoch, bursts);
        }
    }

    /// Whether `epoch` is beyond saving: `t + 1` senders are ahead of it
    /// by more than the live window, so the quorum has evicted it.
    fn hopeless(&self, epoch: u32) -> bool {
        match self.quorum_frontier() {
            Some(f) => epoch + self.cfg.window as u32 <= f && f > epoch,
            None => false,
        }
    }

    /// The highest epoch at least `t + 1` distinct senders have reached
    /// (at least one of them honest).
    fn quorum_frontier(&self) -> Option<u32> {
        let mut seen: Vec<u32> = self.frontier.iter().filter_map(|f| *f).collect();
        if seen.len() <= self.cfg.t {
            return None;
        }
        seen.sort_unstable_by(|a, b| b.cmp(a));
        Some(seen[self.cfg.t])
    }

    /// Skips unfinished epochs the quorum has left behind, so the
    /// pipeline can refill at the live frontier instead of stalling.
    fn fast_forward(&mut self, bursts: &mut Vec<(AgreementId, Vec<Envelope>)>) {
        let Some(frontier) = self.quorum_frontier() else { return };
        let stale: Vec<u32> = self
            .slots
            .iter()
            .filter(|(&e, slot)| !slot.done() && e + (self.cfg.window as u32) <= frontier)
            .map(|(&e, _)| e)
            .collect();
        if stale.is_empty() {
            return;
        }
        for epoch in stale {
            self.slots.remove(&epoch);
            self.unfinished -= 1;
            self.stats.stale_epochs += 1;
            self.resolve(epoch, EpochOutcome::Skipped);
        }
        self.fill_pipeline(bursts);
    }

    /// Buffers an entry for a not-yet-spawned epoch (bounded; replayed at
    /// spawn). Entries beyond the stream or the byte budget are dropped.
    fn buffer_early(&mut self, from: NodeId, id: AgreementId, payload: &[u8]) {
        let epoch = id.epoch.0;
        let horizon = self.next_spawn.saturating_add(self.cfg.window as u32);
        if epoch >= self.cfg.epochs
            || epoch >= horizon
            || self.early_bytes + early_entry_cost(payload.len()) > EARLY_BUFFER_BYTES
        {
            self.stats.early_dropped += 1;
            return;
        }
        self.early_bytes += early_entry_cost(payload.len());
        self.early.entry(epoch).or_default().push((
            from,
            id.asset,
            Bytes::copy_from_slice(payload),
        ));
    }

    /// Replays entries buffered for `epoch` into its fresh instances.
    fn replay_early(&mut self, epoch: u32, bursts: &mut Vec<(AgreementId, Vec<Envelope>)>) {
        let Some(buffered) = self.early.remove(&epoch) else { return };
        for (from, asset, payload) in buffered {
            self.early_bytes -= early_entry_cost(payload.len());
            self.stats.replayed_entries += 1;
            let Some(slot) = self.slots.get_mut(&epoch) else { continue };
            let Some(instance) = slot.instances.get_mut(asset.index()) else { continue };
            let burst = instance.on_message(from, &payload);
            if !burst.is_empty() {
                bursts.push((AgreementId::new(EpochId(epoch), asset), burst));
            }
            self.harvest(epoch, asset.index());
        }
    }

    /// Evicts the oldest *resolved* epochs until a fresh spawn fits the
    /// window budget. Unfinished epochs are never evicted: the spawn loop
    /// runs only while fewer than `depth ≤ window` epochs are unfinished,
    /// so a resolved resident always exists when the budget is full.
    fn evict_lingerers(&mut self) {
        while self.slots.len() >= self.cfg.window {
            let victim = self
                .slots
                .iter()
                .find(|(_, slot)| slot.done())
                .map(|(&e, _)| e)
                .expect("window >= depth leaves a resolved epoch to evict");
            self.slots.remove(&victim);
        }
    }
}

impl<P: Protocol + 'static> EpochMux<P> {
    /// Creates a *vector-basket* pipeline: one multidimensional agreement
    /// instance per epoch instead of a per-asset fan-out.
    ///
    /// `cfg.assets` names the basket size the instances agree on; on the
    /// wire the pipeline runs with a single [`InstanceId`] (asset 0) per
    /// epoch — every frame entry of an epoch addresses the one vector
    /// instance, which is why one bundle exchange per round covers the
    /// whole basket. [`EpochMux::vector_dims`] reports the basket size so
    /// drivers can expand each `P::Output` (a whole basket) back into
    /// per-asset values (see [`flatten_vector_events`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid config (see [`EpochConfig::new`]) or `me` out
    /// of range.
    pub fn new_vector(
        cfg: EpochConfig,
        me: NodeId,
        n: usize,
        mut factory: Box<dyn FnMut(EpochId) -> P + Send>,
    ) -> EpochMux<P> {
        let dims = cfg.assets;
        let wire_cfg = EpochConfig::new(cfg.epochs, 1, cfg.depth, cfg.window, cfg.t);
        let mut mux = EpochMux::new(wire_cfg, me, n, Box::new(move |epoch, _| factory(epoch)));
        mux.vector_dims = dims;
        mux
    }

    /// Splits an **unstarted** pipeline into per-receive-shard
    /// sub-pipelines, partitioning the basket by [`InstanceId::shard`].
    ///
    /// Each [`EpochShard`] owns the full epoch lifecycle (spawn, GC,
    /// fast-forward, ordered emission) for *its* assets and nothing else,
    /// so a sharded receive path dispatches entries to shard workers with
    /// no locks on the per-entry path — the factory is the only shared
    /// state, serialized behind a mutex that is touched once per
    /// `(epoch, asset)` spawn, never per entry. Shards with no assets are
    /// dropped, so the result holds `min(shards, assets)` pipelines.
    ///
    /// Merge the per-shard event streams back into basket order with
    /// [`merge_epoch_shards`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline was already started or `shards` is zero.
    pub fn split_assets(self, shards: usize) -> Vec<EpochShard<P>> {
        assert!(!self.started, "split_assets must precede start()");
        assert!(shards >= 1, "need at least one shard");
        let total = usize::from(self.cfg.assets);
        let shards = shards.min(total);
        let mut groups: Vec<Vec<InstanceId>> = vec![Vec::new(); shards];
        for a in 0..total as u16 {
            groups[InstanceId(a).shard(shards)].push(InstanceId(a));
        }
        let factory = std::sync::Arc::new(std::sync::Mutex::new(self.factory));
        let (cfg, me, n) = (self.cfg, self.me, self.n);
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(shard_index, assets)| {
                let shared = factory.clone();
                let map = assets.clone();
                let sub_cfg =
                    EpochConfig::new(cfg.epochs, map.len() as u16, cfg.depth, cfg.window, cfg.t);
                let mux = EpochMux::new(
                    sub_cfg,
                    me,
                    n,
                    Box::new(move |epoch, local| {
                        (shared.lock().expect("shared factory"))(epoch, map[local.index()])
                    }),
                );
                EpochShard { shard_index, assets, mux }
            })
            .collect()
    }
}

/// One receive shard's slice of a split pipeline (see
/// [`EpochMux::split_assets`]): a complete [`EpochMux`] over a subset of
/// the basket, speaking **global** asset ids at its boundary.
pub struct EpochShard<P: Protocol> {
    /// Which shard index of the split this is (the [`InstanceId::shard`]
    /// value of every asset it owns).
    shard_index: usize,
    /// The global asset ids this shard owns, ascending.
    assets: Vec<InstanceId>,
    mux: EpochMux<P>,
}

impl<P: Protocol> fmt::Debug for EpochShard<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochShard").field("assets", &self.assets).field("mux", &self.mux).finish()
    }
}

impl<P: Protocol> EpochShard<P> {
    /// Which shard index of the split this is.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// The global asset ids this shard owns, ascending.
    pub fn assets(&self) -> &[InstanceId] {
        &self.assets
    }

    /// The ordered events emitted so far (shard-local asset order).
    pub fn events(&self) -> &[EpochEvent<P::Output>] {
        self.mux.events()
    }

    /// Drains the events emitted since the last drain (shard-local asset
    /// order; translate through [`EpochShard::assets`] to recover global
    /// ids). This is what lets a driver tail a shard's stream live
    /// instead of collecting everything at the end.
    pub fn drain_events(&mut self) -> Vec<EpochEvent<P::Output>> {
        self.mux.drain_events()
    }

    /// Whether this shard owns `asset`'s traffic.
    pub fn owns(&self, asset: InstanceId) -> bool {
        self.assets.binary_search(&asset).is_ok()
    }

    /// Whether every epoch of this shard's stream has resolved.
    pub fn is_complete(&self) -> bool {
        self.mux.is_complete()
    }

    /// The shard's epoch-layer counters.
    pub fn stats(&self) -> EpochStats {
        self.mux.stats()
    }

    /// Starts the shard's pipeline, returning globally-addressed bursts.
    pub fn start(&mut self) -> Vec<(AgreementId, Vec<Envelope>)> {
        let bursts = self.mux.start();
        self.to_global(bursts)
    }

    /// Feeds one authenticated entry (global address). Entries for assets
    /// this shard does not own are ignored — the dispatcher routes by the
    /// same [`AgreementId::shard`] mapping, so they never arrive in a
    /// correct deployment.
    pub fn on_entry(
        &mut self,
        from: NodeId,
        id: AgreementId,
        payload: &[u8],
    ) -> Vec<(AgreementId, Vec<Envelope>)> {
        let Ok(local) = self.assets.binary_search(&id.asset) else {
            return Vec::new();
        };
        let bursts =
            self.mux.on_entry(from, AgreementId::new(id.epoch, InstanceId(local as u16)), payload);
        self.to_global(bursts)
    }

    /// Consumes the shard, returning its asset map and ordered events for
    /// [`merge_epoch_shards`].
    pub fn into_events(self) -> (Vec<InstanceId>, Vec<EpochEvent<P::Output>>, EpochStats) {
        let stats = self.mux.stats();
        let EpochShard { assets, mut mux, .. } = self;
        (assets, mux.drain_events(), stats)
    }

    fn to_global(
        &self,
        bursts: Vec<(AgreementId, Vec<Envelope>)>,
    ) -> Vec<(AgreementId, Vec<Envelope>)> {
        bursts
            .into_iter()
            .map(|(id, envs)| (AgreementId::new(id.epoch, self.assets[id.asset.index()]), envs))
            .collect()
    }
}

/// Reassembles per-shard event streams (from [`EpochShard::into_events`])
/// into one basket-ordered stream over `assets` global assets.
///
/// An epoch merges to [`EpochOutcome::Agreed`] only when **every** shard
/// agreed it; a skip on any shard skips the merged epoch — the same
/// all-or-nothing contract a single pipeline gives per epoch.
pub fn merge_epoch_shards<O: Clone + fmt::Debug>(
    shards: Vec<(Vec<InstanceId>, Vec<EpochEvent<O>>)>,
    assets: u16,
) -> Vec<EpochEvent<O>> {
    let epochs = shards.iter().map(|(_, ev)| ev.len()).max().unwrap_or(0);
    (0..epochs)
        .map(|e| {
            let mut values: Vec<Option<O>> = vec![None; usize::from(assets)];
            let mut skipped = false;
            for (ids, events) in &shards {
                match events.get(e).map(|ev| &ev.outcome) {
                    Some(EpochOutcome::Agreed(vs)) => {
                        for (local, v) in vs.iter().enumerate() {
                            values[ids[local].index()] = Some(v.clone());
                        }
                    }
                    Some(EpochOutcome::Skipped) | None => skipped = true,
                }
            }
            let outcome = if skipped || values.iter().any(Option::is_none) {
                EpochOutcome::Skipped
            } else {
                EpochOutcome::Agreed(values.into_iter().map(|v| v.expect("all present")).collect())
            };
            EpochEvent { epoch: EpochId(e as u32), outcome }
        })
        .collect()
}

/// Combines per-shard [`EpochStats`]: counters sum; `peak_resident` is the
/// worst shard's residency (each shard bounds its own window).
pub fn merge_epoch_stats(stats: impl IntoIterator<Item = EpochStats>) -> EpochStats {
    let mut total = EpochStats::default();
    for s in stats {
        total.late_entries += s.late_entries;
        total.early_dropped += s.early_dropped;
        total.replayed_entries += s.replayed_entries;
        total.stale_epochs += s.stale_epochs;
        total.peak_resident = total.peak_resident.max(s.peak_resident);
    }
    total
}

/// [`Protocol`] adapter over [`EpochMux`]: the whole epoch pipeline as one
/// state machine any envelope transport can drive.
///
/// Outgoing bursts are routed per destination and encoded with the epoch
/// batch codec; [`FlushPolicy::Adaptive`] accumulates entries across steps
/// and relies on the driver's time trigger ([`Protocol::on_tick`]) to
/// bound the delay. The output is the complete ordered event stream, once
/// every epoch has resolved.
///
/// With [`EpochProtocol::recv_shards`] the sender additionally flushes one
/// batch per *(destination, receive shard)* — every entry of a batch
/// shares one [`AgreementId::shard`] class, and the envelope is tagged
/// with it — so a driver with a per-shard CPU model (the simulator's
/// `recv_shards`) processes batches bound for different dispatch workers
/// concurrently, mirroring `delphi-net`'s sharded receive path.
pub struct EpochProtocol<P: Protocol> {
    mux: EpochMux<P>,
    /// Pending entries per `(destination × recv_shards + shard)` slot.
    pending: PendingBatches,
    /// Receive shards the deployment runs (1 = unsharded).
    recv_shards: usize,
    /// Reused routing buffers: one per destination, refilled per step.
    route_scratch: Vec<Vec<(AgreementId, Bytes)>>,
    /// Reused per-shard partition buffers (sharded mode only).
    shard_scratch: Vec<Vec<(AgreementId, Bytes)>>,
    /// Batches flushed (what a transport turns into frames).
    sent_batches: u64,
    /// Entries flushed (envelopes after broadcast expansion).
    sent_entries: u64,
}

/// Per-destination pending entries under one [`FlushPolicy`] — the
/// accumulator shared by [`EpochProtocol`] (simulator path) and
/// `delphi-net`'s session layer (TCP path), so the two transports can
/// never diverge on when a batch is due. The caller owns what "flush"
/// means (an envelope, an authenticated frame); this struct only decides
/// *when* and hands the entries back.
///
/// Flushed buffers are meant to come home: [`PendingBatchesBy::recycle`]
/// returns a drained buffer to a small free-list, and the next
/// accumulation for any destination reuses it instead of allocating —
/// [`PendingBatchesBy::reuse_hits`] counts how often that worked, which
/// `NetStats` surfaces as `buffer_reuses`.
///
/// Generic over the entry key: epoch streams use [`AgreementId`]
/// ([`PendingBatches`]), the one-shot session path uses
/// [`InstanceId`](crate::InstanceId).
#[derive(Debug)]
pub struct PendingBatchesBy<K> {
    policy: FlushPolicy,
    pending: Vec<Vec<(K, Bytes)>>,
    bytes: Vec<usize>,
    /// Drained buffers awaiting reuse (bounded by the destination count).
    free: Vec<Vec<(K, Bytes)>>,
    reuse_hits: u64,
}

/// The epoch-addressed accumulator (the historical name).
pub type PendingBatches = PendingBatchesBy<AgreementId>;

impl<K> PendingBatchesBy<K> {
    /// An empty accumulator for `n` destinations.
    pub fn new(n: usize, policy: FlushPolicy) -> PendingBatchesBy<K> {
        PendingBatchesBy {
            policy,
            pending: std::iter::repeat_with(Vec::new).take(n).collect(),
            bytes: vec![0; n],
            free: Vec::new(),
            reuse_hits: 0,
        }
    }

    /// Number of destinations.
    pub fn dests(&self) -> usize {
        self.pending.len()
    }

    /// The flush policy this accumulator runs under.
    pub fn policy(&self) -> &FlushPolicy {
        &self.policy
    }

    /// Appends entries for `dest`, returning `true` when the destination
    /// is due for an immediate flush (always, per-step; on tripping the
    /// entry or byte trigger, adaptive — the time trigger is the
    /// driver's).
    pub fn push(&mut self, dest: usize, entries: Vec<(K, Bytes)>) -> bool {
        if entries.is_empty() || dest >= self.pending.len() {
            return false;
        }
        self.bytes[dest] += entries.iter().map(|(_, p)| p.len()).sum::<usize>();
        self.reuse_into(dest);
        self.pending[dest].extend(entries);
        self.due(dest)
    }

    /// [`PendingBatchesBy::push`], draining a caller-owned scratch buffer
    /// instead of consuming a fresh `Vec` (the scratch keeps its
    /// capacity for the next step).
    pub fn push_drain(&mut self, dest: usize, entries: &mut Vec<(K, Bytes)>) -> bool {
        if entries.is_empty() || dest >= self.pending.len() {
            return false;
        }
        self.bytes[dest] += entries.iter().map(|(_, p)| p.len()).sum::<usize>();
        self.reuse_into(dest);
        self.pending[dest].append(entries);
        self.due(dest)
    }

    fn due(&self, dest: usize) -> bool {
        match self.policy {
            FlushPolicy::PerStep => true,
            FlushPolicy::Adaptive { max_entries, max_bytes, .. } => {
                self.pending[dest].len() >= max_entries || self.bytes[dest] >= max_bytes
            }
        }
    }

    /// Installs a recycled buffer at an empty `dest` slot, counting the
    /// reuse hit.
    fn reuse_into(&mut self, dest: usize) {
        if self.pending[dest].capacity() == 0 {
            if let Some(buf) = self.free.pop() {
                self.pending[dest] = buf;
                self.reuse_hits += 1;
            }
        }
    }

    /// Takes `dest`'s pending entries (empty when nothing is due). Hand
    /// the drained buffer back via [`PendingBatchesBy::recycle`] once the
    /// flush has consumed it.
    pub fn take(&mut self, dest: usize) -> Vec<(K, Bytes)> {
        self.bytes[dest] = 0;
        std::mem::take(&mut self.pending[dest])
    }

    /// Returns a flushed buffer to the free-list (cleared; capacity kept).
    /// Buffers beyond one per destination are dropped — the steady state
    /// needs no more.
    pub fn recycle(&mut self, mut buf: Vec<(K, Bytes)>) {
        buf.clear();
        if buf.capacity() > 0 && self.free.len() < self.pending.len() {
            self.free.push(buf);
        }
    }

    /// How often an accumulation reused a recycled buffer instead of
    /// allocating a fresh one.
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits
    }

    /// Whether any destination has unflushed entries.
    pub fn has_pending(&self) -> bool {
        self.pending.iter().any(|p| !p.is_empty())
    }
}

impl<P: Protocol> fmt::Debug for EpochProtocol<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochProtocol")
            .field("mux", &self.mux)
            .field("pending", &self.pending)
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> EpochProtocol<P> {
    /// Wraps `mux` with the given flush policy (unsharded receive). Chain
    /// [`EpochProtocol::recv_shards`] before the first step for the
    /// sharded-receive sender half; there is deliberately no second
    /// constructor.
    pub fn new(mux: EpochMux<P>, flush: FlushPolicy) -> EpochProtocol<P> {
        let n = mux.n();
        EpochProtocol {
            mux,
            pending: PendingBatches::new(n, flush),
            recv_shards: 1,
            route_scratch: Vec::new(),
            shard_scratch: vec![Vec::new()],
            sent_batches: 0,
            sent_entries: 0,
        }
    }

    /// Builder-style option: flush one batch per `(destination, receive
    /// shard)`, with every envelope tagged by its [`AgreementId::shard`]
    /// class — the sender half of a `recv_shards`-way sharded receive
    /// path. Call before the first step.
    ///
    /// # Panics
    ///
    /// Panics if `recv_shards` is zero, or if entries are already pending
    /// (the slot layout cannot be rewired mid-stream).
    pub fn recv_shards(mut self, recv_shards: usize) -> EpochProtocol<P> {
        assert!(recv_shards >= 1, "need at least one receive shard");
        assert!(!self.pending.has_pending(), "recv_shards must be set before the first step");
        let n = self.mux.n();
        let policy = *self.pending.policy();
        self.pending = PendingBatches::new(n * recv_shards, policy);
        self.recv_shards = recv_shards;
        self.shard_scratch = std::iter::repeat_with(Vec::new).take(recv_shards).collect();
        self
    }

    /// The underlying pipeline.
    pub fn mux(&self) -> &EpochMux<P> {
        &self.mux
    }

    /// Consumes the adapter, returning the pipeline (for transports that
    /// route epoch entries natively, like `delphi-net`).
    pub fn into_mux(self) -> EpochMux<P> {
        self.mux
    }

    /// Batches flushed so far (one transport frame each).
    pub fn sent_batches(&self) -> u64 {
        self.sent_batches
    }

    /// Entries flushed so far (envelopes after broadcast expansion).
    pub fn sent_entries(&self) -> u64 {
        self.sent_entries
    }

    /// Routes bursts into the per-slot pending buffers and flushes
    /// whatever the policy says is due. Routing and shard partitioning
    /// run through reused scratch buffers: the steady state allocates
    /// nothing.
    fn enqueue(&mut self, bursts: Vec<(AgreementId, Vec<Envelope>)>, out: &mut Vec<Envelope>) {
        let (n, me, shards) = (self.mux.n(), self.mux.node_id(), self.recv_shards);
        let mut routed = std::mem::take(&mut self.route_scratch);
        crate::mux::route_bursts_by_into(bursts, n, me, &mut routed);
        for (dest, entries) in routed.iter_mut().enumerate() {
            if entries.is_empty() {
                continue;
            }
            if shards == 1 {
                if self.pending.push_drain(dest, entries) {
                    self.flush_slot(dest, out);
                }
                continue;
            }
            // Partition the destination's entries into shard classes so
            // every flushed batch lands wholly on one dispatch worker.
            let mut groups = std::mem::take(&mut self.shard_scratch);
            for (id, payload) in entries.drain(..) {
                groups[id.shard(shards)].push((id, payload));
            }
            for (shard, group) in groups.iter_mut().enumerate() {
                if self.pending.push_drain(dest * shards + shard, group) {
                    self.flush_slot(dest * shards + shard, out);
                }
            }
            self.shard_scratch = groups;
        }
        self.route_scratch = routed;
    }

    fn flush_slot(&mut self, slot: usize, out: &mut Vec<Envelope>) {
        let entries = self.pending.take(slot);
        if entries.is_empty() {
            return;
        }
        self.sent_batches += 1;
        self.sent_entries += entries.len() as u64;
        let dest = NodeId((slot / self.recv_shards) as u16);
        let shard = (slot % self.recv_shards) as u16;
        out.push(Envelope::to_one(dest, encode_epoch_batch(&entries)).with_shard(shard));
        self.pending.recycle(entries);
    }

    fn flush_all(&mut self) -> Vec<Envelope> {
        let mut out = Vec::new();
        for slot in 0..self.pending.dests() {
            self.flush_slot(slot, &mut out);
        }
        out
    }
}

impl<P: Protocol> Protocol for EpochProtocol<P> {
    type Output = Vec<EpochEvent<P::Output>>;

    fn node_id(&self) -> NodeId {
        self.mux.node_id()
    }

    fn n(&self) -> usize {
        self.mux.n()
    }

    fn start(&mut self) -> Vec<Envelope> {
        let bursts = self.mux.start();
        let mut out = Vec::new();
        self.enqueue(bursts, &mut out);
        out
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        // Borrowed decode: entries stay slices into `payload` all the way
        // into the per-instance protocols — validated once, never copied.
        let Ok(entries) = decode_epoch_batch_ref(payload) else {
            return Vec::new(); // malformed batch: ignore, never panic
        };
        let mut out = Vec::new();
        for (id, entry) in entries.iter() {
            let bursts = self.mux.on_entry(from, id, entry);
            self.enqueue(bursts, &mut out);
        }
        out
    }

    fn on_tick(&mut self) -> Vec<Envelope> {
        self.flush_all()
    }

    fn output(&self) -> Option<Vec<EpochEvent<P::Output>>> {
        self.mux.is_complete().then(|| self.mux.events().to_vec())
    }

    fn is_finished(&self) -> bool {
        self.mux.is_complete() && !self.pending.has_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn epoch_and_agreement_ids_roundtrip_and_display() {
        assert_eq!(EpochId(5).to_string(), "epoch-5");
        assert_eq!(EpochId(5).next(), EpochId(6));
        assert_eq!(EpochId::from(9u32).index(), 9);
        for raw in [0u32, 1, 255, 65_536, u32::MAX] {
            assert_eq!(roundtrip(&EpochId(raw)).unwrap(), EpochId(raw));
            let id = AgreementId::new(EpochId(raw), InstanceId(7));
            assert_eq!(roundtrip(&id).unwrap(), id);
        }
        assert_eq!(AgreementId::solo(InstanceId(2)).to_string(), "epoch-0/instance-2");
    }

    #[test]
    fn agreement_ids_order_epoch_major() {
        let a = AgreementId::new(EpochId(1), InstanceId(9));
        let b = AgreementId::new(EpochId(2), InstanceId(0));
        assert!(a < b);
    }

    #[test]
    fn epoch_batch_roundtrip_and_length() {
        let entries = vec![
            (AgreementId::new(EpochId(0), InstanceId(0)), Bytes::from_static(b"alpha")),
            (AgreementId::new(EpochId(u32::MAX), InstanceId(65535)), Bytes::from_static(b"")),
            (AgreementId::new(EpochId(7), InstanceId(3)), Bytes::from_static(b"omega")),
        ];
        let encoded = encode_epoch_batch(&entries);
        assert_eq!(encoded.len(), epoch_batch_len([5, 0, 5]));
        assert_eq!(decode_epoch_batch(&encoded).unwrap(), entries);
        // Empty batches round-trip too.
        assert_eq!(decode_epoch_batch(&encode_epoch_batch(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn epoch_batch_rejects_malformed_input() {
        let entries = vec![(AgreementId::new(EpochId(3), InstanceId(1)), Bytes::from_static(b"p"))];
        let encoded = encode_epoch_batch(&entries);
        assert_eq!(decode_epoch_batch(&[]), Err(WireError::Truncated));
        for cut in 1..encoded.len() {
            let err = decode_epoch_batch(&encoded[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::LengthOutOfBounds),
                "cut at {cut}: {err:?}"
            );
        }
        let mut trailing = encoded.to_vec();
        trailing.push(0xaa);
        assert_eq!(decode_epoch_batch(&trailing), Err(WireError::TrailingBytes));
        // Huge declared count with no entries must fail fast.
        assert_eq!(decode_epoch_batch(&[0xff, 0xff]), Err(WireError::Truncated));
    }

    #[test]
    fn stats_cell_snapshots_are_coherent_under_concurrent_publication() {
        // The writer publishes values whose fields are all equal; a torn
        // read would surface as a snapshot mixing two publications.
        let cell = std::sync::Arc::new(EpochStatsCell::new());
        let writer = {
            let cell = cell.clone();
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    cell.publish(EpochStats {
                        late_entries: i,
                        early_dropped: i,
                        replayed_entries: i,
                        stale_epochs: i,
                        peak_resident: i as usize,
                    });
                }
            })
        };
        let mut last = 0;
        for _ in 0..20_000 {
            let s = cell.stats_snapshot();
            assert_eq!(
                (s.late_entries, s.early_dropped, s.replayed_entries, s.stale_epochs),
                (s.late_entries, s.late_entries, s.late_entries, s.late_entries),
                "torn snapshot: {s:?}"
            );
            assert_eq!(s.peak_resident as u64, s.late_entries, "torn snapshot: {s:?}");
            assert!(s.late_entries >= last, "publications observed out of order");
            last = s.late_entries;
        }
        writer.join().expect("writer");
        assert_eq!(cell.stats_snapshot().late_entries, 19_999);
    }

    /// One-round gossip: broadcasts once, outputs after hearing `n - 1`
    /// greetings. Completion per epoch requires every node's traffic.
    struct Gossip {
        id: NodeId,
        n: usize,
        tag: u8,
        heard: usize,
    }

    impl Protocol for Gossip {
        type Output = u8;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            vec![Envelope::to_all(Bytes::copy_from_slice(&[self.tag]))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.heard += 1;
            Vec::new()
        }
        fn output(&self) -> Option<u8> {
            (self.heard >= self.n - 1).then_some(self.tag)
        }
    }

    fn gossip_factory(
        me: NodeId,
        n: usize,
    ) -> Box<dyn FnMut(EpochId, InstanceId) -> Gossip + Send> {
        Box::new(move |e, a| Gossip {
            id: me,
            n,
            tag: (e.0 as u8).wrapping_mul(10).wrapping_add(a.0 as u8),
            heard: 0,
        })
    }

    /// Degenerate vector protocol: outputs the whole basket at start.
    struct InstantBasket {
        id: NodeId,
        n: usize,
        basket: Vec<u8>,
    }

    impl Protocol for InstantBasket {
        type Output = Vec<u8>;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            Vec::new()
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            Vec::new()
        }
        fn output(&self) -> Option<Vec<u8>> {
            Some(self.basket.clone())
        }
    }

    #[test]
    fn vector_mode_runs_one_instance_per_epoch() {
        let n = 4;
        let dims = 8u16;
        let cfg = EpochConfig::new(3, dims, 1, 2, 1);
        let spawned = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let counter = spawned.clone();
        let mut mux = EpochMux::new_vector(
            cfg,
            NodeId(0),
            n,
            Box::new(move |epoch| {
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                InstantBasket {
                    id: NodeId(0),
                    n,
                    basket: (0..dims as u8).map(|d| d + epoch.0 as u8).collect(),
                }
            }),
        );
        assert_eq!(mux.vector_dims(), dims);
        // On the wire the pipeline runs a single instance slot per epoch.
        assert_eq!(mux.config().assets, 1);
        let _ = mux.start();
        assert!(mux.is_complete());
        // One factory call (= one agreement instance) per epoch, not per
        // asset.
        assert_eq!(spawned.load(std::sync::atomic::Ordering::SeqCst), 3);
        let events = mux.drain_events();
        assert_eq!(events.len(), 3);
        for event in &events {
            // Each event holds one slot whose output is the whole basket.
            assert!(matches!(&event.outcome, EpochOutcome::Agreed(slots) if slots.len() == 1
                    && slots[0].len() == usize::from(dims)));
        }
        // Flattening recovers the per-asset event shape downstream code
        // expects: `dims` agreements per agreed epoch.
        let flat = flatten_vector_events(events);
        for (e, event) in flat.iter().enumerate() {
            assert_eq!(event.agreements().count(), usize::from(dims));
            match &event.outcome {
                EpochOutcome::Agreed(values) => {
                    assert_eq!(values[3], 3 + e as u8);
                }
                EpochOutcome::Skipped => panic!("skipped"),
            }
        }
    }

    #[test]
    fn flatten_vector_events_preserves_skips_and_order() {
        let events = vec![
            EpochEvent { epoch: EpochId(0), outcome: EpochOutcome::Agreed(vec![vec![1u8, 2, 3]]) },
            EpochEvent { epoch: EpochId(1), outcome: EpochOutcome::Skipped },
        ];
        let flat = flatten_vector_events(events);
        assert_eq!(flat[0].outcome, EpochOutcome::Agreed(vec![1, 2, 3]));
        assert!(matches!(flat[1].outcome, EpochOutcome::Skipped));
        assert_eq!((flat[0].epoch, flat[1].epoch), (EpochId(0), EpochId(1)));
    }

    fn mesh(cfg: EpochConfig, n: usize, flush: FlushPolicy) -> Vec<EpochProtocol<Gossip>> {
        NodeId::all(n)
            .map(|id| EpochProtocol::new(EpochMux::new(cfg, id, n, gossip_factory(id, n)), flush))
            .collect()
    }

    /// Hand-delivers envelopes (flushing via ticks when queues drain)
    /// until quiescence; returns messages delivered.
    fn run_mesh(nodes: &mut [EpochProtocol<Gossip>]) -> usize {
        use crate::Recipient;
        let mut queue: std::collections::VecDeque<(NodeId, NodeId, Bytes)> =
            std::collections::VecDeque::new();
        let push = |queue: &mut std::collections::VecDeque<(NodeId, NodeId, Bytes)>,
                    from: NodeId,
                    envs: Vec<Envelope>| {
            for env in envs {
                let Recipient::One(dest) = env.to else { panic!("epoch batches are to_one") };
                queue.push_back((from, dest, env.payload));
            }
        };
        for (i, node) in nodes.iter_mut().enumerate() {
            let envs = node.start();
            push(&mut queue, NodeId(i as u16), envs);
        }
        let mut delivered = 0;
        loop {
            while let Some((from, to, payload)) = queue.pop_front() {
                delivered += 1;
                let envs = nodes[to.index()].on_message(from, &payload);
                push(&mut queue, to, envs);
            }
            // Queue drained: fire the time trigger (the simulator's tick).
            let mut progressed = false;
            for (i, node) in nodes.iter_mut().enumerate() {
                let envs = node.on_tick();
                progressed |= !envs.is_empty();
                push(&mut queue, NodeId(i as u16), envs);
            }
            if !progressed && queue.is_empty() {
                return delivered;
            }
        }
    }

    #[test]
    fn pipeline_completes_all_epochs_in_order() {
        let cfg = EpochConfig::new(12, 3, 2, 4, 1);
        let mut nodes = mesh(cfg, 4, FlushPolicy::PerStep);
        run_mesh(&mut nodes);
        for node in &nodes {
            let events = node.output().expect("stream complete");
            assert_eq!(events.len(), 12);
            for (e, event) in events.iter().enumerate() {
                assert_eq!(event.epoch, EpochId(e as u32), "ordered emission");
                let EpochOutcome::Agreed(values) = &event.outcome else {
                    panic!("honest run skipped epoch {e}");
                };
                let expect: Vec<u8> = (0..3).map(|a| (e as u8) * 10 + a).collect();
                assert_eq!(values, &expect, "per-asset values at epoch {e}");
            }
            assert_eq!(node.mux().stats().stale_epochs, 0);
            assert_eq!(node.mux().stats().late_entries, 0);
            assert!(node.mux().stats().peak_resident <= 4, "live window bound");
            assert!(node.is_finished());
        }
    }

    #[test]
    fn adaptive_flush_cuts_batches_at_equal_entry_counts() {
        let cfg = EpochConfig::new(10, 4, 2, 4, 1);
        let mut per_step = mesh(cfg, 3, FlushPolicy::PerStep);
        run_mesh(&mut per_step);
        let mut adaptive = mesh(
            cfg,
            3,
            FlushPolicy::Adaptive {
                max_entries: 16,
                max_bytes: 4096,
                max_delay: Duration::from_millis(1),
            },
        );
        run_mesh(&mut adaptive);
        let entries =
            |nodes: &[EpochProtocol<Gossip>]| nodes.iter().map(|n| n.sent_entries()).sum::<u64>();
        let batches =
            |nodes: &[EpochProtocol<Gossip>]| nodes.iter().map(|n| n.sent_batches()).sum::<u64>();
        for node in per_step.iter().chain(&adaptive) {
            assert!(node.output().is_some(), "both modes complete the stream");
        }
        assert_eq!(entries(&per_step), entries(&adaptive), "same protocol work");
        assert!(
            batches(&adaptive) < batches(&per_step),
            "adaptive {} vs per-step {} batches for {} entries",
            batches(&adaptive),
            batches(&per_step),
            entries(&per_step)
        );
    }

    #[test]
    fn late_entries_to_evicted_epochs_are_counted_not_errors() {
        let n = 2;
        let cfg = EpochConfig::new(6, 1, 1, 1, 0);
        let mut a = EpochProtocol::new(
            EpochMux::new(cfg, NodeId(0), n, gossip_factory(NodeId(0), n)),
            FlushPolicy::PerStep,
        );
        let mut b = EpochProtocol::new(
            EpochMux::new(cfg, NodeId(1), n, gossip_factory(NodeId(1), n)),
            FlushPolicy::PerStep,
        );
        let a0 = a.start();
        let b0 = b.start();
        // Deliver epoch 0 both ways: both complete epoch 0, spawn epoch 1,
        // and (window = depth = 1) evict the finished epoch 0 slot.
        let _ = a.on_message(NodeId(1), &b0[0].payload);
        let _ = b.on_message(NodeId(0), &a0[0].payload);
        assert_eq!(a.mux().events().len(), 1);
        // Replay node 1's epoch-0 greeting: epoch 0 is evicted now.
        let before = a.mux().stats().late_entries;
        let out = a.on_message(NodeId(1), &b0[0].payload);
        assert!(out.is_empty(), "late entry triggers nothing");
        assert_eq!(a.mux().stats().late_entries, before + 1, "late entry counted");
        assert_eq!(a.mux().events().len(), 1, "state unchanged");
    }

    #[test]
    fn eviction_never_removes_an_unfinished_epoch_within_the_window() {
        // depth 2, window 2: node 0 completes epoch 0 while epoch 1 stays
        // unfinished; spawning epoch 2 pushes residency to 3 > window and
        // must evict the *completed* epoch 0, not unfinished epoch 1.
        let n = 2;
        let cfg = EpochConfig::new(8, 1, 2, 2, 0);
        let mut a = EpochProtocol::new(
            EpochMux::new(cfg, NodeId(0), n, gossip_factory(NodeId(0), n)),
            FlushPolicy::PerStep,
        );
        let mut b = EpochProtocol::new(
            EpochMux::new(cfg, NodeId(1), n, gossip_factory(NodeId(1), n)),
            FlushPolicy::PerStep,
        );
        let _ = a.start();
        let b0 = b.start();
        // b's start burst carries epochs 0 and 1; feed only epoch 0 to a.
        let entries = decode_epoch_batch(&b0[0].payload).unwrap();
        let (e0, payload0) =
            entries.iter().find(|(id, _)| id.epoch == EpochId(0)).cloned().expect("epoch 0 entry");
        let _ = a.on_entry_for_test(NodeId(1), e0, &payload0);
        // Epoch 0 done -> epoch 2 spawned; epoch 1 still unfinished.
        assert_eq!(a.mux().events().len(), 1);
        assert!(a.mux().resident_epochs() <= 2, "window respected");
        let resident: Vec<u32> = a.mux.slots.keys().copied().collect();
        assert!(resident.contains(&1), "unfinished epoch 1 must survive eviction");
        assert!(!resident.contains(&0), "completed epoch 0 was the eviction victim");
    }

    #[test]
    fn rejoining_node_fast_forwards_past_a_quorum_frontier() {
        // n = 4, t = 1: two senders must be beyond an epoch (window past
        // it) before it is skipped. A single high-epoch sender moves
        // nothing — the Byzantine-advertisement guard.
        let n = 4;
        let cfg = EpochConfig::new(40, 1, 1, 2, 1);
        let mut lag = EpochMux::new(cfg, NodeId(0), n, gossip_factory(NodeId(0), n));
        let _ = lag.start();
        assert_eq!(lag.resident_epochs(), 1, "working on epoch 0");

        // One (possibly Byzantine) sender claims epoch 30: no movement.
        let _ = lag.on_entry(NodeId(1), AgreementId::new(EpochId(30), InstanceId(0)), b"x");
        assert_eq!(lag.stats().stale_epochs, 0, "one sender is not a quorum");

        // A second sender confirms the frontier: epoch 0 is hopeless
        // (30 ≥ 0 + window), the mux skips forward and respawns at the
        // buffered frontier epochs.
        let _ = lag.on_entry(NodeId(2), AgreementId::new(EpochId(30), InstanceId(0)), b"x");
        assert!(lag.stats().stale_epochs > 0, "left-behind epochs skipped");
        let events = lag.events();
        assert!(!events.is_empty());
        assert!(
            events.iter().all(|e| e.outcome == EpochOutcome::Skipped),
            "skipped epochs resolve as Skipped in order"
        );
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.epoch, EpochId(i as u32), "ordered emission across skips");
        }
        // The pipeline refilled near the frontier, not at epoch 0.
        let newest = lag.slots.keys().next_back().copied().unwrap();
        assert!(newest + (cfg.window as u32) > 30, "respawned at the live frontier");
    }

    #[test]
    fn early_entries_buffer_and_replay_but_bound_memory() {
        // t = 1 with a single peer: no fast-forward quorum can ever form,
        // isolating the early-buffer path.
        let n = 2;
        let cfg = EpochConfig::new(10, 1, 1, 2, 1);
        let mut a = EpochMux::new(cfg, NodeId(0), n, gossip_factory(NodeId(0), n));
        let _ = a.start();
        // Epoch 1 is within the horizon: buffered, then replayed at spawn.
        let _ = a.on_entry(NodeId(1), AgreementId::new(EpochId(1), InstanceId(0)), b"g");
        assert_eq!(a.stats().early_dropped, 0);
        // Far beyond the horizon (and the stream): dropped and counted.
        let _ = a.on_entry(NodeId(1), AgreementId::new(EpochId(9999), InstanceId(0)), b"g");
        assert_eq!(a.stats().early_dropped, 1);
        // Completing epoch 0 spawns epoch 1, replaying the buffer: the
        // replayed greeting counts toward epoch 1's completion.
        let _ = a.on_entry(NodeId(1), AgreementId::new(EpochId(0), InstanceId(0)), b"g");
        assert_eq!(a.stats().replayed_entries, 1);
        assert_eq!(a.events().len(), 2, "epoch 1 completed via the replayed entry");
    }

    #[test]
    fn early_budget_is_released_when_buffered_epochs_are_skipped() {
        // Buffer entries for future epochs, then fast-forward past them:
        // the skipped epochs' buffered bytes must return to the budget,
        // or repeated skip cycles would eventually reject all buffering.
        let n = 4;
        let cfg = EpochConfig::new(200, 1, 1, 2, 1);
        let mut lag = EpochMux::new(cfg, NodeId(0), n, gossip_factory(NodeId(0), n));
        let _ = lag.start();
        let _ = lag.on_entry(NodeId(1), AgreementId::new(EpochId(1), InstanceId(0)), b"abcdef");
        assert!(lag.early_bytes > 0, "entry buffered");
        // Two senders at epoch 100: epochs 0 and 1 (and the buffer for 1)
        // are hopeless and skipped.
        let _ = lag.on_entry(NodeId(1), AgreementId::new(EpochId(100), InstanceId(0)), b"x");
        let _ = lag.on_entry(NodeId(2), AgreementId::new(EpochId(100), InstanceId(0)), b"x");
        assert!(lag.stats().stale_epochs > 0);
        // The skipped epoch's buffer is gone (frontier-epoch entries may
        // legitimately remain buffered until epoch 100 spawns), and the
        // budget accounts exactly the entries still alive.
        assert!(!lag.early.contains_key(&1), "skipped epoch's buffer discarded");
        let expected: usize =
            lag.early.values().flatten().map(|(_, _, p)| early_entry_cost(p.len())).sum();
        assert_eq!(lag.early_bytes, expected, "budget accounts exactly the live buffer");
    }

    #[test]
    fn empty_payload_floods_still_exhaust_the_early_budget() {
        // An authenticated Byzantine peer streaming zero-length entries
        // for a future epoch must hit the cap (per-entry overhead is
        // charged), not grow the buffer without bound.
        let n = 2;
        let cfg = EpochConfig::new(100, 1, 1, 2, 1); // t=1, 1 peer: no quorum
        let mut node = EpochMux::new(cfg, NodeId(0), n, gossip_factory(NodeId(0), n));
        let _ = node.start();
        for _ in 0..10_000 {
            let _ = node.on_entry(NodeId(1), AgreementId::new(EpochId(1), InstanceId(0)), b"");
        }
        let buffered: usize = node.early.values().map(|v| v.len()).sum();
        assert!(buffered <= EARLY_BUFFER_BYTES / 64 + 1, "buffer bounded: {buffered} entries");
        assert!(node.stats().early_dropped > 0, "flood tail dropped and counted");
    }

    #[test]
    fn unknown_assets_and_malformed_batches_are_ignored() {
        let cfg = EpochConfig::new(2, 1, 1, 1, 0);
        let mut node = EpochProtocol::new(
            EpochMux::new(cfg, NodeId(0), 2, gossip_factory(NodeId(0), 2)),
            FlushPolicy::PerStep,
        );
        let _ = node.start();
        assert!(node.on_message(NodeId(1), b"\xff\xff\xff").is_empty(), "garbage ignored");
        let foreign = encode_epoch_batch(&[(
            AgreementId::new(EpochId(0), InstanceId(9)),
            Bytes::from_static(b"g"),
        )]);
        assert!(node.on_message(NodeId(1), &foreign).is_empty());
        assert!(node.output().is_none(), "unknown asset must not advance state");
    }

    #[test]
    #[should_panic(expected = "window must cover")]
    fn config_rejects_window_smaller_than_depth() {
        let _ = EpochConfig::new(1, 1, 4, 2, 0);
    }

    #[test]
    fn flush_policy_helpers() {
        assert!(FlushPolicy::adaptive().is_adaptive());
        assert!(!FlushPolicy::PerStep.is_adaptive());
    }

    #[test]
    fn borrowed_epoch_view_matches_owned_decoder() {
        let entries = vec![
            (AgreementId::new(EpochId(0), InstanceId(0)), Bytes::from_static(b"alpha")),
            (AgreementId::new(EpochId(u32::MAX), InstanceId(65535)), Bytes::from_static(b"")),
            (AgreementId::new(EpochId(7), InstanceId(3)), Bytes::from_static(b"omega")),
        ];
        let encoded = encode_epoch_batch(&entries);
        let view = decode_epoch_batch_ref(&encoded).unwrap();
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.to_owned_entries(), entries);
        assert_eq!(view.iter().size_hint(), (3, Some(3)));
        let first = view.iter().next().unwrap();
        assert_eq!(first, (entries[0].0, &b"alpha"[..]));
        assert!(decode_epoch_batch_ref(&encode_epoch_batch(&[])).unwrap().is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Round-trip equivalence between the borrowed and owned epoch
        /// batch decoders on arbitrary batches.
        #[test]
        fn prop_borrowed_epoch_roundtrip_equivalence(
            entries in proptest::collection::vec(
                (proptest::prelude::any::<u32>(), proptest::prelude::any::<u16>(),
                 proptest::collection::vec(proptest::prelude::any::<u8>(), 0..24)),
                0..12,
            )
        ) {
            let entries: Vec<(AgreementId, Bytes)> = entries
                .into_iter()
                .map(|(e, a, p)| (AgreementId::new(EpochId(e), InstanceId(a)), Bytes::from(p)))
                .collect();
            let encoded = encode_epoch_batch(&entries);
            let owned = decode_epoch_batch(&encoded).unwrap();
            let view = decode_epoch_batch_ref(&encoded).unwrap();
            proptest::prop_assert_eq!(view.to_owned_entries(), owned);
        }

        /// Error equivalence on garbage and truncated inputs.
        #[test]
        fn prop_borrowed_epoch_error_equivalence(
            bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..80),
            cut in 0usize..80,
        ) {
            let owned = decode_epoch_batch(&bytes);
            let borrowed = decode_epoch_batch_ref(&bytes).map(|v| v.to_owned_entries());
            proptest::prop_assert_eq!(owned, borrowed);
            let cut = cut.min(bytes.len());
            let owned = decode_epoch_batch(&bytes[..cut]);
            let borrowed = decode_epoch_batch_ref(&bytes[..cut]).map(|v| v.to_owned_entries());
            proptest::prop_assert_eq!(owned, borrowed);
        }
    }

    #[test]
    fn pending_batches_recycle_buffers_and_count_reuse() {
        let mut pending: PendingBatchesBy<AgreementId> =
            PendingBatchesBy::new(2, FlushPolicy::PerStep);
        let entry = || vec![(AgreementId::solo(InstanceId(0)), Bytes::from_static(b"x"))];
        assert!(pending.push(0, entry()), "per-step is always due");
        let buf = pending.take(0);
        assert_eq!(buf.len(), 1);
        assert_eq!(pending.reuse_hits(), 0, "nothing recycled yet");
        pending.recycle(buf);
        // The next accumulation (any destination) reuses the buffer.
        assert!(pending.push(1, entry()));
        assert_eq!(pending.reuse_hits(), 1, "recycled buffer reused");
        let buf = pending.take(1);
        assert!(buf.capacity() > 0);
        pending.recycle(buf);
        // push_drain reuses too, and drains the scratch in place.
        let mut scratch = entry();
        assert!(pending.push_drain(0, &mut scratch));
        assert!(scratch.is_empty(), "scratch drained, capacity kept");
        assert_eq!(pending.reuse_hits(), 2);
        assert!(pending.has_pending());
    }

    #[test]
    fn sharded_flushing_partitions_batches_by_shard_class() {
        // 4 assets, 2 receive shards: one step's mixed burst must flush as
        // one batch per (destination, shard) with homogeneous shard
        // classes and matching envelope tags.
        let shards = 2usize;
        let cfg = EpochConfig::new(4, 4, 2, 4, 1);
        let mut node = EpochProtocol::new(
            EpochMux::new(cfg, NodeId(0), 3, gossip_factory(NodeId(0), 3)),
            FlushPolicy::PerStep,
        )
        .recv_shards(shards);
        let envs = node.start();
        assert!(!envs.is_empty());
        for env in &envs {
            let entries = decode_epoch_batch(&env.payload).unwrap();
            assert!(!entries.is_empty());
            let class = entries[0].0.shard(shards);
            assert!(
                entries.iter().all(|(id, _)| id.shard(shards) == class),
                "mixed shard classes inside one batch"
            );
            assert_eq!(usize::from(env.shard), class, "envelope tag matches its entries");
        }
        // Both shard classes appear (4 dense assets spread over 2 shards).
        let tags: std::collections::BTreeSet<u16> = envs.iter().map(|e| e.shard).collect();
        assert!(tags.len() > 1, "start burst covers multiple shards: {tags:?}");
    }

    #[test]
    fn sharded_mesh_completes_and_matches_unsharded_values() {
        // The same 8-epoch, 4-asset stream run unsharded and with 2-way
        // sharded flushing must produce identical agreement values —
        // sharding is a transport-parallelism knob, never semantics.
        let cfg = EpochConfig::new(8, 4, 2, 4, 1);
        let run = |shards: usize| {
            let mut nodes: Vec<EpochProtocol<Gossip>> = NodeId::all(3)
                .map(|id| {
                    EpochProtocol::new(
                        EpochMux::new(cfg, id, 3, gossip_factory(id, 3)),
                        FlushPolicy::PerStep,
                    )
                    .recv_shards(shards)
                })
                .collect();
            run_mesh(&mut nodes);
            nodes.iter().map(|n| n.output().expect("complete")).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn split_assets_shards_complete_independently_and_merge_in_basket_order() {
        // Drive a 2-node, 4-asset stream through split shards by hand:
        // each node runs its shards, entries are routed by the stable
        // shard mapping, and the merged streams equal basket order.
        let n = 2;
        let assets = 4u16;
        let epochs = 5u32;
        let shards_per_node = 2usize;
        let cfg = EpochConfig::new(epochs, assets, 2, 4, 0);
        let mut nodes: Vec<Vec<EpochShard<Gossip>>> = NodeId::all(n)
            .map(|id| {
                EpochMux::new(cfg, id, n, gossip_factory(id, n)).split_assets(shards_per_node)
            })
            .collect();
        assert_eq!(nodes[0].len(), shards_per_node);
        // Every asset is owned by exactly one shard, identically per node.
        for a in 0..assets {
            let owners: Vec<usize> = nodes[0]
                .iter()
                .enumerate()
                .filter(|(_, s)| s.owns(InstanceId(a)))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(owners.len(), 1, "asset {a} owners: {owners:?}");
            assert!(nodes[1][owners[0]].owns(InstanceId(a)), "nodes shard identically");
        }

        // Hand-deliver: queue of (from, to, id, payload).
        let mut queue: std::collections::VecDeque<(NodeId, NodeId, AgreementId, Bytes)> =
            std::collections::VecDeque::new();
        let push =
            |queue: &mut std::collections::VecDeque<(NodeId, NodeId, AgreementId, Bytes)>,
             from: NodeId,
             n: usize,
             bursts: Vec<(AgreementId, Vec<Envelope>)>| {
                for (id, envs) in bursts {
                    for env in envs {
                        match env.to {
                            crate::Recipient::All => {
                                for d in NodeId::all(n) {
                                    if d != from {
                                        queue.push_back((from, d, id, env.payload.clone()));
                                    }
                                }
                            }
                            crate::Recipient::One(d) => queue.push_back((from, d, id, env.payload)),
                        }
                    }
                }
            };
        for (i, shards) in nodes.iter_mut().enumerate() {
            for shard in shards.iter_mut() {
                let bursts = shard.start();
                push(&mut queue, NodeId(i as u16), n, bursts);
            }
        }
        while let Some((from, to, id, payload)) = queue.pop_front() {
            let shard =
                nodes[to.index()].iter_mut().find(|s| s.owns(id.asset)).expect("every asset owned");
            let bursts = shard.on_entry(from, id, &payload);
            push(&mut queue, to, n, bursts);
        }

        for (i, shards) in nodes.into_iter().enumerate() {
            assert!(shards.iter().all(EpochShard::is_complete), "node {i} incomplete");
            let stats = merge_epoch_stats(shards.iter().map(EpochShard::stats));
            assert_eq!(stats.stale_epochs, 0);
            assert!(stats.peak_resident <= 4);
            let parts: Vec<(Vec<InstanceId>, Vec<EpochEvent<u8>>)> = shards
                .into_iter()
                .map(|s| {
                    let (ids, events, _) = s.into_events();
                    (ids, events)
                })
                .collect();
            let merged = merge_epoch_shards(parts, assets);
            assert_eq!(merged.len(), epochs as usize);
            for (e, event) in merged.iter().enumerate() {
                assert_eq!(event.epoch, EpochId(e as u32), "ordered after merge");
                let EpochOutcome::Agreed(values) = &event.outcome else {
                    panic!("node {i} epoch {e} skipped");
                };
                let expect: Vec<u8> =
                    (0..assets as u8).map(|a| (e as u8).wrapping_mul(10).wrapping_add(a)).collect();
                assert_eq!(values, &expect, "basket order preserved through the merge");
            }
        }
    }

    #[test]
    fn merged_outcome_is_skipped_if_any_shard_skipped() {
        let shard_a = (
            vec![InstanceId(0)],
            vec![EpochEvent { epoch: EpochId(0), outcome: EpochOutcome::Agreed(vec![1u8]) }],
        );
        let shard_b = (
            vec![InstanceId(1)],
            vec![EpochEvent { epoch: EpochId(0), outcome: EpochOutcome::<u8>::Skipped }],
        );
        let merged = merge_epoch_shards(vec![shard_a, shard_b], 2);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].outcome, EpochOutcome::Skipped);
    }

    #[test]
    #[should_panic(expected = "precede start")]
    fn split_after_start_rejected() {
        let cfg = EpochConfig::new(2, 2, 1, 2, 0);
        let mut mux = EpochMux::new(cfg, NodeId(0), 2, gossip_factory(NodeId(0), 2));
        let _ = mux.start();
        let _ = mux.split_assets(2);
    }

    impl EpochProtocol<Gossip> {
        /// Test-only: feed a single decoded entry (bypassing the codec).
        fn on_entry_for_test(
            &mut self,
            from: NodeId,
            id: AgreementId,
            payload: &[u8],
        ) -> Vec<Envelope> {
            let bursts = self.mux.on_entry(from, id, payload);
            let mut out = Vec::new();
            self.enqueue(bursts, &mut out);
            out
        }
    }
}
