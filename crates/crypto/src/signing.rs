//! HMAC-based attestation "signatures" for the DORA layer (§V).
//!
//! The paper's DORA extension has every node sign its ε-rounded output,
//! collect `t + 1` signatures on one value, and submit the aggregate to an
//! SMR channel. A production deployment would use transferable signatures
//! (Ed25519 or BLS). This reproduction substitutes a symmetric-key
//! simulation: each node holds an attestation key derived from the
//! deployment seed, and any holder of the seed (the simulated SMR channel,
//! the verifier in tests) can recompute and check tags.
//!
//! What the evaluation measures — the *number* of signing/verification
//! operations and the *bytes* carried (Table III) — is identical under the
//! substitution; see `DESIGN.md` §5.

use std::fmt;

use delphi_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use delphi_primitives::NodeId;

use crate::hmac::{ct_eq, HmacSha256};
use crate::sha256::DIGEST_LEN;

/// Length of an attestation signature in bytes.
pub const SIG_LEN: usize = DIGEST_LEN;

/// A node's attestation signature over an opaque message.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Signer identity, bound into the tag.
    pub signer: NodeId,
    tag: [u8; SIG_LEN],
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({}, {:02x}{:02x}..)", self.signer, self.tag[0], self.tag[1])
    }
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.signer);
        w.put_raw(&self.tag);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let signer = r.get::<NodeId>()?;
        let raw = r.get_exact(SIG_LEN)?;
        let mut tag = [0u8; SIG_LEN];
        tag.copy_from_slice(raw);
        Ok(Signature { signer, tag })
    }
}

/// Per-node signing key for DORA attestations.
#[derive(Clone)]
pub struct SigningKey {
    signer: NodeId,
    key: [u8; DIGEST_LEN],
}

impl SigningKey {
    /// Derives node `signer`'s attestation key from the deployment seed.
    pub fn derive(seed: &[u8], signer: NodeId) -> SigningKey {
        let mut mac = HmacSha256::new(seed);
        mac.update(b"delphi-attest");
        mac.update(&signer.0.to_be_bytes());
        SigningKey { signer, key: mac.finalize() }
    }

    /// The identity this key signs for.
    pub fn signer(&self) -> NodeId {
        self.signer
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let mut mac = HmacSha256::new(&self.key);
        mac.update(message);
        Signature { signer: self.signer, tag: mac.finalize() }
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigningKey({})", self.signer)
    }
}

/// Seed-holding verifier for attestation signatures (plays the role of the
/// SMR channel / smart contract in the simulation).
#[derive(Clone)]
pub struct Verifier {
    seed: Vec<u8>,
}

impl Verifier {
    /// Creates a verifier from the deployment seed.
    pub fn new(seed: &[u8]) -> Verifier {
        Verifier { seed: seed.to_vec() }
    }

    /// Whether `sig` is a valid signature by `sig.signer` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let expect = SigningKey::derive(&self.seed, sig.signer).sign(message);
        ct_eq(&expect.tag, &sig.tag)
    }
}

impl fmt::Debug for Verifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Verifier(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::wire::roundtrip;

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::derive(b"seed", NodeId(2));
        assert_eq!(key.signer(), NodeId(2));
        let sig = key.sign(b"value=42");
        let verifier = Verifier::new(b"seed");
        assert!(verifier.verify(b"value=42", &sig));
        assert!(!verifier.verify(b"value=43", &sig));
    }

    #[test]
    fn forged_signer_rejected() {
        let key = SigningKey::derive(b"seed", NodeId(2));
        let mut sig = key.sign(b"value=42");
        sig.signer = NodeId(3); // claim someone else signed it
        assert!(!Verifier::new(b"seed").verify(b"value=42", &sig));
    }

    #[test]
    fn wrong_seed_rejected() {
        let sig = SigningKey::derive(b"seed-a", NodeId(0)).sign(b"m");
        assert!(!Verifier::new(b"seed-b").verify(b"m", &sig));
    }

    #[test]
    fn signature_wire_roundtrip() {
        let sig = SigningKey::derive(b"seed", NodeId(7)).sign(b"m");
        assert_eq!(roundtrip(&sig).unwrap(), sig);
    }

    #[test]
    fn truncated_signature_rejected() {
        let sig = SigningKey::derive(b"seed", NodeId(7)).sign(b"m");
        let bytes = sig.to_bytes();
        assert!(Signature::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn debug_redacts() {
        let key = SigningKey::derive(b"seed", NodeId(1));
        assert_eq!(format!("{key:?}"), "SigningKey(node-1)");
        assert_eq!(format!("{:?}", Verifier::new(b"s")), "Verifier(..)");
    }
}
