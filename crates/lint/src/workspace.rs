//! Workspace discovery: which crates exist, which `.rs` files are live
//! code, and which files are crate roots.
//!
//! The scan covers the root package plus every `crates/*` member. It
//! deliberately skips:
//!
//! - `vendor/` — offline stand-ins for external crates, not workspace
//!   code (they carry their own upstream idioms);
//! - `target/`, `.git/`, and hidden directories;
//! - `tests/` and `benches/` directories — wholly test/harness code, the
//!   rules only police what ships in a node.
//!
//! Crate roots (where `#![forbid(unsafe_code)]` must live) are
//! `src/lib.rs`, `src/main.rs`, direct children of `src/bin/`, and direct
//! children of `examples/`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, LexedFile};
use crate::manifest::{self, Manifest};

/// One workspace member.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from the manifest.
    pub name: String,
    /// Manifest path relative to the workspace root.
    pub manifest_rel: String,
    /// Parsed manifest.
    pub manifest: Manifest,
}

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (forward slashes).
    pub rel: String,
    /// Owning crate's package name.
    pub crate_name: String,
    /// Whether this file is a compilation root.
    pub is_crate_root: bool,
    /// Lexed content.
    pub lexed: LexedFile,
}

/// Everything the rules need about the workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace members (root package first).
    pub crates: Vec<CrateInfo>,
    /// Live source files, lexed.
    pub files: Vec<SourceFile>,
    /// The CI workflow text, when present (for the bench-gate rule).
    pub ci_text: Option<String>,
}

/// Reads and lexes the workspace under `root`.
///
/// # Errors
///
/// Returns a description when the root is not a workspace (no readable
/// `Cargo.toml`) or a directory listing fails.
pub fn load(root: &Path) -> Result<Workspace, String> {
    let root_manifest = read(root.join("Cargo.toml"))?;
    let mut crates = Vec::new();
    let mut files = Vec::new();

    let root_info = manifest::parse(&root_manifest);
    if root_info.name.is_empty() {
        return Err(format!("{} has no [package] name", root.join("Cargo.toml").display()));
    }
    collect_crate(root, root, root_info, "Cargo.toml", &mut crates, &mut files)?;

    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(iter) => iter.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => return Err(format!("cannot list {}: {e}", crates_dir.display())),
    };
    members.sort();
    for dir in members {
        let manifest_path = dir.join("Cargo.toml");
        let Ok(text) = fs::read_to_string(&manifest_path) else { continue };
        let info = manifest::parse(&text);
        let manifest_rel = rel_of(root, &manifest_path);
        collect_crate(root, &dir, info, &manifest_rel, &mut crates, &mut files)?;
    }

    let ci_text = fs::read_to_string(root.join(".github/workflows/ci.yml")).ok();
    Ok(Workspace { crates, files, ci_text })
}

fn read(path: PathBuf) -> Result<String, String> {
    fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Forward slashes keep baseline files identical across platforms.
    rel.to_string_lossy().replace('\\', "/")
}

fn collect_crate(
    root: &Path,
    dir: &Path,
    info: Manifest,
    manifest_rel: &str,
    crates: &mut Vec<CrateInfo>,
    files: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let name = info.name.clone();
    crates.push(CrateInfo {
        name: name.clone(),
        manifest_rel: manifest_rel.to_string(),
        manifest: info,
    });
    for sub in ["src", "examples"] {
        let base = dir.join(sub);
        if base.is_dir() {
            walk_sources(root, &base, &name, files)?;
        }
    }
    Ok(())
}

fn walk_sources(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    files: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(iter) => iter.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => return Err(format!("cannot list {}: {e}", dir.display())),
    };
    entries.sort();
    for path in entries {
        let file_name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let Some(file_name) = file_name else { continue };
        if path.is_dir() {
            if matches!(file_name.as_str(), "tests" | "benches" | "target")
                || file_name.starts_with('.')
            {
                continue;
            }
            walk_sources(root, &path, crate_name, files)?;
        } else if file_name.ends_with(".rs") {
            let text = read(path.clone())?;
            let rel = rel_of(root, &path);
            files.push(SourceFile {
                is_crate_root: is_crate_root(&rel),
                rel,
                crate_name: crate_name.to_string(),
                lexed: lexer::lex(&text),
            });
        }
    }
    Ok(())
}

/// Whether a workspace-relative path is a compilation root.
fn is_crate_root(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        [.., "src", "lib.rs"] | [.., "src", "main.rs"] => true,
        [.., "src", "bin", f] | [.., "examples", f] => f.ends_with(".rs"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_classification() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/net/src/lib.rs"));
        assert!(is_crate_root("crates/bench/src/bin/fig_throughput.rs"));
        assert!(is_crate_root("examples/quickstart.rs"));
        assert!(!is_crate_root("crates/net/src/frame.rs"));
        assert!(!is_crate_root("crates/net/src/bin/nested/helper.rs"));
    }
}
