//! Read-side serving layer for the Delphi oracle.
//!
//! The protocol crates produce an ordered stream of `(epoch, asset)`
//! agreements; this crate is where readers meet that stream without ever
//! touching the protocol hot path. A publisher task tails the epoch
//! service's live event stream (`delphi_net::EpochServiceHandle`) and
//! everything downstream reads from caches it fills:
//!
//! - [`FeedState`]: a per-asset snapshot cache — seqlocked hot scalars
//!   for lock-free latest-value reads, `Arc`-swapped full updates, and a
//!   bounded history ring;
//! - [`SubscriberHub`]: per-asset fan-out over bounded queues with
//!   lag-kick — a slow reader is kicked and re-syncs from the snapshot,
//!   never back-pressuring the publisher;
//! - [`QuorumSigner`] / [`FeedAttestation`](delphi_dora::FeedAttestation):
//!   every served slot carries a certificate a light client verifies
//!   offline with only the deployment seed;
//! - [`ApiServer`]: a hand-rolled HTTP/1.1 endpoint (`/v0/health`,
//!   `/v0/latest`, `/v0/history`, `/v0/attestation`, `/v0/stats`,
//!   `/v0/subscribe`) over the vendored tokio TCP stack;
//! - [`ServiceBuilder`]: the redesigned public surface — one chained
//!   builder replacing the removed `OracleService::new`/`new_sharded`
//!   constructor pair and positional `RunOptions` plumbing, finishing in
//!   either a sans-io [`OracleService`](delphi_core::OracleService) or a
//!   full served deployment ([`ServiceBuilder::serve`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attest;
mod builder;
mod feed;
pub mod http;
mod hub;
mod server;

pub use attest::{attestation_from_hex, attestation_to_hex, QuorumSigner};
pub use builder::{OracleHandle, ServiceBuilder};
pub use feed::{FeedState, FeedUpdate};
pub use hub::{RecvError, SubscriberHub, Subscription};
pub use server::{ApiContext, ApiServer};
