//! [`FeedState`]: the per-asset snapshot cache readers are served from.
//!
//! The protocol pipeline must never wait on a reader. The publisher task
//! (the only writer) pushes each agreed `(epoch, asset)` value in here;
//! any number of HTTP handlers read concurrently:
//!
//! - the hot scalars — latest `(epoch, value)` per asset — live in a
//!   seqlock built from plain atomics, so [`latest_value`]
//!   (`FeedState::latest_value`) never takes a lock and never blocks the
//!   writer;
//! - the full update (value plus its [`FeedAttestation`]) is shared as an
//!   `Arc` swap under a short mutex, so readers clone a pointer, not the
//!   certificate;
//! - a bounded per-asset history ring backs the `/v0/history` route.
//!
//! [`latest_value`]: FeedState::latest_value

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use delphi_dora::FeedAttestation;
use delphi_primitives::{EpochId, InstanceId};

/// One served value: the agreement for an `(epoch, asset)` slot plus the
/// quorum attestation a light client verifies offline.
#[derive(Clone, Debug, PartialEq)]
pub struct FeedUpdate {
    /// The epoch the value was agreed in.
    pub epoch: EpochId,
    /// The asset within the epoch's basket.
    pub asset: InstanceId,
    /// The agreed value (this node's output; ε-close to every honest
    /// peer's).
    pub value: f64,
    /// Slot-bound certificate over the rounded value, when the serving
    /// layer was configured with signing material.
    pub attestation: Option<FeedAttestation>,
}

/// Sentinel for "no epoch published yet" in the seqlock epoch field.
const EMPTY: u64 = u64::MAX;

/// Per-asset slot: seqlocked hot scalars plus the Arc-swapped rich view.
#[derive(Debug)]
struct Slot {
    /// Seqlock sequence: odd while the writer is mid-publish.
    seq: AtomicU64,
    /// Latest epoch (`EMPTY` before the first publish).
    epoch: AtomicU64,
    /// Latest value as IEEE-754 bits.
    bits: AtomicU64,
    full: Mutex<SlotFull>,
}

#[derive(Debug, Default)]
struct SlotFull {
    latest: Option<Arc<FeedUpdate>>,
    history: VecDeque<Arc<FeedUpdate>>,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            epoch: AtomicU64::new(EMPTY),
            bits: AtomicU64::new(0),
            full: Mutex::new(SlotFull::default()),
        }
    }
}

/// The snapshot cache: one [`Slot`] per asset, single writer (the
/// publisher task), any number of lock-free or short-lock readers.
#[derive(Debug)]
pub struct FeedState {
    slots: Vec<Slot>,
    history_cap: usize,
    published: AtomicU64,
}

impl FeedState {
    /// A cache for an `assets`-sized basket keeping `history_cap` past
    /// updates per asset (at least 1 — the latest value is always
    /// retained).
    pub fn new(assets: u16, history_cap: usize) -> FeedState {
        FeedState {
            slots: (0..assets).map(|_| Slot::new()).collect(),
            history_cap: history_cap.max(1),
            published: AtomicU64::new(0),
        }
    }

    /// Basket size this cache serves.
    pub fn assets(&self) -> u16 {
        self.slots.len() as u16
    }

    /// Total updates published since start (the `/v0/health` liveness
    /// number).
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::SeqCst)
    }

    /// Publishes one update, returning the shared handle fan-out layers
    /// (the subscriber hub) can reuse without another allocation.
    ///
    /// Single-writer: only the publisher task may call this.
    ///
    /// # Panics
    ///
    /// Panics if `update.asset` is outside the basket.
    pub fn publish(&self, update: FeedUpdate) -> Arc<FeedUpdate> {
        let slot = &self.slots[update.asset.index()];
        let update = Arc::new(update);
        {
            let mut full = slot.full.lock().expect("feed slot poisoned");
            if full.history.len() == self.history_cap {
                full.history.pop_front();
            }
            full.history.push_back(update.clone());
            full.latest = Some(update.clone());
        }
        // Seqlock write: odd seq, fields, even seq. Readers retry while
        // odd or changed.
        let s = slot.seq.load(Ordering::SeqCst);
        slot.seq.store(s.wrapping_add(1), Ordering::SeqCst);
        slot.epoch.store(u64::from(update.epoch.0), Ordering::SeqCst);
        slot.bits.store(update.value.to_bits(), Ordering::SeqCst);
        slot.seq.store(s.wrapping_add(2), Ordering::SeqCst);
        self.published.fetch_add(1, Ordering::SeqCst);
        update
    }

    /// The latest `(epoch, value)` for `asset` without taking any lock —
    /// the hot-path read. `None` for an unknown asset or before the first
    /// publish.
    pub fn latest_value(&self, asset: InstanceId) -> Option<(EpochId, f64)> {
        let slot = self.slots.get(asset.index())?;
        loop {
            let before = slot.seq.load(Ordering::SeqCst);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let epoch = slot.epoch.load(Ordering::SeqCst);
            let bits = slot.bits.load(Ordering::SeqCst);
            if slot.seq.load(Ordering::SeqCst) == before {
                return match epoch {
                    EMPTY => None,
                    e => Some((EpochId(e as u32), f64::from_bits(bits))),
                };
            }
            std::hint::spin_loop();
        }
    }

    /// The latest full update (attestation included) for `asset`.
    pub fn latest(&self, asset: InstanceId) -> Option<Arc<FeedUpdate>> {
        self.slots.get(asset.index())?.full.lock().expect("feed slot poisoned").latest.clone()
    }

    /// Up to `limit` most recent updates for `asset`, newest first.
    pub fn history(&self, asset: InstanceId, limit: usize) -> Vec<Arc<FeedUpdate>> {
        let Some(slot) = self.slots.get(asset.index()) else { return Vec::new() };
        let full = slot.full.lock().expect("feed slot poisoned");
        full.history.iter().rev().take(limit).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(epoch: u32, asset: u16, value: f64) -> FeedUpdate {
        FeedUpdate { epoch: EpochId(epoch), asset: InstanceId(asset), value, attestation: None }
    }

    #[test]
    fn latest_and_history_reflect_publishes_newest_first() {
        let feed = FeedState::new(2, 3);
        assert_eq!(feed.latest_value(InstanceId(0)), None);
        assert_eq!(feed.latest(InstanceId(0)), None);
        for e in 0..5u32 {
            feed.publish(update(e, 0, 100.0 + f64::from(e)));
        }
        feed.publish(update(0, 1, 7.0));
        assert_eq!(feed.latest_value(InstanceId(0)), Some((EpochId(4), 104.0)));
        assert_eq!(feed.latest(InstanceId(0)).unwrap().value, 104.0);
        // Ring bounded at 3, newest first, limit respected.
        let hist: Vec<u32> = feed.history(InstanceId(0), 10).iter().map(|u| u.epoch.0).collect();
        assert_eq!(hist, vec![4, 3, 2]);
        assert_eq!(feed.history(InstanceId(0), 1).len(), 1);
        assert_eq!(feed.latest_value(InstanceId(1)), Some((EpochId(0), 7.0)));
        // Out-of-basket reads are None/empty, not panics.
        assert_eq!(feed.latest_value(InstanceId(9)), None);
        assert!(feed.history(InstanceId(9), 4).is_empty());
        assert_eq!(feed.published(), 6);
    }

    #[test]
    fn lock_free_reads_never_observe_torn_updates() {
        // The writer publishes (epoch, value) pairs with value = f(epoch);
        // a torn read would pair an epoch with another epoch's value.
        let feed = Arc::new(FeedState::new(1, 1));
        let writer = {
            let feed = feed.clone();
            std::thread::spawn(move || {
                for e in 0..20_000u32 {
                    feed.publish(update(e, 0, f64::from(e) * 3.0 + 1.0));
                }
            })
        };
        let mut last = 0u32;
        while last < 19_999 {
            if let Some((epoch, value)) = feed.latest_value(InstanceId(0)) {
                assert_eq!(value, f64::from(epoch.0) * 3.0 + 1.0, "torn read at {epoch}");
                assert!(epoch.0 >= last, "latest went backwards");
                last = epoch.0;
            }
        }
        writer.join().unwrap();
    }
}
