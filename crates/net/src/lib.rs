//! Tokio TCP runtime for Delphi protocol state machines.
//!
//! The paper's artifact runs on tokio over HMAC-authenticated channels
//! (§VI-C); this crate is that deployment path. The same sans-io
//! [`Protocol`](delphi_primitives::Protocol) state machines that run under
//! the simulator run here over real sockets:
//!
//! - [`frame`]: length-prefixed frames carrying `(sender, payload, tag)`
//!   with an HMAC-SHA256 tag under the pairwise channel key — the
//!   authenticated-channel assumption made concrete. Tampered or
//!   misdirected frames are dropped, never surfaced to the protocol.
//! - [`run_node`]: a full-mesh node runner — binds a listener, dials every
//!   peer (with retry), drives the protocol to its output, and lingers
//!   briefly so slower peers still receive our help messages.
//!
//! # Example
//!
//! See `examples/tcp_cluster.rs` at the workspace root, which runs a
//! Delphi cluster over localhost TCP. The loopback integration test in
//! this crate does the same with 4 BinAA nodes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
mod runner;

pub use frame::{decode_frame, encode_frame, FrameError, MAX_FRAME_PAYLOAD};
pub use runner::{run_node, NetError, NetStats, RunOptions};
