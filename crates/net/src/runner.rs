//! The full-mesh TCP node runner.

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use delphi_crypto::Keychain;
use delphi_primitives::{NodeId, Protocol, Recipient};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

use crate::frame::{decode_frame, encode_frame, MAX_FRAME_PAYLOAD};

/// Network runner failure.
#[derive(Debug)]
pub enum NetError {
    /// Listener could not be bound or a socket operation failed fatally.
    Io(std::io::Error),
    /// The address list does not match the keychain's deployment size.
    Config(String),
    /// The protocol did not produce an output within the deadline.
    Timeout,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network io error: {e}"),
            NetError::Config(msg) => write!(f, "invalid network configuration: {msg}"),
            NetError::Timeout => write!(f, "protocol did not finish before the deadline"),
        }
    }
}

impl Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Byte counters observed by the runner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames sent (after broadcast expansion).
    pub sent_frames: u64,
    /// Total bytes written to sockets (frames incl. headers).
    pub sent_bytes: u64,
    /// Frames received and authenticated.
    pub recv_frames: u64,
    /// Frames dropped by authentication or framing checks.
    pub dropped_frames: u64,
}

/// Tuning knobs for [`run_node`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// How long to keep serving peers after our own output is ready.
    ///
    /// Asynchronous BFT protocols routinely need messages from already-
    /// finished nodes (quorum amplification); killing the process at
    /// output time can stall slower peers.
    pub linger: Duration,
    /// Delay between reconnection attempts while dialing peers.
    pub reconnect_delay: Duration,
    /// Overall deadline for producing an output.
    pub deadline: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            linger: Duration::from_millis(500),
            reconnect_delay: Duration::from_millis(50),
            deadline: Duration::from_secs(60),
        }
    }
}

#[derive(Default)]
struct Counters {
    sent_frames: AtomicU64,
    sent_bytes: AtomicU64,
    recv_frames: AtomicU64,
    dropped_frames: AtomicU64,
}

/// Runs `protocol` over a full TCP mesh until it produces an output.
///
/// `addrs[i]` is the listen address of node `i`; this node binds
/// `addrs[keychain.node_id()]` and dials every other address (retrying
/// until peers come up). All traffic is HMAC-authenticated with the
/// pairwise keys in `keychain`; frames that fail authentication are
/// counted and dropped.
///
/// # Errors
///
/// Returns [`NetError::Config`] on a mismatched address list,
/// [`NetError::Io`] if the listener cannot be bound, and
/// [`NetError::Timeout`] if no output appears within the deadline.
pub async fn run_node<P>(
    mut protocol: P,
    keychain: Keychain,
    addrs: Vec<SocketAddr>,
    opts: RunOptions,
) -> Result<(P::Output, NetStats), NetError>
where
    P: Protocol + Send + 'static,
{
    let me = keychain.node_id();
    let n = keychain.n();
    if addrs.len() != n {
        return Err(NetError::Config(format!("{} addresses for {n} nodes", addrs.len())));
    }
    if protocol.n() != n || protocol.node_id() != me {
        return Err(NetError::Config("protocol identity mismatch".into()));
    }

    let counters = Arc::new(Counters::default());
    let keychain = Arc::new(keychain);

    // Inbound: listener -> reader tasks -> this channel.
    let (in_tx, mut in_rx) = mpsc::channel::<(NodeId, Bytes)>(1024);
    let listener = TcpListener::bind(addrs[me.index()]).await?;
    let accept_kc = keychain.clone();
    let accept_counters = counters.clone();
    let accept_task = tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else { break };
            let kc = accept_kc.clone();
            let tx = in_tx.clone();
            let counters = accept_counters.clone();
            tokio::spawn(async move {
                let _ = read_loop(stream, kc, tx, counters).await;
            });
        }
    });

    // Outbound: one dialer/writer task per peer.
    let mut peer_tx: Vec<Option<mpsc::UnboundedSender<Bytes>>> = Vec::with_capacity(n);
    let mut writer_tasks = Vec::new();
    for peer in NodeId::all(n) {
        if peer == me {
            peer_tx.push(None);
            continue;
        }
        let (tx, rx) = mpsc::unbounded_channel::<Bytes>();
        peer_tx.push(Some(tx));
        let addr = addrs[peer.index()];
        let delay = opts.reconnect_delay;
        let counters = counters.clone();
        writer_tasks.push(tokio::spawn(async move {
            let _ = write_loop(addr, rx, delay, counters).await;
        }));
    }

    let send = |protocol_out: Vec<delphi_primitives::Envelope>,
                peer_tx: &[Option<mpsc::UnboundedSender<Bytes>>],
                kc: &Keychain| {
        for env in protocol_out {
            match env.to {
                Recipient::All => {
                    for (i, tx) in peer_tx.iter().enumerate() {
                        if let Some(tx) = tx {
                            let frame = encode_frame(kc, NodeId(i as u16), &env.payload);
                            let _ = tx.send(frame);
                        }
                    }
                }
                Recipient::One(dest) => {
                    if let Some(Some(tx)) = peer_tx.get(dest.index()) {
                        let frame = encode_frame(kc, dest, &env.payload);
                        let _ = tx.send(frame);
                    }
                }
            }
        }
    };

    // Drive the protocol.
    let deadline = tokio::time::Instant::now() + opts.deadline;
    send(protocol.start(), &peer_tx, &keychain);
    let output = loop {
        if let Some(out) = protocol.output() {
            break out;
        }
        let msg = tokio::select! {
            m = in_rx.recv() => m,
            _ = tokio::time::sleep_until(deadline) => None,
        };
        match msg {
            Some((from, payload)) => {
                send(protocol.on_message(from, &payload), &peer_tx, &keychain);
            }
            None => {
                abort_all(accept_task, writer_tasks);
                return Err(NetError::Timeout);
            }
        }
    };

    // Linger: keep answering peers so they can finish too.
    let linger_end = tokio::time::Instant::now() + opts.linger;
    loop {
        let msg = tokio::select! {
            m = in_rx.recv() => m,
            _ = tokio::time::sleep_until(linger_end) => None,
        };
        match msg {
            Some((from, payload)) => {
                send(protocol.on_message(from, &payload), &peer_tx, &keychain);
            }
            None => break,
        }
    }

    // Give writers a moment to flush queued frames, then stop.
    tokio::time::sleep(Duration::from_millis(50)).await;
    abort_all(accept_task, writer_tasks);

    let stats = NetStats {
        sent_frames: counters.sent_frames.load(Ordering::Relaxed),
        sent_bytes: counters.sent_bytes.load(Ordering::Relaxed),
        recv_frames: counters.recv_frames.load(Ordering::Relaxed),
        dropped_frames: counters.dropped_frames.load(Ordering::Relaxed),
    };
    Ok((output, stats))
}

fn abort_all(accept: tokio::task::JoinHandle<()>, writers: Vec<tokio::task::JoinHandle<()>>) {
    accept.abort();
    for w in writers {
        w.abort();
    }
}

async fn read_loop(
    mut stream: TcpStream,
    keychain: Arc<Keychain>,
    tx: mpsc::Sender<(NodeId, Bytes)>,
    counters: Arc<Counters>,
) -> std::io::Result<()> {
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).await.is_err() {
            return Ok(()); // peer closed
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if !(2..=MAX_FRAME_PAYLOAD + 64).contains(&len) {
            counters.dropped_frames.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // framing is broken beyond recovery: drop link
        }
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).await.is_err() {
            return Ok(());
        }
        match decode_frame(&keychain, &body) {
            Ok((from, payload)) => {
                counters.recv_frames.fetch_add(1, Ordering::Relaxed);
                if tx.send((from, payload)).await.is_err() {
                    return Ok(()); // main loop gone
                }
            }
            Err(_) => {
                counters.dropped_frames.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

async fn write_loop(
    addr: SocketAddr,
    mut rx: mpsc::UnboundedReceiver<Bytes>,
    reconnect_delay: Duration,
    counters: Arc<Counters>,
) -> std::io::Result<()> {
    let mut pending: Option<Bytes> = None;
    'reconnect: loop {
        let mut stream = loop {
            match TcpStream::connect(addr).await {
                Ok(s) => break s,
                Err(_) => tokio::time::sleep(reconnect_delay).await,
            }
        };
        let _ = stream.set_nodelay(true);
        loop {
            let frame = match pending.take() {
                Some(f) => f,
                None => match rx.recv().await {
                    Some(f) => f,
                    None => return Ok(()), // runner finished
                },
            };
            if stream.write_all(&frame).await.is_err() {
                pending = Some(frame); // retry on a fresh connection
                continue 'reconnect;
            }
            counters.sent_frames.fetch_add(1, Ordering::Relaxed);
            counters.sent_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_core::BinAaNode;
    use delphi_primitives::Dyadic;

    async fn free_addrs(n: usize) -> Vec<SocketAddr> {
        // Bind ephemeral listeners to reserve distinct ports, then free
        // them; the runner re-binds moments later.
        let mut addrs = Vec::with_capacity(n);
        let mut holders = Vec::new();
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0").await.unwrap();
            addrs.push(l.local_addr().unwrap());
            holders.push(l);
        }
        drop(holders);
        addrs
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn binaa_cluster_over_loopback() {
        let n = 4;
        let addrs = free_addrs(n).await;
        let inputs = [true, false, true, true];
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = Keychain::derive(b"net-test", id, n);
            let node = BinAaNode::new(id, n, 1, inputs[id.index()], 6);
            let addrs = addrs.clone();
            handles.push(tokio::spawn(async move {
                run_node(node, keychain, addrs, RunOptions::default()).await
            }));
        }
        let mut outputs: Vec<Dyadic> = Vec::new();
        for h in handles {
            let (out, stats) = h.await.unwrap().expect("node finished");
            assert!(stats.sent_frames > 0);
            assert!(stats.recv_frames > 0);
            assert_eq!(stats.dropped_frames, 0);
            outputs.push(out);
        }
        let tol = Dyadic::new(1, 6);
        for a in &outputs {
            for b in &outputs {
                assert!(a.abs_diff(*b) <= tol, "|{a} - {b}| over TCP");
            }
        }
    }

    #[tokio::test]
    async fn config_mismatch_rejected() {
        let keychain = Keychain::derive(b"x", NodeId(0), 4);
        let node = BinAaNode::new(NodeId(0), 4, 1, true, 4);
        let err =
            run_node(node, keychain, vec!["127.0.0.1:1".parse().unwrap()], RunOptions::default())
                .await
                .unwrap_err();
        assert!(matches!(err, NetError::Config(_)), "{err}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn timeout_when_peers_missing() {
        let n = 4;
        let addrs = free_addrs(n).await;
        let keychain = Keychain::derive(b"x", NodeId(0), n);
        let node = BinAaNode::new(NodeId(0), n, 1, true, 4);
        let opts = RunOptions { deadline: Duration::from_millis(300), ..RunOptions::default() };
        let err = run_node(node, keychain, addrs, opts).await.unwrap_err();
        assert!(matches!(err, NetError::Timeout), "{err}");
    }

    #[test]
    fn error_display() {
        assert!(NetError::Timeout.to_string().contains("deadline"));
        assert!(NetError::Config("x".into()).to_string().contains("x"));
        let io = NetError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }
}
