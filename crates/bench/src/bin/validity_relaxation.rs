#![forbid(unsafe_code)]
//! Regenerates the **§VI-E validity-relaxation analysis**: how far
//! Delphi's output strays from the honest-input average, compared with
//! the strict-validity baselines, on both applications.
//!
//! Paper claims: oracle network — Delphi ≈ 25$ from the honest mean in
//! expectation vs ≈ 12.5$ for FIN/Abraham et al. (≈ 0.05% of the BTC
//! price, < 0.5% in 99.2% of minutes); drones — ≈ 2.6 m vs 1.3 m.
//!
//! `cargo run --release -p delphi-bench --bin validity_relaxation [--quick]`

use delphi_bench::{cps_config, oracle_config, quick_mode, TextTable};
use delphi_core::{DelphiConfig, DelphiNode};
use delphi_primitives::NodeId;
use delphi_sim::{Simulation, Topology};
use delphi_stats::describe::Summary;
use delphi_workloads::{BtcFeed, BtcFeedConfig, DroneScenario, DroneScenarioConfig};

struct Deviation {
    from_mean: Vec<f64>,
    outside_hull: Vec<f64>,
}

impl Deviation {
    fn new() -> Deviation {
        Deviation { from_mean: Vec::new(), outside_hull: Vec::new() }
    }
    fn record(&mut self, outputs: &[f64], inputs: &[f64]) {
        let s = Summary::of(inputs);
        for o in outputs {
            self.from_mean.push((o - s.mean).abs());
            self.outside_hull.push((s.min - o).max(o - s.max).max(0.0));
        }
    }
    fn report(&self) -> (f64, f64) {
        (Summary::of(&self.from_mean).mean, Summary::of(&self.outside_hull).max)
    }
}

fn run_delphi_outputs(cfg: &DelphiConfig, inputs: &[f64], seed: u64) -> Vec<f64> {
    let n = cfg.n();
    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
        .collect();
    let report = Simulation::new(Topology::lan(n)).seed(seed).run(nodes);
    assert!(report.all_honest_finished());
    report.honest_outputs().copied().collect()
}

fn main() {
    let trials = if quick_mode() { 5 } else { 25 };
    let n = 16;
    println!("== §VI-E: validity relaxation in practice ({trials} rounds per app) ==\n");

    // Oracle network.
    let cfg = oracle_config(n, 2.0);
    let mut feed = BtcFeed::new(BtcFeedConfig::default(), 0xE1);
    let mut delphi_dev = Deviation::new();
    let mut acs_dev = Deviation::new();
    let mut aad_dev = Deviation::new();
    let mut deltas = Vec::new();
    for trial in 0..trials {
        let quote = feed.next_minute();
        let inputs = feed.node_inputs(&quote, n);
        deltas.push(Summary::of(&inputs).range());
        delphi_dev.record(&run_delphi_outputs(&cfg, &inputs, 9000 + trial), &inputs);
        let t = (n - 1) / 3;
        let nodes = NodeId::all(n)
            .map(|id| delphi_baselines::AcsNode::new(id, n, t, inputs[id.index()], b"coin").boxed())
            .collect();
        let racs = Simulation::new(Topology::lan(n)).seed(9100 + trial).run(nodes);
        acs_dev.record(&racs.honest_outputs().copied().collect::<Vec<_>>(), &inputs);
        let nodes = NodeId::all(n)
            .map(|id| delphi_baselines::AadNode::new(id, n, t, inputs[id.index()], 10).boxed())
            .collect();
        let raad = Simulation::new(Topology::lan(n)).seed(9200 + trial).run(nodes);
        aad_dev.record(&raad.honest_outputs().copied().collect::<Vec<_>>(), &inputs);
        eprintln!("  oracle trial {trial} done");
    }
    let delta_mean = Summary::of(&deltas).mean;
    let (d_mean, d_out) = delphi_dev.report();
    let (c_mean, c_out) = acs_dev.report();
    let (a_mean, a_out) = aad_dev.report();
    println!("-- oracle network (BTC, $) | mean honest range δ = {delta_mean:.2}$ --");
    let mut table = TextTable::new(&["protocol", "E|out - mean(Vh)|", "max outside hull"]);
    table.row(&["Delphi".into(), format!("{d_mean:.2}$"), format!("{d_out:.2}$")]);
    table.row(&["FIN".into(), format!("{c_mean:.2}$"), format!("{c_out:.2}$")]);
    table.row(&["Abraham et al.".into(), format!("{a_mean:.2}$"), format!("{a_out:.2}$")]);
    println!("{}", table.render());
    println!(
        "  relative price error (vs 30000$): Delphi {:.3}% | baselines {:.3}% [paper: ~0.05% expected]\n",
        d_mean / 30_000.0 * 100.0,
        c_mean / 30_000.0 * 100.0
    );

    // Drone localization (one axis).
    let n = 15;
    let cfg = cps_config(n);
    let mut scenario = DroneScenario::new(DroneScenarioConfig::default(), (140.0, -30.0), 0xE2);
    let mut delphi_dev = Deviation::new();
    let mut aad_dev = Deviation::new();
    for trial in 0..trials {
        let (xs, _) = scenario.axis_inputs(n);
        delphi_dev.record(&run_delphi_outputs(&cfg, &xs, 9300 + trial), &xs);
        let t = (n - 1) / 3;
        let nodes = NodeId::all(n)
            .map(|id| delphi_baselines::AadNode::new(id, n, t, xs[id.index()], 7).boxed())
            .collect();
        let raad = Simulation::new(Topology::lan(n)).seed(9400 + trial).run(nodes);
        aad_dev.record(&raad.honest_outputs().copied().collect::<Vec<_>>(), &xs);
        eprintln!("  drone trial {trial} done");
    }
    let (d_mean, d_out) = delphi_dev.report();
    let (a_mean, a_out) = aad_dev.report();
    println!("-- drone localization (per axis, meters) --");
    let mut table = TextTable::new(&["protocol", "E|out - mean(Vh)|", "max outside hull"]);
    table.row(&["Delphi".into(), format!("{d_mean:.3}m"), format!("{d_out:.3}m")]);
    table.row(&["Abraham et al.".into(), format!("{a_mean:.3}m"), format!("{a_out:.3}m")]);
    println!("{}", table.render());
    println!("shape checks:");
    println!("  Delphi deviation within ~2-3x of strict-validity baselines (paper: 2x)");
    println!("  Delphi never exceeds the δ-relaxed hull: {}", d_out <= delta_mean + 2.0);
}
