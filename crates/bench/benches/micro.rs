//! Micro-benchmarks for the per-component costs behind Table I's
//! computation column: hashing, MAC, wire codec, and the BinAA quorum
//! machine's hot path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use delphi_core::{DelphiBundle, EchoKind, Section};
use delphi_crypto::{hmac_sha256, sha256, Keychain};
use delphi_primitives::wire::{Decode, Encode};
use delphi_primitives::{Dyadic, NodeId, Round};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data_1k = vec![0xa5u8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256_1k", |b| b.iter(|| sha256(black_box(&data_1k))));
    group.bench_function("hmac_sha256_1k", |b| {
        b.iter(|| hmac_sha256(black_box(b"channel-key"), black_box(&data_1k)))
    });
    group.finish();

    c.bench_function("keychain_derive_n160", |b| {
        b.iter(|| Keychain::derive(black_box(b"seed"), NodeId(0), 160))
    });

    // The per-frame transport hot path: tagging a small frame under a
    // long-lived channel key. The precomputed pad states halve this.
    let kc = Keychain::derive(b"seed", NodeId(0), 160);
    let header = 42u16.to_be_bytes();
    let body = vec![0x3cu8; 40];
    c.bench_function("channel_tag_40B", |b| {
        b.iter(|| kc.channel(NodeId(1)).tag_segments(&[black_box(&header), black_box(&body)]))
    });
}

fn realistic_bundle() -> DelphiBundle {
    let mut bundle = DelphiBundle::new();
    for level in 0..11u8 {
        let mut s = Section::new(level, Round(12), EchoKind::Echo1);
        s.background = Some(Dyadic::ZERO);
        s.exclude = vec![20_000, 20_001, 20_002];
        s.entries = (0..6).map(|i| (19_998 + i, Dyadic::new(1 + 2 * i as u64, 12))).collect();
        bundle.sections.push(s);
    }
    bundle
}

fn bench_wire(c: &mut Criterion) {
    let bundle = realistic_bundle();
    let bytes = bundle.to_bytes();
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_delphi_bundle", |b| b.iter(|| black_box(&bundle).to_bytes()));
    group.bench_function("decode_delphi_bundle", |b| {
        b.iter(|| DelphiBundle::from_bytes(black_box(&bytes)).expect("valid"))
    });
    group.finish();
}

fn bench_bv_round(c: &mut Criterion) {
    use delphi_core::bv::BvRound;
    let n = 160;
    let t = 53;
    c.bench_function("bv_round_full_quorum_n160", |b| {
        b.iter_batched(
            || {
                let mut bv = BvRound::new(NodeId(0), n, t);
                let _ = bv.set_input(Dyadic::ONE);
                bv
            },
            |mut bv| {
                // A full wave of echoes from every peer.
                for i in 1..n as u16 {
                    let _ = bv.on_echo1(NodeId(i), Dyadic::ONE);
                }
                for i in 1..n as u16 {
                    let _ = bv.on_echo2(NodeId(i), Dyadic::ONE);
                }
                assert!(bv.is_terminated());
                bv
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_dyadic(c: &mut Criterion) {
    let a = Dyadic::new(123_456_789, 30);
    let b_val = Dyadic::new(987_654_321, 31);
    c.bench_function("dyadic_midpoint", |b| b.iter(|| black_box(a).midpoint(black_box(b_val))));
    c.bench_function("dyadic_cmp", |b| b.iter(|| black_box(a).cmp(&black_box(b_val))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_crypto, bench_wire, bench_bv_round, bench_dyadic
}
criterion_main!(benches);
