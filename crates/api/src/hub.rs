//! [`SubscriberHub`]: per-asset fan-out of feed updates over bounded
//! queues with lag-kick.
//!
//! The publisher must never wait on a slow reader, and a reader that
//! falls behind must not buffer unboundedly. Each subscription is a
//! bounded queue; when a broadcast finds a subscriber's queue full, the
//! subscriber is *kicked*: its queue is cleared, it observes
//! [`RecvError::Lagged`] on its next receive, and it is dropped from the
//! hub. A kicked reader re-syncs from the [`FeedState`](crate::FeedState)
//! snapshot and may re-subscribe — the snapshot is always newer than
//! anything its queue held, so no value is silently skipped relative to
//! what the reader could have served.
//!
//! Queues are `Mutex` + `Condvar`, deliberately blocking: the vendored
//! tokio runtime is thread-per-task, so a serving connection task may
//! block on [`Subscription::recv`] without stalling anything else, and
//! the publisher side ([`SubscriberHub::broadcast`]) only ever takes the
//! short non-blocking push path.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use delphi_primitives::InstanceId;

use crate::feed::FeedUpdate;

/// Locks `m`, recovering the inner data if a previous holder panicked:
/// hub state is a plain queue + flag, valid at every await-free step, so
/// the worst a poisoned lock can reflect is one missed or duplicate
/// wake. Recovering keeps one panicking reader thread from cascading
/// panics into the publisher and every other subscriber.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Why a [`Subscription::recv`] returned no update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// The subscriber fell behind and was kicked; re-sync from the
    /// snapshot cache and re-subscribe.
    Lagged,
    /// The feed is complete (or the hub was shut down); no further
    /// updates will ever arrive.
    Closed,
    /// No update arrived within the timeout (the subscription is still
    /// live).
    Timeout,
}

#[derive(Debug, PartialEq, Eq)]
enum SubState {
    Live,
    Lagged,
    Closed,
}

#[derive(Debug)]
struct SubQueue {
    items: VecDeque<Arc<FeedUpdate>>,
    state: SubState,
}

#[derive(Debug)]
struct SubShared {
    queue: Mutex<SubQueue>,
    ready: Condvar,
}

/// One reader's bounded tail of an asset's updates. Dropping it
/// unsubscribes (the hub reaps it on the next broadcast).
#[derive(Debug)]
pub struct Subscription {
    shared: Arc<SubShared>,
}

impl Subscription {
    /// Blocks until the next update, a kick, or close.
    ///
    /// # Errors
    ///
    /// [`RecvError::Lagged`] after a kick, [`RecvError::Closed`] once the
    /// feed ended.
    pub fn recv(&self) -> Result<Arc<FeedUpdate>, RecvError> {
        let mut queue = lock_recover(&self.shared.queue);
        loop {
            if let Some(update) = queue.items.pop_front() {
                return Ok(update);
            }
            match queue.state {
                SubState::Lagged => return Err(RecvError::Lagged),
                SubState::Closed => return Err(RecvError::Closed),
                SubState::Live => {
                    queue = self
                        .shared
                        .ready
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }

    /// As [`recv`](Subscription::recv) but gives up after `timeout`
    /// with [`RecvError::Timeout`] — the shape a serving loop needs to
    /// interleave keep-alives and disconnect checks.
    ///
    /// # Errors
    ///
    /// [`RecvError::Lagged`], [`RecvError::Closed`], or
    /// [`RecvError::Timeout`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Arc<FeedUpdate>, RecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = lock_recover(&self.shared.queue);
        loop {
            if let Some(update) = queue.items.pop_front() {
                return Ok(update);
            }
            match queue.state {
                SubState::Lagged => return Err(RecvError::Lagged),
                SubState::Closed => return Err(RecvError::Closed),
                SubState::Live => {
                    let Some(left) = deadline.checked_duration_since(std::time::Instant::now())
                    else {
                        return Err(RecvError::Timeout);
                    };
                    let (guard, result) = self
                        .shared
                        .ready
                        .wait_timeout(queue, left)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    queue = guard;
                    if result.timed_out() && queue.items.is_empty() && queue.state == SubState::Live
                    {
                        return Err(RecvError::Timeout);
                    }
                }
            }
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Mark closed so the hub's next broadcast reaps the slot instead
        // of filling a queue nobody drains.
        lock_recover(&self.shared.queue).state = SubState::Closed;
    }
}

/// The fan-out registry: per-asset subscriber lists, bounded queues,
/// lag-kick on overflow.
#[derive(Debug)]
pub struct SubscriberHub {
    /// Per-asset subscriber lists; a slot is reaped once Closed/Lagged.
    subs: Vec<Mutex<Vec<Arc<SubShared>>>>,
    capacity: usize,
}

impl SubscriberHub {
    /// A hub for an `assets`-sized basket whose subscriptions buffer at
    /// most `capacity` (≥ 1) undelivered updates before the kick.
    pub fn new(assets: u16, capacity: usize) -> SubscriberHub {
        SubscriberHub {
            subs: (0..assets).map(|_| Mutex::new(Vec::new())).collect(),
            capacity: capacity.max(1),
        }
    }

    /// Registers a new subscriber for `asset`; `None` for an asset
    /// outside the basket.
    pub fn subscribe(&self, asset: InstanceId) -> Option<Subscription> {
        let list = self.subs.get(asset.index())?;
        let shared = Arc::new(SubShared {
            queue: Mutex::new(SubQueue { items: VecDeque::new(), state: SubState::Live }),
            ready: Condvar::new(),
        });
        lock_recover(list).push(shared.clone());
        Some(Subscription { shared })
    }

    /// Live subscriber count across all assets (kicked and dropped
    /// subscribers linger until the next broadcast reaps them).
    pub fn subscriber_count(&self) -> usize {
        self.subs.iter().map(|l| lock_recover(l).len()).sum()
    }

    /// Delivers `update` to every live subscriber of its asset. A
    /// subscriber whose queue is full is kicked (queue cleared, state
    /// Lagged, woken) and reaped; the publisher never blocks.
    pub fn broadcast(&self, update: &Arc<FeedUpdate>) {
        let Some(list) = self.subs.get(update.asset.index()) else { return };
        let mut list = lock_recover(list);
        list.retain(|shared| {
            let mut queue = lock_recover(&shared.queue);
            match queue.state {
                SubState::Closed | SubState::Lagged => return false,
                SubState::Live if queue.items.len() == self.capacity => {
                    queue.items.clear();
                    queue.state = SubState::Lagged;
                    shared.ready.notify_all();
                    return false;
                }
                SubState::Live => {
                    queue.items.push_back(update.clone());
                    shared.ready.notify_all();
                }
            }
            true
        });
    }

    /// Closes every subscription on every asset: readers drain what they
    /// already have, then observe [`RecvError::Closed`].
    pub fn close_all(&self) {
        for list in &self.subs {
            let mut list = lock_recover(list);
            for shared in list.drain(..) {
                let mut queue = lock_recover(&shared.queue);
                if queue.state == SubState::Live {
                    queue.state = SubState::Closed;
                }
                shared.ready.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::EpochId;

    fn update(epoch: u32) -> Arc<FeedUpdate> {
        Arc::new(FeedUpdate {
            epoch: EpochId(epoch),
            asset: InstanceId(0),
            value: f64::from(epoch),
            attestation: None,
        })
    }

    #[test]
    fn subscribers_receive_in_order_then_closed() {
        let hub = SubscriberHub::new(1, 8);
        let sub = hub.subscribe(InstanceId(0)).unwrap();
        assert!(hub.subscribe(InstanceId(3)).is_none(), "outside the basket");
        for e in 0..3 {
            hub.broadcast(&update(e));
        }
        hub.close_all();
        // Already-queued updates survive the close.
        for e in 0..3 {
            assert_eq!(sub.recv().unwrap().epoch, EpochId(e));
        }
        assert_eq!(sub.recv().unwrap_err(), RecvError::Closed);
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn slow_subscriber_is_kicked_not_waited_on() {
        let hub = SubscriberHub::new(1, 2);
        let slow = hub.subscribe(InstanceId(0)).unwrap();
        let fast = hub.subscribe(InstanceId(0)).unwrap();
        hub.broadcast(&update(0));
        hub.broadcast(&update(1));
        assert_eq!(fast.recv().unwrap().epoch, EpochId(0));
        assert_eq!(fast.recv().unwrap().epoch, EpochId(1));
        // Third update overflows `slow` (capacity 2): kicked and reaped,
        // while `fast` (drained) receives normally.
        hub.broadcast(&update(2));
        assert_eq!(slow.recv().unwrap_err(), RecvError::Lagged);
        assert_eq!(fast.recv().unwrap().epoch, EpochId(2));
        assert_eq!(hub.subscriber_count(), 1);
        // The kicked reader re-subscribes and is live again.
        let again = hub.subscribe(InstanceId(0)).unwrap();
        hub.broadcast(&update(3));
        assert_eq!(again.recv().unwrap().epoch, EpochId(3));
    }

    #[test]
    fn dropped_subscription_is_reaped_on_next_broadcast() {
        let hub = SubscriberHub::new(1, 2);
        let sub = hub.subscribe(InstanceId(0)).unwrap();
        drop(sub);
        assert_eq!(hub.subscriber_count(), 1, "reaped lazily");
        hub.broadcast(&update(0));
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn recv_timeout_expires_then_delivers() {
        let hub = Arc::new(SubscriberHub::new(1, 4));
        let sub = hub.subscribe(InstanceId(0)).unwrap();
        assert_eq!(sub.recv_timeout(Duration::from_millis(10)).unwrap_err(), RecvError::Timeout);
        let publisher = {
            let hub = hub.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                hub.broadcast(&update(9));
            })
        };
        let got = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.epoch, EpochId(9));
        publisher.join().unwrap();
    }
}
