//! Compact sender sets for quorum counting.

use std::fmt;

use crate::NodeId;

/// A set of node ids with `O(1)` insert/contains and popcount-based size.
///
/// Every quorum rule in this workspace (`t + 1` amplification, `n − t`
/// quorums, `2t + 1` witness counts) reduces to "how many *distinct* nodes
/// sent X". `NodeBitSet` makes those counts cheap and duplicate-proof: a
/// Byzantine node replaying a message a thousand times still contributes a
/// single bit.
///
/// # Example
///
/// ```
/// use delphi_primitives::{NodeBitSet, NodeId};
///
/// let mut quorum = NodeBitSet::new(4);
/// assert!(quorum.insert(NodeId(1)));
/// assert!(!quorum.insert(NodeId(1))); // duplicates don't count
/// quorum.insert(NodeId(3));
/// assert_eq!(quorum.len(), 2);
/// assert!(quorum.contains(NodeId(3)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeBitSet {
    words: Vec<u64>,
    n: usize,
}

impl NodeBitSet {
    /// Creates an empty set over an `n`-node system.
    pub fn new(n: usize) -> NodeBitSet {
        NodeBitSet { words: vec![0; n.div_ceil(64)], n }
    }

    /// The system size this set was created for.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Inserts `id`, returning `true` if it was not already present.
    ///
    /// Ids at or beyond the system size are ignored (returns `false`):
    /// out-of-range ids can only come from malformed input and must not
    /// grow quorums.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let i = id.index();
        if i >= self.n {
            return false;
        }
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        let newly = self.words[word] & bit == 0;
        self.words[word] |= bit;
        newly
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.index();
        i < self.n && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of distinct ids in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all ids.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Adds every id present in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets were created for different system sizes.
    pub fn union_with(&mut self, other: &NodeBitSet) {
        assert_eq!(self.n, other.n, "bitset capacity mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Number of ids present in both sets.
    ///
    /// # Panics
    ///
    /// Panics if the sets were created for different system sizes.
    pub fn intersection_len(&self, other: &NodeBitSet) -> usize {
        assert_eq!(self.n, other.n, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Iterates over the ids in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(NodeId((wi * 64 + tz as usize) as u16))
                }
            })
        })
    }
}

impl fmt::Debug for NodeBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|id| id.0)).finish()
    }
}

impl FromIterator<NodeId> for NodeBitSet {
    /// Collects ids into a set sized for the largest id seen.
    ///
    /// Mostly a test convenience; protocol code sizes sets from the
    /// configuration instead.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let n = ids.iter().map(|id| id.index() + 1).max().unwrap_or(0);
        let mut set = NodeBitSet::new(n);
        for id in ids {
            set.insert(id);
        }
        set
    }
}

impl Extend<NodeId> for NodeBitSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_len() {
        let mut s = NodeBitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(NodeId(0)));
        assert!(s.insert(NodeId(64)));
        assert!(s.insert(NodeId(129)));
        assert!(!s.insert(NodeId(129)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId(64)));
        assert!(!s.contains(NodeId(63)));
        assert_eq!(s.capacity(), 130);
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        let mut s = NodeBitSet::new(4);
        assert!(!s.insert(NodeId(4)));
        assert!(!s.insert(NodeId(1000)));
        assert!(!s.contains(NodeId(1000)));
        assert!(s.is_empty());
    }

    #[test]
    fn iter_yields_sorted_ids() {
        let mut s = NodeBitSet::new(200);
        for id in [190, 3, 64, 65, 0] {
            s.insert(NodeId(id));
        }
        let got: Vec<u16> = s.iter().map(|id| id.0).collect();
        assert_eq!(got, [0, 3, 64, 65, 190]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = NodeBitSet::new(10);
        let mut b = NodeBitSet::new(10);
        a.extend([NodeId(1), NodeId(2), NodeId(3)]);
        b.extend([NodeId(3), NodeId(4)]);
        assert_eq!(a.intersection_len(&b), 1);
        a.union_with(&b);
        assert_eq!(a.len(), 4);
        assert!(a.contains(NodeId(4)));
    }

    #[test]
    fn clear_resets() {
        let mut s = NodeBitSet::new(8);
        s.extend([NodeId(1), NodeId(7)]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn from_iterator_sizes_to_max_id() {
        let s: NodeBitSet = [NodeId(2), NodeId(9)].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.len(), 2);
        let empty: NodeBitSet = std::iter::empty().collect();
        assert_eq!(empty.capacity(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let s: NodeBitSet = [NodeId(1)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1}");
        let empty = NodeBitSet::new(3);
        assert_eq!(format!("{empty:?}"), "{}");
    }

    proptest! {
        #[test]
        fn prop_matches_reference_set(ops in proptest::collection::vec((0u16..150, any::<bool>()), 0..200)) {
            let mut ours = NodeBitSet::new(150);
            let mut reference = std::collections::BTreeSet::new();
            for (id, _probe) in &ops {
                let newly = ours.insert(NodeId(*id));
                let ref_newly = reference.insert(*id);
                prop_assert_eq!(newly, ref_newly);
            }
            prop_assert_eq!(ours.len(), reference.len());
            let got: Vec<u16> = ours.iter().map(|i| i.0).collect();
            let expect: Vec<u16> = reference.iter().copied().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
