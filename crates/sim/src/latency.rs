//! One-way latency models.

use rand::Rng;

/// Multiplicative jitter applied to a base latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Jitter {
    /// No jitter: deliveries still interleave across pairs but each pair is
    /// deterministic.
    None,
    /// Uniform multiplicative jitter in `[1 − spread, 1 + spread]`.
    Uniform {
        /// Fractional spread, e.g. `0.2` for ±20%.
        spread: f64,
    },
    /// Log-normal multiplicative jitter with median 1, the standard model
    /// for WAN latency tails.
    LogNormal {
        /// σ of the underlying normal; `0.25` gives mild tails, `0.5`
        /// noticeable ones.
        sigma: f64,
    },
}

impl Jitter {
    /// Samples a multiplicative factor (≥ 0.05 to keep latencies positive
    /// and bounded away from zero).
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let factor = match self {
            Jitter::None => 1.0,
            Jitter::Uniform { spread } => 1.0 + spread * (rng.random::<f64>() * 2.0 - 1.0),
            Jitter::LogNormal { sigma } => {
                // Box-Muller: one standard normal sample.
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (sigma * z).exp()
            }
        };
        factor.max(0.05)
    }
}

/// Base one-way latency for every ordered node pair, in nanoseconds.
#[derive(Clone, Debug)]
pub struct LatencyMatrix {
    n: usize,
    base_ns: Vec<u64>,
}

impl LatencyMatrix {
    /// Creates a matrix with the same latency for every pair.
    pub fn constant(n: usize, ns: u64) -> LatencyMatrix {
        LatencyMatrix { n, base_ns: vec![ns; n * n] }
    }

    /// Creates a matrix from a per-pair function.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> u64) -> LatencyMatrix {
        let mut base_ns = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                base_ns.push(f(from, to));
            }
        }
        LatencyMatrix { n, base_ns }
    }

    /// System size this matrix covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Base one-way latency from `from` to `to` in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn base_ns(&self, from: usize, to: usize) -> u64 {
        assert!(from < self.n && to < self.n, "latency index out of range");
        self.base_ns[from * self.n + to]
    }

    /// Mean base latency across all distinct pairs, in nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        let mut sum = 0u128;
        let mut count = 0u128;
        for from in 0..self.n {
            for to in 0..self.n {
                if from != to {
                    sum += u128::from(self.base_ns[from * self.n + to]);
                    count += 1;
                }
            }
        }
        sum.checked_div(count).map_or(0, |v| v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_matrix() {
        let m = LatencyMatrix::constant(3, 500);
        assert_eq!(m.n(), 3);
        assert_eq!(m.base_ns(0, 2), 500);
        assert_eq!(m.mean_ns(), 500);
    }

    #[test]
    fn from_fn_matrix() {
        let m = LatencyMatrix::from_fn(3, |a, b| (a * 10 + b) as u64);
        assert_eq!(m.base_ns(2, 1), 21);
        assert_eq!(m.base_ns(1, 2), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        LatencyMatrix::constant(2, 1).base_ns(2, 0);
    }

    #[test]
    fn jitter_none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Jitter::None.sample(&mut rng), 1.0);
    }

    #[test]
    fn jitter_uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f = Jitter::Uniform { spread: 0.3 }.sample(&mut rng);
            assert!((0.7..=1.3).contains(&f), "factor {f}");
        }
    }

    #[test]
    fn jitter_lognormal_positive_and_median_near_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<f64> =
            (0..4001).map(|_| Jitter::LogNormal { sigma: 0.4 }.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(samples[0] > 0.0);
        let median = samples[2000];
        assert!((0.9..=1.1).contains(&median), "median {median}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(
                Jitter::LogNormal { sigma: 0.3 }.sample(&mut a),
                Jitter::LogNormal { sigma: 0.3 }.sample(&mut b)
            );
        }
    }
}
