//! Protocol-driving service: the full-mesh node runners.
//!
//! [`run_node`] drives one protocol instance; [`run_instances`] drives any
//! number of independent instances (one per oracle asset in a multi-feed
//! deployment) multiplexed over a single mesh. The service layer owns the
//! instance mux and the run lifecycle (start, dispatch, linger, drain) and
//! delegates wire concerns downward: per-peer framing and batching to
//! [`session`](crate::session), sockets and read/write loops to
//! [`transport`](crate::transport).

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use delphi_crypto::Keychain;
use delphi_primitives::{
    AgreementId, EpochEvent, EpochMux, EpochStats, FlushPolicy, InstanceId, NodeId, Protocol,
};
use tokio::net::TcpListener;
use tokio::sync::mpsc;

use crate::session::SessionSet;
use crate::transport::{spawn_acceptor, Counters, InboundFrame, NetStats};

/// Network runner failure.
#[derive(Debug)]
pub enum NetError {
    /// Listener could not be bound or a socket operation failed fatally.
    Io(std::io::Error),
    /// The address list does not match the keychain's deployment size.
    Config(String),
    /// The protocol did not produce an output within the deadline.
    Timeout,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network io error: {e}"),
            NetError::Config(msg) => write!(f, "invalid network configuration: {msg}"),
            NetError::Timeout => write!(f, "protocol did not finish before the deadline"),
        }
    }
}

impl Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Tuning knobs for [`run_node`] / [`run_instances`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// How long to keep serving peers after our own output is ready.
    ///
    /// Asynchronous BFT protocols routinely need messages from already-
    /// finished nodes (quorum amplification); killing the process at
    /// output time can stall slower peers.
    pub linger: Duration,
    /// Initial delay between reconnection attempts while dialing peers
    /// (doubled on consecutive failures up to a bounded backoff).
    pub reconnect_delay: Duration,
    /// Overall deadline for producing an output.
    pub deadline: Duration,
    /// How long shutdown may wait for writer queues to flush to peers.
    pub drain_timeout: Duration,
    /// Whether to coalesce all envelopes of one protocol step per
    /// destination into one batched frame (v2). Off, every envelope pays
    /// its own frame + tag — the v1 cost model, kept for measurement.
    pub batching: bool,
    /// When epoch streams flush accumulated batch entries
    /// ([`run_epoch_service`]): per step, or adaptively on size/time
    /// triggers. One-shot runs always flush per step.
    pub flush: FlushPolicy,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            linger: Duration::from_millis(500),
            reconnect_delay: Duration::from_millis(50),
            deadline: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(5),
            batching: true,
            flush: FlushPolicy::PerStep,
        }
    }
}

/// Runs `protocol` over a full TCP mesh until it produces an output.
///
/// Convenience wrapper around [`run_instances`] for the single-instance
/// case; see there for the transport contract.
///
/// # Errors
///
/// Returns [`NetError::Config`] on a mismatched address list,
/// [`NetError::Io`] if the listener cannot be bound, and
/// [`NetError::Timeout`] if no output appears within the deadline.
pub async fn run_node<P>(
    protocol: P,
    keychain: Keychain,
    addrs: Vec<SocketAddr>,
    opts: RunOptions,
) -> Result<(P::Output, NetStats), NetError>
where
    P: Protocol + Send + 'static,
{
    let (mut outputs, stats) = run_instances(vec![protocol], keychain, addrs, opts).await?;
    Ok((outputs.pop().expect("exactly one instance"), stats))
}

/// Runs `instances` — independent protocol instances multiplexed by
/// [`InstanceId`] — over one full TCP mesh until every instance produces
/// an output.
///
/// `addrs[i]` is the listen address of node `i`; this node binds
/// `addrs[keychain.node_id()]` and dials every other address (retrying
/// until peers come up). All traffic is HMAC-authenticated with the
/// pairwise keys in `keychain`; frames that fail authentication are
/// counted and dropped. Instance `i` of the vector is addressed as
/// `InstanceId(i)` on the wire; entries for unknown instances inside an
/// authenticated frame are ignored.
///
/// With [`RunOptions::batching`] on (the default), every envelope produced
/// by one `start()`/`on_message()` step is coalesced into at most one
/// batched frame per destination. On shutdown the runner closes the writer
/// queues and waits (bounded by [`RunOptions::drain_timeout`]) for every
/// queued frame to flush, so a slow peer still receives everything that
/// was sent.
///
/// # Errors
///
/// Returns [`NetError::Config`] on a mismatched address list, an empty
/// instance vector, or an instance disagreeing on identity;
/// [`NetError::Io`] if the listener cannot be bound; and
/// [`NetError::Timeout`] if outputs are missing at the deadline.
pub async fn run_instances<P>(
    mut instances: Vec<P>,
    keychain: Keychain,
    addrs: Vec<SocketAddr>,
    opts: RunOptions,
) -> Result<(Vec<P::Output>, NetStats), NetError>
where
    P: Protocol + Send + 'static,
{
    let me = keychain.node_id();
    let n = keychain.n();
    if addrs.len() != n {
        return Err(NetError::Config(format!("{} addresses for {n} nodes", addrs.len())));
    }
    if instances.is_empty() {
        return Err(NetError::Config("no protocol instances".into()));
    }
    if instances.len() > usize::from(u16::MAX) + 1 {
        return Err(NetError::Config("instance ids are u16".into()));
    }
    for p in &instances {
        if p.n() != n || p.node_id() != me {
            return Err(NetError::Config("protocol identity mismatch".into()));
        }
    }

    let counters = Arc::new(Counters::default());
    let keychain = Arc::new(keychain);

    // Inbound: listener -> reader tasks -> this channel (one item per
    // authenticated frame, carrying all its entries).
    let (in_tx, mut in_rx) = mpsc::channel::<InboundFrame>(1024);
    let listener = TcpListener::bind(addrs[me.index()]).await?;
    let accept_task = spawn_acceptor(listener, keychain.clone(), in_tx, counters.clone());

    // Outbound: one authenticated session (lazy-dialing write loop) per
    // peer, with the step-batching policy for this run.
    let sessions = SessionSet::connect(
        keychain.clone(),
        &addrs,
        opts.reconnect_delay,
        counters.clone(),
        opts.batching,
        instances.len() == 1,
        FlushPolicy::PerStep,
    );

    // Drive the protocol instances.
    let deadline = tokio::time::Instant::now() + opts.deadline;
    let start_bursts =
        instances.iter_mut().enumerate().map(|(i, p)| (InstanceId(i as u16), p.start())).collect();
    sessions.enqueue_step(start_bursts);
    while !instances.iter().all(|p| p.output().is_some()) {
        let msg = tokio::select! {
            m = in_rx.recv() => m,
            _ = tokio::time::sleep_until(deadline) => None,
        };
        match msg {
            Some((from, entries)) => {
                sessions.enqueue_step(dispatch(&mut instances, from, entries));
            }
            None => {
                accept_task.abort();
                sessions.abort();
                return Err(NetError::Timeout);
            }
        }
    }
    let outputs = instances.iter().map(|p| p.output().expect("all finished")).collect();

    // Linger: keep answering peers so they can finish too.
    let linger_end = tokio::time::Instant::now() + opts.linger;
    loop {
        let msg = tokio::select! {
            m = in_rx.recv() => m,
            _ = tokio::time::sleep_until(linger_end) => None,
        };
        match msg {
            Some((from, entries)) => {
                sessions.enqueue_step(dispatch(&mut instances, from, entries));
            }
            None => break,
        }
    }

    sessions.shutdown(opts.drain_timeout).await;
    accept_task.abort();

    Ok((outputs, counters.snapshot()))
}

/// Runs an epoch stream — a long-lived [`EpochMux`] pipeline — over one
/// full TCP mesh until every epoch of the stream has resolved.
///
/// This is the deployment shape of a streaming oracle: the mux keeps
/// spawning per-asset agreement instances epoch after epoch, the service
/// routes their traffic as epoch-addressed entries in authenticated v3
/// frames, and the session layer flushes batches per
/// [`RunOptions::flush`] — per step, or adaptively on size triggers plus
/// this loop's flush timer. Entries addressed to epochs the mux has
/// already garbage-collected are dropped and surface in
/// [`NetStats::late_entries`].
///
/// Returns the complete ordered event stream and the transport counters.
///
/// # Errors
///
/// Returns [`NetError::Config`] on a mismatched address list or identity,
/// [`NetError::Io`] if the listener cannot be bound, and
/// [`NetError::Timeout`] if the stream is unresolved at the deadline.
pub async fn run_epoch_service<P>(
    mut mux: EpochMux<P>,
    keychain: Keychain,
    addrs: Vec<SocketAddr>,
    opts: RunOptions,
) -> Result<(Vec<EpochEvent<P::Output>>, EpochStats, NetStats), NetError>
where
    P: Protocol + Send + 'static,
{
    let me = keychain.node_id();
    let n = keychain.n();
    if addrs.len() != n {
        return Err(NetError::Config(format!("{} addresses for {n} nodes", addrs.len())));
    }
    if mux.n() != n || mux.node_id() != me {
        return Err(NetError::Config("epoch mux identity mismatch".into()));
    }
    let flush_delay = match opts.flush {
        FlushPolicy::Adaptive { max_delay, .. } => Some(max_delay),
        FlushPolicy::PerStep => None,
    };

    let counters = Arc::new(Counters::default());
    let keychain = Arc::new(keychain);
    let (in_tx, mut in_rx) = mpsc::channel::<InboundFrame>(1024);
    let listener = TcpListener::bind(addrs[me.index()]).await?;
    let accept_task = spawn_acceptor(listener, keychain.clone(), in_tx, counters.clone());
    let mut sessions = SessionSet::connect(
        keychain.clone(),
        &addrs,
        opts.reconnect_delay,
        counters.clone(),
        opts.batching,
        false,
        opts.flush,
    );

    let deadline = tokio::time::Instant::now() + opts.deadline;
    sessions.enqueue_epoch_step(mux.start());
    sessions.flush_epochs(); // start bursts must not wait for traffic
                             // Drive the stream. The vendored select! is two-armed, so the timer
                             // arm waits on whichever comes first: the overall deadline or the
                             // adaptive flush timer.
    let mut flush_at: Option<tokio::time::Instant> = None;
    while !mux.is_complete() {
        let wake = match flush_at {
            Some(f) if f < deadline => f,
            _ => deadline,
        };
        let msg = tokio::select! {
            m = in_rx.recv() => Some(m),
            _ = tokio::time::sleep_until(wake) => None,
        };
        match msg {
            Some(Some((from, entries))) => {
                for (id, payload) in entries {
                    sessions.enqueue_epoch_step(mux.on_entry(from, id, &payload));
                }
                if let (Some(delay), true, None) =
                    (flush_delay, sessions.has_pending_epochs(), flush_at)
                {
                    flush_at = Some(tokio::time::Instant::now() + delay);
                }
            }
            Some(None) => {
                // Inbound channel closed: the accept loop died, no more
                // traffic can ever arrive — fail now rather than spinning
                // on an always-ready recv until the deadline.
                accept_task.abort();
                sessions.abort();
                return Err(NetError::Timeout);
            }
            None if tokio::time::Instant::now() >= deadline => {
                accept_task.abort();
                sessions.abort();
                return Err(NetError::Timeout);
            }
            None => {
                // Flush timer fired: release every pending batch.
                sessions.flush_epochs();
                flush_at = None;
            }
        }
    }
    sessions.flush_epochs();
    let events = mux.events().to_vec();

    // Linger: keep serving peers still working through the stream's tail.
    let linger_end = tokio::time::Instant::now() + opts.linger;
    loop {
        let msg = tokio::select! {
            m = in_rx.recv() => m,
            _ = tokio::time::sleep_until(linger_end) => None,
        };
        match msg {
            Some((from, entries)) => {
                for (id, payload) in entries {
                    sessions.enqueue_epoch_step(mux.on_entry(from, id, &payload));
                }
                sessions.flush_epochs();
            }
            None => break,
        }
    }

    let epoch_stats = mux.stats();
    counters.late_entries.fetch_add(epoch_stats.late_entries, Ordering::Relaxed);
    sessions.shutdown(opts.drain_timeout).await;
    accept_task.abort();
    Ok((events, epoch_stats, counters.snapshot()))
}

/// Feeds one authenticated frame's entries to their instances, collecting
/// each instance's response burst. One-shot runs are epoch 0 of a stream:
/// entries for other epochs (a peer running the epoch service) and
/// unknown instance ids are ignored.
fn dispatch<P: Protocol>(
    instances: &mut [P],
    from: NodeId,
    entries: Vec<(AgreementId, Bytes)>,
) -> Vec<(InstanceId, Vec<delphi_primitives::Envelope>)> {
    let mut bursts = Vec::new();
    for (id, payload) in entries {
        if id.epoch.0 != 0 {
            continue;
        }
        if let Some(p) = instances.get_mut(id.asset.index()) {
            bursts.push((id.asset, p.on_message(from, &payload)));
        }
    }
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::decode_any_frame;
    use delphi_core::BinAaNode;
    use delphi_primitives::{Dyadic, Envelope};
    use tokio::io::AsyncReadExt;

    async fn free_addrs(n: usize) -> Vec<SocketAddr> {
        // Bind ephemeral listeners to reserve distinct ports, then free
        // them; the runner re-binds moments later.
        let mut addrs = Vec::with_capacity(n);
        let mut holders = Vec::new();
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0").await.unwrap();
            addrs.push(l.local_addr().unwrap());
            holders.push(l);
        }
        drop(holders);
        addrs
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn binaa_cluster_over_loopback() {
        let n = 4;
        let addrs = free_addrs(n).await;
        let inputs = [true, false, true, true];
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = Keychain::derive(b"net-test", id, n);
            let node = BinAaNode::new(id, n, 1, inputs[id.index()], 6);
            let addrs = addrs.clone();
            handles.push(tokio::spawn(async move {
                run_node(node, keychain, addrs, RunOptions::default()).await
            }));
        }
        let mut outputs: Vec<Dyadic> = Vec::new();
        for h in handles {
            let (out, stats) = h.await.unwrap().expect("node finished");
            assert!(stats.sent_frames > 0);
            assert!(stats.recv_frames > 0);
            assert_eq!(stats.dropped_frames, 0);
            // Even a solo protocol benefits: multi-envelope steps share a
            // frame, so entries can only meet or exceed frames.
            assert!(stats.recv_entries >= stats.recv_frames);
            outputs.push(out);
        }
        let tol = Dyadic::new(1, 6);
        for a in &outputs {
            for b in &outputs {
                assert!(a.abs_diff(*b) <= tol, "|{a} - {b}| over TCP");
            }
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn multiplexed_binaa_instances_share_one_mesh() {
        // Two independent BinAA instances per node — one agreeing near 1,
        // one pinned at 0 — multiplexed over a single 4-node mesh.
        let n = 4;
        let addrs = free_addrs(n).await;
        let inputs = [true, false, true, true];
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = Keychain::derive(b"mux-test", id, n);
            let nodes = vec![
                BinAaNode::new(id, n, 1, inputs[id.index()], 6),
                BinAaNode::new(id, n, 1, false, 6),
            ];
            let addrs = addrs.clone();
            handles.push(tokio::spawn(async move {
                run_instances(nodes, keychain, addrs, RunOptions::default()).await
            }));
        }
        let mut per_instance: Vec<Vec<Dyadic>> = vec![Vec::new(); 2];
        for h in handles {
            let (outs, stats) = h.await.unwrap().expect("node finished");
            assert_eq!(outs.len(), 2);
            assert_eq!(stats.dropped_frames, 0);
            assert!(
                stats.sent_frames < stats.sent_entries,
                "batching must coalesce: {} frames for {} entries",
                stats.sent_frames,
                stats.sent_entries
            );
            for (i, o) in outs.into_iter().enumerate() {
                per_instance[i].push(o);
            }
        }
        let tol = Dyadic::new(1, 6);
        for outs in &per_instance {
            for a in outs {
                for b in outs {
                    assert!(a.abs_diff(*b) <= tol, "instance disagreement |{a} - {b}|");
                }
            }
        }
        // The all-zero instance must not be perturbed by instance 0's
        // traffic: correct routing keeps it exactly at 0.
        assert!(per_instance[1].iter().all(|o| *o == Dyadic::ZERO), "{:?}", per_instance[1]);
    }

    /// Broadcasts `rounds` waves, advancing after each full wave of peer
    /// messages; its envelope count is schedule-independent, which makes
    /// frame counts comparable across runs.
    struct Wave {
        id: NodeId,
        n: usize,
        rounds: u8,
        seen: usize,
        sent: u8,
    }

    impl Wave {
        fn new(id: NodeId, n: usize, rounds: u8) -> Wave {
            Wave { id, n, rounds, seen: 0, sent: 0 }
        }
    }

    impl Protocol for Wave {
        type Output = usize;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            self.sent = 1;
            vec![Envelope::to_all(Bytes::from_static(b"wave"))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.seen += 1;
            if self.seen % (self.n - 1) == 0 && self.sent < self.rounds {
                self.sent += 1;
                vec![Envelope::to_all(Bytes::from_static(b"wave"))]
            } else {
                Vec::new()
            }
        }
        fn output(&self) -> Option<usize> {
            (self.seen >= usize::from(self.rounds) * (self.n - 1)).then_some(self.seen)
        }
    }

    async fn run_wave_cluster(seed: &'static [u8], batching: bool) -> NetStats {
        let n = 3;
        let instances_per_node = 4;
        let rounds = 3u8;
        let addrs = free_addrs(n).await;
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = Keychain::derive(seed, id, n);
            let nodes: Vec<Wave> =
                (0..instances_per_node).map(|_| Wave::new(id, n, rounds)).collect();
            let addrs = addrs.clone();
            let opts = RunOptions { batching, ..RunOptions::default() };
            handles.push(tokio::spawn(
                async move { run_instances(nodes, keychain, addrs, opts).await },
            ));
        }
        let mut total = NetStats::default();
        for h in handles {
            let (outs, stats) = h.await.unwrap().expect("node finished");
            assert_eq!(outs.len(), instances_per_node);
            assert_eq!(stats.dropped_frames, 0);
            total.sent_frames += stats.sent_frames;
            total.sent_bytes += stats.sent_bytes;
            total.sent_entries += stats.sent_entries;
            total.mac_ops += stats.mac_ops;
        }
        total
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn batching_reduces_frames_and_macs_at_equal_envelope_count() {
        let batched = run_wave_cluster(b"wave-batched", true).await;
        let unbatched = run_wave_cluster(b"wave-unbatched", false).await;
        // Same protocols, schedule-independent envelope counts: the
        // workloads are identical.
        assert_eq!(batched.sent_entries, unbatched.sent_entries);
        assert!(
            batched.sent_frames < unbatched.sent_frames,
            "batched {} vs unbatched {} frames",
            batched.sent_frames,
            unbatched.sent_frames
        );
        assert!(
            batched.mac_ops < unbatched.mac_ops,
            "batched {} vs unbatched {} HMAC invocations",
            batched.mac_ops,
            unbatched.mac_ops
        );
        assert!(
            batched.sent_bytes < unbatched.sent_bytes,
            "batched {} vs unbatched {} bytes",
            batched.sent_bytes,
            unbatched.sent_bytes
        );
        // Unbatched, every envelope is its own frame.
        assert_eq!(unbatched.sent_frames, unbatched.sent_entries);
    }

    /// Bursts `k` point-to-point frames at start and outputs immediately.
    struct Burst {
        id: NodeId,
        k: usize,
    }

    impl Protocol for Burst {
        type Output = ();
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            2
        }
        fn start(&mut self) -> Vec<Envelope> {
            (0..self.k)
                .map(|i| Envelope::to_one(NodeId(1), Bytes::from(vec![i as u8; 32])))
                .collect()
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            Vec::new()
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn shutdown_drains_queued_frames_to_slow_peer() {
        // Node 0 bursts 50 frames at a peer that is slow to come up: the
        // runner's writer is still in its dial-retry loop when the
        // protocol output arrives. Shutdown must wait for the queue to
        // flush (bounded by drain_timeout) — the old fixed 50 ms sleep +
        // abort dropped every one of these frames.
        let k = 50usize;
        let addrs = free_addrs(2).await;
        let peer_addr = addrs[1];
        let keychain = Keychain::derive(b"drain-test", NodeId(0), 2);
        let opts = RunOptions {
            linger: Duration::ZERO,
            batching: false, // one frame per envelope: all 50 must arrive
            ..RunOptions::default()
        };
        let runner = tokio::spawn(async move {
            run_node(Burst { id: NodeId(0), k }, keychain, addrs, opts).await
        });

        // The peer appears only after the old grace period has long passed.
        tokio::time::sleep(Duration::from_millis(250)).await;
        let listener = TcpListener::bind(peer_addr).await.unwrap();
        let reader = tokio::spawn(async move {
            let kc = Keychain::derive(b"drain-test", NodeId(1), 2);
            let (mut stream, _) = listener.accept().await.unwrap();
            let mut got = 0usize;
            while got < k {
                let mut len_buf = [0u8; 4];
                stream.read_exact(&mut len_buf).await.unwrap();
                let mut body = vec![0u8; u32::from_be_bytes(len_buf) as usize];
                stream.read_exact(&mut body).await.unwrap();
                let (from, entries) = decode_any_frame(&kc, &body).expect("authentic frame");
                assert_eq!(from, NodeId(0));
                got += entries.len();
            }
            got
        });

        let (_, stats) = runner.await.unwrap().expect("run ok");
        assert_eq!(stats.sent_frames, k as u64, "every queued frame flushed before return");
        assert_eq!(stats.sent_entries, k as u64);
        assert_eq!(reader.await.unwrap(), k, "slow peer received every frame");
    }

    /// One-round epoch gossip: each `(epoch, asset)` instance broadcasts
    /// once and outputs after `n - 1` greetings — completion needs every
    /// peer, so the stream exercises real multi-epoch coordination.
    struct EpochGossip {
        id: NodeId,
        n: usize,
        tag: f64,
        heard: usize,
    }

    impl Protocol for EpochGossip {
        type Output = f64;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            vec![Envelope::to_all(Bytes::from_static(b"g"))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.heard += 1;
            Vec::new()
        }
        fn output(&self) -> Option<f64> {
            (self.heard >= self.n - 1).then_some(self.tag)
        }
    }

    fn epoch_mux(
        me: NodeId,
        n: usize,
        cfg: delphi_primitives::EpochConfig,
    ) -> EpochMux<EpochGossip> {
        EpochMux::new(
            cfg,
            me,
            n,
            Box::new(move |e, a| EpochGossip {
                id: me,
                n,
                tag: f64::from(e.0) * 10.0 + f64::from(a.0),
                heard: 0,
            }),
        )
    }

    async fn run_epoch_cluster(seed: &'static [u8], flush: FlushPolicy) -> Vec<NetStats> {
        use delphi_primitives::{EpochConfig, EpochOutcome};
        let n = 3;
        let epochs = 8u32;
        let assets = 2u16;
        let addrs = free_addrs(n).await;
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = Keychain::derive(seed, id, n);
            let mux = epoch_mux(id, n, EpochConfig::new(epochs, assets, 2, 4, 1));
            let addrs = addrs.clone();
            let opts = RunOptions { flush, ..RunOptions::default() };
            handles.push(tokio::spawn(async move {
                run_epoch_service(mux, keychain, addrs, opts).await
            }));
        }
        let mut all_stats = Vec::new();
        for h in handles {
            let (events, epoch_stats, stats) = h.await.unwrap().expect("stream finished");
            assert_eq!(events.len(), epochs as usize);
            for (e, event) in events.iter().enumerate() {
                assert_eq!(event.epoch.index(), e, "ordered stream");
                let EpochOutcome::Agreed(values) = &event.outcome else {
                    panic!("honest stream skipped epoch {e}");
                };
                let expect: Vec<f64> =
                    (0..assets).map(|a| e as f64 * 10.0 + f64::from(a)).collect();
                assert_eq!(values, &expect);
            }
            assert_eq!(epoch_stats.stale_epochs, 0);
            assert!(epoch_stats.peak_resident <= 4, "live window bound over TCP");
            assert_eq!(stats.dropped_frames, 0);
            all_stats.push(stats);
        }
        all_stats
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn epoch_service_streams_over_loopback() {
        let stats = run_epoch_cluster(b"epoch-stream", FlushPolicy::PerStep).await;
        for s in &stats {
            assert!(s.sent_frames > 0 && s.recv_frames > 0);
            assert!(s.recv_entries >= s.recv_frames);
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn adaptive_flush_cuts_frames_per_entry_over_tcp() {
        let per_step = run_epoch_cluster(b"epoch-perstep", FlushPolicy::PerStep).await;
        let adaptive = run_epoch_cluster(
            b"epoch-adaptive",
            FlushPolicy::Adaptive {
                max_entries: 8,
                max_bytes: 4096,
                max_delay: Duration::from_millis(5),
            },
        )
        .await;
        let total = |v: &[NetStats]| {
            v.iter().fold((0u64, 0u64), |(f, e), s| (f + s.sent_frames, e + s.sent_entries))
        };
        let (ps_frames, ps_entries) = total(&per_step);
        let (ad_frames, ad_entries) = total(&adaptive);
        // Independent asynchronous executions: compare the
        // schedule-independent per-entry frame cost.
        assert!(
            ad_frames * ps_entries < ps_frames * ad_entries,
            "adaptive {ad_frames}/{ad_entries} vs per-step {ps_frames}/{ps_entries} \
             frames per entry"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn late_frames_to_evicted_epochs_counted_in_net_stats() {
        use crate::frame::encode_epoch_frame;
        use delphi_primitives::EpochConfig;
        // Node 0 runs a 2-epoch stream with a 1-epoch window; a raw-socket
        // peer replays an epoch-0 entry after epoch 0 was completed and
        // evicted. The late entry must be dropped, counted, and harmless.
        let addrs = free_addrs(2).await;
        let kc0 = Keychain::derive(b"late-test", NodeId(0), 2);
        let kc1 = Keychain::derive(b"late-test", NodeId(1), 2);
        let service_addrs = addrs.clone();
        let service = tokio::spawn(async move {
            let mux = epoch_mux(NodeId(0), 2, EpochConfig::new(2, 1, 1, 1, 1));
            let opts = RunOptions {
                linger: Duration::from_millis(200),
                drain_timeout: Duration::from_millis(500),
                ..RunOptions::default()
            };
            run_epoch_service(mux, kc0, service_addrs, opts).await
        });

        // The peer accepts node 0's outbound connection and discards its
        // frames, so shutdown drains cleanly.
        let sink = TcpListener::bind(addrs[1]).await.unwrap();
        tokio::spawn(async move {
            loop {
                let Ok((mut s, _)) = sink.accept().await else { break };
                tokio::spawn(async move {
                    let mut buf = [0u8; 64];
                    while s.read_exact(&mut buf).await.is_ok() {}
                });
            }
        });

        let mut stream = loop {
            match tokio::net::TcpStream::connect(addrs[0]).await {
                Ok(s) => break s,
                Err(_) => tokio::time::sleep(Duration::from_millis(10)).await,
            }
        };
        use tokio::io::AsyncWriteExt;
        let entry = |epoch: u32| {
            vec![(
                delphi_primitives::AgreementId::new(
                    delphi_primitives::EpochId(epoch),
                    InstanceId(0),
                ),
                Bytes::from_static(b"g"),
            )]
        };
        // Epoch 0 completes and is evicted when epoch 1 spawns.
        stream.write_all(&encode_epoch_frame(&kc1, NodeId(0), &entry(0))).await.unwrap();
        tokio::time::sleep(Duration::from_millis(100)).await;
        // Replay epoch 0: late. Then finish the stream with epoch 1.
        stream.write_all(&encode_epoch_frame(&kc1, NodeId(0), &entry(0))).await.unwrap();
        tokio::time::sleep(Duration::from_millis(100)).await;
        stream.write_all(&encode_epoch_frame(&kc1, NodeId(0), &entry(1))).await.unwrap();

        let (events, epoch_stats, stats) = service.await.unwrap().expect("stream finished");
        assert_eq!(events.len(), 2);
        assert_eq!(epoch_stats.late_entries, 1, "the replayed entry is late");
        assert_eq!(stats.late_entries, 1, "late entries surface in NetStats");
        assert_eq!(stats.dropped_frames, 0, "late != dropped: the frame authenticated");
    }

    #[tokio::test]
    async fn epoch_identity_mismatch_rejected() {
        use delphi_primitives::EpochConfig;
        let keychain = Keychain::derive(b"x", NodeId(0), 4);
        let mux = epoch_mux(NodeId(0), 2, EpochConfig::new(1, 1, 1, 1, 0));
        let err = run_epoch_service(
            mux,
            keychain,
            vec!["127.0.0.1:1".parse().unwrap(); 4],
            RunOptions::default(),
        )
        .await
        .unwrap_err();
        assert!(matches!(err, NetError::Config(_)), "{err}");
    }

    #[tokio::test]
    async fn config_mismatch_rejected() {
        let keychain = Keychain::derive(b"x", NodeId(0), 4);
        let node = BinAaNode::new(NodeId(0), 4, 1, true, 4);
        let err =
            run_node(node, keychain, vec!["127.0.0.1:1".parse().unwrap()], RunOptions::default())
                .await
                .unwrap_err();
        assert!(matches!(err, NetError::Config(_)), "{err}");
    }

    #[tokio::test]
    async fn empty_instance_list_rejected() {
        let keychain = Keychain::derive(b"x", NodeId(0), 1);
        let err = run_instances(
            Vec::<BinAaNode>::new(),
            keychain,
            vec!["127.0.0.1:1".parse().unwrap()],
            RunOptions::default(),
        )
        .await
        .unwrap_err();
        assert!(matches!(err, NetError::Config(_)), "{err}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn timeout_when_peers_missing() {
        let n = 4;
        let addrs = free_addrs(n).await;
        let keychain = Keychain::derive(b"x", NodeId(0), n);
        let node = BinAaNode::new(NodeId(0), n, 1, true, 4);
        let opts = RunOptions { deadline: Duration::from_millis(300), ..RunOptions::default() };
        let err = run_node(node, keychain, addrs, opts).await.unwrap_err();
        assert!(matches!(err, NetError::Timeout), "{err}");
    }

    #[test]
    fn error_display() {
        assert!(NetError::Timeout.to_string().contains("deadline"));
        assert!(NetError::Config("x".into()).to_string().contains("x"));
        let io = NetError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }
}
