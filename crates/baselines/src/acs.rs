//! FIN-style Asynchronous Common Subset, used as a convex-agreement
//! baseline.
//!
//! The composition is BKR-style: every node reliably broadcasts its input
//! value; one binary agreement per broadcaster decides whether that value
//! makes the *core set*; once `n − t` ABAs have decided 1, the remaining
//! ones are seeded with 0. All honest nodes obtain the same core set and
//! output the **median** of its values — which lies inside the honest
//! input range (at most `t` of ≥ `2t + 1` core values are Byzantine), the
//! way FIN [27] is used for convex agreement in the paper's evaluation.
//!
//! Cost profile (what Fig. 6 measures): `n` parallel RBCs at `O(n²)`
//! messages each, `n` parallel ABAs with coin flips — `O(n³)` messages
//! and `O(κn³)` bits overall, signature-free. Latency is dominated by the
//! slowest of the `n` ABAs.

use bytes::Bytes;
use delphi_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use delphi_primitives::{Envelope, NodeId, Protocol};

use crate::aba::{AbaInstance, AbaMsg};
use crate::coin::CoinKeeper;
use crate::rbc::{RbcInstance, RbcMsg};

/// An ACS wire message: RBC traffic tagged by broadcaster, or ABA traffic
/// tagged by instance.
#[derive(Clone, Debug, PartialEq)]
pub enum AcsMsg {
    /// Reliable-broadcast traffic for `broadcaster`'s value.
    Rbc {
        /// Whose broadcast this belongs to.
        broadcaster: NodeId,
        /// The RBC message body.
        inner: RbcMsg,
    },
    /// Binary-agreement traffic (instance = broadcaster index).
    Aba(AbaMsg),
}

impl Encode for AcsMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            AcsMsg::Rbc { broadcaster, inner } => {
                w.put_raw_u8(0);
                w.put(broadcaster);
                w.put(inner);
            }
            AcsMsg::Aba(m) => {
                w.put_raw_u8(1);
                w.put(m);
            }
        }
    }
}

impl Decode for AcsMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_raw_u8()? {
            0 => Ok(AcsMsg::Rbc { broadcaster: r.get()?, inner: r.get()? }),
            1 => Ok(AcsMsg::Aba(r.get()?)),
            d => Err(WireError::InvalidDiscriminant(u64::from(d))),
        }
    }
}

/// A FIN-style ACS node agreeing on the median of a common value subset.
///
/// # Example
///
/// ```
/// use delphi_baselines::AcsNode;
/// use delphi_primitives::{NodeId, Protocol};
/// use delphi_sim::{Simulation, Topology};
///
/// let n = 4;
/// let inputs = [10.0, 11.0, 12.0, 13.0];
/// let nodes = NodeId::all(n)
///     .map(|id| AcsNode::new(id, n, 1, inputs[id.index()], b"seed").boxed())
///     .collect();
/// let report = Simulation::new(Topology::lan(n)).seed(4).run(nodes);
/// let outs: Vec<f64> = report.honest_outputs().copied().collect();
/// // Exact agreement on a value within the honest range.
/// assert!(outs.windows(2).all(|w| w[0] == w[1]));
/// assert!((10.0..=13.0).contains(&outs[0]));
/// ```
#[derive(Debug)]
pub struct AcsNode {
    me: NodeId,
    n: usize,
    t: usize,
    input: f64,
    rbcs: Vec<RbcInstance>,
    abas: Vec<AbaInstance>,
    coins: CoinKeeper,
    values: Vec<Option<f64>>,
    zero_filled: bool,
    decided_count: usize,
    ones_count: usize,
    output: Option<f64>,
}

impl AcsNode {
    /// Creates an ACS node contributing `input`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1` or `me` is out of range.
    pub fn new(me: NodeId, n: usize, t: usize, input: f64, coin_seed: &[u8]) -> AcsNode {
        let rbcs = NodeId::all(n).map(|b| RbcInstance::new(me, n, t, b)).collect();
        let abas = (0..n as u16).map(|i| AbaInstance::new(me, n, t, i)).collect();
        AcsNode {
            me,
            n,
            t,
            input,
            rbcs,
            abas,
            coins: CoinKeeper::new(coin_seed, n, t),
            values: vec![None; n],
            zero_filled: false,
            decided_count: 0,
            ones_count: 0,
            output: None,
        }
    }

    /// Boxes the node for use with heterogeneous drivers.
    pub fn boxed(self) -> Box<dyn Protocol<Output = f64>> {
        Box::new(self)
    }

    /// The agreed core-set values, once decided (sorted).
    pub fn core_values(&self) -> Option<Vec<f64>> {
        self.output?;
        let mut vals: Vec<f64> = (0..self.n)
            .filter(|&j| self.abas[j].decision() == Some(true))
            .filter_map(|j| self.values[j])
            .collect();
        vals.sort_by(f64::total_cmp);
        Some(vals)
    }

    fn decode_value(payload: &Bytes) -> f64 {
        // RBC agreement gives all nodes identical bytes, so this mapping
        // (including the junk fallback) is common across honest nodes.
        match f64::from_bytes(payload) {
            Ok(v) if v.is_finite() => v,
            _ => f64::MAX,
        }
    }

    /// Absorbs a possible fresh RBC delivery for broadcaster `b`
    /// (`was_delivered` is the pre-call state, so this fires exactly
    /// once per broadcaster — keeping per-message work O(1) amortized).
    fn after_rbc(&mut self, b: usize, was_delivered: bool, out: &mut Vec<AcsMsg>) {
        if was_delivered {
            return;
        }
        let Some(payload) = self.rbcs[b].delivered().cloned() else { return };
        self.values[b] = Some(Self::decode_value(&payload));
        if !self.abas[b].started() {
            let had = self.abas[b].decision();
            let msgs = self.abas[b].set_input(true, &mut self.coins);
            out.extend(msgs.into_iter().map(AcsMsg::Aba));
            self.after_decision(b, had, out);
        }
        self.maybe_output();
    }

    /// Updates the decision counters after any interaction with
    /// `abas[i]`; triggers the zero-fill rule and output assembly.
    fn after_decision(&mut self, i: usize, before: Option<bool>, out: &mut Vec<AcsMsg>) {
        let now = self.abas[i].decision();
        if before.is_some() || now.is_none() {
            return;
        }
        self.decided_count += 1;
        if now == Some(true) {
            self.ones_count += 1;
        }
        // n − t ones: zero-fill the remaining ABAs (once).
        if !self.zero_filled && self.ones_count >= self.n - self.t {
            self.zero_filled = true;
            for j in 0..self.n {
                if !self.abas[j].started() {
                    let had = self.abas[j].decision();
                    let msgs = self.abas[j].set_input(false, &mut self.coins);
                    out.extend(msgs.into_iter().map(AcsMsg::Aba));
                    self.after_decision(j, had, out);
                }
            }
        }
        self.maybe_output();
    }

    /// All decided and all core values delivered: output the median.
    /// O(n log n), but reached at most a handful of times per run.
    fn maybe_output(&mut self) {
        if self.output.is_some() || self.decided_count < self.n {
            return;
        }
        let core: Vec<usize> =
            (0..self.n).filter(|&j| self.abas[j].decision() == Some(true)).collect();
        if core.iter().all(|&j| self.values[j].is_some()) {
            let mut vals: Vec<f64> =
                core.iter().map(|&j| self.values[j].expect("checked")).collect();
            vals.sort_by(f64::total_cmp);
            // The core has ≥ n − t ≥ 2t + 1 members, so the lower median
            // is bracketed by honest values.
            self.output = Some(vals[(vals.len() - 1) / 2]);
        }
    }

    fn envelopes(msgs: Vec<AcsMsg>) -> Vec<Envelope> {
        msgs.into_iter().map(|m| Envelope::to_all(m.to_bytes())).collect()
    }
}

impl Protocol for AcsNode {
    type Output = f64;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn start(&mut self) -> Vec<Envelope> {
        let mut payload = delphi_primitives::wire::Writer::new();
        payload.put_f64(self.input);
        let me = self.me.index();
        let was = self.rbcs[me].delivered().is_some();
        let actions = self.rbcs[me].broadcast(payload.into_bytes());
        let mut msgs: Vec<AcsMsg> =
            actions.into_iter().map(|inner| AcsMsg::Rbc { broadcaster: self.me, inner }).collect();
        self.after_rbc(me, was, &mut msgs);
        Self::envelopes(msgs)
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        if from.index() >= self.n {
            return Vec::new();
        }
        let Ok(msg) = AcsMsg::from_bytes(payload) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        match msg {
            AcsMsg::Rbc { broadcaster, inner } => {
                if broadcaster.index() >= self.n {
                    return Vec::new();
                }
                let b = broadcaster.index();
                let was = self.rbcs[b].delivered().is_some();
                let actions = self.rbcs[b].on_message(from, &inner);
                out.extend(actions.into_iter().map(|inner| AcsMsg::Rbc { broadcaster, inner }));
                self.after_rbc(b, was, &mut out);
            }
            AcsMsg::Aba(m) => {
                if usize::from(m.instance) >= self.n {
                    return Vec::new();
                }
                let i = usize::from(m.instance);
                let had = self.abas[i].decision();
                let msgs = self.abas[i].on_message(from, m.round, m.kind, &mut self.coins);
                out.extend(msgs.into_iter().map(AcsMsg::Aba));
                self.after_decision(i, had, &mut out);
            }
        }
        Self::envelopes(out)
    }

    fn output(&self) -> Option<f64> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::wire::roundtrip;
    use delphi_primitives::Round;
    use delphi_sim::adversary::{Crash, GarbageSpammer};
    use delphi_sim::{Simulation, Topology};
    use proptest::prelude::*;

    #[test]
    fn msg_roundtrip() {
        let m =
            AcsMsg::Rbc { broadcaster: NodeId(2), inner: RbcMsg::Echo(Bytes::from_static(b"v")) };
        assert_eq!(roundtrip(&m).unwrap(), m);
        let m = AcsMsg::Aba(AbaMsg {
            instance: 1,
            round: Round(1),
            kind: crate::aba::AbaKind::CoinShare,
        });
        assert_eq!(roundtrip(&m).unwrap(), m);
    }

    fn run_acs(n: usize, t: usize, inputs: &[f64], faulty: &[usize], seed: u64) -> Vec<f64> {
        let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
            .map(|id| {
                if faulty.contains(&id.index()) {
                    Box::new(Crash::new(id, n)) as Box<dyn Protocol<Output = f64>>
                } else {
                    AcsNode::new(id, n, t, inputs[id.index()], b"coin").boxed()
                }
            })
            .collect();
        let faulty_ids: Vec<NodeId> = faulty.iter().map(|&i| NodeId(i as u16)).collect();
        let report = Simulation::new(Topology::lan(n)).seed(seed).faulty(&faulty_ids).run(nodes);
        assert!(report.all_honest_finished(), "ACS stalled: {:?} seed {seed}", report.stop);
        report.honest_outputs().copied().collect()
    }

    #[test]
    fn exact_agreement_within_range() {
        let inputs = [10.0, 20.0, 30.0, 40.0];
        let outs = run_acs(4, 1, &inputs, &[], 1);
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "exact agreement");
        assert!((10.0..=40.0).contains(&outs[0]), "convex validity");
    }

    #[test]
    fn tolerates_crash() {
        let inputs = [5.0, 6.0, 7.0, 0.0];
        let outs = run_acs(4, 1, &inputs, &[3], 2);
        assert_eq!(outs.len(), 3);
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        assert!((5.0..=7.0).contains(&outs[0]));
    }

    #[test]
    fn byzantine_outlier_trimmed_by_median() {
        // A Byzantine node participates honestly with an extreme value;
        // the median keeps the output in the honest range.
        for seed in 0..5 {
            let n = 4;
            let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
                .map(|id| {
                    let v = if id.index() == 3 { 1e12 } else { 100.0 + id.index() as f64 };
                    AcsNode::new(id, n, 1, v, b"coin").boxed()
                })
                .collect();
            let report =
                Simulation::new(Topology::lan(n)).seed(seed).faulty(&[NodeId(3)]).run(nodes);
            assert!(report.all_honest_finished());
            for o in report.honest_outputs() {
                assert!((100.0..=102.0).contains(o), "median dragged to {o} at seed {seed}");
            }
        }
    }

    #[test]
    fn garbage_value_does_not_poison() {
        // A Byzantine broadcaster RBCs undecodable bytes; honest nodes map
        // them to a common sentinel and the median survives.
        struct JunkBroadcaster {
            me: NodeId,
            n: usize,
        }
        impl Protocol for JunkBroadcaster {
            type Output = f64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn n(&self) -> usize {
                self.n
            }
            fn start(&mut self) -> Vec<Envelope> {
                let msg = AcsMsg::Rbc {
                    broadcaster: self.me,
                    inner: RbcMsg::Send(Bytes::from_static(b"zz")),
                };
                vec![Envelope::to_all(msg.to_bytes())]
            }
            fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
                Vec::new()
            }
            fn output(&self) -> Option<f64> {
                None
            }
        }
        let n = 4;
        let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
            .map(|id| {
                if id.index() == 0 {
                    Box::new(JunkBroadcaster { me: id, n }) as Box<dyn Protocol<Output = f64>>
                } else {
                    AcsNode::new(id, n, 1, 50.0 + id.index() as f64, b"coin").boxed()
                }
            })
            .collect();
        let report = Simulation::new(Topology::lan(n)).seed(3).faulty(&[NodeId(0)]).run(nodes);
        assert!(report.all_honest_finished());
        for o in report.honest_outputs() {
            assert!((51.0..=53.0).contains(o));
        }
    }

    #[test]
    fn tolerates_garbage_spammer() {
        let n = 4;
        let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
            .map(|id| {
                if id.index() == 1 {
                    Box::new(GarbageSpammer::new(id, n, 7, 2, 48, 60))
                        as Box<dyn Protocol<Output = f64>>
                } else {
                    AcsNode::new(id, n, 1, 9.0, b"coin").boxed()
                }
            })
            .collect();
        let report = Simulation::new(Topology::lan(n)).seed(8).faulty(&[NodeId(1)]).run(nodes);
        assert!(report.all_honest_finished());
        for o in report.honest_outputs() {
            assert_eq!(*o, 9.0);
        }
    }

    #[test]
    fn seven_nodes_two_crashes() {
        let inputs = [1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 0.0];
        let outs = run_acs(7, 2, &inputs, &[5, 6], 11);
        assert_eq!(outs.len(), 5);
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        assert!((1.0..=5.0).contains(&outs[0]));
    }

    #[test]
    fn core_values_exposed_after_decision() {
        let inputs = [10.0, 20.0, 30.0, 40.0];
        let n = 4;
        let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
            .map(|id| AcsNode::new(id, n, 1, inputs[id.index()], b"coin").boxed())
            .collect();
        let report = Simulation::new(Topology::lan(n)).seed(12).run(nodes);
        assert!(report.all_honest_finished());
        // Rebuild one node and check the accessor contract on a fresh one.
        let fresh = AcsNode::new(NodeId(0), n, 1, 10.0, b"coin");
        assert_eq!(fresh.core_values(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn prop_agreement_and_validity(
            n in 4usize..8,
            vals in proptest::collection::vec(-1000.0..1000.0f64, 8),
            seed in 0u64..u64::MAX,
        ) {
            let t = (n - 1) / 3;
            let outs = run_acs(n, t, &vals[..n], &[], seed);
            prop_assert!(outs.windows(2).all(|w| w[0] == w[1]));
            let lo = vals[..n].iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals[..n].iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(outs[0] >= lo && outs[0] <= hi);
        }
    }
}
