//! The lexer must never panic, whatever bytes it is fed: it runs in CI
//! over every workspace file, including ones mid-edit or malformed.

use delphi_lint::lexer;
use proptest::prelude::*;

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary (usually invalid UTF-8) byte soup, decoded lossily the
    /// way a caller reading an arbitrary file would.
    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let lexed = lexer::lex(&text);
        // Sanity on the invariants rules rely on: line numbers are
        // 1-based and non-decreasing.
        let mut last = 1;
        for t in &lexed.tokens {
            prop_assert!(t.line >= last);
            last = t.line;
        }
    }

    /// Token-shaped soup: unterminated strings, stray quotes, half-open
    /// comments, raw-string hash runs — the constructs with the most
    /// delicate cursor arithmetic.
    #[test]
    fn lexer_never_panics_on_adversarial_fragments(
        picks in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        const FRAGMENTS: [&str; 23] = [
            "\"", "'", "r#\"", "#\"", "\"#", "r##", "//", "/*", "*/",
            "b'", "br\"", "'a", "0x", "0xFFFF", "\\", "\\u{", "\n",
            "lint: allow(", ")", "—", "#[cfg(test)]", "mod tests {", "}",
        ];
        let text: String =
            picks.iter().map(|p| FRAGMENTS[usize::from(*p) % FRAGMENTS.len()]).collect();
        let _ = lexer::lex(&text);
    }
}
