//! The sans-io protocol abstraction.
//!
//! Every protocol in this workspace — Delphi itself, the BinAA building
//! block, the RBC/ABA/ACS baselines, and the DORA attestation layer — is a
//! *state machine* implementing [`Protocol`]: it consumes `(sender, bytes)`
//! events and emits [`Envelope`]s to send. It never touches a socket or a
//! clock. The discrete-event simulator (`delphi-sim`) and the tokio TCP
//! runtime (`delphi-net`) both drive the same state machines, which is what
//! makes simulated byte counts equal to real wire bytes.

use std::fmt;

use bytes::Bytes;

use crate::NodeId;

/// Where an outgoing message should be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Recipient {
    /// Every node except the sender (the paper's `SendAll`).
    ///
    /// Protocols process their own broadcasts locally at send time, so the
    /// transport never loops a message back to its sender.
    All,
    /// A single node.
    One(NodeId),
}

/// An outgoing message: opaque payload plus its destination.
///
/// The payload is already encoded: transports treat it as opaque bytes, and
/// its length is exactly what bandwidth metering charges.
#[derive(Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Destination of the message.
    pub to: Recipient,
    /// Encoded message body.
    pub payload: Bytes,
    /// Receive-shard hint: which of the receiver's dispatch workers this
    /// message's entries belong to (0 when the sender does not shard).
    ///
    /// Senders that flush per receive shard (see
    /// [`EpochProtocol::new_sharded`](crate::EpochProtocol::new_sharded))
    /// tag each batch so drivers with a per-shard CPU model — the
    /// simulator's `recv_shards` — can overlap the processing of batches
    /// bound for different workers, exactly as the TCP runtime's sharded
    /// dispatch does.
    pub shard: u16,
}

impl Envelope {
    /// Creates a broadcast envelope (the paper's `SendAll`).
    pub fn to_all(payload: Bytes) -> Envelope {
        Envelope { to: Recipient::All, payload, shard: 0 }
    }

    /// Creates a point-to-point envelope.
    pub fn to_one(to: NodeId, payload: Bytes) -> Envelope {
        Envelope { to: Recipient::One(to), payload, shard: 0 }
    }

    /// Tags the envelope with a receive-shard hint.
    pub fn with_shard(mut self, shard: u16) -> Envelope {
        self.shard = shard;
        self
    }

    /// Payload length in bytes (what bandwidth accounting charges).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Envelope").field("to", &self.to).field("len", &self.payload.len()).finish()
    }
}

/// A deterministic, sans-io protocol state machine.
///
/// Implementations must be deterministic functions of their construction
/// parameters and the sequence of [`Protocol::on_message`] calls: given the
/// same inputs in the same order they produce the same outputs. All
/// randomness (there is none in Delphi — it is a deterministic protocol)
/// and all timing live in the driver.
///
/// Malformed input (Byzantine senders control their bytes) must be handled
/// by *ignoring* the message, never by panicking; [`Protocol::on_message`]
/// is deliberately infallible.
///
/// # Example
///
/// A trivial echo-once protocol:
///
/// ```
/// use bytes::Bytes;
/// use delphi_primitives::{Envelope, NodeId, Protocol};
///
/// struct Ping { id: NodeId, n: usize, got: usize }
///
/// impl Protocol for Ping {
///     type Output = usize;
///     fn node_id(&self) -> NodeId { self.id }
///     fn n(&self) -> usize { self.n }
///     fn start(&mut self) -> Vec<Envelope> {
///         vec![Envelope::to_all(Bytes::from_static(b"ping"))]
///     }
///     fn on_message(&mut self, _from: NodeId, payload: &[u8]) -> Vec<Envelope> {
///         if payload == b"ping" { self.got += 1; }
///         Vec::new()
///     }
///     fn output(&self) -> Option<usize> {
///         (self.got + 1 >= self.n).then_some(self.got)
///     }
/// }
///
/// let mut p = Ping { id: NodeId(0), n: 2, got: 0 };
/// assert_eq!(p.start().len(), 1);
/// p.on_message(NodeId(1), b"ping");
/// assert_eq!(p.output(), Some(1));
/// ```
pub trait Protocol {
    /// The value this protocol decides / outputs.
    type Output: Clone + fmt::Debug;

    /// This node's identity.
    fn node_id(&self) -> NodeId;

    /// System size `n`.
    fn n(&self) -> usize;

    /// Starts the protocol, returning the initial messages to send.
    ///
    /// Drivers call this exactly once, before any `on_message`.
    fn start(&mut self) -> Vec<Envelope>;

    /// Handles a message from `from`, returning messages to send.
    ///
    /// `from` is authenticated by the transport (pairwise authenticated
    /// channels are part of the system model); `payload` is untrusted.
    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope>;

    /// Handles a time trigger from the driver, returning messages to send.
    ///
    /// Drivers with a clock (the simulator's tick events, the TCP
    /// runtime's flush timer) call this periodically; protocols that
    /// defer work against a time bound — adaptive batch flushing, most
    /// prominently — release it here. The default does nothing, so purely
    /// message-driven protocols are unaffected.
    fn on_tick(&mut self) -> Vec<Envelope> {
        Vec::new()
    }

    /// The decided output, once available.
    ///
    /// A protocol may keep emitting messages after producing an output
    /// (e.g. to help peers terminate); see [`Protocol::is_finished`].
    fn output(&self) -> Option<Self::Output>;

    /// Whether the node is fully done (will never emit another message).
    ///
    /// Defaults to "has an output".
    fn is_finished(&self) -> bool {
        self.output().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_constructors() {
        let e = Envelope::to_all(Bytes::from_static(b"abc"));
        assert_eq!(e.to, Recipient::All);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());

        let e = Envelope::to_one(NodeId(2), Bytes::new());
        assert_eq!(e.to, Recipient::One(NodeId(2)));
        assert!(e.is_empty());
        assert_eq!(e.shard, 0, "unsharded senders tag shard 0");
        assert_eq!(e.with_shard(3).shard, 3);
    }

    #[test]
    fn envelope_debug_shows_len_not_bytes() {
        let e = Envelope::to_all(Bytes::from_static(b"secret"));
        let dbg = format!("{e:?}");
        assert!(dbg.contains("len: 6"), "{dbg}");
        assert!(!dbg.contains("secret"));
    }
}
