//! The full-mesh TCP node runner.
//!
//! [`run_node`] drives one protocol instance; [`run_instances`] drives any
//! number of independent instances (one per oracle asset in a multi-feed
//! deployment) multiplexed over a single mesh. All envelopes produced by
//! one protocol step are coalesced into one batched frame per destination,
//! so framing + MAC cost is amortized over every instance's traffic.

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use delphi_crypto::Keychain;
use delphi_primitives::mux::route_bursts;
use delphi_primitives::{InstanceId, NodeId, Protocol};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

use crate::frame::{
    decode_any_frame, encode_batch_frame, encode_frame, FrameError, MAX_FRAME_BODY, MIN_FRAME_BODY,
};

/// Network runner failure.
#[derive(Debug)]
pub enum NetError {
    /// Listener could not be bound or a socket operation failed fatally.
    Io(std::io::Error),
    /// The address list does not match the keychain's deployment size.
    Config(String),
    /// The protocol did not produce an output within the deadline.
    Timeout,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network io error: {e}"),
            NetError::Config(msg) => write!(f, "invalid network configuration: {msg}"),
            NetError::Timeout => write!(f, "protocol did not finish before the deadline"),
        }
    }
}

impl Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Byte counters observed by the runner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames sent (envelopes may share a frame when batching is on).
    pub sent_frames: u64,
    /// Total bytes written to sockets (frames incl. headers).
    pub sent_bytes: u64,
    /// Envelopes queued for sending, after broadcast expansion.
    pub sent_entries: u64,
    /// Frames received and authenticated.
    pub recv_frames: u64,
    /// Protocol payloads received inside authenticated frames.
    pub recv_entries: u64,
    /// Frames dropped by authentication or framing checks.
    pub dropped_frames: u64,
    /// HMAC tag computations (one per frame encoded, one per tag
    /// verified). Batching lowers this together with `sent_frames`.
    pub mac_ops: u64,
}

/// Tuning knobs for [`run_node`] / [`run_instances`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// How long to keep serving peers after our own output is ready.
    ///
    /// Asynchronous BFT protocols routinely need messages from already-
    /// finished nodes (quorum amplification); killing the process at
    /// output time can stall slower peers.
    pub linger: Duration,
    /// Delay between reconnection attempts while dialing peers.
    pub reconnect_delay: Duration,
    /// Overall deadline for producing an output.
    pub deadline: Duration,
    /// How long shutdown may wait for writer queues to flush to peers.
    pub drain_timeout: Duration,
    /// Whether to coalesce all envelopes of one protocol step per
    /// destination into one batched frame (v2). Off, every envelope pays
    /// its own frame + tag — the v1 cost model, kept for measurement.
    pub batching: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            linger: Duration::from_millis(500),
            reconnect_delay: Duration::from_millis(50),
            deadline: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(5),
            batching: true,
        }
    }
}

#[derive(Default)]
struct Counters {
    sent_frames: AtomicU64,
    sent_bytes: AtomicU64,
    sent_entries: AtomicU64,
    recv_frames: AtomicU64,
    recv_entries: AtomicU64,
    dropped_frames: AtomicU64,
    mac_ops: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            sent_frames: self.sent_frames.load(Ordering::Relaxed),
            sent_bytes: self.sent_bytes.load(Ordering::Relaxed),
            sent_entries: self.sent_entries.load(Ordering::Relaxed),
            recv_frames: self.recv_frames.load(Ordering::Relaxed),
            recv_entries: self.recv_entries.load(Ordering::Relaxed),
            dropped_frames: self.dropped_frames.load(Ordering::Relaxed),
            mac_ops: self.mac_ops.load(Ordering::Relaxed),
        }
    }
}

/// Runs `protocol` over a full TCP mesh until it produces an output.
///
/// Convenience wrapper around [`run_instances`] for the single-instance
/// case; see there for the transport contract.
///
/// # Errors
///
/// Returns [`NetError::Config`] on a mismatched address list,
/// [`NetError::Io`] if the listener cannot be bound, and
/// [`NetError::Timeout`] if no output appears within the deadline.
pub async fn run_node<P>(
    protocol: P,
    keychain: Keychain,
    addrs: Vec<SocketAddr>,
    opts: RunOptions,
) -> Result<(P::Output, NetStats), NetError>
where
    P: Protocol + Send + 'static,
{
    let (mut outputs, stats) = run_instances(vec![protocol], keychain, addrs, opts).await?;
    Ok((outputs.pop().expect("exactly one instance"), stats))
}

/// Runs `instances` — independent protocol instances multiplexed by
/// [`InstanceId`] — over one full TCP mesh until every instance produces
/// an output.
///
/// `addrs[i]` is the listen address of node `i`; this node binds
/// `addrs[keychain.node_id()]` and dials every other address (retrying
/// until peers come up). All traffic is HMAC-authenticated with the
/// pairwise keys in `keychain`; frames that fail authentication are
/// counted and dropped. Instance `i` of the vector is addressed as
/// `InstanceId(i)` on the wire; entries for unknown instances inside an
/// authenticated frame are ignored.
///
/// With [`RunOptions::batching`] on (the default), every envelope produced
/// by one `start()`/`on_message()` step is coalesced into at most one
/// batched frame per destination. On shutdown the runner closes the writer
/// queues and waits (bounded by [`RunOptions::drain_timeout`]) for every
/// queued frame to flush, so a slow peer still receives everything that
/// was sent.
///
/// # Errors
///
/// Returns [`NetError::Config`] on a mismatched address list, an empty
/// instance vector, or an instance disagreeing on identity;
/// [`NetError::Io`] if the listener cannot be bound; and
/// [`NetError::Timeout`] if outputs are missing at the deadline.
pub async fn run_instances<P>(
    mut instances: Vec<P>,
    keychain: Keychain,
    addrs: Vec<SocketAddr>,
    opts: RunOptions,
) -> Result<(Vec<P::Output>, NetStats), NetError>
where
    P: Protocol + Send + 'static,
{
    let me = keychain.node_id();
    let n = keychain.n();
    if addrs.len() != n {
        return Err(NetError::Config(format!("{} addresses for {n} nodes", addrs.len())));
    }
    if instances.is_empty() {
        return Err(NetError::Config("no protocol instances".into()));
    }
    if instances.len() > usize::from(u16::MAX) + 1 {
        return Err(NetError::Config("instance ids are u16".into()));
    }
    for p in &instances {
        if p.n() != n || p.node_id() != me {
            return Err(NetError::Config("protocol identity mismatch".into()));
        }
    }

    let counters = Arc::new(Counters::default());
    let keychain = Arc::new(keychain);

    // Inbound: listener -> reader tasks -> this channel (one item per
    // authenticated frame, carrying all its entries).
    let (in_tx, mut in_rx) = mpsc::channel::<(NodeId, Vec<(InstanceId, Bytes)>)>(1024);
    let listener = TcpListener::bind(addrs[me.index()]).await?;
    let accept_kc = keychain.clone();
    let accept_counters = counters.clone();
    let accept_task = tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else { break };
            let kc = accept_kc.clone();
            let tx = in_tx.clone();
            let counters = accept_counters.clone();
            tokio::spawn(async move {
                let _ = read_loop(stream, kc, tx, counters).await;
            });
        }
    });

    // Outbound: one dialer/writer task per peer.
    let mut peer_tx: Vec<Option<mpsc::UnboundedSender<Bytes>>> = Vec::with_capacity(n);
    let mut writer_tasks = Vec::new();
    for peer in NodeId::all(n) {
        if peer == me {
            peer_tx.push(None);
            continue;
        }
        let (tx, rx) = mpsc::unbounded_channel::<Bytes>();
        peer_tx.push(Some(tx));
        let addr = addrs[peer.index()];
        let delay = opts.reconnect_delay;
        let counters = counters.clone();
        writer_tasks.push(tokio::spawn(async move {
            let _ = write_loop(addr, rx, delay, counters).await;
        }));
    }

    // Queues one protocol step's output: the envelope bursts of every
    // instance that acted, coalesced into one frame per destination.
    // Multi-instance runs speak pure v2 so NetStats byte counts equal the
    // simulator's Mux accounting; solo single-envelope steps keep the
    // (4 bytes cheaper) v1 format.
    let batching = opts.batching;
    let solo = instances.len() == 1;
    let step_counters = counters.clone();
    let enqueue = move |bursts: Vec<(InstanceId, Vec<delphi_primitives::Envelope>)>,
                        peer_tx: &[Option<mpsc::UnboundedSender<Bytes>>],
                        kc: &Keychain| {
        for (dest, entries) in route_bursts(bursts, n, me).into_iter().enumerate() {
            let Some(Some(tx)) = peer_tx.get(dest) else { continue };
            if entries.is_empty() {
                continue;
            }
            step_counters.sent_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
            let dest = NodeId(dest as u16);
            if batching {
                let frame = match &entries[..] {
                    [(_, payload)] if solo => encode_frame(kc, dest, payload),
                    _ => encode_batch_frame(kc, dest, &entries),
                };
                step_counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(frame);
            } else {
                for (instance, payload) in entries {
                    let frame = if solo {
                        encode_frame(kc, dest, &payload)
                    } else {
                        encode_batch_frame(kc, dest, &[(instance, payload)])
                    };
                    step_counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(frame);
                }
            }
        }
    };

    // Drive the protocol instances.
    let deadline = tokio::time::Instant::now() + opts.deadline;
    let start_bursts =
        instances.iter_mut().enumerate().map(|(i, p)| (InstanceId(i as u16), p.start())).collect();
    enqueue(start_bursts, &peer_tx, &keychain);
    while !instances.iter().all(|p| p.output().is_some()) {
        let msg = tokio::select! {
            m = in_rx.recv() => m,
            _ = tokio::time::sleep_until(deadline) => None,
        };
        match msg {
            Some((from, entries)) => {
                enqueue(dispatch(&mut instances, from, entries), &peer_tx, &keychain);
            }
            None => {
                abort_all(accept_task, writer_tasks);
                return Err(NetError::Timeout);
            }
        }
    }
    let outputs = instances.iter().map(|p| p.output().expect("all finished")).collect();

    // Linger: keep answering peers so they can finish too.
    let linger_end = tokio::time::Instant::now() + opts.linger;
    loop {
        let msg = tokio::select! {
            m = in_rx.recv() => m,
            _ = tokio::time::sleep_until(linger_end) => None,
        };
        match msg {
            Some((from, entries)) => {
                enqueue(dispatch(&mut instances, from, entries), &peer_tx, &keychain);
            }
            None => break,
        }
    }

    // Graceful drain: close the writer channels so each write_loop flushes
    // its remaining queue and exits at channel-close, then join with a
    // bounded timeout. A fixed sleep + abort here loses whatever a slow
    // peer had not yet accepted.
    drop(peer_tx);
    let drain_deadline = tokio::time::Instant::now() + opts.drain_timeout;
    for task in writer_tasks {
        let mut task = task;
        tokio::select! {
            _ = &mut task => {},
            _ = tokio::time::sleep_until(drain_deadline) => task.abort(),
        }
    }
    accept_task.abort();

    Ok((outputs, counters.snapshot()))
}

/// Feeds one authenticated frame's entries to their instances, collecting
/// each instance's response burst (unknown instance ids are ignored).
fn dispatch<P: Protocol>(
    instances: &mut [P],
    from: NodeId,
    entries: Vec<(InstanceId, Bytes)>,
) -> Vec<(InstanceId, Vec<delphi_primitives::Envelope>)> {
    let mut bursts = Vec::new();
    for (instance, payload) in entries {
        if let Some(p) = instances.get_mut(instance.index()) {
            bursts.push((instance, p.on_message(from, &payload)));
        }
    }
    bursts
}

fn abort_all(accept: tokio::task::JoinHandle<()>, writers: Vec<tokio::task::JoinHandle<()>>) {
    accept.abort();
    for w in writers {
        w.abort();
    }
}

async fn read_loop(
    mut stream: TcpStream,
    keychain: Arc<Keychain>,
    tx: mpsc::Sender<(NodeId, Vec<(InstanceId, Bytes)>)>,
    counters: Arc<Counters>,
) -> std::io::Result<()> {
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).await.is_err() {
            return Ok(()); // peer closed
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        // Same bounds the decoder enforces: never allocate for a body that
        // could not decode.
        if !(MIN_FRAME_BODY..=MAX_FRAME_BODY).contains(&len) {
            counters.dropped_frames.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // framing is broken beyond recovery: drop link
        }
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).await.is_err() {
            return Ok(());
        }
        match decode_any_frame(&keychain, &body) {
            Ok((from, entries)) => {
                counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                counters.recv_frames.fetch_add(1, Ordering::Relaxed);
                counters.recv_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
                if tx.send((from, entries)).await.is_err() {
                    return Ok(()); // main loop gone
                }
            }
            Err(err) => {
                if matches!(err, FrameError::BadTag | FrameError::Malformed) {
                    // The tag was computed before the frame was rejected.
                    counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                }
                counters.dropped_frames.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

async fn write_loop(
    addr: SocketAddr,
    mut rx: mpsc::UnboundedReceiver<Bytes>,
    reconnect_delay: Duration,
    counters: Arc<Counters>,
) -> std::io::Result<()> {
    let mut pending: Option<Bytes> = None;
    'reconnect: loop {
        // Dial only when there is something to send: a peer that never
        // comes up then cannot stall shutdown while its queue is empty
        // (channel-close is observed here, parked on recv, immediately).
        if pending.is_none() {
            pending = match rx.recv().await {
                Some(f) => Some(f),
                None => return Ok(()), // runner finished, nothing queued
            };
        }
        let mut stream = loop {
            match TcpStream::connect(addr).await {
                Ok(s) => break s,
                Err(_) => tokio::time::sleep(reconnect_delay).await,
            }
        };
        let _ = stream.set_nodelay(true);
        loop {
            let frame = match pending.take() {
                Some(f) => f,
                None => match rx.recv().await {
                    Some(f) => f,
                    None => return Ok(()), // runner finished, queue drained
                },
            };
            if stream.write_all(&frame).await.is_err() {
                pending = Some(frame); // retry on a fresh connection
                continue 'reconnect;
            }
            counters.sent_frames.fetch_add(1, Ordering::Relaxed);
            counters.sent_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_core::BinAaNode;
    use delphi_primitives::{Dyadic, Envelope};

    async fn free_addrs(n: usize) -> Vec<SocketAddr> {
        // Bind ephemeral listeners to reserve distinct ports, then free
        // them; the runner re-binds moments later.
        let mut addrs = Vec::with_capacity(n);
        let mut holders = Vec::new();
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0").await.unwrap();
            addrs.push(l.local_addr().unwrap());
            holders.push(l);
        }
        drop(holders);
        addrs
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn binaa_cluster_over_loopback() {
        let n = 4;
        let addrs = free_addrs(n).await;
        let inputs = [true, false, true, true];
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = Keychain::derive(b"net-test", id, n);
            let node = BinAaNode::new(id, n, 1, inputs[id.index()], 6);
            let addrs = addrs.clone();
            handles.push(tokio::spawn(async move {
                run_node(node, keychain, addrs, RunOptions::default()).await
            }));
        }
        let mut outputs: Vec<Dyadic> = Vec::new();
        for h in handles {
            let (out, stats) = h.await.unwrap().expect("node finished");
            assert!(stats.sent_frames > 0);
            assert!(stats.recv_frames > 0);
            assert_eq!(stats.dropped_frames, 0);
            // Even a solo protocol benefits: multi-envelope steps share a
            // frame, so entries can only meet or exceed frames.
            assert!(stats.recv_entries >= stats.recv_frames);
            outputs.push(out);
        }
        let tol = Dyadic::new(1, 6);
        for a in &outputs {
            for b in &outputs {
                assert!(a.abs_diff(*b) <= tol, "|{a} - {b}| over TCP");
            }
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn multiplexed_binaa_instances_share_one_mesh() {
        // Two independent BinAA instances per node — one agreeing near 1,
        // one pinned at 0 — multiplexed over a single 4-node mesh.
        let n = 4;
        let addrs = free_addrs(n).await;
        let inputs = [true, false, true, true];
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = Keychain::derive(b"mux-test", id, n);
            let nodes = vec![
                BinAaNode::new(id, n, 1, inputs[id.index()], 6),
                BinAaNode::new(id, n, 1, false, 6),
            ];
            let addrs = addrs.clone();
            handles.push(tokio::spawn(async move {
                run_instances(nodes, keychain, addrs, RunOptions::default()).await
            }));
        }
        let mut per_instance: Vec<Vec<Dyadic>> = vec![Vec::new(); 2];
        for h in handles {
            let (outs, stats) = h.await.unwrap().expect("node finished");
            assert_eq!(outs.len(), 2);
            assert_eq!(stats.dropped_frames, 0);
            assert!(
                stats.sent_frames < stats.sent_entries,
                "batching must coalesce: {} frames for {} entries",
                stats.sent_frames,
                stats.sent_entries
            );
            for (i, o) in outs.into_iter().enumerate() {
                per_instance[i].push(o);
            }
        }
        let tol = Dyadic::new(1, 6);
        for outs in &per_instance {
            for a in outs {
                for b in outs {
                    assert!(a.abs_diff(*b) <= tol, "instance disagreement |{a} - {b}|");
                }
            }
        }
        // The all-zero instance must not be perturbed by instance 0's
        // traffic: correct routing keeps it exactly at 0.
        assert!(per_instance[1].iter().all(|o| *o == Dyadic::ZERO), "{:?}", per_instance[1]);
    }

    /// Broadcasts `rounds` waves, advancing after each full wave of peer
    /// messages; its envelope count is schedule-independent, which makes
    /// frame counts comparable across runs.
    struct Wave {
        id: NodeId,
        n: usize,
        rounds: u8,
        seen: usize,
        sent: u8,
    }

    impl Wave {
        fn new(id: NodeId, n: usize, rounds: u8) -> Wave {
            Wave { id, n, rounds, seen: 0, sent: 0 }
        }
    }

    impl Protocol for Wave {
        type Output = usize;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            self.sent = 1;
            vec![Envelope::to_all(Bytes::from_static(b"wave"))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.seen += 1;
            if self.seen % (self.n - 1) == 0 && self.sent < self.rounds {
                self.sent += 1;
                vec![Envelope::to_all(Bytes::from_static(b"wave"))]
            } else {
                Vec::new()
            }
        }
        fn output(&self) -> Option<usize> {
            (self.seen >= usize::from(self.rounds) * (self.n - 1)).then_some(self.seen)
        }
    }

    async fn run_wave_cluster(seed: &'static [u8], batching: bool) -> NetStats {
        let n = 3;
        let instances_per_node = 4;
        let rounds = 3u8;
        let addrs = free_addrs(n).await;
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = Keychain::derive(seed, id, n);
            let nodes: Vec<Wave> =
                (0..instances_per_node).map(|_| Wave::new(id, n, rounds)).collect();
            let addrs = addrs.clone();
            let opts = RunOptions { batching, ..RunOptions::default() };
            handles.push(tokio::spawn(
                async move { run_instances(nodes, keychain, addrs, opts).await },
            ));
        }
        let mut total = NetStats::default();
        for h in handles {
            let (outs, stats) = h.await.unwrap().expect("node finished");
            assert_eq!(outs.len(), instances_per_node);
            assert_eq!(stats.dropped_frames, 0);
            total.sent_frames += stats.sent_frames;
            total.sent_bytes += stats.sent_bytes;
            total.sent_entries += stats.sent_entries;
            total.mac_ops += stats.mac_ops;
        }
        total
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn batching_reduces_frames_and_macs_at_equal_envelope_count() {
        let batched = run_wave_cluster(b"wave-batched", true).await;
        let unbatched = run_wave_cluster(b"wave-unbatched", false).await;
        // Same protocols, schedule-independent envelope counts: the
        // workloads are identical.
        assert_eq!(batched.sent_entries, unbatched.sent_entries);
        assert!(
            batched.sent_frames < unbatched.sent_frames,
            "batched {} vs unbatched {} frames",
            batched.sent_frames,
            unbatched.sent_frames
        );
        assert!(
            batched.mac_ops < unbatched.mac_ops,
            "batched {} vs unbatched {} HMAC invocations",
            batched.mac_ops,
            unbatched.mac_ops
        );
        assert!(
            batched.sent_bytes < unbatched.sent_bytes,
            "batched {} vs unbatched {} bytes",
            batched.sent_bytes,
            unbatched.sent_bytes
        );
        // Unbatched, every envelope is its own frame.
        assert_eq!(unbatched.sent_frames, unbatched.sent_entries);
    }

    /// Bursts `k` point-to-point frames at start and outputs immediately.
    struct Burst {
        id: NodeId,
        k: usize,
    }

    impl Protocol for Burst {
        type Output = ();
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            2
        }
        fn start(&mut self) -> Vec<Envelope> {
            (0..self.k)
                .map(|i| Envelope::to_one(NodeId(1), Bytes::from(vec![i as u8; 32])))
                .collect()
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            Vec::new()
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn shutdown_drains_queued_frames_to_slow_peer() {
        // Node 0 bursts 50 frames at a peer that is slow to come up: the
        // runner's writer is still in its dial-retry loop when the
        // protocol output arrives. Shutdown must wait for the queue to
        // flush (bounded by drain_timeout) — the old fixed 50 ms sleep +
        // abort dropped every one of these frames.
        let k = 50usize;
        let addrs = free_addrs(2).await;
        let peer_addr = addrs[1];
        let keychain = Keychain::derive(b"drain-test", NodeId(0), 2);
        let opts = RunOptions {
            linger: Duration::ZERO,
            batching: false, // one frame per envelope: all 50 must arrive
            ..RunOptions::default()
        };
        let runner = tokio::spawn(async move {
            run_node(Burst { id: NodeId(0), k }, keychain, addrs, opts).await
        });

        // The peer appears only after the old grace period has long passed.
        tokio::time::sleep(Duration::from_millis(250)).await;
        let listener = TcpListener::bind(peer_addr).await.unwrap();
        let reader = tokio::spawn(async move {
            let kc = Keychain::derive(b"drain-test", NodeId(1), 2);
            let (mut stream, _) = listener.accept().await.unwrap();
            let mut got = 0usize;
            while got < k {
                let mut len_buf = [0u8; 4];
                stream.read_exact(&mut len_buf).await.unwrap();
                let mut body = vec![0u8; u32::from_be_bytes(len_buf) as usize];
                stream.read_exact(&mut body).await.unwrap();
                let (from, entries) = decode_any_frame(&kc, &body).expect("authentic frame");
                assert_eq!(from, NodeId(0));
                got += entries.len();
            }
            got
        });

        let (_, stats) = runner.await.unwrap().expect("run ok");
        assert_eq!(stats.sent_frames, k as u64, "every queued frame flushed before return");
        assert_eq!(stats.sent_entries, k as u64);
        assert_eq!(reader.await.unwrap(), k, "slow peer received every frame");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn reader_enforces_decoder_length_bounds() {
        // The reader must accept exactly the body sizes the decoder can
        // decode: an undersized length word kills the link before any
        // later (even valid) frame is surfaced, and an oversized one is
        // rejected without allocating the impossible body.
        let alice = Keychain::derive(b"bounds", NodeId(0), 2);
        let bob = Arc::new(Keychain::derive(b"bounds", NodeId(1), 2));

        for bad_len in [(MIN_FRAME_BODY - 1) as u32, (MAX_FRAME_BODY + 1) as u32] {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let counters = Arc::new(Counters::default());
            let (tx, mut rx) = mpsc::channel(16);
            let mut client = TcpStream::connect(addr).await.unwrap();
            let (server, _) = listener.accept().await.unwrap();
            let reader = tokio::spawn(read_loop(server, bob.clone(), tx, counters.clone()));

            client.write_all(&bad_len.to_be_bytes()).await.unwrap();
            // A perfectly valid frame behind the corrupt length word: the
            // link is already dead, so it must never be delivered.
            let frame = encode_frame(&alice, NodeId(1), b"late");
            client.write_all(&frame).await.unwrap();

            reader.await.unwrap().unwrap();
            assert_eq!(counters.dropped_frames.load(Ordering::Relaxed), 1, "len={bad_len}");
            assert_eq!(counters.recv_frames.load(Ordering::Relaxed), 0, "len={bad_len}");
            let leftover = tokio::select! {
                m = rx.recv() => m,
                _ = tokio::time::sleep(Duration::from_millis(50)) => None,
            };
            assert!(leftover.is_none(), "no frame may survive a broken link (len={bad_len})");
        }
    }

    #[tokio::test]
    async fn config_mismatch_rejected() {
        let keychain = Keychain::derive(b"x", NodeId(0), 4);
        let node = BinAaNode::new(NodeId(0), 4, 1, true, 4);
        let err =
            run_node(node, keychain, vec!["127.0.0.1:1".parse().unwrap()], RunOptions::default())
                .await
                .unwrap_err();
        assert!(matches!(err, NetError::Config(_)), "{err}");
    }

    #[tokio::test]
    async fn empty_instance_list_rejected() {
        let keychain = Keychain::derive(b"x", NodeId(0), 1);
        let err = run_instances(
            Vec::<BinAaNode>::new(),
            keychain,
            vec!["127.0.0.1:1".parse().unwrap()],
            RunOptions::default(),
        )
        .await
        .unwrap_err();
        assert!(matches!(err, NetError::Config(_)), "{err}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn timeout_when_peers_missing() {
        let n = 4;
        let addrs = free_addrs(n).await;
        let keychain = Keychain::derive(b"x", NodeId(0), n);
        let node = BinAaNode::new(NodeId(0), n, 1, true, 4);
        let opts = RunOptions { deadline: Duration::from_millis(300), ..RunOptions::default() };
        let err = run_node(node, keychain, addrs, opts).await.unwrap_err();
        assert!(matches!(err, NetError::Timeout), "{err}");
    }

    #[test]
    fn error_display() {
        assert!(NetError::Timeout.to_string().contains("deadline"));
        assert!(NetError::Config("x".into()).to_string().contains("x"));
        let io = NetError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }
}
