#![forbid(unsafe_code)]
//! Quickstart: seven temperature sensors agree on a reading.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Demonstrates the minimal Delphi workflow: build a configuration,
//! create one node per sensor, drive them with the deterministic
//! simulator, and inspect the ε-close outputs.

use delphi::core::{DelphiConfig, DelphiNode};
use delphi::primitives::NodeId;
use delphi::sim::{Simulation, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Seven sensors measure an ambient temperature near 21.3 °C with a
    // little noise; one sensor is miscalibrated by half a degree.
    let readings = [21.28, 21.35, 21.31, 21.24, 21.40, 21.83, 21.30];
    let n = readings.len();

    // Protocol parameters (shared, static):
    //   value space  [-40, 60] °C
    //   ρ0 = ε       0.1 °C    — finest checkpoint spacing & agreement
    //   Δ            4 °C      — worst-case honest spread (λ-bit bound)
    let cfg = DelphiConfig::builder(n)
        .space(-40.0, 60.0)
        .rho0(0.1)
        .delta_max(4.0)
        .epsilon(0.1)
        .build()?;
    println!(
        "Delphi config: n={n} t={} levels={} rounds/instance={}",
        cfg.t(),
        cfg.num_levels(),
        cfg.r_max()
    );

    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, readings[id.index()]).boxed())
        .collect();

    // A deterministic in-process "network": LAN latencies, seed 42.
    let report = Simulation::new(Topology::lan(n)).seed(42).run(nodes);

    println!("simulated runtime: {:.2} ms", report.completion_ms().ok_or("did not finish")?);
    println!("network traffic:   {}", report.metrics);
    for (id, output) in report.outputs.iter().enumerate() {
        println!(
            "sensor {id}: input {:>6.2} °C -> output {:>8.4} °C",
            readings[id],
            output.ok_or("missing output")?
        );
    }

    let outputs: Vec<f64> = report.honest_outputs().copied().collect();
    let spread = outputs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - outputs.iter().copied().fold(f64::INFINITY, f64::min);
    println!("output spread: {spread:.6} °C (ε = {})", cfg.epsilon());
    assert!(spread <= cfg.epsilon());
    Ok(())
}
