//! ε-rounding and the attestation exchange.

use bytes::Bytes;
use delphi_core::DelphiNode;
use delphi_crypto::signing::{Signature, SigningKey, Verifier};
use delphi_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use delphi_primitives::{Envelope, NodeBitSet, NodeId, Protocol};

/// Rounds `value` to the index of the closest multiple of `epsilon`
/// (ties round half-up, deterministically across nodes).
///
/// # Panics
///
/// Panics if `epsilon` is not strictly positive or `value` is not finite.
///
/// # Example
///
/// ```
/// use delphi_dora::round_to_epsilon;
///
/// assert_eq!(round_to_epsilon(41_237.3, 2.0), 20_619); // 41 238 $
/// assert_eq!(round_to_epsilon(41_237.3, 2.0) as f64 * 2.0, 41_238.0);
/// assert_eq!(round_to_epsilon(-3.1, 0.5), -6);
/// ```
pub fn round_to_epsilon(value: f64, epsilon: f64) -> i64 {
    assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
    assert!(value.is_finite(), "value must be finite");
    (value / epsilon).round() as i64
}

/// A `t + 1`-signature certificate over an ε-multiple.
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// The attested value as an index: `value = k · ε`.
    pub k: i64,
    /// The agreement distance used for rounding.
    pub epsilon: f64,
    /// The aggregated signatures (distinct signers, ≥ t + 1).
    pub signatures: Vec<Signature>,
}

impl Certificate {
    /// The attested real value `k · ε`.
    pub fn value(&self) -> f64 {
        self.k as f64 * self.epsilon
    }

    /// The byte string each signature covers.
    pub fn message_for(k: i64, epsilon: f64) -> Vec<u8> {
        Self::message_with_context(&[], k, epsilon)
    }

    /// The byte string each signature covers when the attestation is
    /// bound to a deployment-defined context (e.g. an `(epoch, asset)`
    /// address, so a feed certificate cannot be replayed for a different
    /// slot). An empty context reproduces [`Certificate::message_for`]
    /// byte for byte; callers must use fixed-width contexts to keep the
    /// encoding prefix-free.
    pub fn message_with_context(context: &[u8], k: i64, epsilon: f64) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"delphi-dora-attest");
        w.put_raw(context);
        w.put_i64(k);
        w.put_f64(epsilon);
        w.into_vec()
    }

    /// Verifies the certificate: at least `t + 1` valid signatures from
    /// distinct in-range signers over this certificate's value.
    pub fn verify(&self, verifier: &Verifier, n: usize, t: usize) -> bool {
        self.verify_with_context(&[], verifier, n, t)
    }

    /// [`Certificate::verify`] over a context-bound message (see
    /// [`Certificate::message_with_context`]).
    pub fn verify_with_context(
        &self,
        context: &[u8],
        verifier: &Verifier,
        n: usize,
        t: usize,
    ) -> bool {
        let msg = Self::message_with_context(context, self.k, self.epsilon);
        let mut signers = NodeBitSet::new(n);
        let mut valid = 0usize;
        for sig in &self.signatures {
            if sig.signer.index() < n && verifier.verify(&msg, sig) && signers.insert(sig.signer) {
                valid += 1;
            }
        }
        valid > t
    }
}

impl Encode for Certificate {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(self.k);
        w.put_f64(self.epsilon);
        w.put_seq(&self.signatures);
    }
}

impl Decode for Certificate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Certificate {
            k: r.get_i64()?,
            epsilon: {
                let e = r.get_f64()?;
                if !(e.is_finite() && e > 0.0) {
                    return Err(WireError::InvalidValue);
                }
                e
            },
            signatures: r.get_seq(1024)?,
        })
    }
}

/// A DORA wire message: inner Delphi traffic or an attestation.
#[derive(Clone, Debug, PartialEq)]
pub enum DoraMsg {
    /// Encapsulated Delphi bundle.
    Inner(Bytes),
    /// Signature over the sender's rounded output.
    Attest {
        /// The attested ε-multiple index.
        k: i64,
        /// The sender's signature over [`Certificate::message_for`].
        sig: Signature,
    },
}

impl Encode for DoraMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            DoraMsg::Inner(b) => {
                w.put_raw_u8(0);
                w.put_bytes(b);
            }
            DoraMsg::Attest { k, sig } => {
                w.put_raw_u8(1);
                w.put_i64(*k);
                w.put(sig);
            }
        }
    }
}

impl Decode for DoraMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_raw_u8()? {
            0 => Ok(DoraMsg::Inner(Bytes::copy_from_slice(r.get_bytes()?))),
            1 => Ok(DoraMsg::Attest { k: r.get_i64()?, sig: r.get()? }),
            d => Err(WireError::InvalidDiscriminant(u64::from(d))),
        }
    }
}

/// Signature-operation counters backing the Table III comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Signatures this node created.
    pub signs: u64,
    /// Signature verifications this node performed.
    pub verifications: u64,
}

/// A DORA oracle node: Delphi plus the attestation round.
///
/// Output is the [`Certificate`] this node assembled (ready for the SMR
/// channel). Honest nodes may assemble certificates for one of at most
/// two adjacent ε-multiples; the SMR channel orders them and the first
/// one wins (§V, Table III "Agreement").
///
/// # Example
///
/// ```
/// use delphi_core::DelphiConfig;
/// use delphi_dora::DoraNode;
/// use delphi_primitives::{NodeId, Protocol};
/// use delphi_sim::{Simulation, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = DelphiConfig::builder(4)
///     .space(0.0, 1000.0).rho0(1.0).delta_max(16.0).epsilon(1.0)
///     .build()?;
/// let inputs = [500.2, 500.4, 499.9, 500.1];
/// let nodes = NodeId::all(4)
///     .map(|id| DoraNode::new(cfg.clone(), id, inputs[id.index()], b"seed").boxed())
///     .collect();
/// let report = Simulation::new(Topology::lan(4)).seed(2).run(nodes);
/// let cert = report.honest_outputs().next().expect("certified");
/// assert!(cert.signatures.len() >= 2); // t + 1 = 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DoraNode {
    inner: DelphiNode,
    key: SigningKey,
    verifier: Verifier,
    epsilon: f64,
    t: usize,
    /// Our rounded output, once the inner protocol finished.
    own_k: Option<i64>,
    /// Collected valid signatures per candidate multiple.
    collected: Vec<(i64, Vec<Signature>, NodeBitSet)>,
    /// Attestations that arrived before our own rounding was known.
    pending: Vec<(i64, Signature)>,
    certificate: Option<Certificate>,
    ops: OpCounts,
}

impl DoraNode {
    /// Creates a DORA node over a Delphi configuration; `seed` is the
    /// deployment's attestation-key seed.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for the configuration.
    pub fn new(cfg: delphi_core::DelphiConfig, me: NodeId, value: f64, seed: &[u8]) -> DoraNode {
        let epsilon = cfg.epsilon();
        let t = cfg.t();
        DoraNode {
            inner: DelphiNode::new(cfg, me, value),
            key: SigningKey::derive(seed, me),
            verifier: Verifier::new(seed),
            epsilon,
            t,
            own_k: None,
            collected: Vec::new(),
            pending: Vec::new(),
            certificate: None,
            ops: OpCounts::default(),
        }
    }

    /// Boxes the node for use with heterogeneous drivers.
    pub fn boxed(self) -> Box<dyn Protocol<Output = Certificate>> {
        Box::new(self)
    }

    /// Signature-operation counters (Table III).
    pub fn op_counts(&self) -> OpCounts {
        self.ops
    }

    fn wrap_inner(envelopes: Vec<Envelope>) -> Vec<Envelope> {
        envelopes
            .into_iter()
            .map(|env| {
                let msg = DoraMsg::Inner(env.payload);
                Envelope { to: env.to, payload: msg.to_bytes(), shard: env.shard }
            })
            .collect()
    }

    /// An attestation is plausible only for the two multiples adjacent to
    /// our own (ε-agreement bounds honest roundings to that window).
    fn plausible_k(&self, k: i64) -> bool {
        match self.own_k {
            Some(own) => (k - own).abs() <= 1,
            None => true, // buffered until we know our own
        }
    }

    fn record_attestation(&mut self, k: i64, sig: Signature) {
        if self.certificate.is_some() || !self.plausible_k(k) {
            return;
        }
        if self.own_k.is_none() {
            if self.pending.len() < 4 * (self.t + 1).max(8) {
                self.pending.push((k, sig));
            }
            return;
        }
        // Verify before counting (the Table III verification column).
        self.ops.verifications += 1;
        let msg = Certificate::message_for(k, self.epsilon);
        if !self.verifier.verify(&msg, &sig) {
            return;
        }
        let n = self.inner.n();
        let entry = match self.collected.iter_mut().position(|(kk, _, _)| *kk == k) {
            Some(i) => &mut self.collected[i],
            None => {
                self.collected.push((k, Vec::new(), NodeBitSet::new(n)));
                self.collected.last_mut().expect("just pushed")
            }
        };
        if entry.2.insert(sig.signer) {
            entry.1.push(sig);
        }
        if entry.1.len() > self.t {
            self.certificate =
                Some(Certificate { k, epsilon: self.epsilon, signatures: entry.1.clone() });
        }
    }

    /// Called when the inner Delphi output appears: round, sign, attest.
    fn attest_own(&mut self) -> Vec<Envelope> {
        let Some(output) = self.inner.output() else {
            return Vec::new();
        };
        if self.own_k.is_some() {
            return Vec::new();
        }
        let k = round_to_epsilon(output, self.epsilon);
        self.own_k = Some(k);
        let msg = Certificate::message_for(k, self.epsilon);
        let sig = self.key.sign(&msg);
        self.ops.signs += 1;
        self.record_attestation(k, sig);
        // Drain buffered attestations now that plausibility is known.
        for (pk, psig) in std::mem::take(&mut self.pending) {
            self.record_attestation(pk, psig);
        }
        vec![Envelope::to_all(DoraMsg::Attest { k, sig }.to_bytes())]
    }
}

impl Protocol for DoraNode {
    type Output = Certificate;

    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn start(&mut self) -> Vec<Envelope> {
        let mut out = Self::wrap_inner(self.inner.start());
        out.extend(self.attest_own());
        out
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        let Ok(msg) = DoraMsg::from_bytes(payload) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        match msg {
            DoraMsg::Inner(inner) => {
                out.extend(Self::wrap_inner(self.inner.on_message(from, &inner)));
                out.extend(self.attest_own());
            }
            DoraMsg::Attest { k, sig } => {
                if sig.signer == from {
                    self.record_attestation(k, sig);
                }
            }
        }
        out
    }

    fn output(&self) -> Option<Certificate> {
        self.certificate.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_core::DelphiConfig;
    use delphi_primitives::wire::roundtrip;
    use delphi_sim::adversary::Crash;
    use delphi_sim::{Simulation, Topology};

    fn cfg(n: usize) -> DelphiConfig {
        DelphiConfig::builder(n)
            .space(0.0, 1000.0)
            .rho0(1.0)
            .delta_max(16.0)
            .epsilon(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn rounding_rules() {
        assert_eq!(round_to_epsilon(10.0, 2.0), 5);
        assert_eq!(round_to_epsilon(10.9, 2.0), 5);
        assert_eq!(round_to_epsilon(11.1, 2.0), 6);
        assert_eq!(round_to_epsilon(-10.9, 2.0), -5);
        assert_eq!(round_to_epsilon(0.25, 0.5), 1); // half-up
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rounding_rejects_bad_epsilon() {
        let _ = round_to_epsilon(1.0, 0.0);
    }

    #[test]
    fn certificate_roundtrip_and_verification() {
        let n = 4;
        let t = 1;
        let msg = Certificate::message_for(42, 1.0);
        let sigs: Vec<Signature> =
            (0..2u16).map(|i| SigningKey::derive(b"seed", NodeId(i)).sign(&msg)).collect();
        let cert = Certificate { k: 42, epsilon: 1.0, signatures: sigs };
        assert_eq!(roundtrip(&cert).unwrap(), cert);
        assert_eq!(cert.value(), 42.0);
        let verifier = Verifier::new(b"seed");
        assert!(cert.verify(&verifier, n, t));
        // Wrong seed fails.
        assert!(!cert.verify(&Verifier::new(b"other"), n, t));
        // Too few signatures fails.
        let thin = Certificate { signatures: cert.signatures[..1].to_vec(), ..cert.clone() };
        assert!(!thin.verify(&verifier, n, t));
    }

    #[test]
    fn duplicate_signers_dont_count_twice() {
        let msg = Certificate::message_for(7, 1.0);
        let sig = SigningKey::derive(b"seed", NodeId(0)).sign(&msg);
        let cert = Certificate { k: 7, epsilon: 1.0, signatures: vec![sig, sig] };
        assert!(!cert.verify(&Verifier::new(b"seed"), 4, 1));
    }

    #[test]
    fn dora_msg_roundtrip() {
        let m = DoraMsg::Inner(Bytes::from_static(b"bundle"));
        assert_eq!(roundtrip(&m).unwrap(), m);
        let sig = SigningKey::derive(b"s", NodeId(1)).sign(b"x");
        let m = DoraMsg::Attest { k: -9, sig };
        assert_eq!(roundtrip(&m).unwrap(), m);
    }

    fn run_dora(n: usize, inputs: &[f64], faulty: &[usize], seed: u64) -> Vec<Certificate> {
        let nodes: Vec<Box<dyn Protocol<Output = Certificate>>> = NodeId::all(n)
            .map(|id| {
                if faulty.contains(&id.index()) {
                    Box::new(Crash::new(id, n)) as Box<dyn Protocol<Output = Certificate>>
                } else {
                    DoraNode::new(cfg(n), id, inputs[id.index()], b"seed").boxed()
                }
            })
            .collect();
        let faulty_ids: Vec<NodeId> = faulty.iter().map(|&i| NodeId(i as u16)).collect();
        let report = Simulation::new(Topology::lan(n)).seed(seed).faulty(&faulty_ids).run(nodes);
        assert!(report.all_honest_finished(), "DORA stalled: {:?}", report.stop);
        report.honest_outputs().cloned().collect()
    }

    #[test]
    fn certificates_form_and_verify() {
        let n = 4;
        let inputs = [500.2, 500.4, 499.9, 500.1];
        let certs = run_dora(n, &inputs, &[], 1);
        let verifier = Verifier::new(b"seed");
        let mut values = std::collections::BTreeSet::new();
        for cert in &certs {
            assert!(cert.verify(&verifier, n, 1));
            assert!(cert.signatures.len() >= 2);
            values.insert(cert.k);
            // Validity: within the honest range ± (δ + ε).
            assert!((498.0..=502.0).contains(&cert.value()), "value {}", cert.value());
        }
        // §V: at most two candidate outputs.
        assert!(values.len() <= 2, "candidates: {values:?}");
        if values.len() == 2 {
            let v: Vec<i64> = values.into_iter().collect();
            assert_eq!(v[1] - v[0], 1, "candidates must be adjacent");
        }
    }

    #[test]
    fn tolerates_crash_fault() {
        let n = 4;
        let inputs = [500.2, 500.4, 499.9, 0.0];
        let certs = run_dora(n, &inputs, &[3], 2);
        assert_eq!(certs.len(), 3);
        let verifier = Verifier::new(b"seed");
        for cert in &certs {
            assert!(cert.verify(&verifier, n, 1));
        }
    }

    #[test]
    fn forged_attestations_rejected() {
        let n = 4;
        let mut node = DoraNode::new(cfg(n), NodeId(0), 500.0, b"seed");
        let _ = node.start();
        // A signature from the wrong key must not count.
        let bad_sig = SigningKey::derive(b"wrong-seed", NodeId(2)).sign(b"whatever");
        let msg = DoraMsg::Attest { k: 500, sig: bad_sig };
        let _ = node.on_message(NodeId(2), &msg.to_bytes());
        assert_eq!(node.output(), None);
        // A signature relayed by a different node (signer != from) is
        // dropped before verification.
        let sig = SigningKey::derive(b"seed", NodeId(3)).sign(b"x");
        let msg = DoraMsg::Attest { k: 500, sig };
        let _ = node.on_message(NodeId(2), &msg.to_bytes());
        assert_eq!(node.output(), None);
    }

    #[test]
    fn op_counts_track_signing_work() {
        let n = 4;
        let inputs = [500.2, 500.4, 499.9, 500.1];
        let nodes: Vec<DoraNode> = NodeId::all(n)
            .map(|id| DoraNode::new(cfg(n), id, inputs[id.index()], b"seed"))
            .collect();
        // Before running: zero ops.
        for node in &nodes {
            assert_eq!(node.op_counts(), OpCounts::default());
        }
    }
}
