//! Multi-process cluster harness: spawn one OS process per node, collect
//! per-node results over stdout JSON, and check convergence.
//!
//! The deployment contract is deliberately small so any node binary can
//! participate (the workspace ships `delphi-node` in `delphi-bench`):
//!
//! - the launcher starts one process per `[[node]]` entry of a
//!   [`ClusterConfig`](crate::config::ClusterConfig), handing every
//!   process the same config file and its own `--id`;
//! - each process runs its protocol node over real sockets and, on
//!   success, prints exactly one [`NodeReport`] JSON line on stdout;
//! - the launcher parses the reports, sums transport stats, and exposes
//!   the output spread so callers can assert ε-agreement.
//!
//! JSON here is the fixed flat schema below, hand-rolled because the
//! environment has no serde:
//!
//! ```json
//! {"id":0,"output":40013.93,"elapsed_ms":412.7,"stats":{"sent_frames":54,
//!  "sent_bytes":21862,"sent_entries":54,"recv_frames":162,
//!  "recv_entries":162,"dropped_frames":0,"mac_ops":216}}
//! ```

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use crate::transport::NetStats;

/// One node process's result, as printed on its stdout.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// The node's id within the cluster.
    pub id: u16,
    /// The protocol output (an agreement value; the mean over the stream
    /// for epoch runs).
    pub output: f64,
    /// Wall-clock milliseconds from process start of the run to output.
    pub elapsed_ms: f64,
    /// Epoch-stream agreements as `(epoch, asset, value)` triples (empty
    /// for one-shot runs).
    pub agreements: Vec<(u32, u16, f64)>,
    /// Transport counters observed by the node.
    pub stats: NetStats,
}

impl NodeReport {
    /// Renders the single-line JSON form the launcher parses.
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let agreements = self
            .agreements
            .iter()
            .map(|(e, a, v)| format!("[{e},{a},{}]", fmt_f64(*v)))
            .collect::<Vec<_>>()
            .join(",");
        let u64_array = |a: &[u64]| a.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
        let shard_entries = u64_array(&s.shard_entries);
        let egress_shard_entries = u64_array(&s.egress_shard_entries);
        let egress_shard_macs = u64_array(&s.egress_shard_macs);
        let dropped_egress_shard = u64_array(&s.dropped_egress_shard);
        format!(
            "{{\"id\":{},\"output\":{},\"elapsed_ms\":{},\"agreements\":[{agreements}],\
             \"stats\":{{\
             \"sent_frames\":{},\"sent_bytes\":{},\"sent_entries\":{},\
             \"recv_frames\":{},\"recv_entries\":{},\"dropped_frames\":{},\
             \"dropped_egress\":{},\"late_entries\":{},\"mac_ops\":{},\
             \"buffer_reuses\":{},\
             \"vector_instances\":{},\"vector_dims\":{},\
             \"shard_entries\":[{shard_entries}],\
             \"egress_shard_entries\":[{egress_shard_entries}],\
             \"egress_shard_macs\":[{egress_shard_macs}],\
             \"dropped_egress_shard\":[{dropped_egress_shard}]}}}}",
            self.id,
            fmt_f64(self.output),
            fmt_f64(self.elapsed_ms),
            s.sent_frames,
            s.sent_bytes,
            s.sent_entries,
            s.recv_frames,
            s.recv_entries,
            s.dropped_frames,
            s.dropped_egress,
            s.late_entries,
            s.mac_ops,
            s.buffer_reuses,
            s.vector_instances,
            s.vector_dims,
        )
    }

    /// Parses the JSON line printed by a node process.
    ///
    /// The parser is schema-bound (flat keys, one nested `stats` object,
    /// one `agreements` triple array, per-shard number arrays) but
    /// order-insensitive and tolerant of whitespace. The `agreements`,
    /// `dropped_egress`, `late_entries`, `buffer_reuses`,
    /// `vector_instances`, `vector_dims`, `shard_entries`,
    /// `egress_shard_entries`, `egress_shard_macs`, and
    /// `dropped_egress_shard` keys are optional so reports from older
    /// node binaries still parse.
    ///
    /// # Errors
    ///
    /// [`ClusterError::BadReport`] when a key is missing or malformed.
    pub fn parse_json(text: &str) -> Result<NodeReport, ClusterError> {
        let text = text.trim();
        let id = json_number(text, "id")?;
        let shard_array =
            |key: &str| -> Result<[u64; crate::transport::MAX_RECV_SHARDS], ClusterError> {
                let mut out = [0u64; crate::transport::MAX_RECV_SHARDS];
                for (slot, v) in out.iter_mut().zip(json_u64_array(text, key)?) {
                    *slot = v;
                }
                Ok(out)
            };
        let shard_entries = shard_array("shard_entries")?;
        let egress_shard_entries = shard_array("egress_shard_entries")?;
        let egress_shard_macs = shard_array("egress_shard_macs")?;
        let dropped_egress_shard = shard_array("dropped_egress_shard")?;
        let stats = NetStats {
            sent_frames: json_number(text, "sent_frames")? as u64,
            sent_bytes: json_number(text, "sent_bytes")? as u64,
            sent_entries: json_number(text, "sent_entries")? as u64,
            recv_frames: json_number(text, "recv_frames")? as u64,
            recv_entries: json_number(text, "recv_entries")? as u64,
            dropped_frames: json_number(text, "dropped_frames")? as u64,
            dropped_egress: json_number(text, "dropped_egress").unwrap_or(0.0) as u64,
            late_entries: json_number(text, "late_entries").unwrap_or(0.0) as u64,
            mac_ops: json_number(text, "mac_ops")? as u64,
            buffer_reuses: json_number(text, "buffer_reuses").unwrap_or(0.0) as u64,
            vector_instances: json_number(text, "vector_instances").unwrap_or(0.0) as u64,
            vector_dims: json_number(text, "vector_dims").unwrap_or(0.0) as u64,
            shard_entries,
            egress_shard_entries,
            egress_shard_macs,
            dropped_egress_shard,
        };
        Ok(NodeReport {
            id: id as u16,
            output: json_number(text, "output")?,
            elapsed_ms: json_number(text, "elapsed_ms")?,
            agreements: json_triples(text, "agreements")?,
            stats,
        })
    }
}

/// Formats an f64 so it parses back exactly (always with a decimal point
/// or exponent, so the value stays a JSON number).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no infinities; clamp to a sentinel the parser rejects
        // loudly rather than emitting invalid JSON.
        "null".to_string()
    }
}

/// Extracts the `[[u32,u16,f64], ...]` triple array following `"key":`,
/// returning empty when the key is absent (one-shot reports).
fn json_triples(text: &str, key: &str) -> Result<Vec<(u32, u16, f64)>, ClusterError> {
    let pat = format!("\"{key}\"");
    let bad = |why: &str| ClusterError::BadReport { key: key.to_string(), why: why.to_string() };
    let Some(at) = text.find(&pat) else { return Ok(Vec::new()) };
    let rest = text[at + pat.len()..].trim_start();
    let rest = rest.strip_prefix(':').ok_or_else(|| bad("no colon"))?.trim_start();
    let rest = rest.strip_prefix('[').ok_or_else(|| bad("no array"))?;
    // Find the outer array's close by bracket depth (numbers contain no
    // brackets, so no string-escaping cases exist in this schema).
    let mut depth = 1usize;
    let mut end = None;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &rest[..end.ok_or_else(|| bad("unterminated array"))?];
    let mut triples = Vec::new();
    for triple in body.split('[').skip(1) {
        let triple = triple.trim_end_matches(|c: char| c.is_whitespace() || matches!(c, ']' | ','));
        let mut fields = triple.split(',');
        let mut next = |what: &str| {
            fields.next().map(str::trim).filter(|f| !f.is_empty()).ok_or_else(|| bad(what))
        };
        let epoch: u32 = next("epoch")?.parse().map_err(|_| bad("epoch not a number"))?;
        let asset: u16 = next("asset")?.parse().map_err(|_| bad("asset not a number"))?;
        let value: f64 = next("value")?.parse().map_err(|_| bad("value not a number"))?;
        triples.push((epoch, asset, value));
    }
    Ok(triples)
}

/// Extracts the `[u64, ...]` array following `"key":`, returning empty
/// when the key is absent (reports from older node binaries).
fn json_u64_array(text: &str, key: &str) -> Result<Vec<u64>, ClusterError> {
    let pat = format!("\"{key}\"");
    let bad = |why: &str| ClusterError::BadReport { key: key.to_string(), why: why.to_string() };
    let Some(at) = text.find(&pat) else { return Ok(Vec::new()) };
    let rest = text[at + pat.len()..].trim_start();
    let rest = rest.strip_prefix(':').ok_or_else(|| bad("no colon"))?.trim_start();
    let rest = rest.strip_prefix('[').ok_or_else(|| bad("no array"))?;
    let end = rest.find(']').ok_or_else(|| bad("unterminated array"))?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split(',').map(|f| f.trim().parse().map_err(|_| bad("not a number"))).collect()
}

/// Extracts the numeric value following `"key":` anywhere in `text`.
fn json_number(text: &str, key: &str) -> Result<f64, ClusterError> {
    let pat = format!("\"{key}\"");
    let bad = |why: &str| ClusterError::BadReport { key: key.to_string(), why: why.to_string() };
    let at = text.find(&pat).ok_or_else(|| bad("missing"))?;
    let rest = text[at + pat.len()..].trim_start();
    let rest = rest.strip_prefix(':').ok_or_else(|| bad("no colon"))?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().map_err(|_| bad("not a number"))
}

/// Everything the launcher observed about one finished cluster run.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// Per-node reports, sorted by node id.
    pub reports: Vec<NodeReport>,
}

impl ClusterOutcome {
    /// Spread (max − min) of the nodes' outputs: the quantity ε-agreement
    /// bounds.
    pub fn spread(&self) -> f64 {
        let outs = self.reports.iter().map(|r| r.output);
        outs.clone().fold(f64::NEG_INFINITY, f64::max) - outs.fold(f64::INFINITY, f64::min)
    }

    /// Whether every pair of outputs is within `epsilon`.
    pub fn converged(&self, epsilon: f64) -> bool {
        !self.reports.is_empty() && self.spread() <= epsilon
    }

    /// Transport counters summed over all nodes.
    pub fn total_stats(&self) -> NetStats {
        let mut total = NetStats::default();
        for r in &self.reports {
            total.sent_frames += r.stats.sent_frames;
            total.sent_bytes += r.stats.sent_bytes;
            total.sent_entries += r.stats.sent_entries;
            total.recv_frames += r.stats.recv_frames;
            total.recv_entries += r.stats.recv_entries;
            total.dropped_frames += r.stats.dropped_frames;
            total.dropped_egress += r.stats.dropped_egress;
            total.late_entries += r.stats.late_entries;
            total.mac_ops += r.stats.mac_ops;
            total.buffer_reuses += r.stats.buffer_reuses;
            total.vector_instances += r.stats.vector_instances;
            // Dims are a mode marker, not additive: take the max so a
            // uniform vector cluster reports its basket size.
            total.vector_dims = total.vector_dims.max(r.stats.vector_dims);
            for lane in 0..r.stats.shard_entries.len() {
                total.shard_entries[lane] += r.stats.shard_entries[lane];
                total.egress_shard_entries[lane] += r.stats.egress_shard_entries[lane];
                total.egress_shard_macs[lane] += r.stats.egress_shard_macs[lane];
                total.dropped_egress_shard[lane] += r.stats.dropped_egress_shard[lane];
            }
        }
        total
    }

    /// The slowest node's elapsed time — the cluster-level runtime.
    pub fn max_elapsed_ms(&self) -> f64 {
        self.reports.iter().map(|r| r.elapsed_ms).fold(0.0, f64::max)
    }

    /// Epoch-stream agreements every node reported (the stream length the
    /// whole cluster sustained): the minimum per-node agreement count.
    pub fn epoch_agreements(&self) -> u64 {
        self.reports.iter().map(|r| r.agreements.len() as u64).min().unwrap_or(0)
    }

    /// Worst cross-node output spread over all `(epoch, asset)` pairs of
    /// an epoch-stream run — the quantity per-epoch ε-agreement bounds.
    /// `NaN` when a pair is missing on some node (a skipped epoch), which
    /// fails any ε check.
    pub fn epoch_spread(&self) -> f64 {
        let mut worst = 0.0f64;
        let Some(first) = self.reports.first() else { return f64::NAN };
        for &(epoch, asset, _) in &first.agreements {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for r in &self.reports {
                match r.agreements.iter().find(|(e, a, _)| (*e, *a) == (epoch, asset)) {
                    Some((_, _, v)) => {
                        lo = lo.min(*v);
                        hi = hi.max(*v);
                    }
                    None => return f64::NAN,
                }
            }
            worst = worst.max(hi - lo);
        }
        worst
    }

    /// Whether the cluster sustained `expected` agreements per node with
    /// every `(epoch, asset)` pair within `epsilon` across nodes.
    pub fn epoch_converged(&self, epsilon: f64, expected: u64) -> bool {
        !self.reports.is_empty()
            && self.reports.iter().all(|r| r.agreements.len() as u64 == expected)
            && self.epoch_spread() <= epsilon
    }
}

/// Cluster-launcher failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// The cluster configuration could not be loaded or is invalid.
    Config {
        /// The underlying configuration error.
        why: String,
    },
    /// A node process could not be spawned.
    Spawn {
        /// The node that failed to start.
        id: u16,
        /// The OS error text.
        why: String,
    },
    /// A node process exited unsuccessfully.
    NodeFailed {
        /// The failing node.
        id: u16,
        /// Its exit status and captured stderr tail.
        why: String,
    },
    /// A node's stdout did not contain a parsable report line.
    BadReport {
        /// The JSON key (or context) that failed.
        key: String,
        /// What went wrong.
        why: String,
    },
    /// The node binary could not be located.
    BinaryNotFound {
        /// Where the launcher looked.
        searched: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config { why } => write!(f, "cluster config: {why}"),
            ClusterError::Spawn { id, why } => write!(f, "spawning node {id} failed: {why}"),
            ClusterError::NodeFailed { id, why } => write!(f, "node {id} failed: {why}"),
            ClusterError::BadReport { key, why } => {
                write!(f, "malformed node report ({key}: {why})")
            }
            ClusterError::BinaryNotFound { searched } => {
                write!(f, "node binary not found (searched {searched})")
            }
        }
    }
}

impl Error for ClusterError {}

/// Builds the launch command for one node: `binary --config <path> --id
/// <id>` plus `extra_args`, stdout piped for the report, stderr inherited
/// so node diagnostics reach the operator.
pub fn node_command(binary: &Path, config: &Path, id: u16, extra_args: &[String]) -> Command {
    let mut cmd = Command::new(binary);
    cmd.arg("--config")
        .arg(config)
        .arg("--id")
        .arg(id.to_string())
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    cmd
}

/// Spawns one process per command (index = node id), waits for all of
/// them, and parses each stdout into a [`NodeReport`].
///
/// All processes are started before any is waited on, so the mesh can
/// form; a node that exits unsuccessfully fails the whole launch (after
/// every child has been reaped — no zombies).
///
/// # Errors
///
/// [`ClusterError::Spawn`] if a process cannot start (already-started
/// siblings are killed), [`ClusterError::NodeFailed`] on a non-zero exit,
/// [`ClusterError::BadReport`] on unparsable stdout.
pub fn launch(commands: Vec<Command>) -> Result<ClusterOutcome, ClusterError> {
    let mut children: Vec<(u16, Child)> = Vec::with_capacity(commands.len());
    for (i, mut cmd) in commands.into_iter().enumerate() {
        let id = i as u16;
        match cmd.spawn() {
            Ok(child) => children.push((id, child)),
            Err(e) => {
                for (_, mut c) in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(ClusterError::Spawn { id, why: e.to_string() });
            }
        }
    }

    let mut reports = Vec::with_capacity(children.len());
    let mut first_failure: Option<ClusterError> = None;
    for (id, child) in children {
        match child.wait_with_output() {
            Ok(out) if out.status.success() => {
                let stdout = String::from_utf8_lossy(&out.stdout);
                // The report is the last non-empty stdout line, so nodes
                // may log progress lines above it.
                let line = stdout.lines().rev().find(|l| !l.trim().is_empty()).unwrap_or("");
                match NodeReport::parse_json(line) {
                    Ok(r) => reports.push(r),
                    Err(e) => {
                        first_failure.get_or_insert(e);
                    }
                }
            }
            Ok(out) => {
                first_failure.get_or_insert(ClusterError::NodeFailed {
                    id,
                    why: format!("exit status {}", out.status),
                });
            }
            Err(e) => {
                first_failure.get_or_insert(ClusterError::NodeFailed { id, why: e.to_string() });
            }
        }
    }
    if let Some(err) = first_failure {
        return Err(err);
    }
    reports.sort_by_key(|r| r.id);
    Ok(ClusterOutcome { reports })
}

/// Locates a sibling binary of the current executable — the standard
/// layout for cargo-built workspaces, where launcher, tests, and node
/// binaries all land under the same `target/<profile>` directory (tests
/// one level deeper, in `deps/`).
///
/// # Errors
///
/// [`ClusterError::BinaryNotFound`] listing the searched paths.
pub fn find_sibling_binary(name: &str) -> Result<PathBuf, ClusterError> {
    let exe = std::env::current_exe()
        .map_err(|e| ClusterError::BinaryNotFound { searched: e.to_string() })?;
    let file = format!("{name}{}", std::env::consts::EXE_SUFFIX);
    let mut searched = Vec::new();
    let mut dir = exe.parent();
    for _ in 0..2 {
        let Some(d) = dir else { break };
        let candidate = d.join(&file);
        if candidate.is_file() {
            return Ok(candidate);
        }
        searched.push(candidate.display().to_string());
        dir = d.parent();
    }
    Err(ClusterError::BinaryNotFound { searched: searched.join(", ") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: u16, output: f64) -> NodeReport {
        NodeReport {
            id,
            output,
            elapsed_ms: 12.5,
            agreements: Vec::new(),
            stats: NetStats {
                sent_frames: 10,
                sent_bytes: 4200,
                sent_entries: 11,
                recv_frames: 30,
                recv_entries: 33,
                dropped_frames: 0,
                dropped_egress: 1,
                late_entries: 2,
                mac_ops: 40,
                buffer_reuses: 5,
                vector_instances: 3,
                vector_dims: 4,
                shard_entries: [20, 13, 0, 0, 0, 0, 0, 0],
                egress_shard_entries: [7, 4, 0, 0, 0, 0, 0, 0],
                egress_shard_macs: [6, 4, 0, 0, 0, 0, 0, 0],
                dropped_egress_shard: [1, 0, 0, 0, 0, 0, 0, 0],
            },
        }
    }

    fn epoch_report(id: u16, agreements: Vec<(u32, u16, f64)>) -> NodeReport {
        let output =
            agreements.iter().map(|(_, _, v)| *v).sum::<f64>() / (agreements.len().max(1) as f64);
        NodeReport { agreements, ..report(id, output) }
    }

    #[test]
    fn report_json_roundtrip() {
        let r = report(3, 40_013.937_5);
        let parsed = NodeReport::parse_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn report_json_roundtrip_whole_output() {
        // A whole-number output must stay a float on the wire.
        let r = report(0, 40000.0);
        assert!(r.to_json().contains("\"output\":40000.0"));
        assert_eq!(NodeReport::parse_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn report_parse_is_order_insensitive_and_tolerates_missing_epoch_keys() {
        // No `agreements` / `late_entries` keys: a pre-epoch report.
        let text = r#" {"output": -2.5e1, "stats": {"mac_ops": 7, "sent_frames": 1,
            "sent_bytes": 2, "sent_entries": 3, "recv_frames": 4,
            "recv_entries": 5, "dropped_frames": 6}, "elapsed_ms": 1.5, "id": 2} "#;
        let r = NodeReport::parse_json(text).unwrap();
        assert_eq!(r.id, 2);
        assert_eq!(r.output, -25.0);
        assert_eq!(r.stats.mac_ops, 7);
        assert_eq!(r.stats.dropped_frames, 6);
        assert_eq!(r.stats.late_entries, 0);
        // Per-shard arrays are optional too: absent keys parse to zeros.
        assert_eq!(r.stats.egress_shard_entries, [0; 8]);
        assert_eq!(r.stats.egress_shard_macs, [0; 8]);
        assert_eq!(r.stats.dropped_egress_shard, [0; 8]);
        // Vector counters are optional the same way: a report from a
        // per-asset (or older) binary parses as scalar mode.
        assert_eq!(r.stats.vector_instances, 0);
        assert_eq!(r.stats.vector_dims, 0);
        assert!(r.agreements.is_empty());
    }

    #[test]
    fn vector_counters_roundtrip_and_stay_optional() {
        // Emitted: both counters survive the JSON round-trip.
        let r = report(5, 123.0);
        let json = r.to_json();
        assert!(json.contains("\"vector_instances\":3"));
        assert!(json.contains("\"vector_dims\":4"));
        assert_eq!(NodeReport::parse_json(&json).unwrap(), r);
        // Absent (a scalar-mode or pre-vector report, like the egress
        // shard keys before it): parses to zeros, nothing else changes.
        let stripped =
            json.replace("\"vector_instances\":3,", "").replace("\"vector_dims\":4,", "");
        let parsed = NodeReport::parse_json(&stripped).unwrap();
        assert_eq!(parsed.stats.vector_instances, 0);
        assert_eq!(parsed.stats.vector_dims, 0);
        assert_eq!(parsed.stats.mac_ops, r.stats.mac_ops);
        assert_eq!(parsed.stats.egress_shard_entries, r.stats.egress_shard_entries);
    }

    #[test]
    fn epoch_report_json_roundtrip() {
        let r = epoch_report(1, vec![(0, 0, 40_013.5), (0, 1, 2_000.25), (1, 0, 40_020.0)]);
        let parsed = NodeReport::parse_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // Empty stream round-trips too (one-shot reports).
        let r = report(0, 1.0);
        assert_eq!(NodeReport::parse_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn epoch_report_parse_tolerates_whitespace_between_triples() {
        // Third-party node binaries may pretty-print; the parser promises
        // whitespace tolerance.
        let text = r#"{"id": 1, "output": 2.0, "elapsed_ms": 3.0,
            "agreements": [ [0, 0, 1.5] , [1, 0, 2.5] ] ,
            "stats": {"sent_frames":1,"sent_bytes":2,"sent_entries":3,
            "recv_frames":4,"recv_entries":5,"dropped_frames":6,
            "late_entries":7,"mac_ops":8}}"#;
        let r = NodeReport::parse_json(text).unwrap();
        assert_eq!(r.agreements, vec![(0, 0, 1.5), (1, 0, 2.5)]);
        // An unterminated array is a loud parse error, not silence.
        let bad = r#"{"id":1,"output":2.0,"elapsed_ms":3.0,"agreements":[[0,0,1.5"#;
        assert!(NodeReport::parse_json(bad).is_err());
    }

    #[test]
    fn epoch_convergence_checks_per_pair_spread_and_completeness() {
        let outcome = ClusterOutcome {
            reports: vec![
                epoch_report(0, vec![(0, 0, 100.0), (1, 0, 200.0)]),
                epoch_report(1, vec![(0, 0, 100.5), (1, 0, 199.0)]),
            ],
        };
        assert_eq!(outcome.epoch_agreements(), 2);
        assert!((outcome.epoch_spread() - 1.0).abs() < 1e-12);
        assert!(outcome.epoch_converged(1.0, 2));
        assert!(!outcome.epoch_converged(0.5, 2), "spread beyond eps");
        assert!(!outcome.epoch_converged(1.0, 3), "missing agreements");

        // A node that skipped an epoch can never pass the check.
        let skewed = ClusterOutcome {
            reports: vec![
                epoch_report(0, vec![(0, 0, 100.0), (1, 0, 200.0)]),
                epoch_report(1, vec![(0, 0, 100.0), (2, 0, 300.0)]),
            ],
        };
        assert!(skewed.epoch_spread().is_nan());
        assert!(!skewed.epoch_converged(f64::INFINITY, 2));
    }

    #[test]
    fn report_parse_rejects_missing_and_malformed() {
        let err = NodeReport::parse_json("{}").unwrap_err();
        assert!(matches!(err, ClusterError::BadReport { .. }), "{err}");
        let err = NodeReport::parse_json("{\"id\":\"x\"}").unwrap_err();
        assert!(matches!(err, ClusterError::BadReport { .. }), "{err}");
    }

    #[test]
    fn outcome_spread_and_totals() {
        let outcome =
            ClusterOutcome { reports: vec![report(0, 10.0), report(1, 11.5), report(2, 10.5)] };
        assert_eq!(outcome.spread(), 1.5);
        assert!(outcome.converged(1.5));
        assert!(!outcome.converged(1.0));
        let total = outcome.total_stats();
        assert_eq!(total.sent_frames, 30);
        assert_eq!(total.mac_ops, 120);
        // Per-shard arrays sum element-wise across nodes.
        assert_eq!(total.shard_entries[..2], [60, 39]);
        assert_eq!(total.egress_shard_entries[..2], [21, 12]);
        assert_eq!(total.egress_shard_macs[..2], [18, 12]);
        assert_eq!(total.dropped_egress_shard[..2], [3, 0]);
        // Vector instances sum; dims are a mode marker (max, not sum).
        assert_eq!(total.vector_instances, 9);
        assert_eq!(total.vector_dims, 4);
        assert_eq!(outcome.max_elapsed_ms(), 12.5);
    }

    #[test]
    fn launch_collects_reports_from_real_processes() {
        // `echo` stands in for a node binary: each "node" prints a
        // report line, exercising spawn/wait/parse without delphi-node.
        let mut commands = Vec::new();
        for id in 0..3u16 {
            let mut cmd = Command::new("echo");
            cmd.arg(report(id, 40_000.0 + f64::from(id)).to_json());
            cmd.stdout(Stdio::piped());
            commands.push(cmd);
        }
        let outcome = launch(commands).unwrap();
        assert_eq!(outcome.reports.len(), 3);
        assert_eq!(outcome.reports[2].id, 2);
        assert_eq!(outcome.spread(), 2.0);
    }

    #[test]
    fn launch_surfaces_node_failure() {
        let mut bad = Command::new("false");
        bad.stdout(Stdio::piped());
        let err = launch(vec![bad]).unwrap_err();
        assert!(matches!(err, ClusterError::NodeFailed { id: 0, .. }), "{err}");
    }

    #[test]
    fn launch_surfaces_bad_report() {
        let mut cmd = Command::new("echo");
        cmd.arg("not json").stdout(Stdio::piped());
        let err = launch(vec![cmd]).unwrap_err();
        assert!(matches!(err, ClusterError::BadReport { .. }), "{err}");
    }

    #[test]
    fn launch_surfaces_spawn_failure() {
        let mut cmd = Command::new("/definitely/not/a/binary");
        cmd.stdout(Stdio::piped());
        let err = launch(vec![cmd]).unwrap_err();
        assert!(matches!(err, ClusterError::Spawn { id: 0, .. }), "{err}");
    }

    #[test]
    fn missing_sibling_binary_reports_searched_paths() {
        let err = find_sibling_binary("definitely-not-a-real-binary-name").unwrap_err();
        let ClusterError::BinaryNotFound { searched } = &err else {
            panic!("unexpected {err}");
        };
        assert!(searched.contains("definitely-not-a-real-binary-name"), "{searched}");
    }

    #[test]
    fn error_display_nonempty() {
        let errors = [
            ClusterError::Config { why: "c".to_string() },
            ClusterError::Spawn { id: 0, why: "x".to_string() },
            ClusterError::NodeFailed { id: 1, why: "y".to_string() },
            ClusterError::BadReport { key: "id".to_string(), why: "missing".to_string() },
            ClusterError::BinaryNotFound { searched: "p".to_string() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
