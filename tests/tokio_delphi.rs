//! Integration: the full Delphi protocol over real TCP sockets.

use std::net::SocketAddr;
use std::time::Duration;

use delphi::core::{DelphiConfig, DelphiNode};
use delphi::crypto::Keychain;
use delphi::net::{run_node, RunOptions};
use delphi::primitives::NodeId;

const SEED: &[u8] = b"tokio-delphi-test";

async fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let mut addrs = Vec::with_capacity(n);
    let mut holders = Vec::new();
    for _ in 0..n {
        let l = tokio::net::TcpListener::bind("127.0.0.1:0").await.expect("bind");
        addrs.push(l.local_addr().expect("addr"));
        holders.push(l);
    }
    addrs
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn delphi_cluster_over_tcp() {
    let n = 4;
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 1000.0)
        .rho0(1.0)
        .delta_max(32.0)
        .epsilon(1.0)
        .build()
        .expect("config");
    let inputs = [500.4, 500.9, 499.8, 500.2];
    let addrs = free_addrs(n).await;

    let mut handles = Vec::new();
    for id in NodeId::all(n) {
        let keychain = Keychain::derive(SEED, id, n);
        let node = DelphiNode::new(cfg.clone(), id, inputs[id.index()]);
        let addrs = addrs.clone();
        let opts = RunOptions { deadline: Duration::from_secs(30), ..RunOptions::default() };
        handles.push(tokio::spawn(async move { run_node(node, keychain, addrs, opts).await }));
    }

    let mut outputs = Vec::new();
    for h in handles {
        let (out, stats) = h.await.expect("join").expect("run");
        assert_eq!(stats.dropped_frames, 0, "no authentication failures among honest nodes");
        outputs.push(out);
    }
    let lo = outputs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = outputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi - lo <= cfg.epsilon() + 1e-9, "ε-agreement over TCP: spread {}", hi - lo);
    assert!(lo >= 498.0 && hi <= 502.0, "validity over TCP: [{lo}, {hi}]");
}
