//! The HTTP server: accept loop, per-connection tasks, route handlers.
//!
//! One task per connection (the vendored tokio runtime is
//! thread-per-task), serving requests back-to-back over keep-alive —
//! a polling reader costs one dial total, not one per poll. Readers
//! only ever touch the [`FeedState`] snapshot cache, the
//! [`SubscriberHub`], and the [`ServiceStats`] probe — never the
//! protocol pipeline — so a reader storm cannot slow agreement down.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use delphi_net::ServiceStats;
use delphi_primitives::InstanceId;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

use crate::feed::FeedState;
use crate::http::{
    json_f64, json_history, json_update, parse_request, response, route, stream_head, HttpError,
    Request, Route, MAX_REQUEST_HEAD,
};
use crate::hub::{RecvError, SubscriberHub};

/// How long a subscribe stream waits for an update before writing a
/// keep-alive blank line (which doubles as the disconnect probe).
const KEEPALIVE: Duration = Duration::from_millis(500);

/// Everything the route handlers read. One instance is shared by every
/// connection task.
pub struct ApiContext {
    /// The snapshot cache the publisher fills.
    pub feed: Arc<FeedState>,
    /// The subscription fan-out registry.
    pub hub: Arc<SubscriberHub>,
    /// Live service counters, when serving a running node (`None` for a
    /// standalone cache).
    pub stats: Option<ServiceStats>,
    /// `(n, t)` verification parameters served alongside attestations so
    /// a light client knows the quorum rule; `None` when the publisher
    /// does not attest.
    pub quorum: Option<(usize, usize)>,
}

/// A bound, running API server. Dropping the handle does NOT stop the
/// accept loop; call [`shutdown`](ApiServer::shutdown).
pub struct ApiServer {
    addr: SocketAddr,
    accept_task: tokio::task::JoinHandle<()>,
}

impl ApiServer {
    /// Binds `addr` (port 0 picks a free port) and starts serving
    /// `ctx` immediately.
    ///
    /// # Errors
    ///
    /// The bind error, verbatim.
    pub async fn bind(addr: SocketAddr, ctx: Arc<ApiContext>) -> std::io::Result<ApiServer> {
        let listener = TcpListener::bind(addr).await?;
        let addr = listener.local_addr()?;
        let accept_task = tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else { break };
                let ctx = ctx.clone();
                tokio::spawn(handle_connection(stream, ctx));
            }
        });
        Ok(ApiServer { addr, accept_task })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections. In-flight subscribe streams end when
    /// the hub closes.
    pub fn shutdown(self) {
        self.accept_task.abort();
    }
}

/// Whether a connection task keeps serving after a request.
enum Served {
    /// Length-delimited response written; await the next request.
    KeepOpen,
    /// The connection is finished (stream ended, or the write failed).
    Done,
}

/// Reads request heads (incrementally, bounded) and serves them
/// back-to-back until the client hangs up or sends garbage.
async fn handle_connection(mut stream: TcpStream, ctx: Arc<ApiContext>) {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        let request = loop {
            match parse_request(&buf) {
                Ok(Some(request)) => break request,
                Ok(None) => {}
                Err(HttpError::TooLarge) => {
                    let _ = stream
                        .write_all(&response(
                            431,
                            "application/json",
                            "{\"error\":\"head too large\"}",
                        ))
                        .await;
                    return;
                }
                Err(HttpError::Malformed(why)) => {
                    let body = format!("{{\"error\":\"malformed request: {why}\"}}");
                    let _ = stream.write_all(&response(400, "application/json", &body)).await;
                    return;
                }
            }
            // Cap the buffer one chunk past the head limit so the parser —
            // not the reader — decides when it is too large.
            if buf.len() > MAX_REQUEST_HEAD + chunk.len() {
                return;
            }
            match stream.read(&mut chunk).await {
                Ok(0) | Err(_) => return,
                Ok(k) => buf.extend_from_slice(&chunk[..k]),
            }
        };
        // Keep any pipelined bytes past this head for the next round.
        buf.drain(..request.head_len);
        match serve_request(&mut stream, &ctx, request).await {
            Served::KeepOpen => {}
            Served::Done => return,
        }
    }
}

async fn serve_request(stream: &mut TcpStream, ctx: &ApiContext, request: Request) -> Served {
    if request.method != "GET" {
        let reply = response(405, "application/json", "{\"error\":\"GET only\"}");
        return match stream.write_all(&reply).await {
            Ok(()) => Served::KeepOpen,
            Err(_) => Served::Done,
        };
    }
    let not_found =
        |why: &str| response(404, "application/json", &format!("{{\"error\":\"{why}\"}}"));
    let reply = match route(&request.target) {
        Route::Health => {
            let body = format!(
                "{{\"status\":\"ok\",\"assets\":{},\"published\":{}}}",
                ctx.feed.assets(),
                ctx.feed.published()
            );
            response(200, "application/json", &body)
        }
        Route::Stats => response(200, "application/json", &stats_body(ctx)),
        Route::Latest(asset) => match ctx.feed.latest(asset) {
            Some(update) => response(200, "application/json", &json_update(&update)),
            None => not_found("no value for asset"),
        },
        Route::History { asset, limit } => {
            if asset.index() < usize::from(ctx.feed.assets()) {
                let updates = ctx.feed.history(asset, limit);
                response(200, "application/json", &json_history(asset, &updates))
            } else {
                not_found("no such asset")
            }
        }
        Route::Attestation(asset) => match attestation_body(ctx, asset) {
            Some(body) => response(200, "application/json", &body),
            None => not_found("no attestation for asset"),
        },
        Route::Subscribe(asset) => {
            serve_subscription(stream, ctx, asset).await;
            return Served::Done;
        }
        Route::NotFound => not_found("no such route"),
    };
    match stream.write_all(&reply).await {
        Ok(()) => Served::KeepOpen,
        Err(_) => Served::Done,
    }
}

/// `/v0/attestation/{asset}`: the latest slot attestation plus the
/// quorum parameters a light client verifies against.
fn attestation_body(ctx: &ApiContext, asset: InstanceId) -> Option<String> {
    let update = ctx.feed.latest(asset)?;
    let att = update.attestation.as_ref()?;
    let (n, t) = ctx.quorum?;
    Some(format!(
        "{{\"epoch\":{},\"asset\":{},\"value\":{},\"n\":{n},\"t\":{t},\
         \"attestation\":\"{}\"}}",
        update.epoch.0,
        update.asset.0,
        json_f64(update.value),
        crate::attest::attestation_to_hex(att)
    ))
}

fn stats_body(ctx: &ApiContext) -> String {
    let mut body = format!(
        "{{\"published\":{},\"subscribers\":{}",
        ctx.feed.published(),
        ctx.hub.subscriber_count()
    );
    if let Some(stats) = &ctx.stats {
        let e = stats.epoch_snapshot();
        let nt = stats.net_snapshot();
        body.push_str(&format!(
            ",\"epoch\":{{\"late_entries\":{},\"early_dropped\":{},\"replayed_entries\":{},\
             \"stale_epochs\":{},\"peak_resident\":{}}}",
            e.late_entries, e.early_dropped, e.replayed_entries, e.stale_epochs, e.peak_resident
        ));
        body.push_str(&format!(
            ",\"net\":{{\"sent_frames\":{},\"sent_bytes\":{},\"recv_frames\":{},\
             \"recv_entries\":{},\"dropped_frames\":{},\"late_entries\":{}}}",
            nt.sent_frames,
            nt.sent_bytes,
            nt.recv_frames,
            nt.recv_entries,
            nt.dropped_frames,
            nt.late_entries
        ));
    }
    body.push('}');
    body
}

/// `/v0/subscribe/{asset}`: an ndjson stream. A lag-kicked reader gets a
/// `{"lagged":true}` marker, is re-synced from the snapshot cache, and
/// is re-subscribed — it always resumes from the newest value.
async fn serve_subscription(stream: &mut TcpStream, ctx: &ApiContext, asset: InstanceId) {
    let Some(mut sub) = ctx.hub.subscribe(asset) else {
        let _ = stream
            .write_all(&response(404, "application/json", "{\"error\":\"no such asset\"}"))
            .await;
        return;
    };
    if stream.write_all(&stream_head()).await.is_err() {
        return;
    }
    loop {
        let line = match sub.recv_timeout(KEEPALIVE) {
            Ok(update) => format!("{}\n", json_update(&update)),
            // Keep-alive doubles as the disconnect probe: a gone client
            // fails the write and ends the task.
            Err(RecvError::Timeout) => "\n".to_string(),
            Err(RecvError::Closed) => {
                let _ = stream.write_all(b"{\"closed\":true}\n").await;
                return;
            }
            Err(RecvError::Lagged) => {
                let Some(fresh) = ctx.hub.subscribe(asset) else { return };
                sub = fresh;
                match ctx.feed.latest(asset) {
                    Some(update) => format!("{{\"lagged\":true}}\n{}\n", json_update(&update)),
                    None => "{\"lagged\":true}\n".to_string(),
                }
            }
        };
        if stream.write_all(line.as_bytes()).await.is_err() {
            return;
        }
    }
}
