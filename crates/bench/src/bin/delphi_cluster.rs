#![forbid(unsafe_code)]
//! Cluster launcher: spawns one `delphi-node` OS process per `[[node]]`
//! entry, collects the per-node JSON reports, and checks convergence —
//! the paper's deployment shape (fig6) on one machine.
//!
//! ```text
//! delphi-cluster --config cluster.toml            # run an existing file
//! delphi-cluster --n 4                            # generate localhost config
//!                [--assets 1] [--unbatched] [--quote-seed 7] [--epsilon 2]
//!                [--node-binary path/to/delphi-node] [--deadline-ms 60000]
//!                [--epochs K] [--depth D] [--window W] [--adaptive]
//!                [--recv-shards S] [--send-shards S] [--vector]
//! ```
//!
//! With `--n`, a localhost config on freshly reserved ports is written to
//! a temp file and cleaned up afterwards. Exits non-zero unless every
//! node finishes and the outputs agree within ε.
//!
//! With `--epochs K`, the cluster runs the streaming oracle: every node
//! agrees on a fresh `--assets`-sized basket `K` consecutive times,
//! pipelining `--depth` epochs under a `--window`-epoch live window
//! (`--adaptive` enables adaptive batch flushing). The launcher then
//! checks *per-epoch* ε-convergence across nodes and that every node
//! completed the whole stream. `--vector` makes each epoch's basket ONE
//! vector-valued agreement instance (one bundle exchange per round for
//! the whole basket); the launcher-side checks are unchanged because
//! reports keep the per-asset agreement shape.

use std::path::PathBuf;
use std::process::ExitCode;

use delphi_bench::cluster::{
    reserve_localhost_config, run_cluster, summarize, summarize_epochs, write_temp_config,
    ClusterRunSpec,
};

struct Args {
    config: Option<PathBuf>,
    n: Option<usize>,
    node_binary: Option<PathBuf>,
    quote_seed: u64,
    assets: usize,
    unbatched: bool,
    deadline_ms: u64,
    epsilon: f64,
    epochs: u32,
    depth: usize,
    window: usize,
    adaptive: bool,
    recv_shards: usize,
    send_shards: usize,
    vector: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        config: None,
        n: None,
        node_binary: None,
        quote_seed: 7,
        assets: 1,
        unbatched: false,
        deadline_ms: 60_000,
        epsilon: 2.0,
        epochs: 0,
        depth: 2,
        window: 6,
        adaptive: false,
        recv_shards: 1,
        send_shards: 1,
        vector: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--config" => out.config = Some(value("--config")?.into()),
            "--n" => out.n = Some(value("--n")?.parse().map_err(|e| format!("--n: {e}"))?),
            "--node-binary" => out.node_binary = Some(value("--node-binary")?.into()),
            "--quote-seed" => {
                out.quote_seed =
                    value("--quote-seed")?.parse().map_err(|e| format!("--quote-seed: {e}"))?;
            }
            "--assets" => {
                out.assets = value("--assets")?.parse().map_err(|e| format!("--assets: {e}"))?;
            }
            "--unbatched" => out.unbatched = true,
            "--deadline-ms" => {
                out.deadline_ms =
                    value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--epsilon" => {
                out.epsilon = value("--epsilon")?.parse().map_err(|e| format!("--epsilon: {e}"))?;
            }
            "--epochs" => {
                out.epochs = value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?;
            }
            "--depth" => {
                out.depth = value("--depth")?.parse().map_err(|e| format!("--depth: {e}"))?;
            }
            "--window" => {
                out.window = value("--window")?.parse().map_err(|e| format!("--window: {e}"))?;
            }
            "--adaptive" => out.adaptive = true,
            "--recv-shards" => {
                out.recv_shards =
                    value("--recv-shards")?.parse().map_err(|e| format!("--recv-shards: {e}"))?;
            }
            "--send-shards" => {
                out.send_shards =
                    value("--send-shards")?.parse().map_err(|e| format!("--send-shards: {e}"))?;
            }
            "--vector" => out.vector = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.config.is_none() && out.n.is_none() {
        return Err("pass --config <file> or --n <nodes>".to_string());
    }
    if out.config.is_some() && out.n.is_some() {
        return Err("--config and --n are mutually exclusive".to_string());
    }
    if out.recv_shards == 0 {
        return Err("--recv-shards must be at least 1".to_string());
    }
    if out.send_shards == 0 {
        return Err("--send-shards must be at least 1".to_string());
    }
    if out.vector && out.epochs == 0 {
        return Err("--vector only applies to a streaming run (--epochs)".to_string());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("delphi-cluster: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Resolve the config: an existing file, or a generated localhost one.
    let (config_path, temp) = match (&args.config, args.n) {
        (Some(path), _) => (path.clone(), None),
        (None, Some(n)) => {
            let cfg = reserve_localhost_config(n);
            match write_temp_config(&cfg, "cluster-cli") {
                Ok(path) => (path.clone(), Some(path)),
                Err(e) => {
                    eprintln!("delphi-cluster: writing temp config: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => unreachable!("validated in parse_args"),
    };

    let mut spec = ClusterRunSpec::new(config_path.clone());
    spec.node_binary = args.node_binary.clone();
    spec.quote_seed = args.quote_seed;
    spec.assets = args.assets;
    spec.unbatched = args.unbatched;
    spec.deadline_ms = args.deadline_ms;
    spec.epsilon = args.epsilon;
    spec.epochs = args.epochs;
    spec.depth = args.depth;
    spec.window = args.window;
    spec.adaptive = args.adaptive;
    spec.recv_shards = args.recv_shards;
    spec.send_shards = args.send_shards;
    spec.vector = args.vector;

    let mode = match (args.epochs, args.unbatched, args.adaptive) {
        (0, true, _) => "one-shot, unbatched: one frame per envelope".to_string(),
        (0, false, _) => "one-shot, batched v2 frames".to_string(),
        (k, _, adaptive) => format!(
            "streaming oracle: {k} epochs x {} assets ({}), depth {}, window {}, {} flushing",
            args.assets,
            if args.vector { "one vector instance per epoch" } else { "per-asset instances" },
            args.depth,
            args.window,
            if adaptive { "adaptive" } else { "per-step" }
        ),
    };
    println!("launching cluster from {} ({mode})", config_path.display());
    let result = run_cluster(&spec);
    if let Some(path) = temp {
        let _ = std::fs::remove_file(path);
    }
    let outcome = match result {
        Ok(o) => o,
        Err(e) => {
            eprintln!("delphi-cluster: {e}");
            return ExitCode::FAILURE;
        }
    };

    for r in &outcome.reports {
        println!(
            "node {:>3}: output {:>12.4}$ in {:>6.0} ms | {} agreements | {} frames / {} bytes \
             sent, {} dropped, {} late",
            r.id,
            r.output,
            r.elapsed_ms,
            r.agreements.len(),
            r.stats.sent_frames,
            r.stats.sent_bytes,
            r.stats.dropped_frames,
            r.stats.late_entries,
        );
    }
    if args.epochs > 0 {
        let expected = u64::from(args.epochs) * args.assets as u64;
        println!("{}", summarize_epochs(&outcome, args.epsilon, expected));
        return if outcome.epoch_converged(args.epsilon, expected) {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "delphi-cluster: epoch stream incomplete or diverged (worst spread {:.6}$, \
                 {} agreements per node, expected {expected})",
                outcome.epoch_spread(),
                outcome.epoch_agreements(),
            );
            ExitCode::FAILURE
        };
    }
    println!("{}", summarize(&outcome, args.epsilon));
    if outcome.converged(args.epsilon) {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "delphi-cluster: outputs spread {:.6}$ exceeds epsilon {}$",
            outcome.spread(),
            args.epsilon
        );
        ExitCode::FAILURE
    }
}
