//! Umbrella crate re-exporting the full Delphi reproduction workspace.
pub use delphi_baselines as baselines;
pub use delphi_core as core;
pub use delphi_crypto as crypto;
pub use delphi_dora as dora;
pub use delphi_net as net;
pub use delphi_primitives as primitives;
pub use delphi_sim as sim;
pub use delphi_stats as stats;
pub use delphi_workloads as workloads;
