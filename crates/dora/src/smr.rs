//! A simulated SMR (blockchain) channel.
//!
//! The paper models the blockchain as an SMR channel that totally orders
//! submissions and lets smart contracts consume the *first* valid
//! certificate per oracle round (§V, Table III). This mirror keeps just
//! the properties the DORA analysis needs: total order, validity
//! filtering, and first-wins consumption.

use delphi_crypto::signing::Verifier;

use crate::attest::Certificate;

/// A simulated total-order ledger for oracle certificates.
///
/// # Example
///
/// ```
/// use delphi_crypto::signing::{SigningKey, Verifier};
/// use delphi_dora::{Certificate, SmrChannel};
/// use delphi_primitives::NodeId;
///
/// let mut smr = SmrChannel::new(b"seed", 4, 1);
/// let msg = Certificate::message_for(21, 2.0);
/// let sigs = (0..2u16).map(|i| SigningKey::derive(b"seed", NodeId(i)).sign(&msg)).collect();
/// let cert = Certificate { k: 21, epsilon: 2.0, signatures: sigs };
/// assert!(smr.submit(cert));
/// assert_eq!(smr.consumed().unwrap().value(), 42.0);
/// ```
#[derive(Debug)]
pub struct SmrChannel {
    verifier: Verifier,
    n: usize,
    t: usize,
    ledger: Vec<Certificate>,
    rejected: u64,
}

impl SmrChannel {
    /// Creates a channel that verifies against the deployment `seed`.
    pub fn new(seed: &[u8], n: usize, t: usize) -> SmrChannel {
        SmrChannel { verifier: Verifier::new(seed), n, t, ledger: Vec::new(), rejected: 0 }
    }

    /// Submits a certificate; returns whether it was accepted (valid and
    /// appended in order).
    pub fn submit(&mut self, cert: Certificate) -> bool {
        if cert.verify(&self.verifier, self.n, self.t) {
            self.ledger.push(cert);
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// All accepted certificates in submission (total) order.
    pub fn ledger(&self) -> &[Certificate] {
        &self.ledger
    }

    /// Number of rejected submissions.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The certificate a consumer contract would use: the first accepted
    /// one (§V "The external blockchain orders them and consumes the
    /// first output").
    pub fn consumed(&self) -> Option<&Certificate> {
        self.ledger.first()
    }

    /// Distinct attested values on the ledger; DORA over Delphi
    /// guarantees at most two, and they are adjacent ε-multiples.
    pub fn distinct_values(&self) -> Vec<i64> {
        let mut ks: Vec<i64> = self.ledger.iter().map(|c| c.k).collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_crypto::signing::SigningKey;
    use delphi_primitives::NodeId;

    fn cert(seed: &[u8], k: i64, signers: &[u16]) -> Certificate {
        let msg = Certificate::message_for(k, 1.0);
        let signatures =
            signers.iter().map(|&i| SigningKey::derive(seed, NodeId(i)).sign(&msg)).collect();
        Certificate { k, epsilon: 1.0, signatures }
    }

    #[test]
    fn accepts_valid_rejects_invalid() {
        let mut smr = SmrChannel::new(b"seed", 4, 1);
        assert!(smr.submit(cert(b"seed", 10, &[0, 1])));
        assert!(!smr.submit(cert(b"seed", 11, &[0]))); // too few signers
        assert!(!smr.submit(cert(b"bad-seed", 12, &[0, 1]))); // bad sigs
        assert_eq!(smr.ledger().len(), 1);
        assert_eq!(smr.rejected(), 2);
    }

    #[test]
    fn first_wins_consumption() {
        let mut smr = SmrChannel::new(b"seed", 4, 1);
        assert!(smr.submit(cert(b"seed", 10, &[0, 1])));
        assert!(smr.submit(cert(b"seed", 11, &[2, 3])));
        assert_eq!(smr.consumed().unwrap().k, 10);
        assert_eq!(smr.distinct_values(), vec![10, 11]);
    }

    #[test]
    fn empty_channel() {
        let smr = SmrChannel::new(b"seed", 4, 1);
        assert!(smr.consumed().is_none());
        assert!(smr.distinct_values().is_empty());
    }
}
