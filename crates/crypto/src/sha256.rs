//! FIPS 180-4 SHA-256, implemented from the specification.
//!
//! Used for the HMAC authenticated channels the paper's system model
//! assumes, for the hash-based common-coin simulation in the baselines, and
//! for DORA attestations. Validated against the NIST short/long message
//! test vectors in this module's tests.

/// Length of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use delphi_crypto::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha256(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partially filled block awaiting compression.
    block: [u8; 64],
    block_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Sha256 {
        Sha256 { state: H0, block: [0; 64], block_len: 0, total_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partial block first.
        if self.block_len > 0 {
            let take = input.len().min(64 - self.block_len);
            self.block[self.block_len..self.block_len + take].copy_from_slice(&input[..take]);
            self.block_len += take;
            input = &input[take..];
            if self.block_len == 64 {
                let block = self.block;
                self.compress(&block);
                self.block_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            input = rest;
        }
        // Stash the tail.
        if !input.is_empty() {
            self.block[..input.len()].copy_from_slice(input);
            self.block_len = input.len();
        }
    }

    /// Completes the hash, consuming the hasher.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length — written
        // straight into the block buffer (a byte-at-a-time update() loop
        // here is measurable on the HMAC/key-derivation hot paths).
        self.block[self.block_len] = 0x80;
        if self.block_len >= 56 {
            // No room for the length: the padding spills into an extra
            // all-zero block.
            self.block[self.block_len + 1..].fill(0);
            let block = self.block;
            self.compress(&block);
            self.block = [0; 64];
        } else {
            self.block[self.block_len + 1..56].fill(0);
        }
        self.block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.block;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// # Example
///
/// ```
/// use delphi_crypto::sha256;
/// // NIST vector: SHA-256("") starts with e3b0c442.
/// assert_eq!(sha256(b"")[..4], [0xe3, 0xb0, 0xc4, 0x42]);
/// ```
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_empty_message() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block_message() {
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_448_bit_boundary_padding() {
        // 56 bytes: padding spills into a second block.
        let msg = [b'a'; 56];
        let mut h = Sha256::new();
        h.update(&msg);
        let one_shot = sha256(&msg);
        assert_eq!(h.finalize(), one_shot);
        assert_eq!(
            hex(&one_shot),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot_at_all_split_points() {
        let msg: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let expect = sha256(&msg);
        for split in 0..=msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn multi_chunk_updates_cross_block_boundaries() {
        let msg = vec![0xabu8; 300];
        let expect = sha256(&msg);
        let mut h = Sha256::new();
        for chunk in msg.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), expect);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"delphi"), sha256(b"delphj"));
        assert_ne!(sha256(b""), sha256(b"\0"));
    }

    #[test]
    fn clone_preserves_state() {
        let mut h = Sha256::new();
        h.update(b"abc");
        let h2 = h.clone();
        assert_eq!(h.finalize(), h2.finalize());
    }
}
