#![forbid(unsafe_code)]
//! Regenerates **Fig. 5**: histogram of detection IoU with a Gamma fit
//! (thin-tailed, better than Fréchet), plus the §VI-B parameter
//! derivation (`Δ = 50 m`, `ρ0 = ε = 0.5 m`).
//!
//! `cargo run --release -p delphi-bench --bin fig5_iou`

use delphi_bench::TextTable;
use delphi_stats::describe::Summary;
use delphi_stats::dist::ContinuousDist;
use delphi_stats::{fit, ks, Histogram};
use delphi_workloads::{DroneScenario, DroneScenarioConfig};

fn main() {
    // The paper's test set: 80 000 detections.
    let detections = 80_000;
    let mut scenario = DroneScenario::new(DroneScenarioConfig::default(), (0.0, 0.0), 0xF165);
    let ious = scenario.sample_ious(detections);
    let summary = Summary::of(&ious);

    println!(
        "== Fig. 5: IoU histogram for drone-based object detection ({detections} detections) ==\n"
    );
    let mut hist = Histogram::new(0.4, 1.0, 24).expect("histogram range");
    hist.extend(&ious);
    println!("{}", hist.to_ascii(44));
    println!("(below 0.4: {} detections)\n", hist.underflow());

    let gamma = fit::gamma_mle(&ious).expect("Gamma fit");
    let frechet = fit::frechet_log_moments(&ious).expect("Fréchet fit");
    let d_gamma = ks::ks_statistic(&ious, |x| gamma.cdf(x));
    let d_frechet = ks::ks_statistic(&ious, |x| frechet.cdf(x));

    let mut table = TextTable::new(&["fit", "params", "KS distance"]);
    table.row(&[
        "Gamma".into(),
        format!("shape={:.2} scale={:.4}", gamma.shape(), gamma.scale()),
        format!("{d_gamma:.4}"),
    ]);
    table.row(&[
        "Frechet".into(),
        format!("alpha={:.2} scale={:.3}", frechet.alpha(), frechet.scale()),
        format!("{d_frechet:.4}"),
    ]);
    println!("{}", table.render());

    let below_06 = ious.iter().filter(|&&x| x < 0.6).count() as f64 / ious.len() as f64;
    println!(
        "mean IoU = {:.3}   P(IoU < 0.6) = {:.2}%   [paper: 0.87 / 0.37%]",
        summary.mean,
        below_06 * 100.0
    );

    // §VI-B: per-axis error ≤ (1 − IoU)·l_diag plus GPS; a 15-drone swarm
    // stays within a few meters, so Δ = 50 m is a generous λ-bound.
    let (xs, _) = scenario.axis_inputs(160);
    let axis = Summary::of(&xs);
    println!(
        "160-drone per-axis spread: {:.2} m (paper picks Δ = 50 m, ρ0 = ε = 0.5 m)",
        axis.range()
    );

    println!("\nshape checks:");
    println!("  Gamma better than Fréchet: {}", d_gamma < d_frechet);
    println!(
        "  mean IoU near 0.87: {} (measured {:.3})",
        (summary.mean - 0.87).abs() < 0.02,
        summary.mean
    );
    println!("  spread << Δ = 50 m: {}", axis.range() < 50.0);
    assert!(d_gamma < d_frechet, "Fig. 5 shape: Gamma must beat Fréchet");
    assert!(axis.range() < 50.0, "Δ = 50 m must bound the swarm spread");
}
