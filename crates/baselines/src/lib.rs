//! Baseline protocols the Delphi paper compares against (§VI-C/D).
//!
//! Everything here is built from scratch on the same sans-io
//! [`Protocol`](delphi_primitives::Protocol) abstraction as Delphi itself,
//! so the evaluation harness can run all contenders through identical
//! simulated testbeds and meter identical byte counts:
//!
//! - [`rbc`]: **Bracha Reliable Broadcast** — the `O(n²)`-message primitive
//!   whose unavoidability is, per §III-A, the reason all prior `n = 3t+1`
//!   approximate-agreement protocols pay `O(n³)` per round.
//! - [`coin`]: a **common coin** simulated from hashes (share collection
//!   with a `t + 1` reconstruction threshold). DESIGN.md §5 documents why
//!   this substitution preserves the baselines' performance envelope.
//! - [`aba`]: **signature-free asynchronous binary agreement** in the
//!   style of Mostéfaoui–Moumen–Raynal (the paper's [43]), with the
//!   standard decided-gossip termination gadget.
//! - [`acs`]: a **FIN-style asynchronous common subset**: `n` parallel
//!   RBCs + `n` parallel ABAs (BKR composition), median output — the
//!   "FIN" contender of Fig. 6, matching its signature-free `O(κn³)`-bit
//!   profile.
//! - [`aad`]: **Abraham–Amit–Dolev approximate agreement** (the paper's
//!   [1]): per-round reliable broadcast + witness collection + trimmed
//!   midpoint updates, `O(log(δ/ε))` rounds — the "Abraham et al."
//!   contender of Fig. 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aad;
pub mod aba;
pub mod acs;
pub mod coin;
pub mod rbc;

pub use aad::AadNode;
pub use aba::AbaNode;
pub use acs::AcsNode;
pub use coin::CoinKeeper;
pub use rbc::RbcNode;
