#![forbid(unsafe_code)]
//! Umbrella crate re-exporting the full Delphi reproduction workspace.
//!
//! The blessed public surface for building a node lives at the top
//! level: [`ServiceBuilder`] assembles pipeline, transport, and serving
//! layer in one chain; [`EpochEvent`] is the stream element every layer
//! speaks; [`FeedState`] is the read-side snapshot cache. Everything
//! else stays reachable through the per-crate modules.
pub use delphi_api as api;
pub use delphi_baselines as baselines;
pub use delphi_core as core;
pub use delphi_crypto as crypto;
pub use delphi_dora as dora;
pub use delphi_net as net;
pub use delphi_primitives as primitives;
pub use delphi_sim as sim;
pub use delphi_stats as stats;
pub use delphi_workloads as workloads;

pub use delphi_api::{FeedState, OracleHandle, ServiceBuilder};
pub use delphi_primitives::{EpochEvent, EpochOutcome};
