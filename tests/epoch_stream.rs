//! Integration: the streaming oracle service end-to-end under the
//! discrete-event simulator.
//!
//! The acceptance shape of the epoch layer: a 4-node cluster agrees on a
//! 4-asset basket 100 consecutive epochs with every epoch ε-converged,
//! bounded memory (live-window GC), and an ordered output stream — plus
//! the crash-recovery scenario, where a node that goes silent for several
//! epochs and rejoins mid-stream must not stall honest progress.

use delphi::core::{DelphiConfig, OracleService};
use delphi::primitives::{Envelope, EpochEvent, EpochId, EpochOutcome, NodeId, Protocol};
use delphi::sim::{Simulation, StopReason, Topology};
use delphi::workloads::{EpochFeed, MultiAssetConfig};
use delphi::ServiceBuilder;

fn oracle_cfg(n: usize) -> DelphiConfig {
    DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(2.0)
        .delta_max(2_000.0)
        .epsilon(2.0)
        .build()
        .expect("paper oracle parameters")
}

fn service(
    cfg: &DelphiConfig,
    feed: &EpochFeed,
    id: NodeId,
    epochs: u32,
    depth: usize,
    window: usize,
) -> OracleService {
    let n = cfg.n();
    ServiceBuilder::new(cfg.clone(), id)
        .epochs(epochs)
        .assets(feed.assets() as u16)
        .pipeline_depth(depth)
        .window(window)
        .build_service(delphi_bench::feed_price_source(feed.clone(), id, n))
}

#[test]
fn hundred_epoch_basket_stream_converges_with_bounded_memory() {
    let n = 4;
    let epochs = 100u32;
    let (depth, window) = (2, 6);
    let cfg = oracle_cfg(n);
    let feed = EpochFeed::new(MultiAssetConfig::default_basket(), 7);
    let assets = feed.assets();

    let nodes: Vec<Box<dyn Protocol<Output = Vec<EpochEvent<f64>>>>> =
        NodeId::all(n).map(|id| service(&cfg, &feed, id, epochs, depth, window).boxed()).collect();
    let report = Simulation::new(Topology::lan(n)).seed(42).run(nodes);
    assert_eq!(report.stop, StopReason::AllHonestFinished);

    let streams: Vec<&Vec<EpochEvent<f64>>> = report.honest_outputs().collect();
    assert_eq!(streams.len(), n);
    for events in &streams {
        assert_eq!(events.len(), epochs as usize, "every epoch resolved");
        for (e, event) in events.iter().enumerate() {
            assert_eq!(event.epoch, EpochId(e as u32), "strictly ordered stream");
            assert!(
                matches!(event.outcome, EpochOutcome::Agreed(_)),
                "honest stream must not skip epoch {e}"
            );
        }
    }
    // Per-(epoch, asset) ε-agreement and validity against the feed's
    // quote hull, for all 100 × 4 agreements.
    for e in 0..epochs {
        let minute = feed.minute(e, n);
        for a in 0..assets {
            let values: Vec<f64> = streams
                .iter()
                .map(|events| match &events[e as usize].outcome {
                    EpochOutcome::Agreed(v) => v[a],
                    EpochOutcome::Skipped => unreachable!(),
                })
                .collect();
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(hi - lo <= cfg.epsilon() + 1e-9, "epoch {e} asset {a}: spread {}", hi - lo);
            // Relaxed validity (§IV): outputs land on the ρ0-spaced
            // checkpoint grid, so they may sit up to ρ0 + ε outside the
            // raw input hull — never further.
            let slack = 2.0 + cfg.epsilon();
            let input_lo = minute[a].inputs.iter().copied().fold(f64::INFINITY, f64::min);
            let input_hi = minute[a].inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                lo >= input_lo - slack && hi <= input_hi + slack,
                "epoch {e} asset {a}: [{lo}, {hi}] outside honest inputs [{input_lo}, {input_hi}]"
            );
        }
    }
}

/// Wraps a service and keeps it silent — swallowing its start burst and
/// every inbound message — until `wake_after` messages have arrived, then
/// lets it join the stream mid-flight.
struct LateJoiner {
    inner: OracleService,
    wake_after: usize,
    seen: usize,
    started: bool,
}

impl Protocol for LateJoiner {
    type Output = Vec<EpochEvent<f64>>;

    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn start(&mut self) -> Vec<Envelope> {
        Vec::new() // crashed at launch: nothing leaves
    }
    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        self.seen += 1;
        if self.seen < self.wake_after {
            return Vec::new(); // still down: drop everything
        }
        let mut out = Vec::new();
        if !self.started {
            self.started = true;
            out.extend(self.inner.start()); // rejoin: the pipeline boots now
        }
        out.extend(self.inner.on_message(from, payload));
        out
    }
    fn output(&self) -> Option<Vec<EpochEvent<f64>>> {
        self.inner.output()
    }
    fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

#[test]
fn silent_node_rejoining_mid_stream_does_not_stall_honest_epochs() {
    let n = 4;
    let epochs = 30u32;
    let (depth, window) = (2, 4);
    let cfg = oracle_cfg(n);
    let feed = EpochFeed::new(MultiAssetConfig::synthetic(2), 11);

    let mut nodes: Vec<Box<dyn Protocol<Output = Vec<EpochEvent<f64>>>>> =
        NodeId::all(3).map(|id| service(&cfg, &feed, id, epochs, depth, window).boxed()).collect();
    // Node 3 misses the first ~10 epochs' worth of traffic, then rejoins.
    nodes.push(Box::new(LateJoiner {
        inner: service(&cfg, &feed, NodeId(3), epochs, depth, window),
        wake_after: 4_000,
        seen: 0,
        started: false,
    }));

    // Declared faulty: the stop condition tracks the 3 honest nodes.
    let report = Simulation::new(Topology::lan(n)).seed(3).faulty(&[NodeId(3)]).run(nodes);
    assert_eq!(report.stop, StopReason::AllHonestFinished, "honest stream must not stall");

    let streams: Vec<&Vec<EpochEvent<f64>>> = report.honest_outputs().collect();
    for events in &streams {
        assert_eq!(events.len(), epochs as usize);
        assert!(
            events.iter().all(|ev| matches!(ev.outcome, EpochOutcome::Agreed(_))),
            "n = 4 tolerates t = 1 silent node without skipping"
        );
    }
    // Every honest pair agrees per epoch per asset.
    for e in 0..epochs as usize {
        for a in 0..feed.assets() {
            let values: Vec<f64> = streams
                .iter()
                .map(|events| match &events[e].outcome {
                    EpochOutcome::Agreed(v) => v[a],
                    EpochOutcome::Skipped => unreachable!(),
                })
                .collect();
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(hi - lo <= cfg.epsilon() + 1e-9, "epoch {e} asset {a}: spread {}", hi - lo);
        }
    }
    // The rejoiner made real progress: it skipped the epochs it slept
    // through (fast-forward past the quorum frontier) instead of pinning
    // its pipeline at epoch 0 forever.
    let rejoiner = report.outputs[3].as_ref();
    if let Some(events) = rejoiner {
        assert!(
            events.iter().any(|ev| ev.outcome == EpochOutcome::Skipped),
            "a node that slept through epochs must skip, not replay, them"
        );
    }
}
