#![forbid(unsafe_code)]
//! **Read-side serving figure**: sustained protocol throughput
//! (agreements/sec) for a real-socket epoch cluster, swept over HTTP
//! reader count × epoch rate (pipeline depth).
//!
//! The serving layer's design claim is that readers never touch the
//! protocol hot path: the publisher tails the event stream into the
//! snapshot cache, and every HTTP reader is answered from that cache —
//! no lock, queue, or socket is shared with the protocol. If the claim
//! holds, agreements/sec stays flat as readers attach; this figure
//! measures exactly that.
//!
//! ```text
//! cargo run --release -p delphi-bench --bin fig_serving [--quick]
//! ```
//!
//! Each cell runs a 4-node loopback cluster in-process
//! (`ServiceBuilder::serve`, node 0 serving HTTP on a free port),
//! attaches N reader threads — each polling `/v0/latest` and
//! `/v0/attestation` over a keep-alive connection on its own cadence —
//! and measures wall-clock agreements/sec over the whole run. Readers
//! poll at a fixed per-reader rate, so reader count is a genuine load
//! axis; the per-update subscription fan-out is deliberately *not* the
//! swept load, because on a small host its per-reader-per-update writes
//! are protocol-rate CPU work, which would measure the host's core
//! count rather than the serving design (subscription semantics are
//! covered by the `delphi-api` tests). With `BENCH_JSON=<file>` each
//! readered cell emits a gate-compatible record,
//! `throughput_ratio_milli` = 1000 × (readered / reader-free
//! throughput), which is machine-independent (~1000) and sits under the
//! same ±30% `bench-gate` as the other figure rows.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use delphi_api::ServiceBuilder;
use delphi_bench::{emit_bench_json, feed_price_source, oracle_config, quick_mode, TextTable};
use delphi_core::DelphiConfig;
use delphi_primitives::NodeId;
use delphi_workloads::{EpochFeed, MultiAssetConfig};

/// Shared deployment key material: transport keychain + attestation keys.
const SEED: &[u8] = b"fig-serving-deployment";

/// Per-reader poll cadence (each poll is one full HTTP request/response
/// on a fresh connection). A real dashboard or light client polls at
/// seconds-scale; 400 ms per reader keeps 64 readers a serious aggregate
/// request rate (~160/s) without turning the figure into a
/// connection-flood stress test.
const POLL_EVERY: Duration = Duration::from_millis(400);

/// Listen addresses on free loopback ports. The listeners stay alive
/// until all ports are collected so the OS cannot hand one out twice.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind a free port")).collect();
    listeners.iter().map(|l| l.local_addr().expect("bound address")).collect()
}

/// A polling reader's keep-alive connection: one dial for the whole
/// run, length-delimited responses parsed in place.
struct PollClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl PollClient {
    fn connect(api: SocketAddr) -> Option<PollClient> {
        let stream = TcpStream::connect(api).ok()?;
        stream.set_read_timeout(Some(Duration::from_millis(500))).ok()?;
        Some(PollClient { stream, buf: Vec::new() })
    }

    /// One GET on the shared connection. `Some(true)` on a 200 carrying
    /// a feed value, `Some(false)` on any other valid response, `None`
    /// when the connection died (reconnect and retry).
    fn get(&mut self, path: &str) -> Option<bool> {
        let req = format!("GET {path} HTTP/1.1\r\nhost: fig\r\n\r\n");
        self.stream.write_all(req.as_bytes()).ok()?;
        let head_end = loop {
            if let Some(p) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            let mut chunk = [0u8; 2048];
            match self.stream.read(&mut chunk) {
                Ok(0) | Err(_) => return None,
                Ok(k) => self.buf.extend_from_slice(&chunk[..k]),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let ok = head.starts_with("HTTP/1.1 200");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .and_then(|v| v.trim().parse().ok())?;
        while self.buf.len() < head_end + len {
            let mut chunk = [0u8; 2048];
            match self.stream.read(&mut chunk) {
                Ok(0) | Err(_) => return None,
                Ok(k) => self.buf.extend_from_slice(&chunk[..k]),
            }
        }
        let body = String::from_utf8_lossy(&self.buf[head_end..head_end + len]).to_string();
        self.buf.drain(..head_end + len);
        Some(ok && body.contains("\"epoch\""))
    }
}

/// One reader: alternates snapshot and attestation polls at
/// [`POLL_EVERY`] over one keep-alive connection, with starts staggered
/// so the aggregate request rate is smooth rather than phase-locked.
fn reader_loop(api: SocketAddr, asset: u16, stagger: Duration, stop: &AtomicBool) -> u64 {
    let mut served = 0u64;
    std::thread::sleep(stagger);
    let mut client = None;
    let mut attest = false;
    while !stop.load(Ordering::Relaxed) {
        if client.is_none() {
            client = PollClient::connect(api);
        }
        let path =
            if attest { format!("/v0/attestation/{asset}") } else { format!("/v0/latest/{asset}") };
        attest = !attest;
        match client.as_mut().and_then(|c| c.get(&path)) {
            Some(hit) => served += u64::from(hit),
            None => client = None, // dial again next round
        }
        std::thread::sleep(POLL_EVERY);
    }
    served
}

struct CellResult {
    agreements_per_sec: f64,
    served: u64,
}

/// One cluster run: 4 nodes over loopback sockets, node 0 serving HTTP,
/// `readers` polling readers attached for the duration.
fn run_cell(
    cfg: &DelphiConfig,
    epochs: u32,
    assets: u16,
    depth: usize,
    readers: usize,
) -> CellResult {
    let n = cfg.n();
    let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
    rt.block_on(async {
        let addrs = free_addrs(n);
        let feed = EpochFeed::new(MultiAssetConfig::synthetic(usize::from(assets)), 7);
        let builder = |id: u16| {
            ServiceBuilder::new(cfg.clone(), NodeId(id))
                .epochs(epochs)
                .assets(assets)
                .pipeline_depth(depth)
                .window(depth + 4)
                .linger(Duration::from_millis(50))
        };
        let started = Instant::now();
        let mut peers = Vec::new();
        for id in 1..n as u16 {
            let source = feed_price_source(feed.clone(), NodeId(id), n);
            let handle = builder(id).serve(SEED, addrs.clone(), source).await.expect("peer serve");
            peers.push(tokio::spawn(handle.finish()));
        }
        let source = feed_price_source(feed.clone(), NodeId(0), n);
        let handle = builder(0)
            .api_bind("127.0.0.1:0".parse().expect("loopback addr"))
            .serve(SEED, addrs.clone(), source)
            .await
            .expect("node 0 serve");
        let api = handle.api_addr().expect("api bound");

        let stop = Arc::new(AtomicBool::new(false));
        let reader_threads: Vec<_> = (0..readers)
            .map(|i| {
                let stop = stop.clone();
                let asset = (i % usize::from(assets)) as u16;
                let stagger = POLL_EVERY * i as u32 / readers.max(1) as u32;
                std::thread::spawn(move || reader_loop(api, asset, stagger, &stop))
            })
            .collect();

        let (events, epoch_stats, _net) = handle.finish().await.expect("node 0 epoch run");
        let elapsed = started.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);

        assert_eq!(events.len(), epochs as usize, "stream incomplete");
        assert_eq!(epoch_stats.stale_epochs, 0, "honest loopback run must not skip epochs");
        for peer in peers {
            peer.await.expect("peer task").expect("peer epoch run");
        }
        let served = reader_threads.into_iter().map(|t| t.join().expect("reader thread")).sum();
        CellResult { agreements_per_sec: f64::from(epochs) * f64::from(assets) / elapsed, served }
    })
}

fn main() {
    let quick = quick_mode();
    let n = 4;
    let epochs: u32 = if quick { 60 } else { 240 };
    let assets: u16 = 2;
    let depths: &[usize] = if quick { &[2] } else { &[1, 2] };
    let readers_sweep: &[usize] = &[0, 8, 64];
    let reps = 5; // the median rep damps scheduler noise in the wall-clock measure
    let cfg = oracle_config(n, 2.0);
    println!(
        "== Serving-layer throughput: n = {n}, {epochs} epochs x {assets} assets over loopback \
         sockets, HTTP reader count x pipeline depth ==\n"
    );

    // One full-length unmeasured run first: page cache, connection
    // paths, and the host's frequency/thermal governor all settle
    // before anything is timed (the first run after an idle period is
    // reliably a fast outlier on boosting CPUs).
    let _ = run_cell(&cfg, epochs, assets, depths[0], 0);
    eprintln!("  warmup done");

    let mut table = TextTable::new(&["depth", "readers", "agr/s", "ratio", "served reads"]);
    let mut violations = Vec::new();
    for &depth in depths {
        // Reps are interleaved across reader counts (cell A rep 1, cell
        // B rep 1, …, cell A rep 2, …) so slow host-speed drift over the
        // sweep lands on every cell alike instead of skewing whichever
        // cell ran last; the median rep then compares like with like
        // (robust against a single boosted or preempted outlier run).
        let mut samples: Vec<Vec<f64>> = readers_sweep.iter().map(|_| Vec::new()).collect();
        let mut served: Vec<u64> = readers_sweep.iter().map(|_| 0).collect();
        for rep in 0..reps {
            for (slot, &readers) in readers_sweep.iter().enumerate() {
                let cell = run_cell(&cfg, epochs, assets, depth, readers);
                eprintln!(
                    "  depth={depth} readers={readers} rep={rep}: {:.1} agr/s",
                    cell.agreements_per_sec
                );
                samples[slot].push(cell.agreements_per_sec);
                served[slot] += cell.served;
            }
        }
        let mut baseline = None;
        for (slot, &readers) in readers_sweep.iter().enumerate() {
            samples[slot].sort_by(f64::total_cmp);
            let cell = CellResult {
                agreements_per_sec: samples[slot][samples[slot].len() / 2],
                served: served[slot],
            };
            if readers > 0 {
                assert!(
                    cell.served > 0,
                    "readers got no served values (depth {depth}, {readers} readers)"
                );
            }
            let ratio = match baseline {
                None => {
                    baseline = Some(cell.agreements_per_sec);
                    1.0
                }
                Some(base) => {
                    let ratio = cell.agreements_per_sec / base;
                    emit_bench_json(
                        &format!("fig_serving/d{depth}_r{readers}_throughput_ratio_milli"),
                        ratio * 1000.0,
                    );
                    ratio
                }
            };
            // The acceptance bar: attaching readers — including the full
            // 64-reader sweep — must leave protocol throughput flat.
            if (ratio - 1.0).abs() > 0.05 {
                violations.push(format!("depth {depth}, {readers} readers: ratio {ratio:.3}"));
            }
            table.row(&[
                depth.to_string(),
                readers.to_string(),
                format!("{:.1}", cell.agreements_per_sec),
                format!("{ratio:.3}"),
                cell.served.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());
    assert!(violations.is_empty(), "readers perturbed the protocol: {}", violations.join("; "));
    println!("serving stays off the hot path: all readered cells within 5% of reader-free");
}
