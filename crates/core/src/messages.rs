//! Wire formats for BinAA and Delphi traffic.
//!
//! Delphi's `O(n²)` communication relies on *bundling*: every checkpoint of
//! every level runs its own BinAA instance, but one network message carries
//! the echoes of arbitrarily many instances (§III-C). A [`Section`] is the
//! unit of bundling — all echoes of one `(level, round, kind)` — and uses
//! the zero-run optimization: a single optional *background* value stands
//! for "every checkpoint of this level that nobody has distinguished",
//! while `entries` carry the handful of checkpoints near honest inputs.

use delphi_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use delphi_primitives::{Dyadic, Round};

/// Maximum sections per bundle accepted from the wire.
pub(crate) const MAX_SECTIONS: usize = 4096;
/// Maximum explicit checkpoint ids per section accepted from the wire.
pub(crate) const MAX_IDS: usize = 16_384;

/// Which quorum message an echo is (Algorithm 1 / Definition II.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EchoKind {
    /// First-phase echo (`ECHO1`).
    Echo1,
    /// Second-phase echo (`ECHO2`).
    Echo2,
}

impl Encode for EchoKind {
    fn encode(&self, w: &mut Writer) {
        w.put_raw_u8(match self {
            EchoKind::Echo1 => 0,
            EchoKind::Echo2 => 1,
        });
    }
}

impl Decode for EchoKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_raw_u8()? {
            0 => Ok(EchoKind::Echo1),
            1 => Ok(EchoKind::Echo2),
            d => Err(WireError::InvalidDiscriminant(u64::from(d))),
        }
    }
}

/// A standalone BinAA message: one echo for one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinAaMsg {
    /// BinAA round the echo belongs to.
    pub round: Round,
    /// Echo phase.
    pub kind: EchoKind,
    /// The echoed value.
    pub value: Dyadic,
}

impl Encode for BinAaMsg {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.round);
        w.put(&self.kind);
        w.put(&self.value);
    }
}

impl Decode for BinAaMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BinAaMsg { round: r.get()?, kind: r.get()?, value: r.get()? })
    }
}

/// All echoes of one `(level, round, kind)` in one Delphi bundle.
///
/// Scope rules (the §III-C zero-run optimization):
///
/// - each `(k, value)` in `entries` is an echo for checkpoint `k`;
/// - if `background` is `Some(v)`, the sender additionally echoes `v` for
///   *every* checkpoint of the level **except** those listed in `entries`
///   or `exclude` (the sender's currently distinguished checkpoints);
/// - any checkpoint id mentioned anywhere makes the checkpoint
///   "distinguished" at the receiver (it is forked off the background
///   instance before the message is applied).
#[derive(Clone, Debug, PartialEq)]
pub struct Section {
    /// Level index (`0..=l_max`).
    pub level: u8,
    /// BinAA round within the level.
    pub round: Round,
    /// Echo phase.
    pub kind: EchoKind,
    /// Echo applying to every unlisted checkpoint of the level, if any.
    pub background: Option<Dyadic>,
    /// Checkpoints explicitly **not** covered by `background`.
    pub exclude: Vec<i64>,
    /// Per-checkpoint echoes.
    pub entries: Vec<(i64, Dyadic)>,
}

impl Section {
    /// Creates an empty section for `(level, round, kind)`.
    pub fn new(level: u8, round: Round, kind: EchoKind) -> Section {
        Section { level, round, kind, background: None, exclude: Vec::new(), entries: Vec::new() }
    }

    /// Whether the section carries no echo at all.
    pub fn is_empty(&self) -> bool {
        self.background.is_none() && self.entries.is_empty()
    }
}

/// Writes a checkpoint-id sequence as wrapping deltas from the previous
/// id.
///
/// Checkpoint ids inside one section cluster around the honest inputs
/// (consecutive ids a few units apart), so the deltas zig-zag into one
/// byte each where absolute ids cost three — the dominant varint work in
/// a bundle, on both sides of the wire. Wrapping arithmetic keeps the
/// mapping bijective for arbitrary `i64` ids.
fn put_id_deltas<'a>(w: &mut Writer, ids: impl ExactSizeIterator<Item = &'a i64>) {
    w.put_usize(ids.len());
    let mut prev = 0i64;
    for &id in ids {
        w.put_i64(id.wrapping_sub(prev));
        prev = id;
    }
}

impl Encode for Section {
    fn encode(&self, w: &mut Writer) {
        w.put_raw_u8(self.level);
        w.put(&self.round);
        w.put(&self.kind);
        match self.background {
            Some(v) => {
                w.put_bool(true);
                w.put(&v);
                put_id_deltas(w, self.exclude.iter());
            }
            None => w.put_bool(false),
        }
        put_id_deltas(w, self.entries.iter().map(|(id, _)| id));
        for (_, v) in &self.entries {
            w.put(v);
        }
    }
}

impl Decode for Section {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let level = r.get_raw_u8()?;
        let round = r.get::<Round>()?;
        let kind = r.get::<EchoKind>()?;
        let (background, exclude) = if r.get_bool()? {
            let v = r.get::<Dyadic>()?;
            let n = r.get_usize()?;
            if n > MAX_IDS {
                return Err(WireError::LengthOutOfBounds);
            }
            // The count is validated but still untrusted: cap the upfront
            // allocation (as `get_seq` does) and grow past it only as
            // items actually decode.
            let mut exclude = Vec::with_capacity(n.min(1024));
            let mut prev = 0i64;
            for _ in 0..n {
                prev = prev.wrapping_add(r.get_i64()?);
                exclude.push(prev);
            }
            (Some(v), exclude)
        } else {
            (None, Vec::new())
        };
        let n = r.get_usize()?;
        if n > MAX_IDS {
            return Err(WireError::LengthOutOfBounds);
        }
        let mut entries = Vec::with_capacity(n.min(1024));
        let mut prev = 0i64;
        for _ in 0..n {
            prev = prev.wrapping_add(r.get_i64()?);
            entries.push((prev, Dyadic::ZERO));
        }
        for (_, v) in &mut entries {
            *v = r.get::<Dyadic>()?;
        }
        Ok(Section { level, round, kind, background, exclude, entries })
    }
}

/// A Delphi network message: one or more bundled sections.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct DelphiBundle {
    /// The bundled sections.
    pub sections: Vec<Section>,
}

impl DelphiBundle {
    /// Creates an empty bundle.
    pub fn new() -> DelphiBundle {
        DelphiBundle::default()
    }

    /// Whether no section carries any echo.
    pub fn is_empty(&self) -> bool {
        self.sections.iter().all(Section::is_empty)
    }
}

impl Encode for DelphiBundle {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(&self.sections);
    }
}

impl Decode for DelphiBundle {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DelphiBundle { sections: r.get_seq(MAX_SECTIONS)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::wire::roundtrip;

    #[test]
    fn binaa_msg_roundtrip() {
        let msg = BinAaMsg { round: Round(7), kind: EchoKind::Echo2, value: Dyadic::new(5, 3) };
        assert_eq!(roundtrip(&msg).unwrap(), msg);
    }

    #[test]
    fn echo_kind_rejects_unknown_discriminant() {
        assert!(matches!(EchoKind::from_bytes(&[7]), Err(WireError::InvalidDiscriminant(7))));
    }

    #[test]
    fn section_roundtrip_with_background() {
        let s = Section {
            level: 3,
            round: Round(2),
            kind: EchoKind::Echo1,
            background: Some(Dyadic::ZERO),
            exclude: vec![-5, 40_000],
            entries: vec![(19_999, Dyadic::ONE), (20_000, Dyadic::new(1, 2))],
        };
        assert_eq!(roundtrip(&s).unwrap(), s);
    }

    #[test]
    fn section_roundtrip_without_background_drops_exclude() {
        let s = Section {
            level: 0,
            round: Round(1),
            kind: EchoKind::Echo2,
            background: None,
            exclude: Vec::new(),
            entries: vec![(7, Dyadic::ONE)],
        };
        assert_eq!(roundtrip(&s).unwrap(), s);
    }

    #[test]
    fn bundle_roundtrip_and_emptiness() {
        let mut b = DelphiBundle::new();
        assert!(b.is_empty());
        b.sections.push(Section::new(0, Round(1), EchoKind::Echo1));
        assert!(b.is_empty(), "section without echoes is empty");
        b.sections[0].background = Some(Dyadic::ZERO);
        assert!(!b.is_empty());
        assert_eq!(roundtrip(&b).unwrap(), b);
    }

    #[test]
    fn oversized_sequences_rejected() {
        use delphi_primitives::wire::Writer;
        let mut w = Writer::new();
        w.put_usize(MAX_SECTIONS + 1);
        assert!(DelphiBundle::from_bytes(&w.into_vec()).is_err());
    }

    #[test]
    fn truncated_section_rejected() {
        let s = Section {
            level: 1,
            round: Round(1),
            kind: EchoKind::Echo1,
            background: Some(Dyadic::ONE),
            exclude: vec![1, 2, 3],
            entries: vec![(9, Dyadic::ONE)],
        };
        let bytes = s.to_bytes();
        for cut in 1..bytes.len() {
            assert!(Section::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn id_delta_coding_survives_extremes_and_disorder() {
        // Checkpoint ids are delta-coded with wrapping arithmetic: the
        // roundtrip must be exact for extreme magnitudes (whose deltas
        // wrap i64) and for unsorted sequences (deltas may be negative).
        let s = Section {
            level: 1,
            round: Round(3),
            kind: EchoKind::Echo2,
            background: Some(Dyadic::ONE),
            exclude: vec![i64::MAX, i64::MIN, 0, -1],
            entries: vec![
                (i64::MIN, Dyadic::ZERO),
                (i64::MAX, Dyadic::ONE),
                (5, Dyadic::new(1, 2)),
                (4, Dyadic::new(3, 2)),
            ],
        };
        assert_eq!(roundtrip(&s).unwrap(), s);
    }

    #[test]
    fn clustered_ids_encode_one_byte_each() {
        // The point of delta coding: consecutive checkpoint ids near
        // 20 000 cost one byte apiece after the first, not three.
        let mut near = Section::new(0, Round(1), EchoKind::Echo1);
        near.entries = (0..8).map(|i| (20_000 + i, Dyadic::ZERO)).collect();
        let mut far = Section::new(0, Round(1), EchoKind::Echo1);
        far.entries = (0..8).map(|i| (20_000 + 10_000 * i, Dyadic::ZERO)).collect();
        let (near_len, far_len) = (near.to_bytes().len(), far.to_bytes().len());
        assert!(near_len + 2 * 7 <= far_len, "clustered {near_len}B vs spread {far_len}B");
    }

    #[test]
    fn bundle_wire_size_is_compact() {
        // A realistic per-round bundle: 11 levels, background + 4 entries
        // each. Should be well under 1 KiB.
        let mut b = DelphiBundle::new();
        for level in 0..11u8 {
            let mut s = Section::new(level, Round(12), EchoKind::Echo1);
            s.background = Some(Dyadic::ZERO);
            s.exclude = vec![20_000, 20_001];
            s.entries = vec![
                (19_999, Dyadic::new(123, 20)),
                (20_000, Dyadic::new(124, 20)),
                (20_001, Dyadic::ONE),
                (20_002, Dyadic::ZERO),
            ];
            b.sections.push(s);
        }
        let len = b.to_bytes().len();
        assert!(len < 1024, "bundle is {len} bytes");
    }
}
