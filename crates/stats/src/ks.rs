//! Kolmogorov–Smirnov goodness of fit.
//!
//! Figures 4 and 5 of the paper rank candidate distributions by fit
//! quality ("Fréchet and Gumbel ... are the closest fit, with Fréchet
//! being the better fit"). The KS statistic is the standard way to make
//! that ranking quantitative.

/// KS statistic `D = sup_x |F_emp(x) − F(x)|` for **sorted** samples.
///
/// # Panics
///
/// Panics if `sorted` is empty or not ascending.
pub fn ks_statistic_sorted(sorted: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!sorted.is_empty(), "KS of empty sample");
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "KS input must be sorted ascending");
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// KS statistic for unsorted samples (sorts a copy).
pub fn ks_statistic(samples: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    ks_statistic_sorted(&xs, cdf)
}

/// Asymptotic KS p-value: `Q(√n · D)` with the Kolmogorov series
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    let lambda = (n as f64).sqrt() * d;
    // Q(0.3) > 0.99999 and the series converges too slowly below that.
    if lambda < 0.3 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, Gumbel, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_fit_has_small_statistic() {
        // Samples placed exactly at uniform quantiles against U(0,1).
        let n = 1000;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic_sorted(&xs, |x| x.clamp(0.0, 1.0));
        assert!(d <= 0.5 / n as f64 + 1e-12, "D = {d}");
    }

    #[test]
    fn wrong_model_scores_worse_than_right_model() {
        let mut rng = StdRng::seed_from_u64(3);
        let gumbel = Gumbel::new(10.0, 3.0).unwrap();
        let samples: Vec<f64> = (0..3000).map(|_| gumbel.sample(&mut rng)).collect();
        let d_right = ks_statistic(&samples, |x| gumbel.cdf(x));
        // A normal with matching mean/std is a plausible but worse model.
        let s = crate::describe::Summary::of(&samples);
        let normal = Normal::new(s.mean, s.std_dev).unwrap();
        let d_wrong = ks_statistic(&samples, |x| normal.cdf(x));
        assert!(d_right < d_wrong, "right {d_right} vs wrong {d_wrong}");
    }

    #[test]
    fn p_value_behaviour() {
        // Tiny statistic: p ≈ 1; large statistic: p ≈ 0.
        assert!(ks_p_value(0.001, 100) > 0.99);
        assert!(ks_p_value(0.5, 1000) < 1e-6);
        // Known reference: Q(1.36) ≈ 0.049 (the 5% critical value).
        let p = ks_p_value(1.36 / (1000f64).sqrt(), 1000);
        assert!((p - 0.049).abs() < 0.005, "p = {p}");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_input_rejected() {
        let _ = ks_statistic_sorted(&[2.0, 1.0], |x| x);
    }
}
