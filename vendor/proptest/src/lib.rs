//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset it uses: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`any`], the `proptest!`
//! macro, and `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Differences from the real crate, deliberate for size:
//! - **No shrinking.** A failing case reports the generated inputs via the
//!   panic message (every generated argument is `Debug`-printed), but is not
//!   minimized.
//! - **Deterministic seeding.** Each property runs its cases from a seed
//!   derived from the test's name, so failures reproduce exactly.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies; a thin wrapper so strategies do not
/// depend on a concrete generator type.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner with a deterministic seed (derived from the test name
    /// by the `proptest!` macro).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRunner { rng: StdRng::seed_from_u64(seed) }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only values for which `f` returns `true` (rejection sampling,
    /// bounded at 1000 attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, f, whence }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.base.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, runner: &mut TestRunner) -> S2::Value {
        let intermediate = self.base.generate(runner);
        (self.f)(intermediate).generate(runner)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything" strategy, for [`any`].
pub trait Arbitrary: Sized + Debug {
    /// Generates an arbitrary value of `Self`.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().random()
            }
        }
    )*};
}

impl_arbitrary_uniform!(bool, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_arbitrary_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().random::<$u>() as $t
            }
        }
    )*};
}

impl_arbitrary_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// Strategy for "any value of `T`".
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec`]: a fixed length or a length range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.rng().random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// FNV-1a, used to derive a per-test deterministic seed from its name.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

/// Asserts a condition inside a property, reporting the generated inputs on
/// failure (via the surrounding `proptest!`-generated panic context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop_name(x in 0u32..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
// The `#[test]` in the example is the macro's actual calling convention,
// not a runnable-in-doctest unit test.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __runner = $crate::TestRunner::new($crate::seed_from_name(stringify!($name)));
            // Strategies are built once; each case shadows the strategy
            // binding with a value generated from it.
            let ($($arg,)+) = ($($strat,)+);
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut __runner);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __inputs,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seed_is_stable_and_name_dependent() {
        assert_eq!(seed_from_name_local("a"), seed_from_name_local("a"));
        assert_ne!(seed_from_name_local("a"), seed_from_name_local("b"));
    }

    fn seed_from_name_local(name: &str) -> u64 {
        crate::seed_from_name(name)
    }

    #[test]
    fn vec_respects_fixed_and_ranged_sizes() {
        let mut runner = TestRunner::new(1);
        let fixed = crate::collection::vec(any::<bool>(), 9);
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&fixed, &mut runner).len(), 9);
        }
        let ranged = crate::collection::vec(0u8..10, 1..12);
        for _ in 0..200 {
            let v = Strategy::generate(&ranged, &mut runner);
            assert!((1..12).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut runner = TestRunner::new(2);
        let s = (0u8..=4).prop_flat_map(|e| (0u64..=(1 << e)).prop_map(move |n| (e, n)));
        for _ in 0..500 {
            let (e, n) = Strategy::generate(&s, &mut runner);
            assert!(e <= 4);
            assert!(n <= 1 << e);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_and_runs(x in 0u32..100, pair in (0.0..1.0f64, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 >= 0.0 && pair.0 < 1.0);
        }

        #[test]
        fn macro_multiple_fns_share_config(v in crate::collection::vec(0u16..150, 0..20)) {
            prop_assert!(v.len() < 20);
        }
    }
}
