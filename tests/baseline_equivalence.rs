//! Integration: all three contenders (Delphi, Abraham et al., FIN-style
//! ACS) solve the same oracle instance, with the validity and cost
//! relationships the paper claims.

use delphi::baselines::{AadNode, AcsNode};
use delphi::core::{DelphiConfig, DelphiNode};
use delphi::primitives::{NodeId, Protocol};
use delphi::sim::{RunReport, Simulation, Topology};
use delphi::workloads::{BtcFeed, BtcFeedConfig};

fn run_protocol(
    nodes: Vec<Box<dyn Protocol<Output = f64>>>,
    n: usize,
    seed: u64,
) -> RunReport<f64> {
    let report = Simulation::new(Topology::lan(n)).seed(seed).run(nodes);
    assert!(report.all_honest_finished(), "stalled: {:?}", report.stop);
    report
}

#[test]
fn all_three_respect_the_honest_hull() {
    let n = 16;
    let t = (n - 1) / 3;
    let mut feed = BtcFeed::new(BtcFeedConfig::default(), 77);
    let quote = feed.next_minute();
    let inputs = feed.node_inputs(&quote, n);
    let lo = inputs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    // The Fig. 6a configuration: ρ0 = 10$, Δ = 2000$, ε = 2$.
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(10.0)
        .delta_max(2000.0)
        .epsilon(2.0)
        .build()
        .expect("config");

    // Delphi: ρ-relaxed validity.
    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
        .collect();
    let delphi = run_protocol(nodes, n, 1);
    let relax = cfg.rho0().max(hi - lo);
    for o in delphi.honest_outputs() {
        assert!(*o >= lo - relax - 1e-9 && *o <= hi + relax + 1e-9, "Delphi output {o}");
    }

    // Abraham et al.: strict hull validity.
    let nodes =
        NodeId::all(n).map(|id| AadNode::new(id, n, t, inputs[id.index()], 10).boxed()).collect();
    let aad = run_protocol(nodes, n, 1);
    for o in aad.honest_outputs() {
        assert!(*o >= lo - 1e-9 && *o <= hi + 1e-9, "AAD output {o}");
    }

    // FIN-style ACS: strict hull validity and exact agreement.
    let nodes = NodeId::all(n)
        .map(|id| AcsNode::new(id, n, t, inputs[id.index()], b"coin").boxed())
        .collect();
    let acs = run_protocol(nodes, n, 1);
    let acs_outs: Vec<f64> = acs.honest_outputs().copied().collect();
    assert!(acs_outs.windows(2).all(|w| w[0] == w[1]), "ACS is exact agreement");
    assert!(acs_outs[0] >= lo && acs_outs[0] <= hi);

    // The cost relationship behind Fig. 6b: Delphi moves fewer bytes
    // than the O(n³)-per-round AAD baseline even at n = 16.
    assert!(
        delphi.metrics.total_wire_bytes() < aad.metrics.total_wire_bytes(),
        "Delphi {} bytes vs AAD {} bytes",
        delphi.metrics.total_wire_bytes(),
        aad.metrics.total_wire_bytes()
    );
}

#[test]
fn delphi_message_growth_is_quadratic_not_cubic() {
    // Message counts at n and 2n with identical inputs (so the active
    // checkpoint count stays fixed): Delphi grows ~4× (quadratic, plus a
    // round or two from the log n term in r_M), the RBC-based AAD grows
    // ~8× (cubic). The orders must separate.
    let deltas: Vec<u64> = [8usize, 16]
        .iter()
        .map(|&n| {
            let cfg = DelphiConfig::builder(n)
                .space(0.0, 100_000.0)
                .rho0(2.0)
                .delta_max(512.0)
                .epsilon(2.0)
                .build()
                .expect("config");
            let nodes = NodeId::all(n)
                .map(|id| DelphiNode::new(cfg.clone(), id, 40_000.0).boxed())
                .collect();
            run_protocol(nodes, n, 3).metrics.total_msgs()
        })
        .collect();
    let aads: Vec<u64> = [8usize, 16]
        .iter()
        .map(|&n| {
            let t = (n - 1) / 3;
            let nodes =
                NodeId::all(n).map(|id| AadNode::new(id, n, t, 40_000.0, 8).boxed()).collect();
            run_protocol(nodes, n, 3).metrics.total_msgs()
        })
        .collect();
    let delphi_growth = deltas[1] as f64 / deltas[0] as f64;
    let aad_growth = aads[1] as f64 / aads[0] as f64;
    assert!(
        delphi_growth + 0.5 < aad_growth,
        "Delphi growth {delphi_growth:.2} should be well below AAD growth {aad_growth:.2}"
    );
    assert!(delphi_growth < 6.0, "Delphi n->2n message growth {delphi_growth:.2}");
    assert!(aad_growth > 6.0, "AAD n->2n message growth {aad_growth:.2}");
}
