//! Per-peer authenticated sessions: framing format choice, batching, and
//! drain-on-shutdown.
//!
//! A [`SessionSet`] sits between the protocol-driving service layer and
//! the [`transport`](crate::transport) write loops. It owns one outbound
//! queue per peer and encodes every protocol step's envelope bursts into
//! authenticated frames:
//!
//! - with batching on, all envelopes of one step bound for the same peer
//!   share one v2 frame (one HMAC tag for the whole step);
//! - a solo (single-instance) runner keeps the 4-bytes-cheaper v1 format
//!   for single-envelope steps, while multi-instance runs speak pure v2 so
//!   byte accounting matches the simulator's `Mux`;
//! - [`SessionSet::shutdown`] closes every queue and waits (bounded) for
//!   the write loops to flush, so a slow peer still receives everything
//!   that was queued.

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use delphi_crypto::Keychain;
use delphi_primitives::epoch::route_epoch_bursts;
use delphi_primitives::mux::route_bursts;
use delphi_primitives::{AgreementId, Envelope, FlushPolicy, InstanceId, NodeId, PendingBatches};
use tokio::sync::mpsc;

use crate::frame::{encode_batch_frame, encode_epoch_frame, encode_frame};
use crate::transport::{spawn_writer, Counters};

/// The outbound half of a full-mesh node: one authenticated session per
/// peer, plus the framing/batching policy shared by all of them.
///
/// One-shot runs queue whole steps ([`SessionSet::enqueue_step`]); epoch
/// streams queue epoch-addressed entries
/// ([`SessionSet::enqueue_epoch_step`]) that accumulate in per-peer
/// pending buffers under a [`FlushPolicy`] — per-step for the classic
/// cost model, adaptive (size triggers here, the time trigger in the
/// service loop) to amortize frames and tags across steps.
pub(crate) struct SessionSet {
    /// `peer_tx[p]` queues frames for peer `p`; `None` at our own slot.
    peer_tx: Vec<Option<mpsc::UnboundedSender<Bytes>>>,
    writer_tasks: Vec<tokio::task::JoinHandle<()>>,
    keychain: Arc<Keychain>,
    counters: Arc<Counters>,
    batching: bool,
    /// Single-instance runs keep the v1 format for lone envelopes.
    solo: bool,
    /// Per-peer epoch entries awaiting flush (epoch streams only) —
    /// the same accumulator `EpochProtocol` uses under the simulator, so
    /// the two transports share one flush-trigger semantics.
    pending: PendingBatches,
}

impl SessionSet {
    /// Opens a session (a lazy-dialing write loop) to every peer in
    /// `addrs` except `keychain.node_id()` itself.
    pub(crate) fn connect(
        keychain: Arc<Keychain>,
        addrs: &[SocketAddr],
        reconnect_delay: Duration,
        counters: Arc<Counters>,
        batching: bool,
        solo: bool,
        flush: FlushPolicy,
    ) -> SessionSet {
        let me = keychain.node_id();
        let n = addrs.len();
        let mut peer_tx: Vec<Option<mpsc::UnboundedSender<Bytes>>> = Vec::with_capacity(n);
        let mut writer_tasks = Vec::new();
        for peer in NodeId::all(n) {
            if peer == me {
                peer_tx.push(None);
                continue;
            }
            let (tx, rx) = mpsc::unbounded_channel::<Bytes>();
            peer_tx.push(Some(tx));
            writer_tasks.push(spawn_writer(
                addrs[peer.index()],
                rx,
                reconnect_delay,
                counters.clone(),
            ));
        }
        SessionSet {
            peer_tx,
            writer_tasks,
            keychain,
            counters,
            batching,
            solo,
            pending: PendingBatches::new(n, flush),
        }
    }

    /// Queues one protocol step's output: the envelope bursts of every
    /// instance that acted, coalesced into one frame per destination.
    ///
    /// Multi-instance runs speak pure v2 so `NetStats` byte counts equal
    /// the simulator's `Mux` accounting; solo single-envelope steps keep
    /// the (4 bytes cheaper) v1 format.
    pub(crate) fn enqueue_step(&self, bursts: Vec<(InstanceId, Vec<Envelope>)>) {
        let me = self.keychain.node_id();
        let n = self.peer_tx.len();
        for (dest, entries) in route_bursts(bursts, n, me).into_iter().enumerate() {
            let Some(Some(tx)) = self.peer_tx.get(dest) else { continue };
            if entries.is_empty() {
                continue;
            }
            self.counters.sent_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
            let dest = NodeId(dest as u16);
            if self.batching {
                let frame = match &entries[..] {
                    [(_, payload)] if self.solo => encode_frame(&self.keychain, dest, payload),
                    _ => encode_batch_frame(&self.keychain, dest, &entries),
                };
                self.counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(frame);
            } else {
                for (instance, payload) in entries {
                    let frame = if self.solo {
                        encode_frame(&self.keychain, dest, &payload)
                    } else {
                        encode_batch_frame(&self.keychain, dest, &[(instance, payload)])
                    };
                    self.counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(frame);
                }
            }
        }
    }

    /// Queues one epoch-stream step: epoch-addressed bursts routed into
    /// the per-peer pending buffers, flushed per the session's
    /// [`FlushPolicy`] (per-step immediately; adaptive once a peer's
    /// batch trips the entry or byte trigger — the time trigger is the
    /// service loop's flush timer calling [`SessionSet::flush_epochs`]).
    pub(crate) fn enqueue_epoch_step(&mut self, bursts: Vec<(AgreementId, Vec<Envelope>)>) {
        let me = self.keychain.node_id();
        let n = self.peer_tx.len();
        for (dest, entries) in route_epoch_bursts(bursts, n, me).into_iter().enumerate() {
            if entries.is_empty() || self.peer_tx[dest].is_none() {
                continue;
            }
            self.counters.sent_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
            if self.pending.push(dest, entries) {
                self.flush_epoch_dest(dest);
            }
        }
    }

    /// Flushes every peer's pending epoch entries (the time trigger, and
    /// the pre-shutdown drain).
    pub(crate) fn flush_epochs(&mut self) {
        for dest in 0..self.pending.dests() {
            self.flush_epoch_dest(dest);
        }
    }

    /// Whether any peer has unflushed epoch entries.
    pub(crate) fn has_pending_epochs(&self) -> bool {
        self.pending.has_pending()
    }

    fn flush_epoch_dest(&mut self, dest: usize) {
        let entries = self.pending.take(dest);
        if entries.is_empty() {
            return;
        }
        let Some(Some(tx)) = self.peer_tx.get(dest) else { return };
        let to = NodeId(dest as u16);
        if self.batching {
            let frame = encode_epoch_frame(&self.keychain, to, &entries);
            self.counters.mac_ops.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(frame);
        } else {
            // One frame per entry: the measurement baseline.
            for entry in entries {
                let frame = encode_epoch_frame(&self.keychain, to, &[entry]);
                self.counters.mac_ops.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(frame);
            }
        }
    }

    /// Graceful drain: closes the per-peer queues so each write loop
    /// flushes its remaining frames and exits at channel-close, then joins
    /// every writer with a shared `drain_timeout` deadline. A fixed sleep
    /// + abort here would lose whatever a slow peer had not yet accepted.
    pub(crate) async fn shutdown(self, drain_timeout: Duration) {
        let SessionSet { peer_tx, writer_tasks, .. } = self;
        drop(peer_tx);
        let drain_deadline = tokio::time::Instant::now() + drain_timeout;
        for task in writer_tasks {
            let mut task = task;
            tokio::select! {
                _ = &mut task => {},
                _ = tokio::time::sleep_until(drain_deadline) => task.abort(),
            }
        }
    }

    /// Aborts every writer immediately, dropping queued frames (used on
    /// deadline failure, where there is no output worth draining for).
    pub(crate) fn abort(self) {
        for w in self.writer_tasks {
            w.abort();
        }
    }
}
