//! Summary statistics.

/// Basic descriptive statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Standard deviation (`variance.sqrt()`).
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Median (lower median for even sizes).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of `data`, ignoring non-finite entries.
    ///
    /// # Panics
    ///
    /// Panics if `data` contains no finite values.
    pub fn of(data: &[f64]) -> Summary {
        let mut xs: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        assert!(!xs.is_empty(), "summary of empty/non-finite data");
        xs.sort_by(f64::total_cmp);
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min: xs[0],
            max: xs[n - 1],
            median: xs[(n - 1) / 2],
        }
    }

    /// The range `max − min` — the paper's `δ` when applied to honest
    /// inputs.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// The `p`-quantile of `data` (nearest-rank on a sorted copy).
///
/// # Panics
///
/// Panics if `data` is empty or `p ∉ [0, 1]`.
pub fn quantile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut xs: Vec<f64> = data.to_vec();
    xs.sort_by(f64::total_cmp);
    let idx = ((xs.len() - 1) as f64 * p).round() as usize;
    xs[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.0); // lower median
        assert_eq!(s.range(), 3.0);
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let s = Summary::of(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = Summary::of(&[f64::NAN]);
    }

    #[test]
    fn quantiles() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 0.5), 3.0);
        assert_eq!(quantile(&data, 1.0), 5.0);
    }
}
