//! Tokio TCP runtime for Delphi protocol state machines.
//!
//! The paper's artifact runs on tokio over HMAC-authenticated channels
//! (§VI-C); this crate is that deployment path. The same sans-io
//! [`Protocol`](delphi_primitives::Protocol) state machines that run under
//! the simulator run here over real sockets, through a layered stack:
//!
//! - [`frame`]: length-prefixed frames with an HMAC-SHA256 tag under the
//!   pairwise channel key — the authenticated-channel assumption made
//!   concrete. Two formats share the tag: v1 carries one payload, v2
//!   carries a batch of `(instance, payload)` entries so one tag
//!   authenticates a whole protocol step. Tampered or misdirected frames
//!   are dropped, never surfaced to the protocol.
//! - [`transport`] (internal): sockets — the accept loop, lazy dialing
//!   with bounded-backoff reconnection, and the per-connection frame
//!   read/write loops, plus the [`NetStats`] counters every layer shares.
//! - [`session`] (internal): per-peer authenticated channels — v1/v2
//!   format choice, step batching, and bounded drain-on-shutdown.
//! - [`service`]: the runners. [`run_node`] / [`run_instances`] bind a
//!   listener, dial every peer, drive one or many multiplexed protocol
//!   instances to their outputs, linger briefly so slower peers still
//!   receive our help messages, and drain writer queues before returning.
//!   [`run_epoch_service`] drives a long-lived epoch stream — an
//!   [`EpochMux`](delphi_primitives::EpochMux) pipeline — over the same
//!   mesh, routing epoch-addressed entries in v3 frames with adaptive
//!   batch flushing.
//! - [`config`] / [`cluster`]: real deployments — a TOML cluster-file
//!   format (node ids, addresses, key material) and a multi-process
//!   launcher that runs one node per OS process and collects per-node
//!   results over stdout JSON.
//!
//! # Example
//!
//! See `examples/tcp_cluster.rs` at the workspace root, which runs a
//! Delphi cluster over localhost TCP from a [`config::ClusterConfig`].
//! The loopback integration test in [`service`] does the same with 4
//! BinAA nodes; `tests/cluster_process.rs` at the workspace root runs the
//! full multi-process harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod frame;
pub mod service;
mod session;
mod transport;

pub use delphi_primitives::FlushPolicy;
pub use frame::{
    decode_any_frame, decode_frame, decode_inbound_frame, decode_inbound_frame_ref,
    encode_batch_frame, encode_epoch_frame, encode_frame, split_verified_body, FrameEntriesRef,
    FrameEntryIter, FrameError, BATCH_MARKER, EPOCH_MARKER, MAX_FRAME_BODY, MAX_FRAME_PAYLOAD,
    MIN_FRAME_BODY,
};
pub use service::{
    run_epoch_service, run_instances, run_node, EpochServiceHandle, NetError, RunOptions,
    ServiceStats,
};
pub use transport::{NetStats, MAX_RECV_SHARDS};
