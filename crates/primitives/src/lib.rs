//! Core types shared by every crate in the Delphi reproduction.
//!
//! This crate is the foundation of the workspace. It provides:
//!
//! - [`NodeId`] and [`Round`]: newtypes identifying protocol participants and
//!   protocol rounds.
//! - [`Dyadic`]: exact binary rationals `j / 2^k`. Every state value that the
//!   BinAA sub-protocol of Delphi manipulates has this form, so representing
//!   them exactly lets the test-suite assert agreement and validity
//!   *exactly*, with no floating-point tolerance fudging.
//! - [`NodeBitSet`]: compact sender sets used for quorum counting
//!   (`t + 1` amplification and `n − t` quorums appear in every protocol in
//!   the workspace).
//! - [`wire`]: a small, dependency-free binary codec (varints, zig-zag,
//!   length-prefixed bytes). Protocols encode their own messages with it, so
//!   the simulator and the TCP transport both move plain bytes and the
//!   bandwidth numbers reported by the benchmark harness are byte-accurate.
//! - [`Protocol`]: the sans-io state-machine abstraction implemented by
//!   Delphi, the baselines, and the DORA layer, and driven by both the
//!   discrete-event simulator (`delphi-sim`) and the tokio TCP runtime
//!   (`delphi-net`).
//! - [`InstanceId`] and [`mux`]: multiplexing many protocol instances (one
//!   per oracle asset) over a single mesh, with a shared batch-entry codec
//!   so transports amortize framing + MAC cost over every instance's
//!   traffic.
//! - [`EpochId`] / [`AgreementId`] and [`epoch`]: the streaming-oracle
//!   lifecycle — long-lived multi-epoch agreement pipelines with a bounded
//!   live window, ordered output streams, and adaptive batch flushing —
//!   over the same sans-io [`Protocol`] machinery.
//!
//! # Example
//!
//! ```
//! use delphi_primitives::{Dyadic, NodeId};
//!
//! let half = Dyadic::new(1, 1);
//! let quarter = Dyadic::new(1, 2);
//! assert_eq!(half.midpoint(quarter), Dyadic::new(3, 3)); // 3/8
//! assert_eq!(NodeId(3).to_string(), "node-3");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod dyadic;
pub mod epoch;
mod id;
pub mod mux;
mod protocol;
pub mod wire;

pub use bitset::NodeBitSet;
pub use dyadic::{Dyadic, DyadicRangeError};
pub use epoch::{
    flatten_vector_events, merge_epoch_shards, merge_epoch_stats, AgreementId, EpochConfig,
    EpochEvent, EpochId, EpochMux, EpochOutcome, EpochProtocol, EpochShard, EpochStats,
    EpochStatsCell, FlushPolicy, PendingBatches, PendingBatchesBy,
};
pub use id::{InstanceId, NodeId, Round};
pub use mux::Mux;
pub use protocol::{Envelope, Protocol, Recipient};
