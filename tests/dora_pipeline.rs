//! Integration: the full DORA oracle pipeline — Delphi agreement,
//! ε-rounding, attestation, certificate assembly, SMR consumption (§V).

use delphi::core::DelphiConfig;
use delphi::crypto::signing::Verifier;
use delphi::dora::{Certificate, DoraNode, SmrChannel};
use delphi::primitives::{NodeId, Protocol};
use delphi::sim::adversary::{Crash, GarbageSpammer};
use delphi::sim::{Simulation, Topology};
use delphi::workloads::{BtcFeed, BtcFeedConfig};

const SEED: &[u8] = b"dora-pipeline-test";

fn cfg(n: usize) -> DelphiConfig {
    DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(2.0)
        .delta_max(2000.0)
        .epsilon(2.0)
        .build()
        .expect("valid config")
}

#[test]
fn certified_price_reaches_the_chain() {
    let n = 10;
    let cfg = cfg(n);
    let mut feed = BtcFeed::new(BtcFeedConfig::default(), 31);
    let quote = feed.next_minute();
    let inputs = feed.node_inputs(&quote, n);

    let nodes: Vec<Box<dyn Protocol<Output = Certificate>>> = NodeId::all(n)
        .map(|id| DoraNode::new(cfg.clone(), id, inputs[id.index()], SEED).boxed())
        .collect();
    let report = Simulation::new(Topology::aws_geo(n)).seed(8).run(nodes);
    assert!(report.all_honest_finished(), "pipeline stalled: {:?}", report.stop);

    let mut smr = SmrChannel::new(SEED, n, cfg.t());
    for cert in report.honest_outputs() {
        assert!(smr.submit(cert.clone()), "honest certificate rejected");
    }
    // §V: at most two adjacent candidates; first wins.
    let values = smr.distinct_values();
    assert!(!values.is_empty() && values.len() <= 2, "{values:?}");
    if values.len() == 2 {
        assert_eq!(values[1] - values[0], 1);
    }
    let consumed = smr.consumed().expect("consumed certificate");
    assert!(consumed.signatures.len() > cfg.t());
    // Validity: the consumed price is within the quote hull ± (δ + 2ε).
    let slack = quote.range() + 2.0 * cfg.epsilon() + cfg.rho0();
    assert!(
        (consumed.value() - quote.truth).abs() <= slack,
        "consumed {} vs truth {} (slack {slack})",
        consumed.value(),
        quote.truth
    );
}

#[test]
fn pipeline_tolerates_crash_and_garbage() {
    let n = 10;
    let cfg = cfg(n);
    let inputs: Vec<f64> = (0..n).map(|i| 41_000.0 + (i as f64) * 1.5).collect();
    let faulty = [NodeId(0), NodeId(6), NodeId(9)];
    let nodes: Vec<Box<dyn Protocol<Output = Certificate>>> = NodeId::all(n)
        .map(|id| match id.index() {
            0 => Box::new(Crash::new(id, n)) as Box<_>,
            6 => Box::new(GarbageSpammer::new(id, n, 6, 2, 96, 80)) as Box<_>,
            9 => DoraNode::new(cfg.clone(), id, 90_000.0, SEED).boxed(), // outlier
            _ => DoraNode::new(cfg.clone(), id, inputs[id.index()], SEED).boxed(),
        })
        .collect();
    let report = Simulation::new(Topology::lan(n)).seed(9).faulty(&faulty).run(nodes);
    assert!(report.all_honest_finished(), "stalled: {:?}", report.stop);

    let verifier = Verifier::new(SEED);
    let mut smr = SmrChannel::new(SEED, n, cfg.t());
    for cert in report.honest_outputs() {
        assert!(cert.verify(&verifier, n, cfg.t()));
        smr.submit(cert.clone());
    }
    let consumed = smr.consumed().expect("certificate");
    // Honest inputs span [41001.5, 41012]: the outlier cannot drag the
    // certified value outside the relaxed hull.
    assert!((40_990.0..=41_030.0).contains(&consumed.value()), "certified {}", consumed.value());
}

#[test]
fn byzantine_cannot_forge_a_certificate() {
    let n = 10;
    let t = cfg(n).t();
    let mut smr = SmrChannel::new(SEED, n, t);
    // t Byzantine signers cannot reach the t + 1 threshold.
    let msg = Certificate::message_for(12345, 2.0);
    let sigs: Vec<_> = (0..t as u16)
        .map(|i| delphi::crypto::signing::SigningKey::derive(SEED, NodeId(i)).sign(&msg))
        .collect();
    let forged = Certificate { k: 12345, epsilon: 2.0, signatures: sigs };
    assert!(!smr.submit(forged));
    // Nor can they reuse signatures from a different value.
    let other_msg = Certificate::message_for(999, 2.0);
    let sigs: Vec<_> = (0..=t as u16)
        .map(|i| delphi::crypto::signing::SigningKey::derive(SEED, NodeId(i)).sign(&other_msg))
        .collect();
    let mismatched = Certificate { k: 12345, epsilon: 2.0, signatures: sigs };
    assert!(!smr.submit(mismatched));
    assert_eq!(smr.rejected(), 2);
}

#[test]
fn op_counts_match_table_iii_shape() {
    // Table III: Delphi-DORA needs 1 signature per node and at most
    // O(n) verifications — far below the O(n²) of prior protocols.
    let n = 7;
    let cfg = cfg(n);
    let inputs: Vec<f64> = (0..n).map(|i| 52_000.0 + i as f64).collect();
    let mut nodes: Vec<DoraNode> =
        NodeId::all(n).map(|id| DoraNode::new(cfg.clone(), id, inputs[id.index()], SEED)).collect();
    // Drive manually through the simulator via boxed trait objects.
    let boxed: Vec<Box<dyn Protocol<Output = Certificate>>> =
        nodes.drain(..).map(|nd| Box::new(nd) as Box<dyn Protocol<Output = Certificate>>).collect();
    let report = Simulation::new(Topology::lan(n)).seed(10).run(boxed);
    assert!(report.all_honest_finished());
    // We can't reach into boxed nodes for counters here; instead assert
    // the protocol-level consequence: each node broadcast exactly one
    // attestation, so attest traffic is n·(n−1) messages on top of the
    // Delphi bundles — bounded by messages that fit n·(n−1) signatures.
    let attest_msgs = report.metrics.total_msgs();
    assert!(attest_msgs > 0);
}
