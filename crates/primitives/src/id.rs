//! Identifier newtypes for protocol participants and rounds.

use std::fmt;

use crate::wire::{Decode, Encode, Reader, WireError, Writer};

/// Identity of a protocol participant, in `0..n`.
///
/// The paper's system model fixes a set `P := {1, ..., n}`; we index from 0
/// as is idiomatic in Rust. The inner index is public because `NodeId` is a
/// passive identifier with no invariant beyond `id < n`, which is enforced
/// wherever a configuration is available.
///
/// # Example
///
/// ```
/// use delphi_primitives::NodeId;
///
/// let me = NodeId(2);
/// assert_eq!(me.index(), 2);
/// assert_eq!(format!("{me}"), "node-2");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The participant's index as a `usize`, for direct use in slices.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterates over all node ids of an `n`-node system, in order.
    ///
    /// ```
    /// use delphi_primitives::NodeId;
    /// let all: Vec<_> = NodeId::all(3).collect();
    /// assert_eq!(all, [NodeId(0), NodeId(1), NodeId(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..n as u16).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(raw: u16) -> Self {
        NodeId(raw)
    }
}

impl Encode for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.0);
    }
}

impl Decode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.get_u16()?))
    }
}

/// Identity of one multiplexed protocol instance within a deployment.
///
/// A single mesh (one simulator run, one TCP cluster) can drive many
/// independent protocol instances — one per oracle asset in a DORA-style
/// multi-feed deployment. Transports tag every payload with the instance it
/// belongs to so the instances share connections, frames, and MAC tags; see
/// [`crate::mux`] for the sans-io combinator and `delphi-net` for the
/// batched wire frames.
///
/// # Example
///
/// ```
/// use delphi_primitives::InstanceId;
///
/// let btc = InstanceId(0);
/// assert_eq!(btc.index(), 0);
/// assert_eq!(format!("{btc}"), "instance-0");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u16);

impl InstanceId {
    /// The instance driven by single-protocol runners.
    pub const SOLO: InstanceId = InstanceId(0);

    /// The instance's index as a `usize`, for direct use in slices.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Stable receive-shard assignment: which of `shards` dispatch workers
    /// owns this instance's traffic.
    ///
    /// The mapping is a pure Fibonacci multiply-shift of the instance id
    /// (`((id ^ C) * C) >> 32 mod shards` with the golden-ratio constant
    /// `C = 0x9E37_79B9_7F4A_7C15`), so the discrete-event simulator and
    /// the TCP transport shard *identically*
    /// — a deployment's per-shard load in simulation is its per-shard load
    /// over real sockets. Epoch-addressed traffic shards by asset (see
    /// [`AgreementId::shard`](crate::AgreementId::shard)), keeping every
    /// epoch of one asset on one worker so per-instance FIFO ordering
    /// survives sharding.
    #[inline]
    pub fn shard(self, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        // Fibonacci multiply-shift: consecutive ids (the dense oracle
        // basket case) spread evenly for any shard count, and the mapping
        // is a pure function of the id — no per-process salt.
        let h = (u64::from(self.0) ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % shards
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instance-{}", self.0)
    }
}

impl From<u16> for InstanceId {
    fn from(raw: u16) -> Self {
        InstanceId(raw)
    }
}

impl Encode for InstanceId {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.0);
    }
}

impl Decode for InstanceId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(InstanceId(r.get_u16()?))
    }
}

/// A protocol round number (1-based, matching Algorithm 1 of the paper).
///
/// Rounds are bounded by the configured `r_M = log2(1/ε′) ≤ 64`, so `u16`
/// is ample while keeping messages small on the wire.
///
/// # Example
///
/// ```
/// use delphi_primitives::Round;
///
/// let r = Round(1);
/// assert_eq!(r.next(), Round(2));
/// assert!(r < r.next());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Round(pub u16);

impl Round {
    /// The first round of any protocol in this workspace.
    pub const FIRST: Round = Round(1);

    /// The round after this one.
    #[inline]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Zero-based index of this round, for use in per-round storage.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the round is 0 (rounds are 1-based).
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!(self.0 >= 1, "rounds are 1-based");
        usize::from(self.0) - 1
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round-{}", self.0)
    }
}

impl Encode for Round {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.0);
    }
}

impl Decode for Round {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Round(r.get_u16()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(7).to_string(), "node-7");
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId::from(9u16), NodeId(9));
    }

    #[test]
    fn node_id_all_enumerates_in_order() {
        assert_eq!(NodeId::all(0).count(), 0);
        let ids: Vec<_> = NodeId::all(4).collect();
        assert_eq!(ids, [NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn round_ordering_and_next() {
        assert_eq!(Round::FIRST, Round(1));
        assert_eq!(Round(3).next(), Round(4));
        assert!(Round(3) < Round(4));
        assert_eq!(Round(5).index(), 4);
    }

    #[test]
    fn id_wire_roundtrips() {
        for raw in [0u16, 1, 63, 64, 255, 256, u16::MAX] {
            assert_eq!(roundtrip(&NodeId(raw)).unwrap(), NodeId(raw));
            assert_eq!(roundtrip(&Round(raw)).unwrap(), Round(raw));
            assert_eq!(roundtrip(&InstanceId(raw)).unwrap(), InstanceId(raw));
        }
    }

    #[test]
    fn instance_id_display_and_solo() {
        assert_eq!(InstanceId(3).to_string(), "instance-3");
        assert_eq!(InstanceId::SOLO, InstanceId(0));
        assert_eq!(InstanceId::from(5u16).index(), 5);
    }

    #[test]
    fn instance_shard_is_stable_bounded_and_spreads() {
        // Single shard is the identity sink.
        for raw in [0u16, 1, 7, 999, u16::MAX] {
            assert_eq!(InstanceId(raw).shard(1), 0);
            assert_eq!(InstanceId(raw).shard(0), 0);
        }
        for shards in [2usize, 3, 4, 8] {
            let mut hit = vec![0usize; shards];
            for raw in 0..256u16 {
                let s = InstanceId(raw).shard(shards);
                assert!(s < shards);
                // Determinism: the mapping is a pure function.
                assert_eq!(s, InstanceId(raw).shard(shards));
                hit[s] += 1;
            }
            // Every shard gets a fair cut of a dense id range (the oracle
            // basket case): no worker may sit idle.
            for (s, &count) in hit.iter().enumerate() {
                assert!(count > 256 / shards / 4, "shard {s} starved: {hit:?}");
            }
        }
    }
}
