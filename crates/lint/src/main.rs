#![forbid(unsafe_code)]
//! CLI for `delphi-lint`; see `delphi-lint --help`.

use std::path::PathBuf;
use std::process::ExitCode;

use delphi_lint::baseline::Baseline;
use delphi_lint::rules::RULES;

const USAGE: &str = "delphi-lint — Delphi workspace invariant checker

USAGE:
    delphi-lint [OPTIONS]

OPTIONS:
    --root <PATH>       Workspace root (default: .)
    --baseline <PATH>   Baseline file (default: <root>/lint-baseline.toml)
    --deny              Exit non-zero when the ratchet fails
    --write-baseline    Freeze the current violations as the new baseline
    --list-rules        Print the rule names and exit
    --help              Print this help

A violation is suppressed by an annotation on its line or the line above:
    // lint: allow(<rule>) — <reason>
The reason is mandatory; reason-less annotations are ignored.";

fn main() -> ExitCode {
    match cli() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("delphi-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn cli() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut deny = false;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a path")?),
            "--baseline" => {
                baseline_path = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--deny" => deny = true,
            "--write-baseline" => write_baseline = true,
            "--list-rules" => {
                for rule in RULES {
                    println!("{rule}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.toml"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("cannot read {}: {e}", baseline_path.display())),
    };

    let report = delphi_lint::run(&root, &baseline)?;

    if write_baseline {
        let frozen = Baseline::freeze(&report.violations);
        std::fs::write(&baseline_path, frozen.render())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "froze {} violation(s) across {} rule(s) into {}",
            report.violations.len(),
            RULES.len(),
            baseline_path.display(),
        );
        return Ok(ExitCode::SUCCESS);
    }

    // New violations (beyond the baseline count) print in full; baselined
    // debt prints as per-rule totals so the signal stays readable.
    let mut frozen_total = 0u64;
    for rule in RULES {
        let rule_violations: Vec<_> = report.violations.iter().filter(|v| v.rule == rule).collect();
        if rule_violations.is_empty() {
            continue;
        }
        let grown: Vec<_> = report.ratchet.grown.iter().filter(|d| d.rule == rule).collect();
        if grown.is_empty() {
            frozen_total += rule_violations.len() as u64;
            println!("[{rule}] {} baselined violation(s)", rule_violations.len());
            continue;
        }
        println!("[{rule}] ratchet broken:");
        for drift in &grown {
            println!(
                "  {}: {} violation(s), baseline allows {}",
                drift.file, drift.current, drift.baseline,
            );
            for v in rule_violations.iter().filter(|v| v.file == drift.file) {
                println!("    {}:{}: {}", v.file, v.line, v.message);
            }
        }
    }
    for drift in &report.ratchet.stale {
        println!(
            "[{}] stale baseline for {}: frozen {} but found {} — run --write-baseline \
             to ratchet down",
            drift.rule, drift.file, drift.baseline, drift.current,
        );
    }

    if report.ratchet.clean() {
        println!("delphi-lint: clean — 0 new violations, {frozen_total} frozen in baseline",);
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "delphi-lint: {} (rule, file) pair(s) above baseline, {} stale",
            report.ratchet.grown.len(),
            report.ratchet.stale.len(),
        );
        Ok(if deny { ExitCode::FAILURE } else { ExitCode::SUCCESS })
    }
}
