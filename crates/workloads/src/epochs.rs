//! Deterministic multi-epoch price feeds for streaming-oracle runs.
//!
//! A streaming oracle needs a *fresh* basket quote every epoch, and every
//! node of a distributed deployment must derive the *same* quote without
//! any coordination — exactly the trick `deployment_inputs` plays for
//! one-shot runs, extended along the epoch axis. [`EpochFeed`] provides
//! random access: `minute(epoch, n)` is a pure function of `(config,
//! seed, epoch)`, so a node that joins at epoch 40 derives epoch 40's
//! quotes without replaying 0–39, and two processes never disagree.

use crate::assets::{AssetMinute, MultiAssetConfig, MultiAssetFeed};

/// Mixes the epoch into the basket seed (splitmix-style odd constant) so
/// epochs are mutually independent while the whole stream replays from
/// one `(config, seed)` pair.
fn epoch_seed(seed: u64, epoch: u32) -> u64 {
    seed ^ (u64::from(epoch) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Random-access generator of per-epoch basket quotes.
///
/// # Example
///
/// ```
/// use delphi_workloads::{EpochFeed, MultiAssetConfig};
///
/// let feed = EpochFeed::new(MultiAssetConfig::default_basket(), 7);
/// let epoch_3 = feed.minute(3, 16);
/// assert_eq!(epoch_3.len(), 4);
/// assert_eq!(epoch_3[0].inputs.len(), 16);
/// // Pure function of (config, seed, epoch): replays identically.
/// assert_eq!(feed.minute(3, 16)[0].inputs, epoch_3[0].inputs);
/// ```
#[derive(Clone, Debug)]
pub struct EpochFeed {
    cfg: MultiAssetConfig,
    seed: u64,
}

impl EpochFeed {
    /// Creates the feed.
    ///
    /// # Panics
    ///
    /// Panics on an invalid basket (empty, duplicate names, degenerate
    /// feed parameters) — validated eagerly so a bad config fails at
    /// construction, not at epoch 40.
    pub fn new(cfg: MultiAssetConfig, seed: u64) -> EpochFeed {
        // One throwaway instantiation runs every basket validation.
        let _ = MultiAssetFeed::new(cfg.clone(), seed);
        EpochFeed { cfg, seed }
    }

    /// Number of assets in the basket.
    pub fn assets(&self) -> usize {
        self.cfg.assets.len()
    }

    /// One epoch's basket quotes and per-node inputs, for `n` oracle
    /// nodes — deterministic random access.
    pub fn minute(&self, epoch: u32, n: usize) -> Vec<AssetMinute> {
        MultiAssetFeed::new(self.cfg.clone(), epoch_seed(self.seed, epoch)).next_minute(n)
    }

    /// One epoch's per-node inputs, indexed `[asset][node]` — the whole
    /// minute reduced to what the oracle service consumes. Price sources
    /// should call this once per epoch and cache it: regenerating the
    /// minute per `(asset, node)` lookup multiplies the sampling work by
    /// the basket size.
    pub fn inputs(&self, epoch: u32, n: usize) -> Vec<Vec<f64>> {
        self.minute(epoch, n).into_iter().map(|a| a.inputs).collect()
    }

    /// Node `node`'s input for `(epoch, asset)` — a convenience over
    /// [`EpochFeed::inputs`] for one-off lookups (it regenerates the
    /// epoch's minute every call).
    ///
    /// # Panics
    ///
    /// Panics if `asset` or `node` is out of range.
    pub fn input(&self, epoch: u32, asset: usize, node: usize, n: usize) -> f64 {
        self.minute(epoch, n)[asset].inputs[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_deterministic_and_mutually_independent() {
        let feed = EpochFeed::new(MultiAssetConfig::synthetic(3), 9);
        assert_eq!(feed.assets(), 3);
        let (a, b) = (feed.minute(5, 8), feed.minute(5, 8));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.inputs, y.inputs, "same epoch replays identically");
        }
        let other_epoch = feed.minute(6, 8);
        assert_ne!(a[0].inputs, other_epoch[0].inputs, "epochs quote independently");
        let other_seed = EpochFeed::new(MultiAssetConfig::synthetic(3), 10);
        assert_ne!(a[0].inputs, other_seed.minute(5, 8)[0].inputs);
    }

    #[test]
    fn inputs_stay_inside_the_epoch_quote_hull() {
        let feed = EpochFeed::new(MultiAssetConfig::default_basket(), 1);
        for epoch in [0u32, 17, 4096] {
            for asset in feed.minute(epoch, 12) {
                let lo = asset.quote.exchange_prices.iter().copied().fold(f64::INFINITY, f64::min);
                let hi =
                    asset.quote.exchange_prices.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                for v in &asset.inputs {
                    assert!(*v >= lo && *v <= hi, "{}@{epoch}: {v} outside hull", asset.name);
                }
            }
        }
    }

    #[test]
    fn input_accessor_matches_minute() {
        let feed = EpochFeed::new(MultiAssetConfig::synthetic(2), 4);
        let minute = feed.minute(7, 6);
        assert_eq!(feed.input(7, 1, 3, 6), minute[1].inputs[3]);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn invalid_baskets_fail_at_construction() {
        use crate::assets::AssetConfig;
        let cfg = MultiAssetConfig {
            assets: vec![AssetConfig::scaled("X", 1.0), AssetConfig::scaled("X", 2.0)],
        };
        let _ = EpochFeed::new(cfg, 0);
    }
}
