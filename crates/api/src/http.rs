//! Minimal HTTP/1.1 for the serving layer: a pure request parser, the
//! route table, and response rendering.
//!
//! Everything here is sans-io (bytes in, bytes out) so it unit-tests
//! without sockets; `server` drives it over the vendored
//! `tokio::net::TcpListener`. The surface is deliberately tiny — `GET`
//! only, length-delimited keep-alive responses (so a polling reader
//! reuses one connection instead of paying a dial per poll), streams
//! close-delimited — because the readers are dashboards, light clients,
//! and `curl`, not general HTTP agents. Like the TOML parser in
//! `delphi-net::config`, it is hand-rolled against a fixed grammar
//! rather than vendored.

use std::sync::Arc;

use delphi_primitives::InstanceId;

use crate::attest::attestation_to_hex;
use crate::feed::FeedUpdate;

/// Hard cap on a request head (request line + headers). Anything larger
/// is rejected before buffering more — the parser's DoS guard.
pub const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Why a request was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The bytes are not a well-formed HTTP/1.x request head.
    Malformed(&'static str),
    /// The head exceeded [`MAX_REQUEST_HEAD`] without terminating.
    TooLarge,
}

/// A parsed request head: the method and the request target (path plus
/// optional query). Headers are validated for shape but not retained —
/// no route reads them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET` for everything this server serves).
    pub method: String,
    /// The origin-form target, e.g. `/v0/history/2?limit=5`.
    pub target: String,
    /// Bytes the head consumed from the buffer (through the blank
    /// line) — what a keep-alive connection drains before the next
    /// request.
    pub head_len: usize,
}

/// Incremental request parsing over whatever has been read so far.
///
/// Returns `Ok(None)` while the head is incomplete (read more bytes and
/// call again), `Ok(Some(request))` once the blank line arrived.
///
/// # Errors
///
/// [`HttpError::TooLarge`] once `buf` exceeds [`MAX_REQUEST_HEAD`]
/// without a terminator; [`HttpError::Malformed`] on a head that can
/// never become valid HTTP/1.x.
pub fn parse_request(buf: &[u8]) -> Result<Option<Request>, HttpError> {
    let head_end = find_head_end(buf);
    if head_end.is_none() {
        if buf.len() > MAX_REQUEST_HEAD {
            return Err(HttpError::TooLarge);
        }
        // An early sanity check so garbage fails fast instead of after
        // 8 KiB: the first line, once complete, must parse.
        if buf.windows(2).any(|w| w == b"\r\n") {
            parse_request_line(buf)?;
        }
        return Ok(None);
    }
    let head_len = head_end.expect("checked above");
    let head = &buf[..head_len];
    if head.len() > MAX_REQUEST_HEAD {
        return Err(HttpError::TooLarge);
    }
    let (method, target) = parse_request_line(head)?;
    let text = std::str::from_utf8(head).map_err(|_| HttpError::Malformed("not utf-8"))?;
    for line in text.split("\r\n").skip(1).filter(|l| !l.is_empty()) {
        let (name, _) = line.split_once(':').ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("bad header name"));
        }
    }
    Ok(Some(Request { method, target, head_len }))
}

/// Index just past the `\r\n\r\n` terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parses the request line out of `buf` (which must hold at least one
/// complete `\r\n`-terminated line).
fn parse_request_line(buf: &[u8]) -> Result<(String, String), HttpError> {
    let line_end =
        buf.windows(2).position(|w| w == b"\r\n").ok_or(HttpError::Malformed("no request line"))?;
    let line =
        std::str::from_utf8(&buf[..line_end]).map_err(|_| HttpError::Malformed("not utf-8"))?;
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().ok_or(HttpError::Malformed("no target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("no version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra request-line fields"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed("target must be origin-form"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("not http/1.x"));
    }
    Ok((method.to_string(), target.to_string()))
}

/// The route table: everything the serving layer answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `GET /v0/health` — liveness plus updates served.
    Health,
    /// `GET /v0/stats` — epoch and transport counters.
    Stats,
    /// `GET /v0/latest/{asset}` — latest update snapshot.
    Latest(InstanceId),
    /// `GET /v0/history/{asset}?limit=K` — recent updates, newest first.
    History {
        /// The asset whose history is requested.
        asset: InstanceId,
        /// Maximum updates to return.
        limit: usize,
    },
    /// `GET /v0/attestation/{asset}` — the latest slot attestation with
    /// its verification parameters.
    Attestation(InstanceId),
    /// `GET /v0/subscribe/{asset}` — ndjson stream of updates.
    Subscribe(InstanceId),
    /// Anything else.
    NotFound,
}

/// Default and cap for `/v0/history` limits.
pub const DEFAULT_HISTORY_LIMIT: usize = 16;
/// Hard cap on `/v0/history?limit=`.
pub const MAX_HISTORY_LIMIT: usize = 256;

/// Resolves a request target to a [`Route`].
pub fn route(target: &str) -> Route {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/v0/health" => Route::Health,
        "/v0/stats" => Route::Stats,
        _ => {
            let asset = |prefix: &str| {
                path.strip_prefix(prefix).and_then(|raw| raw.parse::<u16>().ok()).map(InstanceId)
            };
            if let Some(a) = asset("/v0/latest/") {
                Route::Latest(a)
            } else if let Some(a) = asset("/v0/history/") {
                let limit = query
                    .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("limit=")))
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(DEFAULT_HISTORY_LIMIT);
                Route::History { asset: a, limit: limit.clamp(1, MAX_HISTORY_LIMIT) }
            } else if let Some(a) = asset("/v0/attestation/") {
                Route::Attestation(a)
            } else if let Some(a) = asset("/v0/subscribe/") {
                Route::Subscribe(a)
            } else {
                Route::NotFound
            }
        }
    }
}

/// Renders a full length-delimited response: status line, minimal
/// headers, body. The declared length lets the connection stay open for
/// the next request (keep-alive).
pub fn response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\nconnection: keep-alive\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// The response head that opens an `/v0/subscribe` stream: ndjson with no
/// declared length, delimited by connection close.
pub fn stream_head() -> Vec<u8> {
    b"HTTP/1.1 200 OK\r\ncontent-type: application/x-ndjson\r\nconnection: close\r\n\r\n".to_vec()
}

/// One update as a JSON object (the body of `/v0/latest`, one line of
/// `/v0/subscribe`, one element of `/v0/history`).
pub fn json_update(update: &FeedUpdate) -> String {
    let mut out = format!(
        "{{\"epoch\":{},\"asset\":{},\"value\":{}",
        update.epoch.0,
        update.asset.0,
        json_f64(update.value)
    );
    if let Some(att) = &update.attestation {
        out.push_str(&format!(",\"attestation\":\"{}\"", attestation_to_hex(att)));
    }
    out.push('}');
    out
}

/// History body: newest-first array of updates.
pub fn json_history(asset: InstanceId, updates: &[Arc<FeedUpdate>]) -> String {
    let items: Vec<String> = updates.iter().map(|u| json_update(u)).collect();
    format!("{{\"asset\":{},\"updates\":[{}]}}", asset.0, items.join(","))
}

/// An f64 that stays a JSON number (matching the cluster report codec).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::EpochId;

    #[test]
    fn complete_request_parses_incrementally() {
        let raw = b"GET /v0/latest/0 HTTP/1.1\r\nhost: x\r\naccept: */*\r\n\r\n";
        // Every strict prefix is incomplete, never an error.
        for cut in 0..raw.len() {
            assert_eq!(parse_request(&raw[..cut]), Ok(None), "prefix {cut}");
        }
        let req = parse_request(raw).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/v0/latest/0");
        assert_eq!(req.head_len, raw.len(), "head_len covers the whole head");
        // Trailing bytes past the head (a pipelined next request) don't
        // confuse it, and head_len tells keep-alive where they start.
        let mut extended = raw.to_vec();
        extended.extend_from_slice(b"GET /v0/health HTT");
        let first = parse_request(&extended).unwrap().unwrap();
        assert_eq!(first.target, "/v0/latest/0");
        assert_eq!(first.head_len, raw.len());
    }

    #[test]
    fn malformed_requests_are_rejected_early() {
        // A bad request line fails as soon as the line is complete —
        // before the blank-line terminator ever arrives.
        assert!(parse_request(b"NOT A REQUEST\r\n").is_err());
        assert!(parse_request(b"get /lower HTTP/1.1\r\n\r\n").is_err(), "lowercase method");
        assert!(parse_request(b"GET nopath HTTP/1.1\r\n\r\n").is_err(), "non-origin target");
        assert!(parse_request(b"GET / SPDY/3\r\n\r\n").is_err(), "wrong protocol");
        assert!(parse_request(b"GET / HTTP/1.1 extra\r\n\r\n").is_err(), "extra fields");
        assert!(parse_request(b"GET / HTTP/1.1\r\nbad header line\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\nname space: v\r\n\r\n").is_err());
        assert!(parse_request(b"GET \xff\xfe HTTP/1.1\r\n\r\n").is_err(), "not utf-8");
    }

    #[test]
    fn oversized_heads_are_cut_off() {
        // A header that never terminates: rejected once past the cap,
        // incomplete before it.
        let mut raw = b"GET /v0/health HTTP/1.1\r\nx: ".to_vec();
        raw.resize(MAX_REQUEST_HEAD, b'a');
        assert_eq!(parse_request(&raw), Ok(None));
        raw.resize(MAX_REQUEST_HEAD + 1, b'a');
        assert_eq!(parse_request(&raw), Err(HttpError::TooLarge));
        // A terminated head over the cap is equally rejected.
        let mut huge = b"GET / HTTP/1.1\r\nx: ".to_vec();
        huge.resize(MAX_REQUEST_HEAD + 8, b'b');
        huge.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_request(&huge), Err(HttpError::TooLarge));
    }

    #[test]
    fn route_table_resolves_paths_and_limits() {
        assert_eq!(route("/v0/health"), Route::Health);
        assert_eq!(route("/v0/stats"), Route::Stats);
        assert_eq!(route("/v0/latest/3"), Route::Latest(InstanceId(3)));
        assert_eq!(
            route("/v0/history/1"),
            Route::History { asset: InstanceId(1), limit: DEFAULT_HISTORY_LIMIT }
        );
        assert_eq!(
            route("/v0/history/1?limit=5"),
            Route::History { asset: InstanceId(1), limit: 5 }
        );
        assert_eq!(
            route("/v0/history/1?limit=999999"),
            Route::History { asset: InstanceId(1), limit: MAX_HISTORY_LIMIT },
            "limits clamp"
        );
        assert_eq!(route("/v0/attestation/0"), Route::Attestation(InstanceId(0)));
        assert_eq!(route("/v0/subscribe/2"), Route::Subscribe(InstanceId(2)));
        for bad in ["/", "/v0/latest/", "/v0/latest/x", "/v0/latest/70000", "/v1/health"] {
            assert_eq!(route(bad), Route::NotFound, "{bad}");
        }
    }

    #[test]
    fn responses_carry_length_and_keep_alive() {
        let raw = response(404, "application/json", "{\"error\":\"no such asset\"}");
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("content-length: 25\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"no such asset\"}"));
    }

    #[test]
    fn update_json_is_flat_and_parseable_by_the_report_codec() {
        let update = FeedUpdate {
            epoch: EpochId(4),
            asset: InstanceId(1),
            value: 40000.0,
            attestation: None,
        };
        assert_eq!(json_update(&update), "{\"epoch\":4,\"asset\":1,\"value\":40000.0}");
        let hist = json_history(InstanceId(1), &[Arc::new(update)]);
        assert!(hist.starts_with("{\"asset\":1,\"updates\":[{"));
    }
}
