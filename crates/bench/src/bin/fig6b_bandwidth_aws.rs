#![forbid(unsafe_code)]
//! Regenerates **Fig. 6b**: network bandwidth vs `n` on AWS — Delphi is
//! an order of magnitude below FIN and Abraham et al. and grows slower.
//!
//! Configuration per the figure caption: `ρ0 = ε = 2$, Δ = 2000$`.
//!
//! `cargo run --release -p delphi-bench --bin fig6b_bandwidth_aws [--quick]`
//!
//! With `--cluster <config.toml>`, the simulated sweep is replaced by two
//! *real* deployment runs — one OS process per `[[node]]` entry, one
//! basket of Delphi instances per process, over real sockets — once with
//! step batching (whole steps share one v2 frame) and once without (one
//! frame per envelope), and the measured wire bytes are compared (build
//! the node binary first: `cargo build --release -p delphi-bench --bin
//! delphi-node`).

use delphi_bench::cluster::{cluster_flag, run_cluster, summarize, ClusterRunSpec, LOCAL_EPSILON};
use delphi_bench::{
    emit_bench_json, growth_exponent, oracle_config, quick_mode, run_aad, run_acs, run_delphi,
    run_multi_asset_delphi, spread_inputs, TextTable,
};
use delphi_sim::Topology;
use delphi_workloads::MultiAssetConfig;

const MIB: f64 = 1024.0 * 1024.0;

fn run_cluster_mode(config: std::path::PathBuf) {
    let assets = MultiAssetConfig::default_basket().assets.len();
    println!(
        "== Fig. 6b (cluster mode): wire bytes over real sockets, {assets}-asset basket, \
         batched vs unbatched ==\n"
    );
    let mut spec = ClusterRunSpec::new(config);
    spec.assets = assets;
    let mut measured = Vec::new();
    for unbatched in [false, true] {
        spec.unbatched = unbatched;
        let label = if unbatched { "unbatched" } else { "batched v2" };
        let outcome = match run_cluster(&spec) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("fig6b: {label} cluster run failed: {e}");
                std::process::exit(1);
            }
        };
        assert!(outcome.converged(LOCAL_EPSILON), "{label}: cluster outputs disagree");
        println!("{label:>13}: {}", summarize(&outcome, LOCAL_EPSILON));
        measured.push(outcome.total_stats());
    }
    let (batched, unbatched) = (measured[0], measured[1]);
    println!(
        "\nbatched {:.2} MiB / {} frames / {} MACs ({} envelopes) vs \
         unbatched {:.2} MiB / {} frames / {} MACs ({} envelopes)",
        batched.sent_bytes as f64 / MIB,
        batched.sent_frames,
        batched.mac_ops,
        batched.sent_entries,
        unbatched.sent_bytes as f64 / MIB,
        unbatched.sent_frames,
        unbatched.mac_ops,
        unbatched.sent_entries,
    );
    // The runs are independent asynchronous executions, so compare
    // per-envelope costs (schedule-independent), not absolute totals.
    let per = |v: u64, s: &delphi_net::NetStats| v as f64 / s.sent_entries as f64;
    println!(
        "per-envelope on real sockets: {:.1} vs {:.1} bytes, {:.2} vs {:.2} frames, \
         {:.2} vs {:.2} MACs (batched vs unbatched)",
        per(batched.sent_bytes, &batched),
        per(unbatched.sent_bytes, &unbatched),
        per(batched.sent_frames, &batched),
        per(unbatched.sent_frames, &unbatched),
        per(batched.mac_ops, &batched),
        per(unbatched.mac_ops, &unbatched),
    );
    assert_eq!(unbatched.sent_frames, unbatched.sent_entries, "unbatched: one frame per envelope");
    assert!(
        batched.sent_frames < batched.sent_entries,
        "batching must coalesce envelopes into shared frames"
    );
    assert!(
        batched.sent_bytes * unbatched.sent_entries < unbatched.sent_bytes * batched.sent_entries,
        "batching must cut wire bytes per envelope"
    );
}

fn main() {
    if let Some(config) = cluster_flag() {
        run_cluster_mode(config);
        return;
    }
    let ns: &[usize] = if quick_mode() { &[16, 64] } else { &[16, 64, 112, 160] };
    let center = 40_000.0;
    println!("== Fig. 6b: bandwidth vs n on AWS (MiB per agreement, all nodes) ==\n");

    let mut table =
        TextTable::new(&["n", "Delphi d=20$", "Delphi d=180$", "FIN", "Abraham et al."]);
    let mut delphi_pts = Vec::new();
    let mut fin_pts = Vec::new();
    let mut aad_pts = Vec::new();
    let mut rows: Vec<[f64; 4]> = Vec::new();
    for &n in ns {
        let cfg = oracle_config(n, 2.0);
        let d20 = run_delphi(&cfg, Topology::aws_geo(n), &spread_inputs(n, center, 20.0), 6101);
        let d180 = run_delphi(&cfg, Topology::aws_geo(n), &spread_inputs(n, center, 180.0), 6102);
        let fin = run_acs(n, Topology::aws_geo(n), &spread_inputs(n, center, 20.0), 6103);
        let aad = run_aad(n, Topology::aws_geo(n), &spread_inputs(n, center, 20.0), 10, 6104);
        table.row(&[
            n.to_string(),
            format!("{:.2}", d20.wire_mib),
            format!("{:.2}", d180.wire_mib),
            format!("{:.2}", fin.wire_mib),
            format!("{:.2}", aad.wire_mib),
        ]);
        delphi_pts.push((n as f64, d20.wire_mib));
        fin_pts.push((n as f64, fin.wire_mib));
        aad_pts.push((n as f64, aad.wire_mib));
        rows.push([d20.wire_mib, d180.wire_mib, fin.wire_mib, aad.wire_mib]);
        // Deterministic simulated byte counts, in the BENCH_JSON
        // convention (a "ns" slot holding wire bytes — lower is better).
        for (label, point) in
            [("delphi_d20", &d20), ("delphi_d180", &d180), ("fin", &fin), ("aad", &aad)]
        {
            emit_bench_json(
                &format!("fig6b/{label}_n{n}_wire_bytes"),
                point.wire_mib * 1024.0 * 1024.0,
            );
        }
        eprintln!("  n={n} done");
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());

    let last = rows.last().expect("rows");
    println!("shape checks:");
    println!(
        "  Delphi lighter than FIN at n = {}: {} ({:.1}x)",
        ns[ns.len() - 1],
        last[0] < last[2],
        last[2] / last[0]
    );
    println!(
        "  Delphi lighter than Abraham et al.: {} ({:.1}x)",
        last[0] < last[3],
        last[3] / last[0]
    );
    println!(
        "  growth exponents (bytes ~ n^k): Delphi {:.2}, FIN {:.2}, AAD {:.2}",
        growth_exponent(&delphi_pts),
        growth_exponent(&fin_pts),
        growth_exponent(&aad_pts)
    );
    println!(
        "  Delphi grows slower than both: {}",
        growth_exponent(&delphi_pts) < growth_exponent(&fin_pts)
            && growth_exponent(&delphi_pts) < growth_exponent(&aad_pts)
    );

    // A DORA-style deployment runs one Delphi instance per asset; batching
    // frames across the basket is where the multiplexed transport saves.
    let ma_n = ns[0];
    let basket = MultiAssetConfig::default_basket();
    let assets = basket.assets.len();
    let shards = std::thread::available_parallelism().map_or(1, |p| p.get());
    let cfg = oracle_config(ma_n, 2.0);
    let point = run_multi_asset_delphi(&cfg, basket, Topology::aws_geo(ma_n), 6105, shards);
    println!("\nmulti-asset deployment ({assets} feeds, n = {ma_n}), batched vs unbatched:");
    for a in &point.per_asset {
        println!(
            "  {:<4} spread {:.3}$ (ε-agreement: {}), solo-mesh runtime {:.0} ms",
            a.name,
            a.spread,
            a.spread <= cfg.epsilon(),
            a.runtime_ms
        );
    }
    println!(
        "  batched MiB {:.2} vs unbatched MiB {:.2} — {}",
        point.savings.batched_wire_bytes as f64 / (1024.0 * 1024.0),
        point.savings.unbatched_wire_bytes as f64 / (1024.0 * 1024.0),
        point.savings
    );
}
