#![forbid(unsafe_code)]
//! One Delphi protocol node as one OS process — the unit the
//! multi-process cluster harness deploys.
//!
//! Reads a TOML cluster config (`delphi_net::config`), picks its own
//! `[[node]]` entry by `--id`, runs a `DelphiNode` over real sockets
//! against every peer in the file, and prints exactly one JSON report
//! line (`delphi_net::cluster::NodeReport`) on stdout for the launcher.
//!
//! ```text
//! delphi-node --config cluster.toml --id 2 [--input 40013.5]
//!             [--assets 1] [--quote-seed 7] [--unbatched]
//!             [--deadline-ms 60000] [--rho0 2] [--epsilon 2]
//!             [--delta-max 2000]
//!             [--epochs K] [--depth D] [--window W] [--adaptive]
//!             [--recv-shards S] [--send-shards S] [--vector]
//!             [--api-bind 127.0.0.1:8080]
//! ```
//!
//! Without `--input`, the node derives its input from one minute of the
//! BTC workload (`delphi_workloads::deployment_inputs`) under
//! `--quote-seed`: every process derives the identical vector and picks
//! its own entry, so no input-distribution step is needed.
//!
//! `--assets k` runs `k` independent Delphi instances (a DORA-style
//! asset basket, asset `a` seeded with `quote_seed + a`) multiplexed over
//! the one mesh via `run_instances` — the configuration where step
//! batching pays: one frame and one HMAC per protocol step per peer
//! instead of one per envelope. The report's `output` is the mean of the
//! per-asset outputs (each asset converges on its own, so the mean
//! converges too).
//!
//! `--epochs K` switches from a one-shot run to the **streaming oracle**:
//! an `OracleService` pipeline agreeing on a fresh `--assets`-sized
//! basket every epoch, `--depth` epochs in flight under a `--window`-epoch
//! live window, prices from the deterministic multi-epoch feed
//! (`delphi_workloads::EpochFeed` under `--quote-seed`). `--adaptive`
//! turns on adaptive batch flushing (size/time triggers) instead of
//! per-step flushing. The report then carries every `(epoch, asset,
//! value)` agreement so the launcher can check per-epoch ε-convergence.
//!
//! `--vector` (epoch runs only) runs each epoch's basket as ONE
//! vector-valued agreement instance — a single bundle exchange and one
//! quorum walk per round for the whole basket — instead of `--assets`
//! independent scalar instances. Agreements in the report keep the same
//! `(epoch, asset, value)` shape; the `vector_instances`/`vector_dims`
//! counters in `stats` mark the mode.
//!
//! `--api-bind ADDR` (epoch runs only) additionally serves the read-side
//! HTTP API on `ADDR` — snapshots, history, subscriptions, and signed
//! attestations — off the protocol hot path, via
//! `delphi::ServiceBuilder::serve`. Attestation keys derive from the
//! node's cluster key material, so a light client holding the cluster
//! seed verifies served values offline.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use delphi_api::ServiceBuilder;
use delphi_bench::feed_price_source;
use delphi_core::{DelphiConfig, DelphiNode};
use delphi_net::cluster::NodeReport;
use delphi_net::config::ClusterConfig;
use delphi_net::{run_epoch_service, run_instances, FlushPolicy, RunOptions};
use delphi_primitives::EpochOutcome;
use delphi_workloads::{deployment_inputs, EpochFeed, MultiAssetConfig};

struct Args {
    config: std::path::PathBuf,
    id: u16,
    input: Option<f64>,
    assets: usize,
    quote_seed: u64,
    unbatched: bool,
    deadline_ms: u64,
    rho0: f64,
    epsilon: f64,
    delta_max: f64,
    epochs: u32,
    depth: usize,
    window: usize,
    adaptive: bool,
    recv_shards: usize,
    send_shards: usize,
    vector: bool,
    api_bind: Option<std::net::SocketAddr>,
}

fn parse_args() -> Result<Args, String> {
    let mut config = None;
    let mut id = None;
    let mut input = None;
    let mut assets = 1usize;
    let mut quote_seed = 7u64;
    let mut unbatched = false;
    let mut deadline_ms = 60_000u64;
    let mut rho0 = 2.0f64;
    let mut epsilon = 2.0f64;
    let mut delta_max = 2_000.0f64;
    let mut epochs = 0u32;
    let mut depth = 2usize;
    let mut window = 6usize;
    let mut adaptive = false;
    let mut recv_shards = 1usize;
    let mut send_shards = 1usize;
    let mut vector = false;
    let mut api_bind = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--config" => config = Some(value("--config")?.into()),
            "--id" => {
                id = Some(value("--id")?.parse().map_err(|e| format!("--id: {e}"))?);
            }
            "--input" => {
                input = Some(value("--input")?.parse().map_err(|e| format!("--input: {e}"))?);
            }
            "--assets" => {
                assets = value("--assets")?.parse().map_err(|e| format!("--assets: {e}"))?;
            }
            "--quote-seed" => {
                quote_seed =
                    value("--quote-seed")?.parse().map_err(|e| format!("--quote-seed: {e}"))?;
            }
            "--unbatched" => unbatched = true,
            "--deadline-ms" => {
                deadline_ms =
                    value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--rho0" => rho0 = value("--rho0")?.parse().map_err(|e| format!("--rho0: {e}"))?,
            "--epsilon" => {
                epsilon = value("--epsilon")?.parse().map_err(|e| format!("--epsilon: {e}"))?;
            }
            "--delta-max" => {
                delta_max =
                    value("--delta-max")?.parse().map_err(|e| format!("--delta-max: {e}"))?;
            }
            "--epochs" => {
                epochs = value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?;
            }
            "--depth" => {
                depth = value("--depth")?.parse().map_err(|e| format!("--depth: {e}"))?;
            }
            "--window" => {
                window = value("--window")?.parse().map_err(|e| format!("--window: {e}"))?;
            }
            "--adaptive" => adaptive = true,
            "--recv-shards" => {
                recv_shards =
                    value("--recv-shards")?.parse().map_err(|e| format!("--recv-shards: {e}"))?;
            }
            "--send-shards" => {
                send_shards =
                    value("--send-shards")?.parse().map_err(|e| format!("--send-shards: {e}"))?;
            }
            "--vector" => vector = true,
            "--api-bind" => {
                api_bind =
                    Some(value("--api-bind")?.parse().map_err(|e| format!("--api-bind: {e}"))?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if assets == 0 {
        return Err("--assets must be at least 1".to_string());
    }
    if input.is_some() && assets > 1 {
        return Err("--input only applies to a single-asset run".to_string());
    }
    if input.is_some() && epochs > 0 {
        return Err("--input only applies to a one-shot run".to_string());
    }
    if epochs > 0 && (depth == 0 || window < depth) {
        return Err("--epochs needs --depth >= 1 and --window >= --depth".to_string());
    }
    if recv_shards == 0 {
        return Err("--recv-shards must be at least 1".to_string());
    }
    if send_shards == 0 {
        return Err("--send-shards must be at least 1".to_string());
    }
    if api_bind.is_some() && epochs == 0 {
        return Err("--api-bind only applies to an epoch run (--epochs)".to_string());
    }
    if vector && epochs == 0 {
        return Err("--vector only applies to an epoch run (--epochs)".to_string());
    }
    Ok(Args {
        config: config.ok_or("--config is required")?,
        id: id.ok_or("--id is required")?,
        input,
        assets,
        quote_seed,
        unbatched,
        deadline_ms,
        rho0,
        epsilon,
        delta_max,
        epochs,
        depth,
        window,
        adaptive,
        recv_shards,
        send_shards,
        vector,
        api_bind,
    })
}

/// The basket an epoch run quotes: the reference 4-asset basket when it
/// fits, synthetic price-scaled assets otherwise.
fn epoch_basket(assets: usize) -> MultiAssetConfig {
    if assets == MultiAssetConfig::default_basket().assets.len() {
        MultiAssetConfig::default_basket()
    } else {
        MultiAssetConfig::synthetic(assets)
    }
}

async fn run(args: Args) -> Result<NodeReport, String> {
    let cluster = ClusterConfig::load(&args.config).map_err(|e| format!("config: {e}"))?;
    let n = cluster.n();
    let keychain = cluster.keychain(args.id).map_err(|e| format!("keychain: {e}"))?;
    let addrs = cluster.addresses();

    let cfg = DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(args.rho0)
        .delta_max(args.delta_max)
        .epsilon(args.epsilon)
        .build()
        .map_err(|e| format!("protocol config: {e}"))?;
    let me = delphi_primitives::NodeId(args.id);
    let opts = RunOptions {
        deadline: Duration::from_millis(args.deadline_ms),
        batching: !args.unbatched,
        flush: if args.adaptive { FlushPolicy::adaptive() } else { FlushPolicy::PerStep },
        recv_shards: args.recv_shards,
        send_shards: args.send_shards,
        ..RunOptions::default()
    };
    let started = Instant::now();

    if args.epochs > 0 {
        // Streaming oracle: one agreement per (epoch, asset) pair, prices
        // from the deterministic multi-epoch feed — every process derives
        // the same basket quote per epoch with no distribution step.
        let feed = EpochFeed::new(epoch_basket(args.assets), args.quote_seed);
        let builder = ServiceBuilder::new(cfg, me)
            .epochs(args.epochs)
            .assets(args.assets as u16)
            .pipeline_depth(args.depth)
            .window(args.window)
            .flush(opts.flush)
            .recv_shards(args.recv_shards)
            .send_shards(args.send_shards)
            .batching(!args.unbatched)
            .deadline(Duration::from_millis(args.deadline_ms))
            .vector_baskets(args.vector);
        let source = feed_price_source(feed, me, n);
        let (events, epoch_stats, stats) = match args.api_bind {
            Some(bind) => {
                // Full served deployment: protocol + snapshot cache +
                // subscriptions + signed attestations over HTTP.
                let seed =
                    cluster.key_material(args.id).map_err(|e| format!("key material: {e}"))?;
                let handle = builder
                    .api_bind(bind)
                    .serve(seed, addrs, source)
                    .await
                    .map_err(|e| format!("epoch run: {e}"))?;
                if let Some(api) = handle.api_addr() {
                    eprintln!("delphi-node[{}]: serving readers on http://{api}", args.id);
                }
                handle.finish().await.map_err(|e| format!("epoch run: {e}"))?
            }
            None if args.vector => {
                // Vector lane: events arrive one basket per epoch; flatten
                // to the scalar per-asset shape the report expects.
                let (events, epoch_stats, stats) = run_epoch_service(
                    builder.build_vector_service(source).into_mux(),
                    keychain,
                    addrs,
                    opts,
                )
                .await
                .map_err(|e| format!("epoch run: {e}"))?
                .finish()
                .await
                .map_err(|e| format!("epoch run: {e}"))?;
                (delphi_primitives::flatten_vector_events(events), epoch_stats, stats)
            }
            None => {
                run_epoch_service(builder.build_service(source).into_mux(), keychain, addrs, opts)
                    .await
                    .map_err(|e| format!("epoch run: {e}"))?
                    .finish()
                    .await
                    .map_err(|e| format!("epoch run: {e}"))?
            }
        };
        let mut agreements = Vec::new();
        for event in &events {
            if let EpochOutcome::Agreed(values) = &event.outcome {
                for (a, v) in values.iter().enumerate() {
                    agreements.push((event.epoch.0, a as u16, *v));
                }
            }
        }
        eprintln!(
            "delphi-node[{}]: {} epochs ({} agreements, {} stale, {} late entries, peak {} resident)",
            args.id,
            events.len(),
            agreements.len(),
            epoch_stats.stale_epochs,
            epoch_stats.late_entries,
            epoch_stats.peak_resident,
        );
        let output =
            agreements.iter().map(|(_, _, v)| *v).sum::<f64>() / (agreements.len().max(1) as f64);
        return Ok(NodeReport {
            id: args.id,
            output,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
            agreements,
            stats,
        });
    }

    // One protocol instance per asset; asset `a` quotes minute
    // `quote_seed + a`, so every process derives the same basket.
    let instances: Vec<DelphiNode> = (0..args.assets)
        .map(|a| {
            let input = match args.input {
                Some(v) => v,
                None => deployment_inputs(n, args.quote_seed + a as u64)[usize::from(args.id)],
            };
            DelphiNode::new(cfg.clone(), me, input)
        })
        .collect();

    let (outputs, stats) =
        run_instances(instances, keychain, addrs, opts).await.map_err(|e| format!("run: {e}"))?;
    Ok(NodeReport {
        id: args.id,
        output: outputs.iter().sum::<f64>() / outputs.len() as f64,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        agreements: Vec::new(),
        stats,
    })
}

#[tokio::main]
async fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("delphi-node: {e}");
            return ExitCode::FAILURE;
        }
    };
    let id = args.id;
    match run(args).await {
        Ok(report) => {
            println!("{}", report.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("delphi-node[{id}]: {e}");
            ExitCode::FAILURE
        }
    }
}
