#![forbid(unsafe_code)]
//! The paper's oracle-network application (§VI-A): 16 oracles report the
//! BTC price once a minute, tolerate Byzantine members, and produce a
//! DORA certificate for the blockchain.
//!
//! Run with: `cargo run --example oracle_network`

use delphi::core::DelphiConfig;
use delphi::crypto::signing::Verifier;
use delphi::dora::{Certificate, DoraNode, SmrChannel};
use delphi::primitives::{NodeId, Protocol};
use delphi::sim::adversary::GarbageSpammer;
use delphi::sim::{Simulation, Topology};
use delphi::workloads::{BtcFeed, BtcFeedConfig};

const SEED: &[u8] = b"oracle-network-example";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    // The paper's §VI-A parameters: ρ0 = ε = 2$, Δ = 2000$ (a 30-bit
    // tail bound on the Fréchet range law of Fig. 4).
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(2.0)
        .delta_max(2000.0)
        .epsilon(2.0)
        .build()?;
    println!(
        "oracle network: n={n} t={} | Δ={}$ ρ0={}$ ε={}$ | {} levels, {} rounds",
        cfg.t(),
        cfg.delta_max(),
        cfg.rho0(),
        cfg.epsilon(),
        cfg.num_levels(),
        cfg.r_max()
    );

    // Synthetic multi-exchange feed following the paper's fitted range law.
    let mut feed = BtcFeed::new(BtcFeedConfig::default(), 99);
    let mut smr = SmrChannel::new(SEED, n, cfg.t());

    for minute in 0..3 {
        let quote = feed.next_minute();
        let inputs = feed.node_inputs(&quote, n);
        println!(
            "\nminute {minute}: truth {:.2}$ | exchange range δ = {:.2}$",
            quote.truth,
            quote.range()
        );

        // Two Byzantine oracles: one spams garbage, one reports a price
        // 500$ off (it follows the protocol, so this tests validity).
        let byzantine_garbage = NodeId(5);
        let byzantine_outlier = NodeId(11);
        let nodes: Vec<Box<dyn Protocol<Output = Certificate>>> = NodeId::all(n)
            .map(|id| {
                if id == byzantine_garbage {
                    Box::new(GarbageSpammer::new(id, n, 7, 2, 128, 100)) as Box<_>
                } else if id == byzantine_outlier {
                    DoraNode::new(cfg.clone(), id, quote.truth + 500.0, SEED).boxed()
                } else {
                    DoraNode::new(cfg.clone(), id, inputs[id.index()], SEED).boxed()
                }
            })
            .collect();

        let report = Simulation::new(Topology::aws_geo(n))
            .seed(1000 + minute)
            .faulty(&[byzantine_garbage, byzantine_outlier])
            .run(nodes);
        assert!(report.all_honest_finished(), "oracle round stalled");

        // Every honest oracle assembled a certificate; submit them all —
        // the chain orders them and the contract consumes the first.
        for cert in report.honest_outputs() {
            smr.submit(cert.clone());
        }
        let consumed = smr.consumed().ok_or("no certificate accepted")?;
        println!(
            "  agreed price {:.2}$ | cert signers {} | latency {:.0} ms | traffic {:.2} MiB",
            consumed.value(),
            consumed.signatures.len(),
            report.completion_ms().unwrap_or(f64::NAN),
            report.metrics.total_wire_mib(),
        );
        let candidates = smr.distinct_values();
        println!("  candidate outputs on chain: {candidates:?} (DORA guarantees ≤ 2)");
        assert!(candidates.len() <= 2);
        assert!(
            (consumed.value() - quote.truth).abs()
                <= quote.range() + cfg.epsilon() * 2.0 + cfg.rho0(),
            "certified price strayed from the quotes"
        );
        // Anyone holding the deployment seed can audit the ledger.
        let verifier = Verifier::new(SEED);
        assert!(smr.ledger().iter().all(|c| c.verify(&verifier, n, cfg.t())));
        smr = SmrChannel::new(SEED, n, cfg.t()); // fresh ledger per minute
    }
    println!("\nall minutes certified under 2 Byzantine oracles out of {n}");
    Ok(())
}
