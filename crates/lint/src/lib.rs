#![forbid(unsafe_code)]
//! `delphi-lint`: the workspace invariant checker.
//!
//! The compiler cannot check the invariants Delphi's correctness
//! arguments lean on, so this crate does:
//!
//! - **sans-io layering** — protocol crates never touch `tokio` /
//!   `std::net`, so "sim bytes == TCP bytes" holds by construction;
//! - **panic-freedom** — an honest node that panics is a crash fault
//!   that silently spends the `t < n/3` budget the liveness proof needs;
//! - **bounded queues** — a Byzantine peer must never be able to inflate
//!   memory through a capacity-free queue;
//! - **wire-constant hygiene** — the reserved frame markers live in one
//!   place;
//! - **bench-gate discipline** — every `BENCH_*.json` emitter is gated in
//!   CI.
//!
//! Violations are either fixed, annotated
//! (`// lint: allow(<rule>) — <reason>`), or frozen in
//! `lint-baseline.toml`; the baseline is a ratchet — counts may only go
//! down, and a shrink must be re-frozen so it becomes the new ceiling.
//!
//! The tool is dependency-free (no crates.io access in this environment):
//! the lexer, manifest reader, and baseline format are hand-rolled, like
//! the vendored stubs under `vendor/`.

pub mod baseline;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod workspace;

use std::path::Path;

pub use baseline::{Baseline, Ratchet};
pub use rules::Violation;

/// The result of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Every violation found (baselined ones included).
    pub violations: Vec<Violation>,
    /// The ratchet verdict against the provided baseline.
    pub ratchet: Ratchet,
}

/// Lints the workspace at `root` against `baseline`.
///
/// # Errors
///
/// Returns a description when the workspace cannot be read.
pub fn run(root: &Path, baseline: &Baseline) -> Result<LintReport, String> {
    let ws = workspace::load(root)?;
    let violations = rules::check(&ws);
    let ratchet = baseline.compare(&violations);
    Ok(LintReport { violations, ratchet })
}
