//! Regenerates **Fig. 6b**: network bandwidth vs `n` on AWS — Delphi is
//! an order of magnitude below FIN and Abraham et al. and grows slower.
//!
//! Configuration per the figure caption: `ρ0 = ε = 2$, Δ = 2000$`.
//!
//! `cargo run --release -p delphi-bench --bin fig6b_bandwidth_aws [--quick]`

use delphi_bench::{
    growth_exponent, oracle_config, quick_mode, run_aad, run_acs, run_delphi,
    run_multi_asset_delphi, spread_inputs, TextTable,
};
use delphi_sim::Topology;
use delphi_workloads::MultiAssetConfig;

fn main() {
    let ns: &[usize] = if quick_mode() { &[16, 64] } else { &[16, 64, 112, 160] };
    let center = 40_000.0;
    println!("== Fig. 6b: bandwidth vs n on AWS (MiB per agreement, all nodes) ==\n");

    let mut table =
        TextTable::new(&["n", "Delphi d=20$", "Delphi d=180$", "FIN", "Abraham et al."]);
    let mut delphi_pts = Vec::new();
    let mut fin_pts = Vec::new();
    let mut aad_pts = Vec::new();
    let mut rows: Vec<[f64; 4]> = Vec::new();
    for &n in ns {
        let cfg = oracle_config(n, 2.0);
        let d20 = run_delphi(&cfg, Topology::aws_geo(n), &spread_inputs(n, center, 20.0), 6101);
        let d180 = run_delphi(&cfg, Topology::aws_geo(n), &spread_inputs(n, center, 180.0), 6102);
        let fin = run_acs(n, Topology::aws_geo(n), &spread_inputs(n, center, 20.0), 6103);
        let aad = run_aad(n, Topology::aws_geo(n), &spread_inputs(n, center, 20.0), 10, 6104);
        table.row(&[
            n.to_string(),
            format!("{:.2}", d20.wire_mib),
            format!("{:.2}", d180.wire_mib),
            format!("{:.2}", fin.wire_mib),
            format!("{:.2}", aad.wire_mib),
        ]);
        delphi_pts.push((n as f64, d20.wire_mib));
        fin_pts.push((n as f64, fin.wire_mib));
        aad_pts.push((n as f64, aad.wire_mib));
        rows.push([d20.wire_mib, d180.wire_mib, fin.wire_mib, aad.wire_mib]);
        eprintln!("  n={n} done");
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());

    let last = rows.last().expect("rows");
    println!("shape checks:");
    println!(
        "  Delphi lighter than FIN at n = {}: {} ({:.1}x)",
        ns[ns.len() - 1],
        last[0] < last[2],
        last[2] / last[0]
    );
    println!(
        "  Delphi lighter than Abraham et al.: {} ({:.1}x)",
        last[0] < last[3],
        last[3] / last[0]
    );
    println!(
        "  growth exponents (bytes ~ n^k): Delphi {:.2}, FIN {:.2}, AAD {:.2}",
        growth_exponent(&delphi_pts),
        growth_exponent(&fin_pts),
        growth_exponent(&aad_pts)
    );
    println!(
        "  Delphi grows slower than both: {}",
        growth_exponent(&delphi_pts) < growth_exponent(&fin_pts)
            && growth_exponent(&delphi_pts) < growth_exponent(&aad_pts)
    );

    // A DORA-style deployment runs one Delphi instance per asset; batching
    // frames across the basket is where the multiplexed transport saves.
    let ma_n = ns[0];
    let basket = MultiAssetConfig::default_basket();
    let assets = basket.assets.len();
    let shards = std::thread::available_parallelism().map_or(1, |p| p.get());
    let cfg = oracle_config(ma_n, 2.0);
    let point = run_multi_asset_delphi(&cfg, basket, Topology::aws_geo(ma_n), 6105, shards);
    println!("\nmulti-asset deployment ({assets} feeds, n = {ma_n}), batched vs unbatched:");
    for a in &point.per_asset {
        println!(
            "  {:<4} spread {:.3}$ (ε-agreement: {}), solo-mesh runtime {:.0} ms",
            a.name,
            a.spread,
            a.spread <= cfg.epsilon(),
            a.runtime_ms
        );
    }
    println!(
        "  batched MiB {:.2} vs unbatched MiB {:.2} — {}",
        point.savings.batched_wire_bytes as f64 / (1024.0 * 1024.0),
        point.savings.unbatched_wire_bytes as f64 / (1024.0 * 1024.0),
        point.savings
    );
}
