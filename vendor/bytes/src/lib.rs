//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: an immutable, cheaply cloneable,
//! contiguous byte buffer. Semantics match `bytes::Bytes` for this subset;
//! the zero-copy internals (`from_static` borrowing, sub-slicing without
//! copying) are deliberately simplified to a reference-counted allocation.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copied here; the real crate
    /// borrows, but nothing in this workspace observes the difference).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Creates `Bytes` by copying the given slice.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a slice view of the whole buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Returns a new `Bytes` for the given sub-range (copying).
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes::copy_from_slice(&self.data[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

/// Append-style write methods (big-endian, as in the real crate).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16` in big-endian order.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` in big-endian order.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` in big-endian order.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xdead_beef);
        buf.put_u16(0x0102);
        buf.put_slice(b"xy");
        buf.extend_from_slice(b"z");
        assert_eq!(buf.len(), 9);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..4], &[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(&frozen[4..6], &[1, 2]);
        assert_eq!(&frozen[6..], b"xyz");
    }

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(&b[..], &[1u8, 2, 3][..]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let b = Bytes::from_static(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert!(!b.is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\n");
        assert_eq!(format!("{b:?}"), "b\"a\\n\"");
    }
}
