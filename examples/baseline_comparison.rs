#![forbid(unsafe_code)]
//! Head-to-head: Delphi vs the two baselines of Fig. 6 on identical
//! inputs and an identical simulated geo-distributed network.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use delphi::baselines::{AadNode, AcsNode};
use delphi::core::{DelphiConfig, DelphiNode};
use delphi::primitives::NodeId;
use delphi::sim::{RunReport, Simulation, Topology};
use delphi::workloads::{BtcFeed, BtcFeedConfig};

fn summarize(name: &str, inputs: &[f64], report: &RunReport<f64>) {
    let outs: Vec<f64> = report.honest_outputs().copied().collect();
    let spread = outs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - outs.iter().copied().fold(f64::INFINITY, f64::min);
    let lo = inputs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{name:<22} {:>9.1} ms {:>9.2} MiB {:>12} msgs | spread {:>8.4}$ | outputs within [{:.0}$, {:.0}$]+relax",
        report.completion_ms().unwrap_or(f64::NAN),
        report.metrics.total_wire_mib(),
        report.metrics.total_msgs(),
        spread,
        lo,
        hi,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let t = (n - 1) / 3;
    let mut feed = BtcFeed::new(BtcFeedConfig::default(), 4242);
    let quote = feed.next_minute();
    let inputs = feed.node_inputs(&quote, n);
    println!(
        "n = {n}, t = {t}; BTC quotes around {:.0}$ with range {:.2}$\n",
        quote.truth,
        quote.range()
    );
    println!("{:<22} {:>12} {:>13} {:>17}", "protocol", "latency", "traffic", "messages");

    // Delphi, with the paper's Fig. 6a configuration.
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(10.0)
        .delta_max(2000.0)
        .epsilon(2.0)
        .build()?;
    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
        .collect();
    let report = Simulation::new(Topology::aws_geo(n)).seed(1).run(nodes);
    summarize("Delphi", &inputs, &report);

    // Abraham et al.: log2(Δ/ε) = 10 rounds of RBC + witnesses.
    let nodes =
        NodeId::all(n).map(|id| AadNode::new(id, n, t, inputs[id.index()], 10).boxed()).collect();
    let report = Simulation::new(Topology::aws_geo(n)).seed(1).run(nodes);
    summarize("Abraham et al. (AAA)", &inputs, &report);

    // FIN-style ACS: n RBCs + n ABAs, median output (exact agreement).
    let nodes = NodeId::all(n)
        .map(|id| AcsNode::new(id, n, t, inputs[id.index()], b"coin").boxed())
        .collect();
    let report = Simulation::new(Topology::aws_geo(n)).seed(1).run(nodes);
    summarize("FIN-style ACS", &inputs, &report);

    println!(
        "\nNote: at n = 16 Delphi's high round count makes it the slower,\n\
         lighter protocol — exactly the small-n regime of Fig. 6a. Re-run\n\
         the fig6a_runtime_aws bench binary to watch the crossover as n grows."
    );
    Ok(())
}
