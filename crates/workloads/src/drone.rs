//! The CPS workload: drone-based object localization (§VI-B).
//!
//! Each drone photographs a car, runs an object detector, and estimates
//! the car's 2D position as `detector bounding-box center + own GPS
//! position`. The paper characterizes the two error sources:
//!
//! - **detector**: IoU of detections follows a thin-tailed Gamma law with
//!   mean ≈ 0.87, and `IoU < 0.6` in only ≈ 0.37% of cases (Fig. 5);
//!   the per-axis position error is bounded by `(1 − IoU) · l_diag` with
//!   `l_diag ≈ 5.3 m` for a standard car;
//! - **GPS**: per the FAA report, error ≤ 5 m in 99.99% of samples with
//!   mean ≈ 1.3 m; the paper upper-bounds it with a Gamma law.
//!
//! This generator samples both laws and composes them into per-drone
//! position estimates; Fig. 5 and the §VI-B `Δ = 50 m`, `ρ0 = ε = 0.5 m`
//! derivations reproduce from it.

use delphi_stats::dist::{ContinuousDist, Gamma};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the drone-detection scenario.
#[derive(Clone, Debug)]
pub struct DroneScenarioConfig {
    /// IoU model: `IoU = clamp(1 − G, 0, 1)` with
    /// `G ~ Gamma(iou_gap_shape, iou_gap_scale)`. Defaults give mean IoU
    /// ≈ 0.87 and `P(IoU < 0.6) ≈ 0.4%`, matching Fig. 5.
    pub iou_gap_shape: f64,
    /// Scale of the IoU gap Gamma.
    pub iou_gap_scale: f64,
    /// Diagonal of the ground-truth bounding box in meters
    /// (paper: 5.3 m for a 5 m × 2 m car).
    pub l_diag: f64,
    /// GPS error model `Gamma(gps_shape, gps_scale)`; defaults give mean
    /// 1.3 m with a ≤ 5 m 99.99% envelope, matching the FAA report.
    pub gps_shape: f64,
    /// Scale of the GPS Gamma.
    pub gps_scale: f64,
}

impl Default for DroneScenarioConfig {
    fn default() -> Self {
        DroneScenarioConfig {
            iou_gap_shape: 3.2,
            iou_gap_scale: 0.0406,
            l_diag: 5.3,
            gps_shape: 4.0,
            gps_scale: 0.325,
        }
    }
}

/// One drone's estimate of the target position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// Estimated x coordinate (meters).
    pub x: f64,
    /// Estimated y coordinate (meters).
    pub y: f64,
    /// The IoU of the underlying detection.
    pub iou: f64,
}

/// The drone swarm scenario generator.
///
/// # Example
///
/// ```
/// use delphi_workloads::{DroneScenario, DroneScenarioConfig};
///
/// let mut scenario = DroneScenario::new(DroneScenarioConfig::default(), (120.0, 80.0), 3);
/// let obs = scenario.observe(15);
/// assert_eq!(obs.len(), 15);
/// // Estimates cluster near the true position.
/// for o in &obs {
///     assert!((o.x - 120.0).abs() < 20.0 && (o.y - 80.0).abs() < 20.0);
/// }
/// ```
#[derive(Debug)]
pub struct DroneScenario {
    cfg: DroneScenarioConfig,
    truth: (f64, f64),
    rng: StdRng,
    iou_gap: Gamma,
    gps: Gamma,
}

impl DroneScenario {
    /// Creates a scenario with a target at `truth` (meters).
    ///
    /// # Panics
    ///
    /// Panics if the configured Gamma parameters are invalid.
    pub fn new(cfg: DroneScenarioConfig, truth: (f64, f64), seed: u64) -> DroneScenario {
        let iou_gap = Gamma::new(cfg.iou_gap_shape, cfg.iou_gap_scale).expect("valid IoU model");
        let gps = Gamma::new(cfg.gps_shape, cfg.gps_scale).expect("valid GPS model");
        DroneScenario { cfg, truth, rng: StdRng::seed_from_u64(seed), iou_gap, gps }
    }

    /// The target's true position.
    pub fn truth(&self) -> (f64, f64) {
        self.truth
    }

    /// Samples one detection IoU.
    pub fn sample_iou(&mut self) -> f64 {
        (1.0 - self.iou_gap.sample(&mut self.rng)).clamp(0.0, 1.0)
    }

    /// Samples `count` IoU values — the Fig. 5 dataset.
    pub fn sample_ious(&mut self, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.sample_iou()).collect()
    }

    /// Produces one position estimate per drone.
    pub fn observe(&mut self, drones: usize) -> Vec<Observation> {
        (0..drones)
            .map(|_| {
                let iou = self.sample_iou();
                // Detector error: up to (1 − IoU)·l_diag, random direction.
                let det_mag = (1.0 - iou) * self.cfg.l_diag * self.rng.random::<f64>();
                let det_dir = self.rng.random::<f64>() * std::f64::consts::TAU;
                // GPS error: Gamma magnitude, random direction.
                let gps_mag = self.gps.sample(&mut self.rng);
                let gps_dir = self.rng.random::<f64>() * std::f64::consts::TAU;
                Observation {
                    x: self.truth.0 + det_mag * det_dir.cos() + gps_mag * gps_dir.cos(),
                    y: self.truth.1 + det_mag * det_dir.sin() + gps_mag * gps_dir.sin(),
                    iou,
                }
            })
            .collect()
    }

    /// Per-axis inputs for the two Delphi instances the paper runs
    /// (one per coordinate).
    pub fn axis_inputs(&mut self, drones: usize) -> (Vec<f64>, Vec<f64>) {
        let obs = self.observe(drones);
        (obs.iter().map(|o| o.x).collect(), obs.iter().map(|o| o.y).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_stats::describe::Summary;
    use delphi_stats::{fit, ks};

    #[test]
    fn iou_statistics_match_the_paper() {
        let mut s = DroneScenario::new(DroneScenarioConfig::default(), (0.0, 0.0), 1);
        let ious = s.sample_ious(80_000);
        let summary = Summary::of(&ious);
        assert!((summary.mean - 0.87).abs() < 0.01, "mean IoU {}", summary.mean);
        let below_06 = ious.iter().filter(|&&x| x < 0.6).count() as f64 / ious.len() as f64;
        assert!(below_06 < 0.012, "P(IoU < 0.6) = {below_06}");
        assert!(below_06 > 0.0001, "tail not degenerate: {below_06}");
        assert!(ious.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn gamma_fits_iou_better_than_frechet() {
        // The Fig. 5 comparison: Gamma is the best fit for IoU.
        let mut s = DroneScenario::new(DroneScenarioConfig::default(), (0.0, 0.0), 2);
        let ious = s.sample_ious(20_000);
        let gamma = fit::gamma_mle(&ious).unwrap();
        let frechet = fit::frechet_log_moments(&ious).unwrap();
        let d_gamma = ks::ks_statistic(&ious, |x| gamma.cdf(x));
        let d_frechet = ks::ks_statistic(&ious, |x| frechet.cdf(x));
        assert!(d_gamma < d_frechet, "Gamma {d_gamma} vs Fréchet {d_frechet}");
    }

    #[test]
    fn gps_error_envelope_matches_faa() {
        let cfg = DroneScenarioConfig::default();
        let gps = Gamma::new(cfg.gps_shape, cfg.gps_scale).unwrap();
        assert!((gps.mean() - 1.3).abs() < 0.01, "mean GPS error {}", gps.mean());
        // ≤ 5 m at the 99.99th percentile, per the FAA report.
        assert!(gps.quantile(0.9999) <= 6.0, "q99.99 = {}", gps.quantile(0.9999));
    }

    #[test]
    fn observations_cluster_near_truth() {
        let mut s = DroneScenario::new(DroneScenarioConfig::default(), (50.0, -20.0), 3);
        let obs = s.observe(2000);
        let xs: Vec<f64> = obs.iter().map(|o| o.x).collect();
        let summary = Summary::of(&xs);
        assert!((summary.mean - 50.0).abs() < 0.2, "x mean {}", summary.mean);
        // Per-axis error should stay well within the paper's Δ = 50 m.
        assert!(summary.range() < 50.0, "x range {}", summary.range());
        // Per-axis spread of a realistic swarm (n ≈ 15) is a few meters.
        let (x15, _) = s.axis_inputs(15);
        let r = Summary::of(&x15).range();
        assert!(r < 20.0, "15-drone range {r}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = DroneScenario::new(DroneScenarioConfig::default(), (1.0, 2.0), 7);
        let mut b = DroneScenario::new(DroneScenarioConfig::default(), (1.0, 2.0), 7);
        assert_eq!(a.observe(5), b.observe(5));
    }
}
