//! Seeded-violation and false-positive fixtures for every rule.
//!
//! Each fixture builds an in-memory [`Workspace`] (the same structures
//! `workspace::load` produces from disk) so the full `rules::check`
//! pipeline runs — sorting, allow-annotations, and manifest rules
//! included — without touching the real repository.

use delphi_lint::lexer;
use delphi_lint::manifest;
use delphi_lint::rules::{check, Violation, RULES};
use delphi_lint::workspace::{CrateInfo, SourceFile, Workspace};

fn source(rel: &str, crate_name: &str, src: &str) -> SourceFile {
    SourceFile {
        rel: rel.to_string(),
        crate_name: crate_name.to_string(),
        is_crate_root: rel.ends_with("lib.rs")
            || rel.ends_with("main.rs")
            || rel.contains("/bin/")
            || rel.starts_with("examples/"),
        lexed: lexer::lex(src),
    }
}

fn member(name: &str, manifest_text: &str) -> CrateInfo {
    CrateInfo {
        name: name.to_string(),
        manifest_rel: format!("crates/{}/Cargo.toml", name.trim_start_matches("delphi-")),
        manifest: manifest::parse(manifest_text),
    }
}

fn workspace(crates: Vec<CrateInfo>, files: Vec<SourceFile>, ci: Option<&str>) -> Workspace {
    Workspace { crates, files, ci_text: ci.map(str::to_string) }
}

fn rules_hit(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn every_rule_catches_its_seeded_violation() {
    // One deliberate violation per rule, all in one workspace.
    let ws = workspace(
        vec![
            // layering (manifest level): a sans-io crate depending on tokio.
            member(
                "delphi-core",
                "[package]\nname = \"delphi-core\"\n[dependencies]\ntokio = { workspace = true }\n",
            ),
            member("delphi-bench", "[package]\nname = \"delphi-bench\"\n"),
        ],
        vec![
            // layering (source level): a sans-io crate naming tokio::spawn.
            source("crates/core/src/io.rs", "delphi-core", "fn f() { tokio::spawn(async {}); }\n"),
            // forbid-unsafe: a crate root without the attribute.
            source("crates/core/src/lib.rs", "delphi-core", "pub fn f() {}\n"),
            // no-panic: unwrap in live code.
            source(
                "crates/core/src/panicky.rs",
                "delphi-core",
                "fn f(v: Vec<u8>) { v.first().unwrap(); }\n",
            ),
            // bounded-channel: an unbounded queue.
            source(
                "crates/core/src/chan.rs",
                "delphi-core",
                "fn f() { let (tx, rx) = mpsc::unbounded_channel::<u8>(); }\n",
            ),
            // wire-constants: a reserved marker literal away from home.
            source("crates/core/src/wire.rs", "delphi-core", "const MARKER: u16 = 0xFFFF;\n"),
            // bench-json: an emitting bench bin absent from the CI text.
            source(
                "crates/bench/src/bin/fig_new.rs",
                "delphi-bench",
                "#![forbid(unsafe_code)]\nfn main() { emit_bench_json(\"BENCH_new.json\"); }\n",
            ),
        ],
        Some("jobs:\n  bench-gate:\n    run: cargo run --bin fig_other\n"),
    );
    let violations = check(&ws);
    assert_eq!(
        rules_hit(&violations),
        RULES.to_vec(),
        "each seeded violation must be caught, reported in rule order: {violations:#?}",
    );
    // The manifest-level and source-level layering findings are distinct.
    let layering: Vec<&str> =
        violations.iter().filter(|v| v.rule == "layering").map(|v| v.file.as_str()).collect();
    assert_eq!(layering, ["crates/core/Cargo.toml", "crates/core/src/io.rs"]);
}

#[test]
fn clean_workspace_produces_no_violations() {
    let ws = workspace(
        vec![
            member("delphi-core", "[package]\nname = \"delphi-core\"\n[dependencies]\nbytes = { workspace = true }\n"),
            member("delphi-net", "[package]\nname = \"delphi-net\"\n[dependencies]\ntokio = { workspace = true }\n"),
        ],
        vec![
            source(
                "crates/core/src/lib.rs",
                "delphi-core",
                "#![forbid(unsafe_code)]\npub fn f(v: &[u8]) -> Option<&u8> { v.first() }\n",
            ),
            source(
                "crates/net/src/lib.rs",
                "delphi-net",
                "#![forbid(unsafe_code)]\nfn f() { let (tx, rx) = tokio::sync::mpsc::channel::<u8>(64); }\n",
            ),
        ],
        Some("jobs: {}\n"),
    );
    assert_eq!(check(&ws), Vec::new());
}

#[test]
fn dev_dependency_on_tokio_is_not_a_layering_violation() {
    // Sans-io crates may use tokio in tests (dev-dependencies); only a
    // real [dependencies] edge breaks the layering.
    let ws = workspace(
        vec![member(
            "delphi-core",
            "[package]\nname = \"delphi-core\"\n[dev-dependencies]\ntokio = { workspace = true }\n",
        )],
        vec![source("crates/core/src/lib.rs", "delphi-core", "#![forbid(unsafe_code)]\n")],
        None,
    );
    assert_eq!(check(&ws), Vec::new());
}

#[test]
fn comments_strings_and_test_code_do_not_trip_rules() {
    // Every panicking / io / marker construct below sits in a comment, a
    // string literal, a raw string, or #[cfg(test)] code: none may fire.
    let src = r####"#![forbid(unsafe_code)]
// tokio::spawn in a comment; v.unwrap() too; 0xFFFF as well
/* block comment: unbounded_channel();
   nested /* panic!("no") */ still comment */
const DOC: &str = "tokio::net::TcpStream, .unwrap(), 0xFFFF";
const RAW: &str = r#"mpsc::unbounded_channel(); v[0]; panic!("quoted")"#;

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Vec<u8> = vec![1];
        v.first().unwrap();
        let _ = v[0];
        let (tx, rx) = tokio::sync::mpsc::unbounded_channel::<u8>();
        assert_eq!(0xFFFFu16, 0xFFFF);
    }
}
"####;
    let ws = workspace(
        vec![member("delphi-core", "[package]\nname = \"delphi-core\"\n")],
        vec![source("crates/core/src/lib.rs", "delphi-core", src)],
        None,
    );
    assert_eq!(check(&ws), Vec::new());
}

#[test]
fn allow_annotation_needs_a_reason_and_adjacency() {
    let src = "#![forbid(unsafe_code)]
fn f(v: Vec<u8>) {
    // lint: allow(no-panic) — bounds checked by caller contract
    v.first().unwrap();
    // lint: allow(no-panic)
    v.last().unwrap();
    // lint: allow(no-panic) — too far away from its line

    v.first().unwrap();
}
";
    let ws = workspace(
        vec![member("delphi-core", "[package]\nname = \"delphi-core\"\n")],
        vec![source("crates/core/src/lib.rs", "delphi-core", src)],
        None,
    );
    let violations = check(&ws);
    let lines: Vec<u32> = violations.iter().map(|v| v.line).collect();
    assert_eq!(
        lines,
        [6, 9],
        "reason-less (line 5) and non-adjacent (line 7) annotations are inert: {violations:#?}",
    );
}

#[test]
fn wire_constants_allowed_at_home_and_via_annotation() {
    let ws = workspace(
        vec![member("delphi-net", "[package]\nname = \"delphi-net\"\n")],
        vec![
            // The canonical definition site is exempt wholesale.
            source(
                "crates/net/src/frame.rs",
                "delphi-net",
                "pub const BATCH_MARKER: u16 = 0xFFFF;\npub const EPOCH_MARKER: u16 = 0xFFFE;\n",
            ),
            // Elsewhere an annotated use passes, an unannotated one fails.
            source(
                "crates/net/src/elsewhere.rs",
                "delphi-net",
                "// lint: allow(wire-constants) — golden-bytes fixture\nconst A: u16 = 0xFFFF;\nconst B: u16 = 0xFFFE;\n",
            ),
        ],
        None,
    );
    let violations = check(&ws);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].line, 3);
}

#[test]
fn bench_json_rule_requires_ci_registration() {
    let emitting = "#![forbid(unsafe_code)]\nfn main() { emit_bench_json(\"BENCH_x.json\"); }\n";
    let silent = "#![forbid(unsafe_code)]\nfn main() { println!(\"no json here\"); }\n";
    let files = |ci: Option<&str>| {
        workspace(
            vec![member("delphi-bench", "[package]\nname = \"delphi-bench\"\n")],
            vec![
                source("crates/bench/src/bin/fig_x.rs", "delphi-bench", emitting),
                source("crates/bench/src/bin/helper.rs", "delphi-bench", silent),
            ],
            ci,
        )
    };
    // Registered in CI: clean. Unregistered (or no CI file): flagged —
    // but only the emitting bin, never the silent helper.
    assert_eq!(check(&files(Some("run: cargo run --bin fig_x\n"))), Vec::new());
    for ws in [files(Some("jobs: {}\n")), files(None)] {
        let violations = check(&ws);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].file, "crates/bench/src/bin/fig_x.rs");
        assert_eq!(violations[0].rule, "bench-json");
    }
}
