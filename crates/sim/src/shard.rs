//! Sharded multi-instance scenario runs.
//!
//! A DORA-style oracle deployment agrees on many assets at once. Two
//! complementary tools cover that scale-out in the simulator:
//!
//! - [`run_sharded`] executes independent simulations — one per asset —
//!   across a pool of worker threads, preserving input order and full
//!   determinism (each job carries its own seeded [`Simulation`]).
//! - [`BatchSavings`] compares the transport cost of those per-asset runs
//!   against a single multiplexed run (all assets over one mesh via
//!   [`Mux`](delphi_primitives::Mux)), quantifying what frame batching
//!   saves in messages and wire bytes.
//!
//! See `tests/multi_asset.rs` at the workspace root for the full
//! multi-asset Delphi scenario built from these pieces.

use std::fmt;

use delphi_primitives::{EpochEvent, Protocol};

use crate::engine::{RunReport, Simulation};
use crate::metrics::Metrics;

/// One simulation job: a configured [`Simulation`] plus a factory that
/// builds its nodes on the worker thread that runs it.
pub struct SimJob<O> {
    /// The configured simulation (topology, seed, fault set, caps).
    pub sim: Simulation,
    /// Builds the node set; invoked on the worker thread.
    #[allow(clippy::type_complexity)]
    pub make_nodes: Box<dyn FnOnce() -> Vec<Box<dyn Protocol<Output = O>>> + Send>,
}

impl<O> fmt::Debug for SimJob<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimJob").field("sim", &self.sim).finish_non_exhaustive()
    }
}

impl<O: Clone + fmt::Debug> SimJob<O> {
    /// Creates a job from a simulation and a node factory.
    pub fn new<F>(sim: Simulation, make_nodes: F) -> SimJob<O>
    where
        F: FnOnce() -> Vec<Box<dyn Protocol<Output = O>>> + Send + 'static,
    {
        SimJob { sim, make_nodes: Box::new(make_nodes) }
    }

    fn run(self) -> RunReport<O> {
        let nodes = (self.make_nodes)();
        self.sim.run(nodes)
    }
}

/// Runs `jobs` across up to `shards` worker threads, returning reports in
/// job order.
///
/// Jobs are distributed round-robin, so a deterministic job list yields a
/// deterministic report list regardless of the shard count — sharding is
/// pure wall-clock parallelism, never a semantics knob.
///
/// # Panics
///
/// Panics if `shards` is zero or a job's simulation panics (node-count
/// mismatch etc.); worker panics are propagated.
pub fn run_sharded<O: Clone + fmt::Debug + Send>(
    jobs: Vec<SimJob<O>>,
    shards: usize,
) -> Vec<RunReport<O>> {
    assert!(shards > 0, "need at least one shard");
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let mut buckets: Vec<Vec<(usize, SimJob<O>)>> =
        (0..shards.min(total)).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        let slot = i % buckets.len();
        buckets[slot].push((i, job));
    }
    let mut results: Vec<Option<RunReport<O>>> = (0..total).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket.into_iter().map(|(i, job)| (i, job.run())).collect::<Vec<_>>()
                })
            })
            .collect();
        for worker in workers {
            for (i, report) in worker.join().expect("shard worker panicked") {
                results[i] = Some(report);
            }
        }
    });
    results.into_iter().map(|r| r.expect("every job produced a report")).collect()
}

/// Transport-cost comparison: per-asset unbatched runs vs one multiplexed
/// (batched) run of the same assets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchSavings {
    /// Messages sent across all unbatched per-asset runs.
    pub unbatched_msgs: u64,
    /// Wire bytes across all unbatched per-asset runs.
    pub unbatched_wire_bytes: u64,
    /// Messages (frames) sent by the multiplexed run.
    pub batched_msgs: u64,
    /// Wire bytes sent by the multiplexed run.
    pub batched_wire_bytes: u64,
}

impl BatchSavings {
    /// Builds the comparison from per-asset metrics and the multiplexed
    /// run's metrics.
    pub fn compare<'a>(
        unbatched_per_asset: impl IntoIterator<Item = &'a Metrics>,
        batched: &Metrics,
    ) -> BatchSavings {
        let mut s = BatchSavings {
            batched_msgs: batched.total_msgs(),
            batched_wire_bytes: batched.total_wire_bytes(),
            ..BatchSavings::default()
        };
        for m in unbatched_per_asset {
            s.unbatched_msgs += m.total_msgs();
            s.unbatched_wire_bytes += m.total_wire_bytes();
        }
        s
    }

    /// Fraction of frames eliminated by batching, in `[0, 1]`.
    pub fn frames_saved(&self) -> f64 {
        saved_fraction(self.unbatched_msgs, self.batched_msgs)
    }

    /// Fraction of wire bytes eliminated by batching, in `[0, 1]`.
    pub fn bytes_saved(&self) -> f64 {
        saved_fraction(self.unbatched_wire_bytes, self.batched_wire_bytes)
    }
}

/// Sustained-throughput summary of one epoch-stream run: what the
/// `fig_throughput` sweep reports per configuration.
///
/// Built from an [`EpochProtocol`](delphi_primitives::EpochProtocol) run's
/// report: agreements come from the ordered event stream (the minimum
/// across honest nodes, so a skipped epoch on any node is not counted),
/// transport cost from the run's [`Metrics`], and time from the simulated
/// clock — deterministic, machine-independent numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochThroughput {
    /// `(epoch, asset)` agreements every honest node emitted.
    pub agreements: u64,
    /// Simulated seconds until the last honest node finished the stream.
    pub sim_seconds: f64,
    /// Transport frames (simulator messages) sent by all nodes.
    pub frames: u64,
    /// Wire bytes (payload + per-frame overhead) sent by all nodes.
    pub wire_bytes: u64,
}

impl EpochThroughput {
    /// Summarizes a finished epoch-stream run.
    ///
    /// Counting is per `(epoch, asset)` *value*, not per event: an epoch
    /// whose `Agreed` carries `k` values contributes `k` agreements. A
    /// vector-mode run (one multidimensional instance per epoch) hands
    /// its events over pre-flattened — `flatten_vector_events` turns the
    /// one basket slot into `dims` values — so its cost tags
    /// (bytes/frames per agreement) are directly comparable with the
    /// per-asset scalar sweep without any mode-specific plumbing here.
    pub fn from_report<O: Clone + fmt::Debug>(
        report: &RunReport<Vec<EpochEvent<O>>>,
    ) -> EpochThroughput {
        let agreements = report
            .honest_outputs()
            .map(|events| events.iter().map(|e| e.agreements().count() as u64).sum::<u64>())
            .min()
            .unwrap_or(0);
        let sim_seconds = report.completion_ns().unwrap_or(report.end_ns) as f64 / 1e9;
        EpochThroughput {
            agreements,
            sim_seconds,
            frames: report.metrics.total_msgs(),
            wire_bytes: report.metrics.total_wire_bytes(),
        }
    }

    /// Sustained agreements per simulated second.
    pub fn agreements_per_sec(&self) -> f64 {
        if self.sim_seconds == 0.0 {
            return 0.0;
        }
        self.agreements as f64 / self.sim_seconds
    }

    /// Wire bytes spent per agreement.
    pub fn bytes_per_agreement(&self) -> f64 {
        if self.agreements == 0 {
            return f64::NAN;
        }
        self.wire_bytes as f64 / self.agreements as f64
    }

    /// Transport frames spent per agreement.
    pub fn frames_per_agreement(&self) -> f64 {
        if self.agreements == 0 {
            return f64::NAN;
        }
        self.frames as f64 / self.agreements as f64
    }
}

impl fmt::Display for EpochThroughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} agreements in {:.3}s ({:.1}/s), {:.0} B and {:.2} frames per agreement",
            self.agreements,
            self.sim_seconds,
            self.agreements_per_sec(),
            self.bytes_per_agreement(),
            self.frames_per_agreement()
        )
    }
}

fn saved_fraction(unbatched: u64, batched: u64) -> f64 {
    if unbatched == 0 {
        return 0.0;
    }
    1.0 - batched as f64 / unbatched as f64
}

impl fmt::Display for BatchSavings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frames {} -> {} ({:.1}% saved), wire bytes {} -> {} ({:.1}% saved)",
            self.unbatched_msgs,
            self.batched_msgs,
            100.0 * self.frames_saved(),
            self.unbatched_wire_bytes,
            self.batched_wire_bytes,
            100.0 * self.bytes_saved()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StopReason, Topology};
    use bytes::Bytes;
    use delphi_primitives::{Envelope, NodeId};

    /// Broadcasts once; outputs how many greetings arrived.
    struct Gossip {
        id: NodeId,
        n: usize,
        heard: usize,
    }

    impl Protocol for Gossip {
        type Output = usize;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            vec![Envelope::to_all(Bytes::from_static(b"hi"))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.heard += 1;
            Vec::new()
        }
        fn output(&self) -> Option<usize> {
            (self.heard == self.n - 1).then_some(self.heard)
        }
    }

    fn gossip_job(n: usize, seed: u64) -> SimJob<usize> {
        SimJob::new(Simulation::new(Topology::lan(n)).seed(seed), move || {
            NodeId::all(n)
                .map(|id| Box::new(Gossip { id, n, heard: 0 }) as Box<dyn Protocol<Output = usize>>)
                .collect()
        })
    }

    #[test]
    fn sharded_runs_preserve_order_and_results() {
        let sizes = [3usize, 4, 5, 6, 7];
        for shards in [1, 2, 4, 16] {
            let jobs: Vec<_> =
                sizes.iter().enumerate().map(|(i, &n)| gossip_job(n, i as u64)).collect();
            let reports = run_sharded(jobs, shards);
            assert_eq!(reports.len(), sizes.len());
            for (report, &n) in reports.iter().zip(&sizes) {
                assert_eq!(report.stop, StopReason::AllHonestFinished, "shards={shards}");
                assert_eq!(report.outputs[0], Some(n - 1));
            }
        }
    }

    #[test]
    fn sharded_runs_match_sequential_runs_exactly() {
        let sequential: Vec<_> = (0..4).map(|seed| gossip_job(5, seed).run()).collect();
        let sharded = run_sharded((0..4).map(|seed| gossip_job(5, seed)).collect(), 3);
        for (a, b) in sequential.iter().zip(&sharded) {
            assert_eq!(a.completion_ns(), b.completion_ns());
            assert_eq!(a.events, b.events);
            assert_eq!(a.metrics.total_wire_bytes(), b.metrics.total_wire_bytes());
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let reports: Vec<RunReport<usize>> = run_sharded(Vec::new(), 4);
        assert!(reports.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = run_sharded(vec![gossip_job(3, 0)], 0);
    }

    /// Emits a canned flattened vector-mode event stream (the shape
    /// `flatten_vector_events` produces: one event per epoch, all basket
    /// dimensions as values) once every greeting arrived.
    struct VectorStream {
        id: NodeId,
        n: usize,
        heard: usize,
    }

    impl Protocol for VectorStream {
        type Output = Vec<EpochEvent<f64>>;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            vec![Envelope::to_all(Bytes::from_static(b"hi"))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.heard += 1;
            Vec::new()
        }
        fn output(&self) -> Option<Self::Output> {
            use delphi_primitives::{EpochId, EpochOutcome};
            (self.heard == self.n - 1).then(|| {
                vec![
                    EpochEvent { epoch: EpochId(0), outcome: EpochOutcome::Agreed(vec![1.0; 3]) },
                    EpochEvent { epoch: EpochId(1), outcome: EpochOutcome::Agreed(vec![2.0; 3]) },
                    EpochEvent { epoch: EpochId(2), outcome: EpochOutcome::Skipped },
                ]
            })
        }
    }

    #[test]
    fn throughput_counts_every_dimension_of_flattened_vector_streams() {
        let n = 4;
        let nodes = NodeId::all(n)
            .map(|id| {
                Box::new(VectorStream { id, n, heard: 0 })
                    as Box<dyn Protocol<Output = Vec<EpochEvent<f64>>>>
            })
            .collect();
        let report = Simulation::new(Topology::lan(n)).seed(1).run(nodes);
        assert_eq!(report.stop, StopReason::AllHonestFinished);
        let t = EpochThroughput::from_report(&report);
        // 2 agreed epochs x 3 basket dimensions; the skipped epoch adds 0.
        assert_eq!(t.agreements, 6);
        assert!(t.bytes_per_agreement() > 0.0);
        assert!(t.frames_per_agreement() > 0.0);
    }

    #[test]
    fn batch_savings_arithmetic() {
        let mut unbatched_a = Metrics::new(1);
        unbatched_a.per_node[0].sent_msgs = 60;
        unbatched_a.per_node[0].sent_wire_bytes = 6_000;
        let mut unbatched_b = Metrics::new(1);
        unbatched_b.per_node[0].sent_msgs = 40;
        unbatched_b.per_node[0].sent_wire_bytes = 4_000;
        let mut batched = Metrics::new(1);
        batched.per_node[0].sent_msgs = 50;
        batched.per_node[0].sent_wire_bytes = 7_500;

        let s = BatchSavings::compare([&unbatched_a, &unbatched_b], &batched);
        assert_eq!(s.unbatched_msgs, 100);
        assert_eq!(s.batched_msgs, 50);
        assert!((s.frames_saved() - 0.5).abs() < 1e-12);
        assert!((s.bytes_saved() - 0.25).abs() < 1e-12);
        let display = s.to_string();
        assert!(display.contains("50.0% saved"), "{display}");

        assert_eq!(BatchSavings::default().frames_saved(), 0.0);
    }
}
