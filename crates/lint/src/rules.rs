//! The rule engine: each rule walks the lexed token streams (live code
//! only) and/or the manifest dependency graph and yields violations.
//!
//! A violation at line `L` is suppressed by a
//! `// lint: allow(<rule>) — <reason>` annotation on line `L` or `L - 1`;
//! annotations without a reason are inert. See the README's "Static
//! analysis" section for the rule catalogue.

use crate::lexer::{LexedFile, Token, TokenKind};
use crate::workspace::{SourceFile, Workspace};

/// Every rule the engine ships, in report order.
pub const RULES: [&str; 6] =
    ["layering", "forbid-unsafe", "no-panic", "bounded-channel", "wire-constants", "bench-json"];

/// Crates allowed to perform io (depend on or name `tokio` / `std::net`).
/// Everything else in the workspace is sans-io by contract: its sim bytes
/// must equal its TCP bytes by construction, so it may never touch a
/// socket API directly.
pub const IO_CRATES: [&str; 4] = ["delphi", "delphi-api", "delphi-net", "delphi-bench"];

/// The single home of the reserved wire markers `0xFFFF` / `0xFFFE`.
pub const WIRE_CONSTANT_HOME: &str = "crates/net/src/frame.rs";

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Runs every rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    check_layering(ws, &mut out);
    for file in &ws.files {
        if file.is_crate_root {
            check_forbid_unsafe(file, &mut out);
        }
        check_no_panic(file, &mut out);
        check_bounded_channel(file, &mut out);
        check_wire_constants(file, &mut out);
    }
    check_bench_json(ws, &mut out);
    out.sort_by(|a, b| {
        let ra = RULES.iter().position(|r| *r == a.rule);
        let rb = RULES.iter().position(|r| *r == b.rule);
        ra.cmp(&rb).then_with(|| a.file.cmp(&b.file)).then_with(|| a.line.cmp(&b.line))
    });
    out
}

/// Live (non-test) tokens of a file.
fn live(file: &SourceFile) -> impl Iterator<Item = (usize, &Token)> {
    file.lexed.tokens.iter().enumerate().filter(|(_, t)| !t.test_code)
}

fn tok_at(lexed: &LexedFile, i: usize) -> Option<&Token> {
    lexed.tokens.get(i)
}

fn is_punct(t: Option<&Token>, text: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(t: Option<&Token>, text: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn push_unless_allowed(
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
    out: &mut Vec<Violation>,
) {
    if !file.lexed.allowed_at(rule, line) {
        out.push(Violation { rule, file: file.rel.clone(), line, message });
    }
}

/// `layering`: sans-io crates must not depend on tokio (manifest level)
/// nor name `tokio` / `std::net` in live code (source level).
fn check_layering(ws: &Workspace, out: &mut Vec<Violation>) {
    for krate in &ws.crates {
        if IO_CRATES.contains(&krate.name.as_str()) {
            continue;
        }
        for (dep, line) in &krate.manifest.deps {
            if dep == "tokio" {
                out.push(Violation {
                    rule: "layering",
                    file: krate.manifest_rel.clone(),
                    line: *line,
                    message: format!(
                        "sans-io crate `{}` depends on tokio; only {} may",
                        krate.name,
                        IO_CRATES.join("/"),
                    ),
                });
            }
        }
    }
    for file in &ws.files {
        if IO_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (i, t) in live(file) {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let next = tok_at(&file.lexed, i + 1);
            let next2 = tok_at(&file.lexed, i + 2);
            let prev = i.checked_sub(1).and_then(|p| tok_at(&file.lexed, p));
            let offending = match t.text.as_str() {
                // `tokio::…` anywhere, or `use tokio` even without a path.
                "tokio" if is_punct(next, ":") || is_ident(prev, "use") => Some("tokio"),
                "std" if is_punct(next, ":") && is_ident(next2, "net") => Some("std::net"),
                _ => None,
            };
            if let Some(what) = offending {
                push_unless_allowed(
                    file,
                    "layering",
                    t.line,
                    format!(
                        "sans-io crate `{}` names `{what}` — io stays in {}",
                        file.crate_name,
                        IO_CRATES.join("/"),
                    ),
                    out,
                );
            }
        }
    }
}

/// `forbid-unsafe`: every compilation root carries
/// `#![forbid(unsafe_code)]` (possibly among other forbidden lints).
fn check_forbid_unsafe(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !(t.kind == TokenKind::Punct && t.text == "#") {
            continue;
        }
        if !(is_punct(tok_at(&file.lexed, i + 1), "!")
            && is_punct(tok_at(&file.lexed, i + 2), "[")
            && is_ident(tok_at(&file.lexed, i + 3), "forbid")
            && is_punct(tok_at(&file.lexed, i + 4), "("))
        {
            continue;
        }
        // Scan the forbid(...) argument list for `unsafe_code`.
        for t in toks.iter().skip(i + 5) {
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "unsafe_code") => return,
                (TokenKind::Punct, ")") => break,
                _ => {}
            }
        }
    }
    out.push(Violation {
        rule: "forbid-unsafe",
        file: file.rel.clone(),
        line: 1,
        message: "crate root lacks #![forbid(unsafe_code)]".to_string(),
    });
}

/// Keywords that introduce array literals / patterns rather than index
/// expressions when an `[` follows them.
const NON_INDEX_KEYWORDS: [&str; 13] = [
    "return", "break", "continue", "in", "else", "match", "loop", "while", "if", "let", "move",
    "as", "where",
];

/// `no-panic`: `.unwrap()` / `.expect()` (and `_err` variants), panicking
/// macros, and slice indexing in live code require an allow annotation.
fn check_no_panic(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, t) in live(file) {
        let prev = i.checked_sub(1).and_then(|p| tok_at(&file.lexed, p));
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, m @ ("unwrap" | "expect" | "unwrap_err" | "expect_err"))
                if is_punct(prev, ".") =>
            {
                push_unless_allowed(
                    file,
                    "no-panic",
                    t.line,
                    format!("`.{m}()` can panic an honest node"),
                    out,
                );
            }
            (TokenKind::Ident, m @ ("panic" | "todo" | "unimplemented" | "unreachable"))
                if is_punct(tok_at(&file.lexed, i + 1), "!") =>
            {
                push_unless_allowed(
                    file,
                    "no-panic",
                    t.line,
                    format!("`{m}!` aborts an honest node"),
                    out,
                );
            }
            (TokenKind::Punct, "[") => {
                let indexes_value = match prev {
                    Some(p) => match p.kind {
                        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                        TokenKind::Punct => p.text == ")" || p.text == "]",
                        TokenKind::Number => false,
                    },
                    None => false,
                };
                // `[..]` (full range) never panics.
                let full_range = is_punct(tok_at(&file.lexed, i + 1), ".")
                    && is_punct(tok_at(&file.lexed, i + 2), ".")
                    && is_punct(tok_at(&file.lexed, i + 3), "]");
                if indexes_value && !full_range {
                    push_unless_allowed(
                        file,
                        "no-panic",
                        t.line,
                        "slice/array index can panic on out-of-bounds".to_string(),
                        out,
                    );
                }
            }
            _ => {}
        }
    }
}

/// `bounded-channel`: every queue must have a capacity. Flags
/// `unbounded_channel()` and zero-argument `channel()` constructors.
fn check_bounded_channel(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, t) in live(file) {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let message = match t.text.as_str() {
            "unbounded_channel" => {
                "unbounded channel: a slow or Byzantine peer can \
                                    inflate memory without limit"
            }
            "channel"
                if is_punct(tok_at(&file.lexed, i + 1), "(")
                    && is_punct(tok_at(&file.lexed, i + 2), ")") =>
            {
                "capacity-free channel(): use a bounded queue"
            }
            _ => continue,
        };
        push_unless_allowed(file, "bounded-channel", t.line, message.to_string(), out);
    }
}

/// `wire-constants`: the reserved frame markers `0xFFFF` / `0xFFFE` are
/// defined once, in [`WIRE_CONSTANT_HOME`]; everywhere else must name the
/// `BATCH_MARKER` / `EPOCH_MARKER` constants.
fn check_wire_constants(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel == WIRE_CONSTANT_HOME {
        return;
    }
    for (_, t) in live(file) {
        // lint: allow(wire-constants) — this IS the checker for the markers
        if t.kind == TokenKind::Number && matches!(t.value, Some(0xFFFF) | Some(0xFFFE)) {
            push_unless_allowed(
                file,
                "wire-constants",
                t.line,
                format!(
                    "wire marker literal `{}`: name BATCH_MARKER/EPOCH_MARKER from {}",
                    t.text, WIRE_CONSTANT_HOME,
                ),
                out,
            );
        }
    }
}

/// `bench-json`: every benchmark binary that emits `BENCH_*.json` records
/// (calls `emit_bench_json`) must be exercised — and thereby gated by
/// `bench-gate` — in the CI workflow.
fn check_bench_json(ws: &Workspace, out: &mut Vec<Violation>) {
    for file in &ws.files {
        if !file.rel.starts_with("crates/bench/src/bin/") {
            continue;
        }
        let emits = live(file).any(|(_, t)| is_ident(Some(t), "emit_bench_json"));
        if !emits {
            continue;
        }
        let stem =
            file.rel.rsplit('/').next().and_then(|f| f.strip_suffix(".rs")).unwrap_or(&file.rel);
        let registered = ws.ci_text.as_deref().is_some_and(|ci| ci.contains(stem));
        if !registered {
            out.push(Violation {
                rule: "bench-json",
                file: file.rel.clone(),
                line: 1,
                message: format!(
                    "`{stem}` emits BENCH_*.json but is not run (and gated) in \
                     .github/workflows/ci.yml",
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn file_of(rel: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            is_crate_root: false,
            lexed: lexer::lex(src),
        }
    }

    #[test]
    fn no_panic_flags_and_allows() {
        let file = file_of(
            "crates/core/src/x.rs",
            "delphi-core",
            "
            fn f(v: Vec<u8>) {
                v.first().unwrap();
                // lint: allow(no-panic) — length checked on entry
                v.last().expect(\"checked\");
                let x = v[0];
                let all = &v[..];
                let arr = [0u8; 4];
            }
            ",
        );
        let mut out = Vec::new();
        check_no_panic(&file, &mut out);
        let lines: Vec<u32> = out.iter().map(|v| v.line).collect();
        assert_eq!(lines, [3, 6], "unwrap and index flagged; allowed expect, [..], [0u8;4] not");
    }

    #[test]
    fn bounded_channel_flags_unbounded() {
        let file = file_of(
            "crates/net/src/y.rs",
            "delphi-net",
            "fn f() { let (a, b) = mpsc::unbounded_channel(); let c = mpsc::channel(16); }",
        );
        let mut out = Vec::new();
        check_bounded_channel(&file, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn wire_constants_flag_everywhere_but_home() {
        let away = file_of("crates/sim/src/z.rs", "delphi-sim", "const M: u16 = 0xFFFF;");
        let home = file_of(WIRE_CONSTANT_HOME, "delphi-net", "const M: u16 = 0xFFFF;");
        let mut out = Vec::new();
        check_wire_constants(&away, &mut out);
        check_wire_constants(&home, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|v| v.file.as_str()), Some("crates/sim/src/z.rs"));
    }

    #[test]
    fn forbid_unsafe_accepts_multi_lint_forbid() {
        let mut root = file_of(
            "crates/core/src/lib.rs",
            "delphi-core",
            "#![forbid(unsafe_code, missing_docs)]\npub fn f() {}",
        );
        root.is_crate_root = true;
        let mut out = Vec::new();
        check_forbid_unsafe(&root, &mut out);
        assert!(out.is_empty());

        let mut bare = file_of("crates/core/src/lib.rs", "delphi-core", "pub fn f() {}");
        bare.is_crate_root = true;
        check_forbid_unsafe(&bare, &mut out);
        assert_eq!(out.len(), 1);
    }
}
